#pragma once

/// \file checkpoint.hpp
/// Multilevel checkpoint/restart — Table 4's "Checkpoint-Restart: Optimal
/// interval, Multilevel" and refs [7, 20] of the paper.
///
/// Two storage levels with the classic cost/reliability trade-off:
///   Level 1 — in-memory copy ("node-local buddy/burst buffer"): cheap to
///             write, survives soft faults but not node loss.
///   Level 2 — file on stable storage ("parallel file system"): expensive,
///             survives everything.
/// Every checkpoint carries a CRC-64; restore() verifies integrity and
/// falls back from L1 to L2 when the fast copy is corrupted or missing —
/// exactly the degradation path multilevel schemes are built for.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/serialize.hpp"
#include "perf/timer.hpp"
#include "sph/particles.hpp"

namespace sphexa {

enum class CheckpointLevel
{
    Memory = 1, ///< fast, volatile
    Disk   = 2, ///< slow, stable
};

struct CheckpointStats
{
    std::size_t memoryWrites = 0;
    std::size_t diskWrites   = 0;
    std::size_t restores     = 0;
    std::size_t fallbacks    = 0; ///< restores that had to skip a corrupt level
    std::size_t bytesWritten = 0;
    double writeSeconds      = 0;
};

/// Multilevel checkpoint manager for one simulation's particle state.
template<class T>
class Checkpointer
{
public:
    /// \param diskDir directory for level-2 checkpoints (created if absent)
    explicit Checkpointer(std::filesystem::path diskDir)
        : dir_(std::move(diskDir))
    {
        std::filesystem::create_directories(dir_);
    }

    /// Write a checkpoint at the given level.
    void write(CheckpointLevel level, const ParticleSet<T>& ps, T time, std::uint64_t step)
    {
        Timer t;
        auto buf = serialize(ps, time, step);
        std::uint64_t crc = Crc64::compute(buf);

        if (level == CheckpointLevel::Memory)
        {
            memBuf_ = std::move(buf);
            memCrc_ = crc;
            hasMem_ = true;
            ++stats_.memoryWrites;
            stats_.bytesWritten += memBuf_.size();
        }
        else
        {
            auto path = diskPath();
            std::ofstream f(path, std::ios::binary | std::ios::trunc);
            if (!f) throw std::runtime_error("checkpoint: cannot open " + path.string());
            f.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
            f.write(reinterpret_cast<const char*>(buf.data()),
                    std::streamsize(buf.size()));
            if (!f) throw std::runtime_error("checkpoint: write failed");
            hasDisk_ = true;
            ++stats_.diskWrites;
            stats_.bytesWritten += buf.size() + sizeof(crc);
        }
        stats_.writeSeconds += t.elapsed();
    }

    bool hasLevel(CheckpointLevel level) const
    {
        return level == CheckpointLevel::Memory ? hasMem_ : hasDisk_;
    }

    /// Restore from the fastest valid level (L1 first, fall back to L2).
    /// Returns nullopt when no valid checkpoint exists at any level.
    std::optional<DeserializeResult<T>> restore()
    {
        ++stats_.restores;
        if (hasMem_)
        {
            if (Crc64::compute(memBuf_) == memCrc_)
            {
                return deserialize<T>(memBuf_);
            }
            ++stats_.fallbacks; // corrupted fast copy
        }
        if (hasDisk_)
        {
            auto loaded = loadDisk();
            if (loaded) return loaded;
            ++stats_.fallbacks;
        }
        return std::nullopt;
    }

    /// Simulate loss of the volatile level (node failure).
    void dropMemoryLevel()
    {
        hasMem_ = false;
        memBuf_.clear();
    }

    /// Corrupt one byte of the in-memory checkpoint (SDC on the buffer);
    /// used by tests and the checkpoint bench.
    void corruptMemoryLevel(std::size_t byteIndex)
    {
        if (!hasMem_ || memBuf_.empty()) return;
        memBuf_[byteIndex % memBuf_.size()] ^= std::byte{0x04};
    }

    const CheckpointStats& stats() const { return stats_; }

    std::size_t memoryBytes() const { return memBuf_.size(); }

private:
    std::filesystem::path diskPath() const { return dir_ / "checkpoint.l2"; }

    std::optional<DeserializeResult<T>> loadDisk()
    {
        std::ifstream f(diskPath(), std::ios::binary | std::ios::ate);
        if (!f) return std::nullopt;
        auto size = std::streamoff(f.tellg());
        if (size <= std::streamoff(sizeof(std::uint64_t))) return std::nullopt;
        f.seekg(0);
        std::uint64_t crc = 0;
        f.read(reinterpret_cast<char*>(&crc), sizeof(crc));
        std::vector<std::byte> buf(std::size_t(size) - sizeof(crc));
        f.read(reinterpret_cast<char*>(buf.data()), std::streamsize(buf.size()));
        if (!f) return std::nullopt;
        if (Crc64::compute(buf) != crc) return std::nullopt;
        try
        {
            return deserialize<T>(buf);
        }
        catch (const std::exception&)
        {
            return std::nullopt;
        }
    }

    std::filesystem::path dir_;
    std::vector<std::byte> memBuf_;
    std::uint64_t memCrc_ = 0;
    bool hasMem_  = false;
    bool hasDisk_ = false;
    CheckpointStats stats_;
};

} // namespace sphexa

#pragma once

/// \file sdc.hpp
/// Silent-data-corruption (SDC) detectors — Table 4's "Error Detection:
/// Silent data corruption detectors" (refs [6, 44] of the paper).
///
/// Four complementary detectors, each cheap enough to run every step:
///  - RangeDetector: physical-plausibility bounds per field (rho > 0,
///    h > 0, everything finite). Catches large corruptions instantly.
///  - TemporalDetector: per-particle relative jump versus the previous
///    step beyond a threshold — fields evolve smoothly at CFL-limited
///    steps, so a silent bit flip in a mantissa shows up as a jump.
///  - ChecksumDetector: CRC-64 over read-only data between uses (catches
///    memory corruption of supposedly constant arrays, e.g. masses).
///  - ConservationDetector: drift of global invariants (total mass,
///    momentum, energy) beyond tolerance — an algorithm-based (ABFT-style)
///    end-to-end check.
///
/// SdcInjector flips a chosen bit of a chosen field element so detector
/// recall/overhead can be measured (bench_sdc).

#include <cmath>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "io/serialize.hpp"
#include "math/rng.hpp"
#include "sph/conservation.hpp"
#include "sph/particles.hpp"

namespace sphexa {

struct SdcDetection
{
    std::string detector;
    std::string field;
    std::size_t particle = 0;
    std::string reason;
};

using SdcReport = std::vector<SdcDetection>;

/// Physical-plausibility bounds.
template<class T>
class RangeDetector
{
public:
    /// Scan strictly-positive fields and finiteness of all fields.
    SdcReport scan(ParticleSet<T>& ps) const
    {
        SdcReport report;
        const auto& names = ParticleSet<T>::realFieldNames();
        auto fields = ps.realFields();
        for (std::size_t f = 0; f < fields.size(); ++f)
        {
            const auto& v = *fields[f];
            bool positive = names[f] == "rho" || names[f] == "h" || names[f] == "m";
            for (std::size_t i = 0; i < v.size(); ++i)
            {
                if (!std::isfinite(v[i]))
                {
                    report.push_back({"range", names[f], i, "non-finite"});
                }
                else if (positive && v[i] <= T(0))
                {
                    report.push_back({"range", names[f], i, "non-positive"});
                }
            }
        }
        return report;
    }
};

/// Relative-jump detector against a stored snapshot of selected fields.
template<class T>
class TemporalDetector
{
public:
    explicit TemporalDetector(std::vector<std::string> fields, T maxRelativeJump = T(0.5))
        : fields_(std::move(fields)), threshold_(maxRelativeJump)
    {
    }

    /// Record the current state as the reference.
    void snapshot(ParticleSet<T>& ps)
    {
        prev_.clear();
        for (const auto& f : fields_)
        {
            prev_.push_back(ps.field(f));
        }
        armed_ = true;
    }

    /// Compare against the snapshot.
    SdcReport scan(ParticleSet<T>& ps) const
    {
        SdcReport report;
        if (!armed_) return report;
        for (std::size_t f = 0; f < fields_.size(); ++f)
        {
            const auto& cur = ps.field(fields_[f]);
            const auto& old = prev_[f];
            std::size_t n = std::min(cur.size(), old.size());
            for (std::size_t i = 0; i < n; ++i)
            {
                T scale = std::max(std::abs(old[i]), T(1e-12));
                if (std::abs(cur[i] - old[i]) > threshold_ * scale)
                {
                    report.push_back({"temporal", fields_[f], i, "jump"});
                }
            }
        }
        return report;
    }

private:
    std::vector<std::string> fields_;
    T threshold_;
    std::vector<std::vector<T>> prev_;
    bool armed_ = false;
};

/// CRC over fields that must not change between checks (e.g. masses with
/// equal-mass particles, ids).
template<class T>
class ChecksumDetector
{
public:
    explicit ChecksumDetector(std::vector<std::string> fields)
        : fields_(std::move(fields))
    {
    }

    void snapshot(ParticleSet<T>& ps)
    {
        crcs_.clear();
        for (const auto& f : fields_)
        {
            crcs_.push_back(crcOf(ps.field(f)));
        }
        armed_ = true;
    }

    SdcReport scan(ParticleSet<T>& ps) const
    {
        SdcReport report;
        if (!armed_) return report;
        for (std::size_t f = 0; f < fields_.size(); ++f)
        {
            if (crcOf(ps.field(fields_[f])) != crcs_[f])
            {
                report.push_back({"checksum", fields_[f], 0, "crc mismatch"});
            }
        }
        return report;
    }

private:
    static std::uint64_t crcOf(const std::vector<T>& v)
    {
        return Crc64::compute(reinterpret_cast<const std::byte*>(v.data()),
                              v.size() * sizeof(T));
    }

    std::vector<std::string> fields_;
    std::vector<std::uint64_t> crcs_;
    bool armed_ = false;
};

/// Conservation-law (ABFT-style) detector over global invariants.
template<class T>
class ConservationDetector
{
public:
    explicit ConservationDetector(T relTolerance = T(1e-3)) : tol_(relTolerance) {}

    void snapshot(const Conservation<T>& c) { ref_ = c; armed_ = true; }

    SdcReport scan(const Conservation<T>& c) const
    {
        SdcReport report;
        if (!armed_) return report;
        if (relativeDrift(c.mass, ref_.mass, ref_.mass) > tol_)
        {
            report.push_back({"conservation", "mass", 0, "drift"});
        }
        T eScale = std::abs(ref_.totalEnergy()) + std::abs(ref_.kineticEnergy) + T(1e-12);
        if (std::abs(c.totalEnergy() - ref_.totalEnergy()) > tol_ * eScale)
        {
            report.push_back({"conservation", "energy", 0, "drift"});
        }
        return report;
    }

private:
    T tol_;
    Conservation<T> ref_{};
    bool armed_ = false;
};

/// Ground-truth fault injector: flips bit \p bit of element \p index of the
/// named field.
template<class T>
struct SdcInjector
{
    std::string field;
    std::size_t index = 0;
    int bit = 62; // high exponent bit: a "large" corruption by default

    void inject(ParticleSet<T>& ps) const
    {
        auto& v = ps.field(field);
        if (v.empty()) return;
        T& x = v[index % v.size()];
        std::uint64_t raw;
        static_assert(sizeof(T) == sizeof(raw) || sizeof(T) == 4);
        if constexpr (sizeof(T) == 8)
        {
            std::memcpy(&raw, &x, 8);
            raw ^= (std::uint64_t(1) << (bit % 64));
            std::memcpy(&x, &raw, 8);
        }
        else
        {
            std::uint32_t r32;
            std::memcpy(&r32, &x, 4);
            r32 ^= (std::uint32_t(1) << (bit % 32));
            std::memcpy(&x, &r32, 4);
        }
    }

    /// A random injection drawn deterministically from \p rng.
    static SdcInjector random(Xoshiro256pp& rng, std::size_t nParticles)
    {
        const auto& names = ParticleSet<T>::realFieldNames();
        SdcInjector inj;
        inj.field = names[rng.uniformInt(names.size())];
        inj.index = rng.uniformInt(nParticles ? nParticles : 1);
        inj.bit   = int(rng.uniformInt(sizeof(T) * 8));
        return inj;
    }
};

} // namespace sphexa

#pragma once

/// \file daly.hpp
/// Optimal checkpoint interval selection — Table 4's "Optimal interval"
/// (refs [7, 20, 21] of the paper).
///
///  - Young (1974):  tau = sqrt(2 C M)
///  - Daly (2006) higher-order:
///       tau = sqrt(2 C M) [1 + 1/3 sqrt(C/(2M)) + (1/9)(C/(2M))] - C
///    (valid for C < 2M; reduces to Young as C/M -> 0)
///  - first-order expected waste fraction at interval tau:
///       waste(tau) = C/tau + (tau + C)/(2 M) + R/M
///  - two-level pattern optimization (Di, Robert, Vivien, Cappello 2016
///    style): N1 cheap level-1 checkpoints per expensive level-2
///    checkpoint, with failure classes recoverable per level.
///
/// A discrete-event simulator with exponential failures validates the
/// closed forms in tests and in bench_checkpoint.

#include <cmath>
#include <stdexcept>

#include "math/rng.hpp"

namespace sphexa {

/// Young's first-order optimal interval. C = checkpoint cost, mtbf = M.
inline double youngInterval(double checkpointCost, double mtbf)
{
    if (checkpointCost <= 0 || mtbf <= 0)
    {
        throw std::invalid_argument("youngInterval: positive inputs required");
    }
    return std::sqrt(2.0 * checkpointCost * mtbf);
}

/// Daly's refined optimum (2006), clamped to the Young value's regime.
inline double dalyInterval(double checkpointCost, double mtbf)
{
    double C = checkpointCost, M = mtbf;
    if (C <= 0 || M <= 0) throw std::invalid_argument("dalyInterval: positive inputs");
    if (C >= 2.0 * M) return M; // pathological regime: checkpoint ~ MTBF
    double x = std::sqrt(C / (2.0 * M));
    return std::sqrt(2.0 * C * M) * (1.0 + x / 3.0 + x * x / 9.0) - C;
}

/// First-order expected waste fraction of compute capacity when
/// checkpointing every \p tau seconds (cost C, restart R, MTBF M).
inline double expectedWasteFraction(double tau, double checkpointCost, double restartCost,
                                    double mtbf)
{
    if (tau <= 0) throw std::invalid_argument("expectedWasteFraction: tau > 0 required");
    return checkpointCost / tau + (tau + checkpointCost) / (2.0 * mtbf) +
           restartCost / mtbf;
}

/// Two-level pattern: N1 level-1 checkpoints (cost C1, protects against
/// failures of rate lambda1) between consecutive level-2 checkpoints
/// (cost C2, protects against the rarer rate-lambda2 failures). The
/// optimal count of L1 checkpoints per L2 segment balances the added L1
/// cost against the re-execution saved on frequent failures:
///     N1* ~ sqrt( (C2 * lambda1) / (C1 * lambda2) )
struct TwoLevelPlan
{
    double tau1; ///< interval between level-1 checkpoints
    int    n1;   ///< level-1 checkpoints per level-2 segment
};

inline TwoLevelPlan twoLevelOptimal(double c1, double c2, double lambda1, double lambda2)
{
    if (c1 <= 0 || c2 <= 0 || lambda1 <= 0 || lambda2 <= 0)
    {
        throw std::invalid_argument("twoLevelOptimal: positive inputs required");
    }
    double n1 = std::sqrt(c2 * lambda1 / (c1 * lambda2));
    int n1i   = std::max(1, int(std::lround(n1)));
    // L1 interval from Young with the L1 failure rate
    double tau1 = youngInterval(c1, 1.0 / lambda1);
    return {tau1, n1i};
}

/// Discrete-event simulation of checkpoint/restart under exponential
/// failures: runs \p workSeconds of useful work, checkpointing every
/// \p tau; a failure loses the work since the last checkpoint and pays
/// \p restartCost. Returns the total wall time (validates the analytic
/// waste model).
inline double simulateCheckpointing(double workSeconds, double tau, double checkpointCost,
                                    double restartCost, double mtbf, std::uint64_t seed,
                                    std::size_t* failures = nullptr)
{
    Xoshiro256pp rng(seed);
    auto nextFailure = [&]() { return -mtbf * std::log(1.0 - rng.uniform()); };

    double wall = 0;
    double done = 0;             // completed (checkpointed) work
    double sinceCkpt = 0;        // work since last checkpoint
    double untilFailure = nextFailure();
    std::size_t nFail = 0;

    while (done < workSeconds)
    {
        double segment = std::min(tau, workSeconds - done - sinceCkpt + sinceCkpt);
        double todo    = std::min(tau - sinceCkpt, workSeconds - done - sinceCkpt);
        (void)segment;
        double step = todo;
        if (untilFailure <= step)
        {
            // failure mid-segment: lose sinceCkpt + the partial work
            wall += untilFailure + restartCost;
            sinceCkpt = 0;
            untilFailure = nextFailure();
            ++nFail;
            continue;
        }
        // complete the segment
        wall += step;
        untilFailure -= step;
        sinceCkpt += step;
        if (sinceCkpt >= tau - 1e-12 && done + sinceCkpt < workSeconds)
        {
            // take a checkpoint (failure during checkpoint loses it)
            if (untilFailure <= checkpointCost)
            {
                wall += untilFailure + restartCost;
                untilFailure = nextFailure();
                sinceCkpt = 0;
                ++nFail;
                continue;
            }
            wall += checkpointCost;
            untilFailure -= checkpointCost;
            done += sinceCkpt;
            sinceCkpt = 0;
        }
        else if (done + sinceCkpt >= workSeconds)
        {
            done += sinceCkpt;
            sinceCkpt = 0;
        }
    }
    if (failures) *failures = nFail;
    return wall;
}

} // namespace sphexa

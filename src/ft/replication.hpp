#pragma once

/// \file replication.hpp
/// Selective replication — one of the fault-tolerance mechanisms Sec. 5.2
/// names for the mini-app ("selective replication, algorithm-based
/// fault-tolerance (ABFT) techniques, and optimal checkpointing").
///
/// A selected computation runs twice (optionally with a fault hook between
/// executions, for testing); mismatching results flag a transient compute
/// error. The comparison is user-supplied so callers can use bitwise
/// equality for deterministic kernels or a tolerance for reductions.

#include <functional>

namespace sphexa {

struct ReplicationStats
{
    std::size_t executions  = 0;
    std::size_t mismatches  = 0;
};

/// Run \p compute twice and compare with \p equal. Returns true when the
/// two executions agree (no transient error detected). The result of the
/// first execution is the one kept by the caller's compute closure.
template<class Result>
bool replicatedCompute(const std::function<Result()>& compute,
                       const std::function<bool(const Result&, const Result&)>& equal,
                       ReplicationStats* stats = nullptr,
                       const std::function<void()>& betweenRuns = {})
{
    Result a = compute();
    if (betweenRuns) betweenRuns();
    Result b = compute();
    bool ok = equal(a, b);
    if (stats)
    {
        stats->executions += 2;
        if (!ok) ++stats->mismatches;
    }
    return ok;
}

} // namespace sphexa

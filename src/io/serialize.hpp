#pragma once

/// \file serialize.hpp
/// Binary (de)serialization of the particle state — shared by the
/// checkpoint/restart substrate and the file I/O layer.
///
/// Layout: header {magic, version, count, fieldCount} followed by the
/// canonical real fields in ParticleSet::realFieldNames() order, then ids,
/// neighbor counts, and time-step bins. A CRC-64 of the payload supports
/// integrity checks on restore.

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "sph/particles.hpp"

namespace sphexa {

/// CRC-64 (ECMA-182 polynomial), table-driven.
class Crc64
{
public:
    static std::uint64_t compute(const std::byte* data, std::size_t n,
                                 std::uint64_t seed = 0)
    {
        static const auto table = makeTable();
        std::uint64_t crc = ~seed;
        for (std::size_t i = 0; i < n; ++i)
        {
            crc = table[(crc ^ std::uint64_t(data[i])) & 0xff] ^ (crc >> 8);
        }
        return ~crc;
    }

    static std::uint64_t compute(const std::vector<std::byte>& buf)
    {
        return compute(buf.data(), buf.size());
    }

private:
    static std::array<std::uint64_t, 256> makeTable()
    {
        std::array<std::uint64_t, 256> t{};
        const std::uint64_t poly = 0xC96C5795D7870F42ULL; // reflected ECMA-182
        for (std::uint64_t i = 0; i < 256; ++i)
        {
            std::uint64_t crc = i;
            for (int b = 0; b < 8; ++b)
            {
                crc = (crc & 1) ? (crc >> 1) ^ poly : crc >> 1;
            }
            t[std::size_t(i)] = crc;
        }
        return t;
    }
};

namespace detail {

template<class T>
void appendRaw(std::vector<std::byte>& buf, const T* data, std::size_t n)
{
    std::size_t off = buf.size();
    buf.resize(off + n * sizeof(T));
    std::memcpy(buf.data() + off, data, n * sizeof(T));
}

template<class T>
void readRaw(const std::vector<std::byte>& buf, std::size_t& cursor, T* data,
             std::size_t n)
{
    if (cursor + n * sizeof(T) > buf.size())
    {
        throw std::runtime_error("deserialize: truncated buffer");
    }
    std::memcpy(data, buf.data() + cursor, n * sizeof(T));
    cursor += n * sizeof(T);
}

} // namespace detail

// "SPHEXA" + format version; v2 added the per-particle signal velocity
// field (ParticleSet::vsig) to the canonical real-field list, so v1
// checkpoints fail loudly on the magic instead of misaligning field data.
inline constexpr std::uint64_t serializeMagic = 0x5350484558410002ULL;

/// Serialize the particle set (plus simulation time and step) to bytes.
template<class T>
std::vector<std::byte> serialize(const ParticleSet<T>& ps, T time = T(0),
                                 std::uint64_t step = 0)
{
    std::vector<std::byte> buf;
    auto fields = ps.realFields();
    std::uint64_t header[5] = {serializeMagic, sizeof(T), ps.size(), fields.size(), step};
    detail::appendRaw(buf, header, 5);
    detail::appendRaw(buf, &time, 1);
    for (auto* f : fields)
    {
        detail::appendRaw(buf, f->data(), f->size());
    }
    detail::appendRaw(buf, ps.id.data(), ps.id.size());
    detail::appendRaw(buf, ps.nc.data(), ps.nc.size());
    detail::appendRaw(buf, ps.bin.data(), ps.bin.size());
    return buf;
}

/// Particle state plus the simulation clock recovered by deserialize().
template<class T>
struct DeserializeResult
{
    ParticleSet<T> particles;
    T time = T(0);
    std::uint64_t step = 0;
};

/// Inverse of serialize(); throws on malformed input.
template<class T>
DeserializeResult<T> deserialize(const std::vector<std::byte>& buf)
{
    std::size_t cursor = 0;
    std::uint64_t header[5];
    detail::readRaw(buf, cursor, header, 5);
    if (header[0] != serializeMagic) throw std::runtime_error("deserialize: bad magic");
    if (header[1] != sizeof(T)) throw std::runtime_error("deserialize: precision mismatch");

    DeserializeResult<T> out;
    out.step = header[4];
    detail::readRaw(buf, cursor, &out.time, 1);

    std::size_t n = header[2];
    out.particles.resize(n);
    auto fields = out.particles.realFields();
    if (fields.size() != header[3])
    {
        throw std::runtime_error("deserialize: field count mismatch");
    }
    for (auto* f : fields)
    {
        detail::readRaw(buf, cursor, f->data(), n);
    }
    detail::readRaw(buf, cursor, out.particles.id.data(), n);
    detail::readRaw(buf, cursor, out.particles.nc.data(), n);
    detail::readRaw(buf, cursor, out.particles.bin.data(), n);
    return out;
}

} // namespace sphexa

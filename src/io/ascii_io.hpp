#pragma once

/// \file ascii_io.hpp
/// Human-readable output: CSV particle dumps (selected fields) and the
/// time-series writer the examples use for conservation logs and radial
/// profiles.

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sph/particles.hpp"

namespace sphexa {

/// Write selected fields of a particle set as CSV (id column always first).
template<class T>
void writeCsv(std::ostream& os, const ParticleSet<T>& ps,
              const std::vector<std::string>& fields, int precision = 10)
{
    os << "id";
    for (const auto& f : fields)
        os << ',' << f;
    os << '\n';
    os << std::setprecision(precision);
    auto& mut = const_cast<ParticleSet<T>&>(ps);
    std::vector<const std::vector<T>*> cols;
    for (const auto& f : fields)
        cols.push_back(&mut.field(f));
    for (std::size_t i = 0; i < ps.size(); ++i)
    {
        os << ps.id[i];
        for (auto* c : cols)
            os << ',' << (*c)[i];
        os << '\n';
    }
}

/// writeCsv() to a file; throws std::runtime_error if the file can't open.
template<class T>
void writeCsvFile(const std::string& path, const ParticleSet<T>& ps,
                  const std::vector<std::string>& fields)
{
    std::ofstream f(path);
    if (!f) throw std::runtime_error("writeCsvFile: cannot open " + path);
    writeCsv(f, ps, fields);
}

/// Incremental column-oriented series writer (conservation logs, scaling
/// tables): one header, then one row per record.
class SeriesWriter
{
public:
    explicit SeriesWriter(std::vector<std::string> columns, int precision = 8)
        : columns_(std::move(columns)), precision_(precision)
    {
    }

    const std::vector<std::string>& columns() const { return columns_; }

    void addRow(const std::vector<double>& values)
    {
        if (values.size() != columns_.size())
        {
            throw std::invalid_argument("SeriesWriter: column count mismatch");
        }
        rows_.push_back(values);
    }

    std::size_t rowCount() const { return rows_.size(); }

    void write(std::ostream& os, char sep = ',') const
    {
        for (std::size_t c = 0; c < columns_.size(); ++c)
        {
            os << (c ? std::string(1, sep) : "") << columns_[c];
        }
        os << '\n';
        os << std::setprecision(precision_);
        for (const auto& row : rows_)
        {
            for (std::size_t c = 0; c < row.size(); ++c)
            {
                os << (c ? std::string(1, sep) : "") << row[c];
            }
            os << '\n';
        }
    }

    std::string str() const
    {
        std::ostringstream os;
        write(os);
        return os.str();
    }

    void writeFile(const std::string& path) const
    {
        std::ofstream f(path);
        if (!f) throw std::runtime_error("SeriesWriter: cannot open " + path);
        write(f);
    }

private:
    std::vector<std::string> columns_;
    int precision_;
    std::vector<std::vector<double>> rows_;
};

} // namespace sphexa

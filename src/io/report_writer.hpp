#pragma once

/// \file report_writer.hpp
/// Per-step report printing, deduplicated out of the examples: a generic
/// aligned-console / CSV numeric table (ReportTable) and a ready-made
/// per-step row layout for StepReport + Conservation (StepReportWriter).
/// For buffered CSV series written to files, see SeriesWriter
/// (io/ascii_io.hpp); this header covers streaming console output.

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/step_context.hpp"
#include "sph/conservation.hpp"

namespace sphexa {

/// A numeric table streamed row by row, as an aligned console table or CSV.
/// Each column carries a header and a printf format for its values.
class ReportTable
{
public:
    enum class Style
    {
        Aligned, ///< fixed-width columns (console)
        Csv,     ///< comma-separated (machine-readable)
    };

    struct Column
    {
        std::string header;
        int width;          ///< Aligned style: min field width
        std::string format; ///< printf spec for one double, e.g. "%12.4e"
    };

    explicit ReportTable(std::vector<Column> columns, Style style = Style::Aligned,
                         std::FILE* out = stdout)
        : columns_(std::move(columns)), style_(style), out_(out)
    {
    }

    void printHeader() const
    {
        for (std::size_t c = 0; c < columns_.size(); ++c)
        {
            if (style_ == Style::Csv)
            {
                std::fprintf(out_, "%s%s", c ? "," : "", columns_[c].header.c_str());
            }
            else
            {
                std::fprintf(out_, "%s%*s", c ? " " : "", columns_[c].width,
                             columns_[c].header.c_str());
            }
        }
        std::fprintf(out_, "\n");
    }

    void printRow(const std::vector<double>& values) const
    {
        if (values.size() != columns_.size())
        {
            throw std::invalid_argument("ReportTable: column count mismatch");
        }
        for (std::size_t c = 0; c < columns_.size(); ++c)
        {
            if (c) std::fprintf(out_, style_ == Style::Csv ? "," : " ");
            std::fprintf(out_, columns_[c].format.c_str(), values[c]);
        }
        std::fprintf(out_, "\n");
    }

private:
    std::vector<Column> columns_;
    Style style_;
    std::FILE* out_;
};

/// The canonical per-step diagnostics row used by the examples: step, dt,
/// simulated time, and (optionally) the conservation snapshot.
template<class T>
class StepReportWriter
{
public:
    explicit StepReportWriter(bool withConservation = true,
                              ReportTable::Style style = ReportTable::Style::Aligned,
                              std::FILE* out = stdout)
        : withConservation_(withConservation), table_(makeColumns(withConservation), style, out)
    {
    }

    void printHeader() const { table_.printHeader(); }

    void printRow(const StepReport<T>& rep, const Conservation<T>* c = nullptr) const
    {
        std::vector<double> row{double(rep.step), double(rep.dt), double(rep.time)};
        if (withConservation_)
        {
            if (!c)
                throw std::invalid_argument("StepReportWriter: conservation row missing");
            row.insert(row.end(),
                       {double(c->kineticEnergy), double(c->internalEnergy),
                        double(c->totalEnergy()), double(c->angularMomentum.z)});
        }
        table_.printRow(row);
    }

private:
    static std::vector<ReportTable::Column> makeColumns(bool withConservation)
    {
        std::vector<ReportTable::Column> cols{{"step", 5, "%5.0f"},
                                              {"dt", 12, "%12.4e"},
                                              {"t", 12, "%12.6f"}};
        if (withConservation)
        {
            cols.push_back({"Ekin", 12, "%12.6f"});
            cols.push_back({"Eint", 12, "%12.6f"});
            cols.push_back({"Etot", 12, "%12.6f"});
            cols.push_back({"Lz", 12, "%12.6f"});
        }
        return cols;
    }

    bool withConservation_;
    ReportTable table_;
};

} // namespace sphexa

#pragma once

/// \file pop_metrics.hpp
/// POP (Performance Optimisation and Productivity CoE) efficiency metrics —
/// the methodology the paper used with Extrae to diagnose the parent codes
/// (Sec. 5.2): "Load Balance is computed as the ratio between average useful
/// computation time (across all processes) and maximum useful computation
/// time (also across all processes)."
///
/// Standard POP hierarchy on one run:
///   Load Balance            LB   = avg(useful) / max(useful)
///   Communication Efficiency CE  = max(useful) / runtime
///   Parallel Efficiency      PE  = LB * CE = avg(useful) / runtime
/// and across core counts (strong scaling, reference run 0):
///   Computation Scalability  CS(p) = totalUseful(ref) / totalUseful(p)
///   Global Efficiency        GE(p) = PE(p) * CS(p)

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "perf/tracer.hpp"

namespace sphexa {

struct PopMetrics
{
    double loadBalance             = 1.0;
    double communicationEfficiency = 1.0;
    double parallelEfficiency      = 1.0;
    double computationScalability  = 1.0; ///< 1.0 when no reference given
    double globalEfficiency        = 1.0;

    double runtime     = 0.0;
    double totalUseful = 0.0;
};

/// Metrics from per-lane useful times and the run's wall time.
inline PopMetrics computePopMetrics(std::span<const double> usefulSeconds, double runtime)
{
    if (usefulSeconds.empty() || runtime <= 0)
    {
        throw std::invalid_argument("computePopMetrics: empty input");
    }
    double sum = 0, mx = 0;
    for (double u : usefulSeconds)
    {
        sum += u;
        mx = u > mx ? u : mx;
    }
    PopMetrics m;
    m.runtime     = runtime;
    m.totalUseful = sum;
    double avg    = sum / double(usefulSeconds.size());
    m.loadBalance             = mx > 0 ? avg / mx : 1.0;
    m.communicationEfficiency = mx / runtime;
    m.parallelEfficiency      = avg / runtime;
    m.globalEfficiency        = m.parallelEfficiency;
    return m;
}

/// Metrics from one phase's measured ParallelFor executions (the in-situ
/// shared-memory lanes): per-worker busy time is the useful time, the
/// summed loop wall time is the runtime. This is how a StepReport's
/// phaseLoad entries become POP numbers — the real-solver counterpart of
/// the synthetic executeLoop() ablation.
inline PopMetrics computePopMetrics(const PhaseLoadStats& stats)
{
    if (stats.workerBusySeconds.empty() || stats.wallSeconds <= 0)
    {
        throw std::invalid_argument("computePopMetrics: phase has no measurements");
    }
    return computePopMetrics(stats.workerBusySeconds, stats.wallSeconds);
}

/// Metrics straight from a trace (useful time per rank/thread lane).
inline PopMetrics computePopMetrics(const Tracer& tracer)
{
    std::vector<double> useful;
    useful.reserve(std::size_t(tracer.ranks()) * tracer.threadsPerRank());
    for (int r = 0; r < tracer.ranks(); ++r)
    {
        for (int t = 0; t < tracer.threadsPerRank(); ++t)
        {
            useful.push_back(tracer.usefulSeconds(r, t));
        }
    }
    return computePopMetrics(useful, tracer.endTime());
}

/// Apply the strong-scaling terms against a reference run (typically the
/// smallest core count): CS = totalUseful(ref)/totalUseful(this);
/// GE = PE * CS.
inline PopMetrics withScalability(PopMetrics m, const PopMetrics& reference)
{
    if (m.totalUseful > 0)
    {
        m.computationScalability = reference.totalUseful / m.totalUseful;
    }
    m.globalEfficiency = m.parallelEfficiency * m.computationScalability;
    return m;
}

} // namespace sphexa

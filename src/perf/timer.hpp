#pragma once

/// \file timer.hpp
/// Wall-clock timing utilities used by the simulation driver (per-phase
/// timings), the tracer, and the benches.

#include <chrono>

namespace sphexa {

/// Monotonic wall-clock timer, seconds as double.
class Timer
{
public:
    Timer() { reset(); }

    /// Restart the reference point; elapsed() measures from here on.
    void reset() { start_ = Clock::now(); }

    /// Seconds since construction or last reset().
    double elapsed() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /// Seconds since last reset, then reset.
    double lap()
    {
        double e = elapsed();
        reset();
        return e;
    }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace sphexa

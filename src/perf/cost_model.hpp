#pragma once

/// \file cost_model.hpp
/// Calibrated per-unit execution costs of the SPH pipeline, measured by
/// running the real kernels of this library on the host machine.
///
/// The cluster simulator (cluster_sim.hpp) multiplies real per-rank *work
/// counts* (neighbor interactions, tree particles, gravity interactions) by
/// these per-unit costs to predict per-rank compute time on a target
/// machine. Phase *proportions* therefore come from measured kernel costs;
/// only the absolute scale is pinned to the paper's measured per-step times
/// (one anchor per figure, documented in EXPERIMENTS.md).

#include <cstddef>

#include "core/simulation.hpp"
#include "domain/box.hpp"
#include "ic/lattice.hpp"
#include "perf/timer.hpp"
#include "sph/density.hpp"
#include "sph/divcurl.hpp"
#include "sph/iad.hpp"
#include "sph/momentum_energy.hpp"
#include "sph/smoothing_length.hpp"
#include "tree/gravity.hpp"
#include "tree/neighbors.hpp"
#include "tree/octree.hpp"

namespace sphexa {

/// Per-unit costs (seconds) of the pipeline pieces on the calibration host,
/// single-threaded.
struct CostModel
{
    double secondsPerSphInteraction    = 2.0e-8; ///< density+IAD+divcurl+momentum, per pair visit
    double secondsPerNeighborSearch    = 4.0e-9; ///< tree walk cost per pair found
    double secondsPerTreeParticle      = 2.0e-7; ///< tree build per particle
    double secondsPerGravityInteraction = 5.0e-8; ///< P2P or M2P, averaged
    double secondsPerParticleOverhead  = 5.0e-8; ///< EOS/update, per particle

    /// Measure the real kernels on this host with a small uniform lattice.
    /// Deterministic workload; single-threaded timings (OpenMP loops still
    /// run, so measurements are taken per interaction across all threads'
    /// useful work — we divide by wall time * threads is avoided by using
    /// total counts and wall time on the assumption of saturation; for
    /// calibration stability a modest N is used).
    static CostModel calibrate(std::size_t side = 20, unsigned targetNeighbors = 60)
    {
        CostModel cm;

        ParticleSet<double> ps;
        Box<double> box{{0, 0, 0}, {1, 1, 1}, true, true, true};
        cubicLattice(ps, side, side, side, box);
        std::size_t n = ps.size();
        for (std::size_t i = 0; i < n; ++i)
        {
            ps.m[i] = 1.0 / double(n);
            ps.h[i] = initialSmoothingLength(n, box, targetNeighbors);
            ps.u[i] = 1.0;
        }

        Kernel<double> kernel(KernelType::Sinc);

        // tree build
        Timer t;
        Octree<double> tree;
        tree.build(ps.x, ps.y, ps.z, box);
        cm.secondsPerTreeParticle = t.lap() / double(n);

        // neighbor search
        NeighborList<double> nl(n, 256);
        findNeighborsGlobal(tree, ps.x, ps.y, ps.z, ps.h, nl);
        std::size_t pairs = nl.totalNeighbors();
        cm.secondsPerNeighborSearch = t.lap() / double(pairs ? pairs : 1);

        // SPH pipeline (density + IAD + divcurl + momentum)
        computeVolumeElementWeights(ps, VolumeElements::Standard);
        t.reset();
        computeDensity(ps, nl, kernel, box);
        for (std::size_t i = 0; i < n; ++i)
        {
            ps.p[i] = 0.66 * ps.rho[i] * ps.u[i];
            ps.c[i] = 1.0;
        }
        computeIadCoefficients(ps, nl, kernel, box);
        computeDivCurl(ps, nl, kernel, box, GradientMode::IAD);
        computeMomentumEnergy(ps, nl, kernel, box, GradientMode::IAD);
        cm.secondsPerSphInteraction = t.lap() / double(4 * (pairs ? pairs : 1));

        // gravity (quadrupole walk)
        GravityParams<double> gp;
        gp.theta = 0.5;
        GravitySolver<double> solver;
        typename Octree<double>::BuildParams bp;
        bp.leafSize = 16;
        Octree<double> gtree;
        gtree.build(ps.x, ps.y, ps.z, box, bp);
        solver.prepare(gtree, ps, gp);
        t.reset();
        GravityStats gs;
        solver.accumulate(ps, &gs);
        std::size_t ginter = gs.p2pInteractions + gs.m2pInteractions;
        cm.secondsPerGravityInteraction = t.lap() / double(ginter ? ginter : 1);

        cm.secondsPerParticleOverhead = cm.secondsPerSphInteraction * 2.0;
        return cm;
    }
};

} // namespace sphexa

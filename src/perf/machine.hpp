#pragma once

/// \file machine.hpp
/// Models of the two HPC systems of Sec. 5.2, used by the cluster simulator
/// to convert measured per-rank work and counted communication into wall
/// time:
///
///  - Piz Daint (hybrid partition): Cray XC50, one 12-core Intel E5-2690 v3
///    (Haswell) per node, Aries dragonfly interconnect.
///  - MareNostrum 4: Lenovo, two 24-core Intel Xeon Platinum 8160 (Skylake)
///    per node (48 cores/node), 100 Gb Intel Omni-Path full fat tree.
///
/// Per-core speed is expressed relative to the machine the calibration ran
/// on; network parameters are public latency/bandwidth figures for the
/// respective fabrics. The figures' x-axes ("Piz Daint=12c/cn,
/// MareNostrum=48c/cn") follow from coresPerNode.

#include <string>

namespace sphexa {

/// Hockney alpha-beta network parameters.
struct NetworkParams
{
    double latencySeconds;      ///< alpha: per-message latency
    double bandwidthBytesPerSec;///< beta: sustained point-to-point bandwidth
    std::string topology;
};

struct Machine
{
    std::string name;
    int coresPerNode;
    /// Relative per-core throughput (calibration machine = 1.0).
    double coreSpeed;
    /// Intra-node parallel efficiency model: fraction of ideal speedup
    /// retained per doubling of threads (memory-bandwidth contention).
    double threadEfficiencyPerDoubling;
    NetworkParams network;

    /// Effective parallel speedup of t threads on one node.
    double threadSpeedup(int t) const
    {
        if (t <= 1) return 1.0;
        double speedup = 1.0;
        double eff     = 1.0;
        int cur = 1;
        while (cur < t)
        {
            int next = std::min(2 * cur, t);
            eff *= threadEfficiencyPerDoubling;
            speedup = double(next) * eff;
            cur = next;
        }
        return speedup;
    }
};

/// Piz Daint hybrid partition (XC50). Aries: ~1.3 us latency, ~10 GB/s
/// effective per-link bandwidth, dragonfly.
inline Machine pizDaint()
{
    return Machine{
        "Piz Daint",
        12,
        1.0,
        0.97,
        NetworkParams{1.3e-6, 10.0e9, "Dragonfly (Aries)"},
    };
}

/// MareNostrum 4. Omni-Path 100 Gb: ~1.1 us latency, ~12.3 GB/s, fat tree.
/// Skylake 8160 cores clock slightly lower than the XC50 Haswell at SPH's
/// mixed compute/memory profile but the node is 4x wider.
inline Machine mareNostrum4()
{
    return Machine{
        "MareNostrum",
        48,
        0.95,
        0.96,
        NetworkParams{1.1e-6, 12.3e9, "Full-Fat Tree (Omni-Path)"},
    };
}

} // namespace sphexa

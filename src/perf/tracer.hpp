#pragma once

/// \file tracer.hpp
/// Extrae-like execution tracer (substitution for Extrae/Paraver, see
/// docs/DESIGN.md): records per-rank, per-thread activity intervals labeled with
/// the execution states of the paper's Fig. 4 —
///
///   Computing (blue) · MPI collective (orange) · Thread synchronization
///   (red) · Thread fork/join (yellow) · Idle (black)
///
/// and the workflow phase letters A..J. The trace renders as an ASCII
/// timeline (one row per rank/thread) and exports CSV; pop_metrics.hpp
/// computes the POP efficiencies from the same intervals.
///
/// The phase durations come from the pipeline runner's PhaseEventLog
/// (core/step_context.hpp): attach a log to a driver, run a step, and pass
/// the log straight to expandTrace — no hand-recorded phase timings.

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/step_context.hpp"

namespace sphexa {

enum class ActivityState
{
    Computing,
    MpiCollective,
    MpiP2P,
    ThreadSync,
    ForkJoin,
    Idle,
};

constexpr std::string_view activityName(ActivityState s)
{
    switch (s)
    {
        case ActivityState::Computing: return "Computing";
        case ActivityState::MpiCollective: return "MPI collective";
        case ActivityState::MpiP2P: return "MPI p2p";
        case ActivityState::ThreadSync: return "Thread sync";
        case ActivityState::ForkJoin: return "Fork/join";
        case ActivityState::Idle: return "Idle";
    }
    return "?";
}

/// Single-character legend used by the ASCII rendering (matching Fig. 4's
/// color semantics: '#'=computing, 'M'=MPI collective, 'm'=p2p, 's'=sync,
/// 'f'=fork/join, '.'=idle).
constexpr char activityGlyph(ActivityState s)
{
    switch (s)
    {
        case ActivityState::Computing: return '#';
        case ActivityState::MpiCollective: return 'M';
        case ActivityState::MpiP2P: return 'm';
        case ActivityState::ThreadSync: return 's';
        case ActivityState::ForkJoin: return 'f';
        case ActivityState::Idle: return '.';
    }
    return '?';
}

struct TraceInterval
{
    int rank;
    int thread;
    ActivityState state;
    Phase phase;
    double t0;
    double t1;

    double duration() const { return t1 - t0; }
};

/// Append-only trace of one (or more) time-steps.
class Tracer
{
public:
    Tracer(int ranks, int threadsPerRank) : ranks_(ranks), threads_(threadsPerRank) {}

    int ranks() const { return ranks_; }
    int threadsPerRank() const { return threads_; }

    void record(int rank, int thread, ActivityState state, Phase phase, double t0,
                double t1)
    {
        if (t1 > t0) intervals_.push_back({rank, thread, state, phase, t0, t1});
    }

    const std::vector<TraceInterval>& intervals() const { return intervals_; }

    double endTime() const
    {
        double e = 0;
        for (const auto& iv : intervals_)
            e = std::max(e, iv.t1);
        return e;
    }

    /// Useful (Computing) seconds of one rank/thread lane.
    double usefulSeconds(int rank, int thread) const
    {
        double s = 0;
        for (const auto& iv : intervals_)
        {
            if (iv.rank == rank && iv.thread == thread &&
                iv.state == ActivityState::Computing)
            {
                s += iv.duration();
            }
        }
        return s;
    }

    /// Seconds spent in MPI states on a lane.
    double commSeconds(int rank, int thread) const
    {
        double s = 0;
        for (const auto& iv : intervals_)
        {
            if (iv.rank == rank && iv.thread == thread &&
                (iv.state == ActivityState::MpiCollective ||
                 iv.state == ActivityState::MpiP2P))
            {
                s += iv.duration();
            }
        }
        return s;
    }

    /// Aggregate seconds per (phase, state), the data behind Fig. 4's
    /// colored blocks.
    std::map<std::pair<Phase, ActivityState>, double> phaseStateBreakdown() const
    {
        std::map<std::pair<Phase, ActivityState>, double> out;
        for (const auto& iv : intervals_)
        {
            out[{iv.phase, iv.state}] += iv.duration();
        }
        return out;
    }

    /// Render the timeline as ASCII, one row per (rank, thread) lane and
    /// \p width characters across the full duration. Lanes are labeled
    /// "rRR.tTT"; phase boundaries of lane (0,0) are marked in a header row
    /// with the phase letters.
    std::string renderAscii(int width = 120, int maxLanes = 24) const
    {
        double tEnd = endTime();
        if (tEnd <= 0 || intervals_.empty()) return "(empty trace)\n";

        std::string out;
        // header: phase letters positioned at the start of each phase on
        // lane (0, 0)
        std::string header(width, ' ');
        for (const auto& iv : intervals_)
        {
            if (iv.rank == 0 && iv.thread == 0 && iv.state == ActivityState::Computing)
            {
                int pos = int(iv.t0 / tEnd * width);
                if (pos >= 0 && pos < width && header[pos] == ' ')
                {
                    header[pos] = "ABCDEFGHIJ"[int(iv.phase)];
                }
            }
        }
        out += "        " + header + "\n";

        int lanes = 0;
        for (int r = 0; r < ranks_ && lanes < maxLanes; ++r)
        {
            for (int t = 0; t < threads_ && lanes < maxLanes; ++t, ++lanes)
            {
                std::string row(width, '.');
                for (const auto& iv : intervals_)
                {
                    if (iv.rank != r || iv.thread != t) continue;
                    int a = std::clamp(int(iv.t0 / tEnd * width), 0, width - 1);
                    int b = std::clamp(int(iv.t1 / tEnd * width), a, width - 1);
                    for (int c = a; c <= b; ++c)
                        row[c] = activityGlyph(iv.state);
                }
                char label[32];
                std::snprintf(label, sizeof(label), "r%02d.t%02d ", r, t);
                out += label + row + "\n";
            }
        }
        if (lanes == maxLanes && ranks_ * threads_ > maxLanes)
        {
            out += "        ... (" + std::to_string(ranks_ * threads_ - maxLanes) +
                   " more lanes)\n";
        }
        return out;
    }

    /// CSV export: rank,thread,state,phase,t0,t1.
    void writeCsv(std::ostream& os) const
    {
        os << "rank,thread,state,phase,t0,t1\n";
        for (const auto& iv : intervals_)
        {
            os << iv.rank << ',' << iv.thread << ',' << activityName(iv.state) << ','
               << phaseName(iv.phase) << ',' << iv.t0 << ',' << iv.t1 << '\n';
        }
    }

private:
    int ranks_;
    int threads_;
    std::vector<TraceInterval> intervals_;
};

/// Per-phase intra-node parallelization profile: the fraction of the phase
/// that runs serially on thread 0 (the rest is spread over all threads).
/// SPHYNX v1.3.1's serial tree build (Fig. 4 phase A with idle threads) is
/// expressed as serialFraction = 1 for phase A.
struct PhaseParallelism
{
    std::array<double, phaseCount> serialFraction{};
    /// deterministic per-thread imbalance amplitude of the parallel part
    /// (0.05 = +-5% spread)
    double threadImbalance = 0.05;
};

/// The parallelism profile of SPHYNX v1.3.1 as measured in the paper:
/// serial tree build, serial neighbor-bookkeeping tails (phases B/D/J had
/// idle regions), parallel SPH kernels.
inline PhaseParallelism sphynx131Parallelism()
{
    PhaseParallelism p;
    p.serialFraction[int(Phase::A_TreeBuild)]          = 1.0;
    p.serialFraction[int(Phase::B_NeighborSearch)]     = 0.25;
    p.serialFraction[int(Phase::C_SmoothingLength)]    = 0.10;
    p.serialFraction[int(Phase::D_NeighborSymmetrize)] = 0.60;
    p.serialFraction[int(Phase::E_Density)]            = 0.02;
    p.serialFraction[int(Phase::F_EosAndIad)]          = 0.02;
    p.serialFraction[int(Phase::G_DivCurl)]            = 0.02;
    p.serialFraction[int(Phase::H_MomentumEnergy)]     = 0.02;
    p.serialFraction[int(Phase::I_SelfGravity)]        = 0.05;
    p.serialFraction[int(Phase::J_TimestepUpdate)]     = 0.50;
    p.threadImbalance = 0.08;
    return p;
}

/// The improved (mini-app) profile: parallel tree build, no serial tails.
inline PhaseParallelism sphexaParallelism()
{
    PhaseParallelism p;
    for (auto& f : p.serialFraction)
        f = 0.02;
    p.threadImbalance = 0.03;
    return p;
}

/// Expand per-rank, per-phase durations (measured by the distributed
/// driver) into a per-thread Extrae-like timeline under a parallelism
/// profile. Each phase contributes, per thread: a fork/join sliver, the
/// parallel share (with deterministic imbalance), idle until the phase's
/// serial tail, which runs on thread 0 while other threads idle. A final
/// MPI-collective interval models the step-closing reduction.
template<class T>
Tracer expandTrace(const std::vector<std::array<double, phaseCount>>& rankPhaseSeconds,
                   const std::vector<double>& rankCommSeconds, int threadsPerRank,
                   const PhaseParallelism& par)
{
    int R = int(rankPhaseSeconds.size());
    Tracer tracer(R, threadsPerRank);

    // global phase schedule: all ranks advance phase-synchronously (the
    // BSP supersteps of the distributed driver); each phase ends when the
    // slowest rank finishes it.
    double tCursor = 0;
    std::vector<double> rankClock(R, 0.0);

    for (int ph = 0; ph < phaseCount; ++ph)
    {
        double phaseMax = 0;
        std::vector<double> rankDur(R);
        for (int r = 0; r < R; ++r)
        {
            rankDur[r] = rankPhaseSeconds[r][ph];
            phaseMax = std::max(phaseMax, rankDur[r]);
        }
        if (phaseMax <= 0) continue;

        for (int r = 0; r < R; ++r)
        {
            double serial = rankDur[r] * par.serialFraction[ph];
            double parallelPart = rankDur[r] - serial;
            for (int t = 0; t < threadsPerRank; ++t)
            {
                // deterministic thread imbalance: alternating +- fractions;
                // thread 0 is pinned at exactly the parallel share so its
                // serial tail never overlaps its parallel interval
                double spread =
                    t == 0 ? 1.0
                           : 1.0 - par.threadImbalance * double((t + 3) % 5) / 5.0;
                double busy = parallelPart * spread;
                busy = std::min(busy, rankDur[r]);
                double t0 = tCursor;
                if (busy > 0)
                {
                    double fj = std::min(1e-5 * busy + 1e-9, 0.05 * busy);
                    tracer.record(r, t, ActivityState::ForkJoin, Phase(ph), t0, t0 + fj);
                    tracer.record(r, t, ActivityState::Computing, Phase(ph), t0 + fj,
                                  t0 + busy);
                }
                if (t == 0 && serial > 0)
                {
                    // serial tail on thread 0
                    tracer.record(r, 0, ActivityState::Computing, Phase(ph),
                                  t0 + parallelPart, t0 + parallelPart + serial);
                }
                else
                {
                    // others idle through the serial tail
                    double idleStart = t0 + std::min(busy, parallelPart);
                    double idleEnd   = t0 + rankDur[r];
                    tracer.record(r, t, ActivityState::Idle, Phase(ph), idleStart,
                                  idleEnd);
                }
            }
            rankClock[r] = tCursor + rankDur[r];
        }
        // ranks that finish the phase early idle until the slowest one
        for (int r = 0; r < R; ++r)
        {
            if (rankClock[r] < tCursor + phaseMax)
            {
                for (int t = 0; t < threadsPerRank; ++t)
                {
                    tracer.record(r, t, ActivityState::Idle, Phase(ph), rankClock[r],
                                  tCursor + phaseMax);
                }
            }
        }
        tCursor += phaseMax;
    }

    // closing MPI collective (global dt reduction), per rank
    double commMax = 0;
    for (int r = 0; r < R; ++r)
        commMax = std::max(commMax, rankCommSeconds[r]);
    if (commMax > 0)
    {
        for (int r = 0; r < R; ++r)
        {
            tracer.record(r, 0, ActivityState::MpiCollective, Phase::J_TimestepUpdate,
                          tCursor, tCursor + std::max(rankCommSeconds[r], commMax * 0.2));
            for (int t = 1; t < int(threadsPerRank); ++t)
            {
                tracer.record(r, t, ActivityState::Idle, Phase::J_TimestepUpdate, tCursor,
                              tCursor + commMax);
            }
        }
    }
    return tracer;
}

/// Convenience overload: expand the runner-emitted phase events of an
/// attached PhaseEventLog directly (clear() the log between steps for a
/// single-step timeline).
template<class T>
Tracer expandTrace(const PhaseEventLog& log, int nRanks,
                   const std::vector<double>& rankCommSeconds, int threadsPerRank,
                   const PhaseParallelism& par)
{
    return expandTrace<T>(log.phaseSecondsByRank(nRanks), rankCommSeconds,
                          threadsPerRank, par);
}

} // namespace sphexa

#pragma once

/// \file cluster_sim.hpp
/// Strong-scaling predictor: the substitution for Piz Daint / MareNostrum 4
/// (see docs/DESIGN.md). Reproduces Figures 1-3 of the paper.
///
/// The pipeline has two halves:
///
///  1. probeWorkload() — runs the REAL algorithms at a reduced particle
///     count: the chosen domain decomposition (ORB or SFC), the halo
///     exchange (with counted traffic), per-rank tree builds, per-rank
///     neighbor searches with the h iteration, and the per-rank gravity
///     walk. The outputs are per-rank WORK COUNTS (interactions, tree
///     sizes, halo bytes), so decomposition imbalance and the growing halo
///     fraction at low particles-per-rank — the physics behind the paper's
///     scaling stall — come from the actual code, not a formula.
///
///  2. ClusterSimulator::predict() — converts counts into per-rank times
///     with the calibrated CostModel, the machine's core speed / intra-node
///     threading model, and the Hockney network model, then takes the BSP
///     critical path: T_step = max_r compute_r + max_r comm_r.
///
/// Absolute times are finally pinned to the paper's measured value at one
/// anchor point per figure (normalizeToAnchor), preserving the predicted
/// *shape* across core counts.

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/config.hpp"
#include "domain/box.hpp"
#include "domain/halo.hpp"
#include "domain/orb.hpp"
#include "domain/sfc_partition.hpp"
#include "domain/slab.hpp"
#include "parallel/comm.hpp"
#include "perf/cost_model.hpp"
#include "perf/machine.hpp"
#include "perf/netmodel.hpp"
#include "sph/smoothing_length.hpp"
#include "tree/gravity.hpp"
#include "tree/neighbors.hpp"
#include "tree/octree.hpp"

namespace sphexa {

/// Per-rank work counts measured by one probe step at reduced scale.
struct WorkloadProbe
{
    int ranks = 1;
    std::size_t totalParticles = 0;
    std::vector<std::size_t> localParticles;
    std::vector<std::size_t> treeParticles;       ///< local + ghosts
    std::vector<std::size_t> sphInteractions;     ///< neighbor pairs of locals
    std::vector<std::size_t> gravityInteractions; ///< P2P + M2P of locals
    std::vector<std::size_t> haloBytesSent;
    std::vector<std::size_t> haloMessagesSent;

    /// max/mean work imbalance of the SPH interactions.
    double interactionImbalance() const
    {
        double mx = 0, sum = 0;
        for (auto w : sphInteractions)
        {
            mx = std::max(mx, double(w));
            sum += double(w);
        }
        return sum > 0 ? mx * double(ranks) / sum : 1.0;
    }
};

/// Execute one probe step over \p ranks simulated ranks.
template<class T>
WorkloadProbe probeWorkload(const ParticleSet<T>& global, const Box<T>& box,
                            const SimulationConfig<T>& cfg, int ranks)
{
    WorkloadProbe probe;
    probe.ranks = ranks;
    probe.totalParticles = global.size();
    probe.localParticles.assign(ranks, 0);
    probe.treeParticles.assign(ranks, 0);
    probe.sphInteractions.assign(ranks, 0);
    probe.gravityInteractions.assign(ranks, 0);
    probe.haloBytesSent.assign(ranks, 0);
    probe.haloMessagesSent.assign(ranks, 0);

    // real decomposition
    std::vector<T> weights(global.size(), T(1));
    std::vector<int> assignment;
    if (cfg.decomposition == DecompositionMethod::OrthogonalRecursiveBisection)
    {
        assignment = orbDecompose<T>(global.x, global.y, global.z, weights, ranks, box)
                         .assignment;
    }
    else if (cfg.decomposition == DecompositionMethod::Slab1D)
    {
        assignment =
            slabDecompose<T>(global.x, global.y, global.z, weights, ranks, box).assignment;
    }
    else
    {
        assignment =
            sfcPartition<T>(global.x, global.y, global.z, weights, ranks, box, cfg.sfcCurve)
                .assignment;
    }

    std::vector<ParticleSet<T>> locals(ranks);
    for (std::size_t i = 0; i < global.size(); ++i)
    {
        locals[assignment[i]].appendFrom(global, i);
    }
    for (int r = 0; r < ranks; ++r)
        probe.localParticles[r] = locals[r].size();

    // real halo exchange with counted traffic
    simmpi::Communicator comm(ranks);
    std::vector<HaloMap> maps(ranks);
    T hmax = T(0);
    for (T h : global.h)
        hmax = std::max(hmax, h);
    exchangeHalos(comm, locals, maps, box, T(2) * hmax * T(1.2));
    for (int r = 0; r < ranks; ++r)
    {
        probe.haloBytesSent[r]    = comm.traffic(r).bytesSent;
        probe.haloMessagesSent[r] = comm.traffic(r).messagesSent;
        probe.treeParticles[r]    = locals[r].size();
    }

    // per-rank tree build + neighbor search for locals (with h iteration)
    for (int r = 0; r < ranks; ++r)
    {
        auto& ps = locals[r];
        std::size_t nLoc = probe.localParticles[r];
        if (nLoc == 0) continue;

        typename Octree<T>::BuildParams bp;
        bp.leafSize = cfg.treeLeafSize;
        bp.curve    = cfg.sfcCurve;
        Octree<T> tree;
        tree.build(ps.x, ps.y, ps.z, box, bp);

        std::vector<std::size_t> localIdx(nLoc);
        std::iota(localIdx.begin(), localIdx.end(), std::size_t(0));
        NeighborList<T> nl(ps.size(), cfg.ngmax);
        findNeighborsIndividual(tree, ps.x, ps.y, ps.z, ps.h, localIdx, nl);
        for (unsigned it = 0; it < 5; ++it)
        {
            std::vector<std::size_t> redo;
            for (std::size_t i = 0; i < nLoc; ++i)
            {
                if (!neighborCountConverged(nl.count(i), cfg.targetNeighbors,
                                            cfg.neighborTolerance))
                {
                    ps.h[i] = updateH(ps.h[i], nl.count(i), cfg.targetNeighbors);
                    redo.push_back(i);
                }
            }
            if (redo.empty()) break;
            findNeighborsIndividual(tree, ps.x, ps.y, ps.z, ps.h, redo, nl);
        }
        std::size_t inter = 0;
        for (std::size_t i = 0; i < nLoc; ++i)
            inter += nl.count(i);
        probe.sphInteractions[r] = inter;
    }

    // gravity probe (replicated tree, per-rank targets)
    if (cfg.selfGravity)
    {
        ParticleSet<T> rep = global;
        typename Octree<T>::BuildParams bp;
        bp.leafSize = 16;
        Octree<T> tree;
        tree.build(rep.x, rep.y, rep.z, box, bp);
        GravitySolver<T> solver;
        solver.prepare(tree, rep, cfg.gravity);
        std::vector<std::vector<std::size_t>> targetsOf(ranks);
        for (std::size_t i = 0; i < global.size(); ++i)
        {
            targetsOf[assignment[i]].push_back(i);
        }
        for (int r = 0; r < ranks; ++r)
        {
            GravityStats gs;
            solver.accumulate(rep, &gs, targetsOf[r]);
            probe.gravityInteractions[r] = gs.p2pInteractions + gs.m2pInteractions;
        }
    }

    return probe;
}

/// Prediction target and code-specific factors.
struct ScalingConfig
{
    Machine machine = pizDaint();
    std::size_t targetParticles = 1000000; ///< paper: 10^6
    double costScale = 1.0;       ///< per-code factor (CodeProfile)
    double activityFactor = 1.0;  ///< individual time-stepping work fraction
    bool serialTreeBuild = false; ///< SPHYNX v1.3.1: phase A not threaded
    double collectivesPerStep = 4.0; ///< dt + conservation reductions
};

struct ScalingPoint
{
    int cores = 0;
    double seconds = 0;
    double computeSeconds = 0;
    double commSeconds = 0;
    double loadBalance = 1.0; ///< mean/max of per-rank compute
};

/// Convert a probe into a predicted time per time-step.
class ClusterSimulator
{
public:
    explicit ClusterSimulator(CostModel cm) : cm_(cm) {}

    const CostModel& costModel() const { return cm_; }

    /// Map a core count onto (ranks, threads per rank): one rank per node,
    /// partial nodes allowed below one full node.
    static std::pair<int, int> ranksAndThreads(int cores, const Machine& m)
    {
        int nodes = std::max(1, cores / m.coresPerNode);
        int threads = std::max(1, cores / nodes);
        return {nodes, threads};
    }

    ScalingPoint predict(const WorkloadProbe& probe, int cores,
                         const ScalingConfig& sc) const
    {
        auto [ranks, threads] = ranksAndThreads(cores, sc.machine);
        (void)ranks; // the probe was taken at this rank count

        double scale = double(sc.targetParticles) / double(probe.totalParticles);
        // gravity interaction counts grow ~ N log N
        double gravScale =
            scale * std::log2(double(sc.targetParticles)) /
            std::log2(std::max<double>(2.0, double(probe.totalParticles)));

        double speedup = sc.machine.threadSpeedup(threads);
        NetworkModel net(sc.machine.network);

        double maxCompute = 0, sumCompute = 0, maxComm = 0;
        for (int r = 0; r < probe.ranks; ++r)
        {
            double inter = double(probe.sphInteractions[r]) * scale;
            // 4 pipeline passes (density, IAD, div/curl, momentum) + the
            // tree-walk search itself (~2 walks with the h iteration)
            double tSph    = inter * 4.0 * cm_.secondsPerSphInteraction;
            double tSearch = inter * 2.0 * cm_.secondsPerNeighborSearch;
            double tOver = double(probe.localParticles[r]) * scale *
                           cm_.secondsPerParticleOverhead;
            double tGrav = double(probe.gravityInteractions[r]) * gravScale *
                           cm_.secondsPerGravityInteraction;
            double tTree =
                double(probe.treeParticles[r]) * scale * cm_.secondsPerTreeParticle;

            double parallel = (tSph + tSearch + tOver + tGrav) * sc.activityFactor;
            double compute  = parallel / speedup +
                             (sc.serialTreeBuild ? tTree : tTree / speedup);
            compute *= sc.costScale / sc.machine.coreSpeed;

            maxCompute = std::max(maxCompute, compute);
            sumCompute += compute;

            double comm =
                net.p2pBatch(probe.haloMessagesSent[r],
                             std::size_t(double(probe.haloBytesSent[r]) * scale)) +
                sc.collectivesPerStep * net.allreduce(probe.ranks, sizeof(double));
            maxComm = std::max(maxComm, comm);
        }

        ScalingPoint pt;
        pt.cores          = cores;
        pt.computeSeconds = maxCompute;
        pt.commSeconds    = maxComm;
        pt.seconds        = maxCompute + maxComm;
        pt.loadBalance =
            maxCompute > 0 ? sumCompute / (double(probe.ranks) * maxCompute) : 1.0;
        return pt;
    }

private:
    CostModel cm_;
};

/// Scale a predicted series so that the point at \p anchorCores equals the
/// paper's measured \p anchorSeconds (per-figure calibration; the shape is
/// untouched).
inline void normalizeToAnchor(std::vector<ScalingPoint>& points, int anchorCores,
                              double anchorSeconds)
{
    double raw = 0;
    for (const auto& p : points)
    {
        if (p.cores == anchorCores) raw = p.seconds;
    }
    if (raw <= 0) return;
    double f = anchorSeconds / raw;
    for (auto& p : points)
    {
        p.seconds *= f;
        p.computeSeconds *= f;
        p.commSeconds *= f;
    }
}

} // namespace sphexa

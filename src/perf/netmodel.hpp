#pragma once

/// \file netmodel.hpp
/// Hockney-style communication time model on top of the simmpi traffic
/// counters: converts (messages, bytes) into seconds for a given machine.
///
///   point-to-point:  t = alpha + bytes / beta
///   allreduce     :  t = 2 log2(P) alpha + 2 (bytes/beta) (Rabenseifner)
///   allgatherv    :  t = log2(P) alpha + (P-1)/P total_bytes / beta
///
/// The model deliberately ignores congestion and topology detail beyond the
/// per-machine (alpha, beta); Sec. 5.2 of the paper reports communication
/// efficiency "close to ideal" at these scales, so first-order costs
/// suffice to reproduce the strong-scaling shape.

#include <cmath>
#include <cstddef>

#include "perf/machine.hpp"

namespace sphexa {

/// Converts counted traffic into modeled seconds for one machine's
/// (alpha, beta); see perf/machine.hpp for the per-machine parameters.
class NetworkModel
{
public:
    explicit NetworkModel(const NetworkParams& params) : p_(params) {}

    /// Single message: t = alpha + bytes / beta.
    double pointToPoint(std::size_t bytes) const
    {
        return p_.latencySeconds + double(bytes) / p_.bandwidthBytesPerSec;
    }

    /// Time for \p messages point-to-point sends of \p totalBytes in
    /// aggregate, assuming they serialize on the NIC.
    double p2pBatch(std::size_t messages, std::size_t totalBytes) const
    {
        return double(messages) * p_.latencySeconds +
               double(totalBytes) / p_.bandwidthBytesPerSec;
    }

    /// Rabenseifner allreduce: 2 log2(P) alpha + 2 bytes / beta.
    double allreduce(int ranks, std::size_t bytes) const
    {
        if (ranks <= 1) return 0.0;
        double rounds = std::ceil(std::log2(double(ranks)));
        return 2.0 * rounds * p_.latencySeconds +
               2.0 * double(bytes) / p_.bandwidthBytesPerSec;
    }

    /// Ring/recursive-doubling allgatherv on the aggregate payload.
    double allgatherv(int ranks, std::size_t totalBytes) const
    {
        if (ranks <= 1) return 0.0;
        double rounds = std::ceil(std::log2(double(ranks)));
        return rounds * p_.latencySeconds +
               double(ranks - 1) / double(ranks) * double(totalBytes) /
                   p_.bandwidthBytesPerSec;
    }

    /// Tree barrier: log2(P) latency rounds, no payload.
    double barrier(int ranks) const
    {
        if (ranks <= 1) return 0.0;
        return std::ceil(std::log2(double(ranks))) * p_.latencySeconds;
    }

    const NetworkParams& params() const { return p_; }

private:
    NetworkParams p_;
};

} // namespace sphexa

#pragma once

/// \file iad_kernel.hpp
/// Stateless per-particle IAD tau-matrix kernels (phase F of Algorithm 1),
/// one per backend. The dispatch shell lives in sph/iad.hpp; these
/// functions accumulate tau_ij = sum_b V_b (r_b - r_a)_i (r_b - r_a)_j W_ab
/// over one neighbor row and store the inverted coefficients c11..c33.

#include <cmath>
#include <cstddef>

#include "backend/lane_kernel.hpp"
#include "backend/simd_tile.hpp"
#include "domain/box.hpp"
#include "math/matrix3.hpp"
#include "math/vec.hpp"
#include "sph/particles.hpp"

namespace sphexa::backend {

/// Shared epilogue: invert tau, store the six coefficient components.
template<class T>
inline void iadEpilogue(ParticleSet<T>& ps, std::size_t i, const SymMat3<T>& tau)
{
    SymMat3<T> c = tau.inverse();
    ps.c11[i] = c.xx;
    ps.c12[i] = c.xy;
    ps.c13[i] = c.xz;
    ps.c22[i] = c.yy;
    ps.c23[i] = c.yz;
    ps.c33[i] = c.zz;
}

/// Scalar reference: the seed's per-pair loop, verbatim.
template<class T, class KernelT, class Index>
inline void iadParticle(ParticleSet<T>& ps, std::size_t i, const Index* nbrs,
                        std::size_t count, const KernelT& kernel, const Box<T>& box)
{
    T hi = ps.h[i];
    Vec3<T> pi{ps.x[i], ps.y[i], ps.z[i]};
    SymMat3<T> tau;

    for (std::size_t k = 0; k < count; ++k)
    {
        Index j = nbrs[k];
        // r_b - r_a, minimum image
        Vec3<T> rba = -box.delta(pi, Vec3<T>{ps.x[j], ps.y[j], ps.z[j]});
        T r = norm(rba);
        T w = kernel.value(r, hi);
        tau.addOuter(rba, ps.vol[j] * w);
    }

    iadEpilogue(ps, i, tau);
}

/// Simd lane tiles: six per-lane accumulators (one per independent tau
/// component), per-pair arithmetic replicating SymMat3::addOuter's
/// expression order; fixed-order lane reduction.
template<class T, class Index>
inline void iadParticleSimd(ParticleSet<T>& ps, std::size_t i, const Index* nbrs,
                            std::size_t count, const LaneKernel<T>& lanes,
                            const PeriodicWrap<T>& wrap)
{
    constexpr std::size_t W = kLaneWidth;
    const T hi = ps.h[i];
    const T h3 = hi * hi * hi;
    const T xi = ps.x[i], yi = ps.y[i], zi = ps.z[i];

    T aXX[W] = {}, aXY[W] = {}, aXZ[W] = {}, aYY[W] = {}, aYZ[W] = {}, aZZ[W] = {};

    for (std::size_t base = 0; base < count; base += W)
    {
        std::size_t j[W];
        T valid[W], q[W], f[W], df[W];
        T bx[W], by[W], bz[W], vol[W];
        tileIndices<T>(nbrs, base, count, j, valid);
        for (std::size_t l = 0; l < W; ++l)
        {
            // rba = -(minimum-image (r_a - r_b)): negate after the wrap,
            // matching the Scalar -box.delta(...) exactly
            bx[l] = -wrap.x(xi - ps.x[j[l]]);
            by[l] = -wrap.y(yi - ps.y[j[l]]);
            bz[l] = -wrap.z(zi - ps.z[j[l]]);
            T r   = std::sqrt(bx[l] * bx[l] + by[l] * by[l] + bz[l] * bz[l]);
            q[l]   = r / hi;
            vol[l] = ps.vol[j[l]];
        }
        lanes.fdf(q, f, df);
        for (std::size_t l = 0; l < W; ++l)
        {
            T s  = vol[l] * (f[l] / h3); // V_b * W_ab(h_a)
            T sx = s * bx[l];
            T sy = s * by[l];
            T sz = s * bz[l];
            aXX[l] += valid[l] * (sx * bx[l]);
            aXY[l] += valid[l] * (sx * by[l]);
            aXZ[l] += valid[l] * (sx * bz[l]);
            aYY[l] += valid[l] * (sy * by[l]);
            aYZ[l] += valid[l] * (sy * bz[l]);
            aZZ[l] += valid[l] * (sz * bz[l]);
        }
    }

    SymMat3<T> tau{laneSum(aXX), laneSum(aXY), laneSum(aXZ),
                   laneSum(aYY), laneSum(aYZ), laneSum(aZZ)};
    iadEpilogue(ps, i, tau);
}

} // namespace sphexa::backend

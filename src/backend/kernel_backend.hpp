#pragma once

/// \file kernel_backend.hpp
/// The compute-backend dispatch seam of the phase kernels (ROADMAP:
/// "pluggable execution backend beyond the thread pool").
///
/// Phases E-H (density, IAD, div/curl, momentum-energy) are thin dispatch
/// shells over stateless per-particle kernels (src/backend/*_kernel.hpp);
/// a ComputeBackend selects which implementation the shell runs:
///
///  - Scalar: the reference per-pair loops, bitwise identical to the seed
///    solver for every pool size and scheduling strategy.
///  - Simd:   fixed-width lane tiles over gathered neighbor batches
///    (simd_tile.hpp), kernel arithmetic evaluated branch-free across lanes
///    (lane_kernel.hpp), lanes reduced in fixed index order — so Simd
///    results are themselves bitwise pool-size- and strategy-invariant,
///    but differ from Scalar by FP re-association of the neighbor sums
///    (tolerance-gated in tests/test_backend.cpp, see ARCHITECTURE.md).
///
/// The selection is a SimulationConfig field plumbed by the drivers through
/// StepContext into the PipelineFactory phase ops; standalone callers of
/// computeDensity & friends get the Scalar path by default.

#include <cstdlib>
#include <string_view>

namespace sphexa {

/// Which inner-kernel implementation the SPH phase shells dispatch to.
enum class KernelBackend
{
    Scalar,
    Simd,
};

constexpr std::string_view kernelBackendName(KernelBackend b)
{
    return b == KernelBackend::Scalar ? "Scalar" : "Simd";
}

/// Backend selection from the SPHEXA_KERNEL_BACKEND environment variable
/// ("scalar" or "simd", any case of the first letter): the hook the CI
/// matrix uses to re-run the golden gallery per backend leg without a
/// per-leg binary. Unset or unrecognized values keep \p fallback.
inline KernelBackend kernelBackendFromEnv(KernelBackend fallback = KernelBackend::Scalar)
{
    const char* v = std::getenv("SPHEXA_KERNEL_BACKEND");
    if (!v) return fallback;
    std::string_view s(v);
    if (s == "simd" || s == "Simd" || s == "SIMD") return KernelBackend::Simd;
    if (s == "scalar" || s == "Scalar" || s == "SCALAR") return KernelBackend::Scalar;
    return fallback;
}

template<class T>
class LaneKernel;

/// The dispatch handle a phase shell receives: the backend kind plus the
/// driver-owned lane evaluator (lane_kernel.hpp). Null-safe like the other
/// driver-owned StepContext scratch (sorter/clusters): a Simd dispatch with
/// no lanes builds a transient evaluator — correct, just re-tabulating the
/// sinc tables on every call.
template<class T>
struct ComputeBackend
{
    KernelBackend kind = KernelBackend::Scalar;
    const LaneKernel<T>* lanes = nullptr;
};

} // namespace sphexa

#pragma once

/// \file lane_kernel.hpp
/// Branch-free lane evaluation of the SPH kernel shape functions f(q) and
/// f'(q) for the Simd backend.
///
/// The closed-form families (spline, Wendland, spiky) replicate the exact
/// FP expression sequence of Kernel<T>::fq/dfq (sph/kernels.hpp) with the
/// piecewise branches turned into selects: a lane's value is bitwise the
/// value the Scalar path computes for the same pair, so Simd-vs-Scalar
/// differences for these kernels come from neighbor-sum re-association
/// alone (tight tolerance gates in tests/test_backend.cpp).
///
/// The sinc family has no branch-free closed form (std::pow of a
/// transcendental per pair — also the Scalar path's dominant cost); the
/// lane path evaluates it through the existing math/lookup_table.hpp
/// tabulation of the normalized shape, SPHYNX-style. That is an
/// approximation (~1e-8 relative at the default 20000 samples), so sinc
/// Simd-vs-Scalar gates are correspondingly looser — and the table is why
/// the Simd backend beats Scalar by far more than lane parallelism alone
/// on the default sinc configuration (BENCH_simd.json).
///
/// At q = 0 the table returns its exact first sample fq(0), so self
/// contributions match the Scalar path bitwise for every kernel type.

#include <cstddef>

#include "backend/simd_tile.hpp"
#include "math/lookup_table.hpp"
#include "sph/kernels.hpp"

namespace sphexa {

/// Immutable lane evaluator for one kernel; cheap to share across threads
/// (like Kernel, all evaluation is const). Drivers own one per simulation
/// and hand it to the phase shells via ComputeBackend.
template<class T>
class LaneKernel
{
public:
    static constexpr std::size_t defaultTableSize = 20000;

    explicit LaneKernel(const Kernel<T>& kernel, std::size_t tableSize = defaultTableSize)
        : type_(kernel.type()), sigma_(kernel.normalization())
    {
        if (type_ == KernelType::Sinc)
        {
            fTable_  = LookupTable<T>([&](T q) { return kernel.fq(q); }, T(0),
                                      Kernel<T>::supportRadius, tableSize);
            dfTable_ = LookupTable<T>([&](T q) { return kernel.dfq(q); }, T(0),
                                      Kernel<T>::supportRadius, tableSize);
        }
    }

    KernelType type() const { return type_; }

    /// Single-lane f(q), f'(q) (sigma included, zero at q >= 2): the self-
    /// contribution path (q = 0) and scalar epilogues.
    void fdf(T q, T& f, T& df) const
    {
        T fq[backend::kLaneWidth] = {};
        T dfq[backend::kLaneWidth] = {};
        T qq[backend::kLaneWidth] = {};
        qq[0] = q;
        fdf(qq, fq, dfq);
        f  = fq[0];
        df = dfq[0];
    }

    /// One tile of f(q), f'(q), branch-free across lanes. Lanes with
    /// q >= supportRadius produce exact zeros (select for the closed forms,
    /// the clamped-to-zero last table sample for sinc), so padded or
    /// out-of-support lanes never contaminate accumulators.
    void fdf(const T (&q)[backend::kLaneWidth], T (&f)[backend::kLaneWidth],
             T (&df)[backend::kLaneWidth]) const
    {
        constexpr std::size_t W = backend::kLaneWidth;
        switch (type_)
        {
            case KernelType::Sinc:
                for (std::size_t l = 0; l < W; ++l)
                {
                    f[l]  = fTable_(q[l]);
                    df[l] = dfTable_(q[l]);
                }
                break;
            case KernelType::CubicSpline:
                for (std::size_t l = 0; l < W; ++l)
                {
                    T qq = q[l];
                    T t  = T(2) - qq;
                    T fi = T(1) - T(1.5) * qq * qq + T(0.75) * qq * qq * qq;
                    T fo = T(0.25) * t * t * t;
                    T di = -T(3) * qq + T(2.25) * qq * qq;
                    T dq = -T(0.75) * t * t;
                    T fr = qq < T(1) ? fi : fo;
                    T dr = qq < T(1) ? di : dq;
                    f[l]  = qq >= T(2) ? T(0) : sigma_ * fr;
                    df[l] = qq >= T(2) ? T(0) : sigma_ * dr;
                }
                break;
            case KernelType::WendlandC2:
                for (std::size_t l = 0; l < W; ++l)
                {
                    T qq = q[l];
                    T t  = T(1) - qq / 2;
                    T t2 = t * t;
                    T fr = t2 * t2 * (T(2) * qq + T(1));
                    T dr = -T(5) * qq * t * t * t;
                    f[l]  = qq >= T(2) ? T(0) : sigma_ * fr;
                    df[l] = qq >= T(2) ? T(0) : sigma_ * dr;
                }
                break;
            case KernelType::WendlandC4:
                for (std::size_t l = 0; l < W; ++l)
                {
                    T qq = q[l];
                    T t  = T(1) - qq / 2;
                    T t2 = t * t;
                    T fr = t2 * t2 * t2 * ((T(35) / 12) * qq * qq + T(3) * qq + T(1));
                    T dr = -(T(7) / 3) * qq * (T(5) * qq + T(2)) * t2 * t2 * t;
                    f[l]  = qq >= T(2) ? T(0) : sigma_ * fr;
                    df[l] = qq >= T(2) ? T(0) : sigma_ * dr;
                }
                break;
            case KernelType::WendlandC6:
                for (std::size_t l = 0; l < W; ++l)
                {
                    T qq = q[l];
                    T t  = T(1) - qq / 2;
                    T t2 = t * t;
                    T t4 = t2 * t2;
                    T fr = t4 * t4 *
                           (T(4) * qq * qq * qq + (T(25) / 4) * qq * qq + T(4) * qq + T(1));
                    T dr = -(T(11) / 4) * qq * (T(8) * qq * qq + T(7) * qq + T(2)) * t4 *
                           t2 * t;
                    f[l]  = qq >= T(2) ? T(0) : sigma_ * fr;
                    df[l] = qq >= T(2) ? T(0) : sigma_ * dr;
                }
                break;
            case KernelType::DebrunSpiky:
                for (std::size_t l = 0; l < W; ++l)
                {
                    T qq = q[l];
                    T t  = T(2) - qq;
                    T fr = t * t * t;
                    T dr = -T(3) * t * t;
                    f[l]  = qq >= T(2) ? T(0) : sigma_ * fr;
                    df[l] = qq >= T(2) ? T(0) : sigma_ * dr;
                }
                break;
        }
    }

private:
    KernelType type_;
    T sigma_;
    LookupTable<T> fTable_;  ///< sinc only: sigma-included f(q) over [0, 2]
    LookupTable<T> dfTable_; ///< sinc only: sigma-included f'(q)
};

} // namespace sphexa

#pragma once

/// \file simd_tile.hpp
/// Lane-tiling primitives of the Simd backend: the fixed tile width, the
/// hoisted minimum-image wrap, padded tile-index gathers and the
/// fixed-order lane reductions.
///
/// Determinism contract (docs/ARCHITECTURE.md, "Backend layer"): a Simd
/// kernel walks one particle's neighbor row in tiles of kLaneWidth lanes,
/// accumulates per-lane partial sums, and reduces them in fixed index order
/// 0..kLaneWidth-1. Tile boundaries depend only on the neighbor row — never
/// on pool size, scheduling strategy or chunk boundaries — so Simd results
/// are bitwise invariant across pools and strategies, exactly like the
/// Scalar accumulate-to-self loops. Padded lanes replicate the last valid
/// neighbor index (no out-of-bounds gather, all arithmetic stays finite)
/// and are annihilated by a 0/1 validity multiplier before accumulation.

#include <cstddef>
#include <limits>

#include "domain/box.hpp"

namespace sphexa::backend {

/// Lanes per tile. 8 doubles = one AVX-512 vector or two AVX2 vectors; a
/// compile-time constant independent of pool size so tile boundaries (and
/// therefore FP sums) are a function of the neighbor row alone.
inline constexpr std::size_t kLaneWidth = 8;

/// Minimum-image wrap with the per-axis constants hoisted out of the inner
/// loop. A non-periodic axis gets an infinite half-width so its selects
/// never fire; a periodic axis reproduces Box::delta exactly — the same L/2
/// threshold and single-subtraction corrections, expressed as selects so
/// lane loops stay branch-free. Shared by the Simd phase kernels and the
/// cluster member scan (tree/cluster_list.hpp), whose bitwise list equality
/// with the per-particle walk depends on exactly this arithmetic.
template<class T>
struct PeriodicWrap
{
    T Lx, Ly, Lz;
    T hwx, hwy, hwz; ///< half-widths; +inf on non-periodic axes

    explicit PeriodicWrap(const Box<T>& box)
        : Lx(box.length(0))
        , Ly(box.length(1))
        , Lz(box.length(2))
        , hwx(box.pbc[0] ? Lx / 2 : std::numeric_limits<T>::infinity())
        , hwy(box.pbc[1] ? Ly / 2 : std::numeric_limits<T>::infinity())
        , hwz(box.pbc[2] ? Lz / 2 : std::numeric_limits<T>::infinity())
    {
    }

    T x(T d) const { return d > hwx ? d - Lx : (d < -hwx ? d + Lx : d); }
    T y(T d) const { return d > hwy ? d - Ly : (d < -hwy ? d + Ly : d); }
    T z(T d) const { return d > hwz ? d - Lz : (d < -hwz ? d + Lz : d); }
};

/// Fill one tile's gather indices from a neighbor row: lanes [0, m) map to
/// nbrs[base..base+m) and padded lanes replicate the last valid entry, with
/// valid[l] the 0/1 annihilation multiplier. Returns m, the valid lane
/// count (kLaneWidth except for the remainder tile).
template<class T, class Index>
inline std::size_t tileIndices(const Index* nbrs, std::size_t base, std::size_t count,
                               std::size_t (&j)[kLaneWidth], T (&valid)[kLaneWidth])
{
    std::size_t m = count - base;
    if (m > kLaneWidth) m = kLaneWidth;
    for (std::size_t l = 0; l < kLaneWidth; ++l)
    {
        j[l]     = nbrs[base + (l < m ? l : m - 1)];
        valid[l] = l < m ? T(1) : T(0);
    }
    return m;
}

/// Fixed-order lane reduction: always 0 + 1 + ... + (kLaneWidth-1), the
/// association the bitwise pool/strategy invariance of the Simd backend
/// rests on.
template<class T>
inline T laneSum(const T (&acc)[kLaneWidth])
{
    T s = acc[0];
    for (std::size_t l = 1; l < kLaneWidth; ++l)
        s += acc[l];
    return s;
}

/// Fixed-order lane max (max is a selection, so any order would do; fixed
/// order keeps the contract uniform).
template<class T>
inline T laneMax(const T (&acc)[kLaneWidth])
{
    T s = acc[0];
    for (std::size_t l = 1; l < kLaneWidth; ++l)
        s = s > acc[l] ? s : acc[l];
    return s;
}

} // namespace sphexa::backend

#pragma once

/// \file momentum_kernel.hpp
/// Stateless per-particle momentum/energy kernels (phase H of Algorithm 1),
/// one per backend, plus the artificial-viscosity parameter block they
/// share with the configuration layer. The dispatch shell (and the
/// neighbor-list symmetrization it relies on) lives in
/// sph/momentum_energy.hpp.
///
/// Both kernels return the particle's own maximum signal velocity over its
/// pairs; the shell owns the per-worker max reduction into the phase stats.

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "backend/lane_kernel.hpp"
#include "backend/simd_tile.hpp"
#include "domain/box.hpp"
#include "math/matrix3.hpp"
#include "math/vec.hpp"
#include "sph/iad.hpp"
#include "sph/particles.hpp"

namespace sphexa {

/// Artificial-viscosity parameters (Monaghan 1992 with the Balsara switch).
template<class T>
struct ArtificialViscosity
{
    T alpha = T(1);
    T beta  = T(2);
    T eps   = T(0.01);   ///< softening in mu denominator
    bool useBalsara = true;
};

/// Result accumulated per call for time-step control.
template<class T>
struct MomentumEnergyStats
{
    T maxVsignal = T(0); ///< max signal velocity (CFL input)
};

namespace backend {

/// Scalar reference: the seed's per-pair loop, verbatim. Returns vsig_i,
/// the particle's max pair signal velocity (also written to ps.vsig[i]).
template<class T, class KernelT, class Index>
inline T momentumEnergyParticle(ParticleSet<T>& ps, std::size_t i, const Index* nbrs,
                                std::size_t count, const KernelT& kernel,
                                const Box<T>& box, GradientMode mode,
                                const ArtificialViscosity<T>& av)
{
    T vsigI = T(0); ///< this particle's own max over its pairs
    Vec3<T> pi{ps.x[i], ps.y[i], ps.z[i]};
    Vec3<T> vi{ps.vx[i], ps.vy[i], ps.vz[i]};
    T rhoi = ps.rho[i];
    T prhoi = ps.p[i] / (ps.gradh[i] * rhoi * rhoi);

    Vec3<T> acc{};
    T du = T(0);

    for (std::size_t k = 0; k < count; ++k)
    {
        Index j     = nbrs[k];
        Vec3<T> rab = box.delta(pi, Vec3<T>{ps.x[j], ps.y[j], ps.z[j]}); // r_a - r_b
        T r = norm(rab);
        if (r <= T(0)) continue;
        Vec3<T> vab = vi - Vec3<T>{ps.vx[j], ps.vy[j], ps.vz[j]};

        T rhoj  = ps.rho[j];
        T prhoj = ps.p[j] / (ps.gradh[j] * rhoj * rhoj);

        // gradient terms with h_a and h_b
        Vec3<T> gwa, gwb;
        if (mode == GradientMode::IAD)
        {
            // A_ab(h_a) = C(a) (r_b - r_a) W_ab(h_a) : "toward b" sense
            gwa = iadGradient(ps, i, -rab, r, kernel);
            // A_ba(h_b) = C(b) (r_a - r_b) W_ab(h_b); flip to a-centric
            SymMat3<T> cb{ps.c11[j], ps.c12[j], ps.c13[j],
                          ps.c22[j], ps.c23[j], ps.c33[j]};
            gwb = -(cb * rab) * kernel.value(r, ps.h[j]);
            // note: gwa points a->b (negative radial); gwb = -C(b) r_ab W(h_b)
            // also points a->b for isotropic C.
        }
        else
        {
            T invR = T(1) / r;
            gwa = rab * (kernel.derivative(r, ps.h[i]) * invR);
            gwb = rab * (kernel.derivative(r, ps.h[j]) * invR);
        }

        // pressure part: dv_a/dt -= m_b (Pa' gwa_(a->b, so sign below) ...)
        // Using the a-centric gradient (pointing a->b when dW/dr<0):
        //   dv_a/dt += -m_b [prhoi * gwa + prhoj * gwb]
        acc -= ps.m[j] * (prhoi * gwa + prhoj * gwb);

        // energy: du_a/dt = prhoi sum_b m_b v_ab . gwa
        du += ps.m[j] * prhoi * dot(vab, gwa);

        // artificial viscosity on the symmetrized gradient
        T vdotr = dot(vab, rab);
        T cbar  = T(0.5) * (ps.c[i] + ps.c[j]);
        T vsig  = ps.c[i] + ps.c[j] - T(3) * std::min(T(0), vdotr / r);
        vsigI   = std::max(vsigI, vsig);
        if (vdotr < T(0))
        {
            T hbar   = T(0.5) * (ps.h[i] + ps.h[j]);
            T rhobar = T(0.5) * (rhoi + rhoj);
            T mu     = hbar * vdotr / (r * r + av.eps * hbar * hbar);
            T f      = av.useBalsara ? T(0.5) * (ps.balsara[i] + ps.balsara[j]) : T(1);
            T piab   = f * (-av.alpha * cbar * mu + av.beta * mu * mu) / rhobar;
            Vec3<T> gwbar = T(0.5) * (gwa + gwb);
            acc -= ps.m[j] * piab * gwbar;
            du += T(0.5) * ps.m[j] * piab * dot(vab, gwbar);
        }
    }

    ps.ax[i] = acc.x;
    ps.ay[i] = acc.y;
    ps.az[i] = acc.z;
    ps.du[i] = du;
    // per-particle CFL input (individual time-stepping reads this so a
    // quiet particle is not clamped by the loudest shock in the box)
    ps.vsig[i] = vsigI;
    return vsigI;
}

/// Simd lane tiles. The Scalar r <= 0 `continue` becomes a validity mask
/// with safe divisors; the artificial-viscosity branch becomes a second
/// mask (its operands are finite for every lane, so masked lanes do the
/// arithmetic and contribute exact zeros). Surviving lanes replicate the
/// Scalar per-pair expression sequence; kernel shapes come from the lane
/// evaluator at both h_a and h_b.
template<class T, class Index>
inline T momentumEnergyParticleSimd(ParticleSet<T>& ps, std::size_t i, const Index* nbrs,
                                    std::size_t count, const LaneKernel<T>& lanes,
                                    const PeriodicWrap<T>& wrap, GradientMode mode,
                                    const ArtificialViscosity<T>& av)
{
    constexpr std::size_t W = kLaneWidth;
    const T hi  = ps.h[i];
    const T h3i = hi * hi * hi;
    const T h4i = hi * hi * hi * hi;
    const T xi = ps.x[i], yi = ps.y[i], zi = ps.z[i];
    const T vxi = ps.vx[i], vyi = ps.vy[i], vzi = ps.vz[i];
    const T rhoi  = ps.rho[i];
    const T prhoi = ps.p[i] / (ps.gradh[i] * rhoi * rhoi);
    const T ci    = ps.c[i];
    const T bali  = ps.balsara[i];
    const bool iad = mode == GradientMode::IAD;
    const T cxx = iad ? ps.c11[i] : T(0), cxy = iad ? ps.c12[i] : T(0);
    const T cxz = iad ? ps.c13[i] : T(0), cyy = iad ? ps.c22[i] : T(0);
    const T cyz = iad ? ps.c23[i] : T(0), czz = iad ? ps.c33[i] : T(0);

    T accX[W] = {}, accY[W] = {}, accZ[W] = {}, accDu[W] = {}, accVsig[W] = {};

    for (std::size_t base = 0; base < count; base += W)
    {
        std::size_t j[W];
        T valid[W], qi[W], qj[W], fi[W], dfi[W], fj[W], dfj[W];
        T dx[W], dy[W], dz[W], r[W], rsafe[W], hj[W];
        tileIndices<T>(nbrs, base, count, j, valid);
        for (std::size_t l = 0; l < W; ++l)
        {
            dx[l] = wrap.x(xi - ps.x[j[l]]);
            dy[l] = wrap.y(yi - ps.y[j[l]]);
            dz[l] = wrap.z(zi - ps.z[j[l]]);
            r[l]  = std::sqrt(dx[l] * dx[l] + dy[l] * dy[l] + dz[l] * dz[l]);
            // fold the Scalar r <= 0 `continue` into the mask; the safe
            // divisor keeps masked lanes finite
            valid[l] = r[l] > T(0) ? valid[l] : T(0);
            rsafe[l] = r[l] > T(0) ? r[l] : T(1);
            hj[l]    = ps.h[j[l]];
            qi[l]    = r[l] / hi;
            qj[l]    = r[l] / hj[l];
        }
        lanes.fdf(qi, fi, dfi);
        lanes.fdf(qj, fj, dfj);
        for (std::size_t l = 0; l < W; ++l)
        {
            std::size_t jj = j[l];
            T rhoj  = ps.rho[jj];
            T prhoj = ps.p[jj] / (ps.gradh[jj] * rhoj * rhoj);

            T gwax, gway, gwaz, gwbx, gwby, gwbz;
            if (iad)
            {
                T bx = -dx[l], by = -dy[l], bz = -dz[l];
                T wa = fi[l] / h3i;
                gwax = (cxx * bx + cxy * by + cxz * bz) * wa;
                gway = (cxy * bx + cyy * by + cyz * bz) * wa;
                gwaz = (cxz * bx + cyz * by + czz * bz) * wa;
                T wb = fj[l] / (hj[l] * hj[l] * hj[l]);
                T tx = ps.c11[jj] * dx[l] + ps.c12[jj] * dy[l] + ps.c13[jj] * dz[l];
                T ty = ps.c12[jj] * dx[l] + ps.c22[jj] * dy[l] + ps.c23[jj] * dz[l];
                T tz = ps.c13[jj] * dx[l] + ps.c23[jj] * dy[l] + ps.c33[jj] * dz[l];
                gwbx = -tx * wb;
                gwby = -ty * wb;
                gwbz = -tz * wb;
            }
            else
            {
                T invR   = T(1) / rsafe[l];
                T scaleA = (dfi[l] / h4i) * invR;
                T scaleB = (dfj[l] / (hj[l] * hj[l] * hj[l] * hj[l])) * invR;
                gwax = dx[l] * scaleA;
                gway = dy[l] * scaleA;
                gwaz = dz[l] * scaleA;
                gwbx = dx[l] * scaleB;
                gwby = dy[l] * scaleB;
                gwbz = dz[l] * scaleB;
            }

            T vabx = vxi - ps.vx[jj];
            T vaby = vyi - ps.vy[jj];
            T vabz = vzi - ps.vz[jj];
            T mj   = ps.m[jj];
            T vm   = valid[l];

            accX[l] -= vm * ((prhoi * gwax + prhoj * gwbx) * mj);
            accY[l] -= vm * ((prhoi * gway + prhoj * gwby) * mj);
            accZ[l] -= vm * ((prhoi * gwaz + prhoj * gwbz) * mj);
            accDu[l] += vm * (mj * prhoi *
                              (vabx * gwax + vaby * gway + vabz * gwaz));

            T cj    = ps.c[jj];
            T vdotr = vabx * dx[l] + vaby * dy[l] + vabz * dz[l];
            T cbar  = T(0.5) * (ci + cj);
            T vsig  = ci + cj - T(3) * std::min(T(0), vdotr / rsafe[l]);
            T vsigM = vm != T(0) ? vsig : T(0);
            accVsig[l] = accVsig[l] > vsigM ? accVsig[l] : vsigM;

            // AV branch -> mask: every operand below is finite on masked
            // lanes (hbar > 0 keeps mu's denominator positive even at r = 0)
            T am     = vdotr < T(0) ? vm : T(0);
            T hbar   = T(0.5) * (hi + hj[l]);
            T rhobar = T(0.5) * (rhoi + rhoj);
            T mu     = hbar * vdotr / (r[l] * r[l] + av.eps * hbar * hbar);
            T fb     = av.useBalsara ? T(0.5) * (bali + ps.balsara[jj]) : T(1);
            T piab   = fb * (-av.alpha * cbar * mu + av.beta * mu * mu) / rhobar;
            T gwbarx = T(0.5) * (gwax + gwbx);
            T gwbary = T(0.5) * (gway + gwby);
            T gwbarz = T(0.5) * (gwaz + gwbz);
            T mp     = mj * piab;
            accX[l] -= am * (gwbarx * mp);
            accY[l] -= am * (gwbary * mp);
            accZ[l] -= am * (gwbarz * mp);
            accDu[l] += am * (T(0.5) * mj * piab *
                              (vabx * gwbarx + vaby * gwbary + vabz * gwbarz));
        }
    }

    ps.ax[i] = laneSum(accX);
    ps.ay[i] = laneSum(accY);
    ps.az[i] = laneSum(accZ);
    ps.du[i] = laneSum(accDu);
    T vsigI  = laneMax(accVsig);
    ps.vsig[i] = vsigI;
    return vsigI;
}

} // namespace backend
} // namespace sphexa

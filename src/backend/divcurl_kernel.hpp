#pragma once

/// \file divcurl_kernel.hpp
/// Stateless per-particle velocity div/curl kernels (phase G of
/// Algorithm 1), one per backend. The dispatch shell lives in
/// sph/divcurl.hpp; these functions accumulate div v and curl v over one
/// neighbor row (IAD or kernel-derivative gradients) and store the Balsara
/// limiter.

#include <cmath>
#include <cstddef>

#include "backend/lane_kernel.hpp"
#include "backend/simd_tile.hpp"
#include "domain/box.hpp"
#include "math/vec.hpp"
#include "sph/iad.hpp"
#include "sph/particles.hpp"

namespace sphexa::backend {

/// Shared epilogue: store div/|curl| and the Balsara (1995) limiter.
template<class T>
inline void divCurlEpilogue(ParticleSet<T>& ps, std::size_t i, T div, const Vec3<T>& curl)
{
    ps.divv[i]  = div;
    ps.curlv[i] = norm(curl);
    T denom = std::abs(div) + ps.curlv[i] + T(1e-4) * ps.c[i] / ps.h[i];
    ps.balsara[i] = denom > T(0) ? std::abs(div) / denom : T(1);
}

/// Scalar reference: the seed's per-pair loop, verbatim.
template<class T, class KernelT, class Index>
inline void divCurlParticle(ParticleSet<T>& ps, std::size_t i, const Index* nbrs,
                            std::size_t count, const KernelT& kernel, const Box<T>& box,
                            GradientMode mode)
{
    Vec3<T> pi{ps.x[i], ps.y[i], ps.z[i]};
    Vec3<T> vi{ps.vx[i], ps.vy[i], ps.vz[i]};
    T div = T(0);
    Vec3<T> curl{};

    for (std::size_t k = 0; k < count; ++k)
    {
        Index j     = nbrs[k];
        Vec3<T> rab = box.delta(pi, Vec3<T>{ps.x[j], ps.y[j], ps.z[j]});
        T r = norm(rab);
        Vec3<T> gw;
        if (mode == GradientMode::IAD)
        {
            gw = iadGradient(ps, i, -rab, r, kernel);
        }
        else
        {
            if (r <= T(0)) continue;
            gw = rab * (kernel.derivative(r, ps.h[i]) / r);
        }
        Vec3<T> vab = vi - Vec3<T>{ps.vx[j], ps.vy[j], ps.vz[j]};
        T Vb = ps.vol[j];
        // div v = -sum_b V_b v_ab . grad W ; curl v = +sum_b V_b v_ab x grad W
        div -= Vb * dot(vab, gw);
        curl += Vb * cross(vab, gw);
    }

    divCurlEpilogue(ps, i, div, curl);
}

/// Simd lane tiles. IAD lanes keep r = 0 pairs like the Scalar loop (their
/// gradient is exactly zero); kernel-derivative lanes fold the Scalar
/// `continue` into the validity multiplier with a safe divisor, so the
/// surviving lanes' arithmetic is the Scalar per-pair sequence verbatim.
template<class T, class Index>
inline void divCurlParticleSimd(ParticleSet<T>& ps, std::size_t i, const Index* nbrs,
                                std::size_t count, const LaneKernel<T>& lanes,
                                const PeriodicWrap<T>& wrap, GradientMode mode)
{
    constexpr std::size_t W = kLaneWidth;
    const T hi = ps.h[i];
    const T h3 = hi * hi * hi;
    const T h4 = hi * hi * hi * hi;
    const T xi = ps.x[i], yi = ps.y[i], zi = ps.z[i];
    const T vxi = ps.vx[i], vyi = ps.vy[i], vzi = ps.vz[i];
    const bool iad = mode == GradientMode::IAD;
    // C(a), loop-invariant (IAD mode only; zeros otherwise)
    const T cxx = iad ? ps.c11[i] : T(0), cxy = iad ? ps.c12[i] : T(0);
    const T cxz = iad ? ps.c13[i] : T(0), cyy = iad ? ps.c22[i] : T(0);
    const T cyz = iad ? ps.c23[i] : T(0), czz = iad ? ps.c33[i] : T(0);

    T accDiv[W] = {}, accCx[W] = {}, accCy[W] = {}, accCz[W] = {};

    for (std::size_t base = 0; base < count; base += W)
    {
        std::size_t j[W];
        T valid[W], q[W], f[W], df[W];
        T dx[W], dy[W], dz[W], r[W];
        tileIndices<T>(nbrs, base, count, j, valid);
        for (std::size_t l = 0; l < W; ++l)
        {
            dx[l] = wrap.x(xi - ps.x[j[l]]);
            dy[l] = wrap.y(yi - ps.y[j[l]]);
            dz[l] = wrap.z(zi - ps.z[j[l]]);
            r[l]  = std::sqrt(dx[l] * dx[l] + dy[l] * dy[l] + dz[l] * dz[l]);
            q[l]  = r[l] / hi;
        }
        lanes.fdf(q, f, df);
        for (std::size_t l = 0; l < W; ++l)
        {
            T gwx, gwy, gwz, vm;
            if (iad)
            {
                // gw = (C(a) . rba) * W_ab(h_a), rba = -rab
                T bx = -dx[l], by = -dy[l], bz = -dz[l];
                T w  = f[l] / h3;
                gwx  = (cxx * bx + cxy * by + cxz * bz) * w;
                gwy  = (cxy * bx + cyy * by + cyz * bz) * w;
                gwz  = (cxz * bx + cyz * by + czz * bz) * w;
                vm   = valid[l];
            }
            else
            {
                // gw = rab * (dW/dr / r); the r = 0 `continue` becomes a mask
                T rsafe = r[l] > T(0) ? r[l] : T(1);
                T scale = (df[l] / h4) / rsafe;
                gwx     = dx[l] * scale;
                gwy     = dy[l] * scale;
                gwz     = dz[l] * scale;
                vm      = r[l] > T(0) ? valid[l] : T(0);
            }
            T vabx = vxi - ps.vx[j[l]];
            T vaby = vyi - ps.vy[j[l]];
            T vabz = vzi - ps.vz[j[l]];
            T Vb   = ps.vol[j[l]];
            accDiv[l] -= vm * (Vb * (vabx * gwx + vaby * gwy + vabz * gwz));
            accCx[l] += vm * ((vaby * gwz - vabz * gwy) * Vb);
            accCy[l] += vm * ((vabz * gwx - vabx * gwz) * Vb);
            accCz[l] += vm * ((vabx * gwy - vaby * gwx) * Vb);
        }
    }

    Vec3<T> curl{laneSum(accCx), laneSum(accCy), laneSum(accCz)};
    divCurlEpilogue(ps, i, laneSum(accDiv), curl);
}

} // namespace sphexa::backend

#pragma once

/// \file density_kernel.hpp
/// Stateless per-particle density kernels (phase E of Algorithm 1), one per
/// backend. The dispatch shell lives in sph/density.hpp; these functions
/// hold the physics: the kx / d(kx)/dh sums over one neighbor row and the
/// vol/rho/gradh epilogue.

#include <cmath>
#include <cstddef>

#include "backend/lane_kernel.hpp"
#include "backend/simd_tile.hpp"
#include "domain/box.hpp"
#include "math/vec.hpp"
#include "sph/particles.hpp"

namespace sphexa::backend {

/// Shared epilogue: kx -> volume element, density, grad-h term.
template<class T>
inline void densityEpilogue(ParticleSet<T>& ps, std::size_t i, T hi, T kx, T dkxh)
{
    ps.vol[i] = ps.xmass[i] / kx;
    ps.rho[i] = ps.m[i] * kx / ps.xmass[i];
    // Omega_a = 1 + h/(3 kx) * d(kx)/dh
    ps.gradh[i] = T(1) + hi / (T(3) * kx) * dkxh;
    // guard against pathological neighbor geometry
    if (!(ps.gradh[i] > T(0.1)) || !(ps.gradh[i] < T(10)))
    {
        ps.gradh[i] = T(1);
    }
}

/// Scalar reference: the seed's per-pair loop, verbatim.
template<class T, class KernelT, class Index>
inline void densityParticle(ParticleSet<T>& ps, std::size_t i, const Index* nbrs,
                            std::size_t count, const KernelT& kernel, const Box<T>& box)
{
    T hi = ps.h[i];
    Vec3<T> pi{ps.x[i], ps.y[i], ps.z[i]};

    // self contribution
    T kx   = ps.xmass[i] * kernel.value(T(0), hi);
    T dkxh = ps.xmass[i] * kernel.dh(T(0), hi);

    for (std::size_t k = 0; k < count; ++k)
    {
        Index j   = nbrs[k];
        Vec3<T> d = box.delta(pi, Vec3<T>{ps.x[j], ps.y[j], ps.z[j]});
        T r = norm(d);
        kx += ps.xmass[j] * kernel.value(r, hi);
        dkxh += ps.xmass[j] * kernel.dh(r, hi);
    }

    densityEpilogue(ps, i, hi, kx, dkxh);
}

/// Simd lane tiles: gathered xmass/coordinate batches, per-lane partial kx
/// and d(kx)/dh, fixed-order lane reduction. Per-pair arithmetic replicates
/// the Scalar expressions (q = r/h divisions included); only the summation
/// association differs.
template<class T, class Index>
inline void densityParticleSimd(ParticleSet<T>& ps, std::size_t i, const Index* nbrs,
                                std::size_t count, const LaneKernel<T>& lanes,
                                const PeriodicWrap<T>& wrap)
{
    constexpr std::size_t W = kLaneWidth;
    const T hi = ps.h[i];
    const T h3 = hi * hi * hi;
    const T h4 = hi * hi * hi * hi;
    const T xi = ps.x[i], yi = ps.y[i], zi = ps.z[i];

    T accKx[W] = {};
    T accDk[W] = {};

    for (std::size_t base = 0; base < count; base += W)
    {
        std::size_t j[W];
        T valid[W], q[W], f[W], df[W], xm[W];
        tileIndices<T>(nbrs, base, count, j, valid);
        for (std::size_t l = 0; l < W; ++l)
        {
            T dx = wrap.x(xi - ps.x[j[l]]);
            T dy = wrap.y(yi - ps.y[j[l]]);
            T dz = wrap.z(zi - ps.z[j[l]]);
            T r  = std::sqrt(dx * dx + dy * dy + dz * dz);
            q[l]  = r / hi;
            xm[l] = ps.xmass[j[l]];
        }
        lanes.fdf(q, f, df);
        for (std::size_t l = 0; l < W; ++l)
        {
            accKx[l] += valid[l] * (xm[l] * (f[l] / h3));
            accDk[l] += valid[l] * (xm[l] * (-(T(3) * f[l] + q[l] * df[l]) / h4));
        }
    }

    // self contribution (q = 0 is exact for every kernel type, see
    // lane_kernel.hpp) + fixed-order lane reduction
    T f0, df0;
    lanes.fdf(T(0), f0, df0);
    T kx   = ps.xmass[i] * (f0 / h3) + laneSum(accKx);
    T dkxh = ps.xmass[i] * (-(T(3) * f0 + T(0) * df0) / h4) + laneSum(accDk);

    densityEpilogue(ps, i, hi, kx, dkxh);
}

} // namespace sphexa::backend

#pragma once

/// \file quadrature.hpp
/// Adaptive 1D quadrature used to normalize SPH interpolation kernels.
///
/// The sinc kernel family S_n(q) (Cabezon et al. 2008) has no closed-form
/// 3D normalization constant for arbitrary exponent n; we compute
///     B_n = 1 / (4 pi \int_0^2 S(q)^n q^2 dq)
/// at kernel construction with adaptive Simpson quadrature, which also
/// serves as the independent reference in kernel unit tests.

#include <cmath>
#include <functional>

namespace sphexa {

namespace detail {

template<class F, class T>
T adaptiveSimpsonRec(const F& f, T a, T b, T fa, T fm, T fb, T whole, T eps, int depth)
{
    T m  = (a + b) / 2;
    T lm = (a + m) / 2;
    T rm = (m + b) / 2;
    T flm = f(lm);
    T frm = f(rm);
    T left  = (m - a) / 6 * (fa + 4 * flm + fm);
    T right = (b - m) / 6 * (fm + 4 * frm + fb);
    T delta = left + right - whole;
    if (depth <= 0 || std::abs(delta) <= 15 * eps)
    {
        return left + right + delta / 15;
    }
    return adaptiveSimpsonRec(f, a, m, fa, flm, fm, left, eps / 2, depth - 1) +
           adaptiveSimpsonRec(f, m, b, fm, frm, fb, right, eps / 2, depth - 1);
}

} // namespace detail

/// Adaptive Simpson integration of f over [a, b] to absolute tolerance eps.
template<class T, class F>
T integrate(const F& f, T a, T b, T eps = T(1e-12), int maxDepth = 40)
{
    T fa = f(a);
    T fb = f(b);
    T m  = (a + b) / 2;
    T fm = f(m);
    T whole = (b - a) / 6 * (fa + 4 * fm + fb);
    return detail::adaptiveSimpsonRec(f, a, b, fa, fm, fb, whole, eps, maxDepth);
}

/// Fixed-order composite Simpson rule (even n intervals), for cheap
/// cross-checks in tests.
template<class T, class F>
T integrateSimpson(const F& f, T a, T b, int n)
{
    if (n % 2) ++n;
    T h   = (b - a) / n;
    T sum = f(a) + f(b);
    for (int i = 1; i < n; ++i)
    {
        sum += f(a + i * h) * ((i % 2) ? T(4) : T(2));
    }
    return sum * h / 3;
}

} // namespace sphexa

#pragma once

/// \file statistics.hpp
/// Small statistics helpers used by the performance substrate (load-balance
/// metrics, scheduler evaluation) and by tests.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

namespace sphexa {

/// Sum of all elements; T(0) for an empty span.
template<class T>
T sum(std::span<const T> v)
{
    return std::accumulate(v.begin(), v.end(), T(0));
}

/// Arithmetic mean; T(0) for an empty span.
template<class T>
T mean(std::span<const T> v)
{
    return v.empty() ? T(0) : sum(v) / T(v.size());
}

/// Largest element; T(0) for an empty span.
template<class T>
T maxValue(std::span<const T> v)
{
    return v.empty() ? T(0) : *std::max_element(v.begin(), v.end());
}

/// Smallest element; T(0) for an empty span.
template<class T>
T minValue(std::span<const T> v)
{
    return v.empty() ? T(0) : *std::min_element(v.begin(), v.end());
}

/// Population standard deviation.
template<class T>
T stddev(std::span<const T> v)
{
    if (v.size() < 2) return T(0);
    T m  = mean(v);
    T ss = T(0);
    for (T x : v)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / T(v.size()));
}

/// Load-balance ratio in the POP sense: mean/max. 1.0 is perfectly balanced.
template<class T>
T loadBalanceRatio(std::span<const T> v)
{
    T mx = maxValue(v);
    return mx > T(0) ? mean(v) / mx : T(1);
}

/// Percent imbalance: (max/mean - 1) * 100.
template<class T>
T percentImbalance(std::span<const T> v)
{
    T m = mean(v);
    return m > T(0) ? (maxValue(v) / m - T(1)) * T(100) : T(0);
}

/// p-th percentile (0..100) with linear interpolation; copies the input.
template<class T>
T percentile(std::span<const T> v, double p)
{
    if (v.empty()) return T(0);
    std::vector<T> s(v.begin(), v.end());
    std::sort(s.begin(), s.end());
    double idx = p / 100.0 * double(s.size() - 1);
    auto lo = static_cast<std::size_t>(idx);
    auto hi = std::min(lo + 1, s.size() - 1);
    double frac = idx - double(lo);
    return T((1.0 - frac) * double(s[lo]) + frac * double(s[hi]));
}

/// Online accumulator for mean/min/max/stddev (Welford).
template<class T>
class RunningStats
{
public:
    void add(T x)
    {
        ++n_;
        if (n_ == 1)
        {
            min_ = max_ = x;
            mean_ = x;
            m2_ = T(0);
            return;
        }
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        T delta = x - mean_;
        mean_ += delta / T(n_);
        m2_ += delta * (x - mean_);
    }

    std::size_t count() const { return n_; }
    T mean() const { return mean_; }
    T min() const { return min_; }
    T max() const { return max_; }
    T variance() const { return n_ > 1 ? m2_ / T(n_) : T(0); }
    T stddev() const { return std::sqrt(variance()); }

private:
    std::size_t n_{0};
    T mean_{0}, m2_{0}, min_{0}, max_{0};
};

} // namespace sphexa

#pragma once

/// \file vec.hpp
/// Small fixed-size 3D vector used throughout the SPH solver.
///
/// All SPH state is stored in structure-of-arrays form (see
/// sph/particles.hpp); Vec3 is the register-level value type used inside
/// kernels when a full 3-vector is convenient.

#include <cmath>
#include <cstddef>
#include <ostream>

namespace sphexa {

/// A 3-component Cartesian vector of arithmetic type T.
template<class T>
struct Vec3
{
    T x{}, y{}, z{};

    constexpr Vec3() = default;
    constexpr Vec3(T x_, T y_, T z_) : x(x_), y(y_), z(z_) {}

    constexpr T& operator[](std::size_t i) { return (&x)[i]; }
    constexpr const T& operator[](std::size_t i) const { return (&x)[i]; }

    constexpr Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
    constexpr Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
    constexpr Vec3& operator*=(T s) { x *= s; y *= s; z *= s; return *this; }
    constexpr Vec3& operator/=(T s) { x /= s; y /= s; z /= s; return *this; }

    friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
    friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
    friend constexpr Vec3 operator*(Vec3 a, T s) { return a *= s; }
    friend constexpr Vec3 operator*(T s, Vec3 a) { return a *= s; }
    friend constexpr Vec3 operator/(Vec3 a, T s) { return a /= s; }
    friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

    friend constexpr bool operator==(const Vec3& a, const Vec3& b)
    {
        return a.x == b.x && a.y == b.y && a.z == b.z;
    }

    friend std::ostream& operator<<(std::ostream& os, const Vec3& v)
    {
        return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
    }
};

/// Inner product a . b.
template<class T>
constexpr T dot(const Vec3<T>& a, const Vec3<T>& b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

/// Cross product a x b.
template<class T>
constexpr Vec3<T> cross(const Vec3<T>& a, const Vec3<T>& b)
{
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

/// Squared Euclidean norm |a|^2 (avoids the sqrt of norm()).
template<class T>
constexpr T norm2(const Vec3<T>& a)
{
    return dot(a, a);
}

/// Euclidean norm |a|.
template<class T>
T norm(const Vec3<T>& a)
{
    return std::sqrt(norm2(a));
}

/// Component-wise minimum.
template<class T>
constexpr Vec3<T> min(const Vec3<T>& a, const Vec3<T>& b)
{
    return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y, a.z < b.z ? a.z : b.z};
}

/// Component-wise maximum.
template<class T>
constexpr Vec3<T> max(const Vec3<T>& a, const Vec3<T>& b)
{
    return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y, a.z > b.z ? a.z : b.z};
}

using Vec3d = Vec3<double>;
using Vec3f = Vec3<float>;

} // namespace sphexa

#pragma once

/// \file lookup_table.hpp
/// Tabulated 1D function with linear interpolation.
///
/// SPH production codes (SPHYNX in particular) evaluate the interpolation
/// kernel and its derivative through lookup tables because the sinc kernel's
/// transcendental evaluation dominates the density loop otherwise. The table
/// is sampled uniformly in q over the kernel support.

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace sphexa {

/// Uniformly sampled tabulation of a 1D function with linear interpolation
/// on evaluation; see kernels.hpp for the table-accelerated kernel path.
template<class T>
class LookupTable
{
public:
    LookupTable() = default;

    /// Tabulate f over [a, b] with n samples (n >= 2).
    template<class F>
    LookupTable(const F& f, T a, T b, std::size_t n)
        : a_(a), b_(b), inv_dx_(T(n - 1) / (b - a)), values_(n)
    {
        assert(n >= 2 && b > a);
        T dx = (b - a) / T(n - 1);
        for (std::size_t i = 0; i < n; ++i)
        {
            values_[i] = f(a + T(i) * dx);
        }
    }

    /// Linear interpolation; clamps outside [a, b].
    T operator()(T x) const
    {
        if (x <= a_) return values_.front();
        if (x >= b_) return values_.back();
        T pos = (x - a_) * inv_dx_;
        auto i = static_cast<std::size_t>(pos);
        T frac = pos - T(i);
        return values_[i] + frac * (values_[i + 1] - values_[i]);
    }

    /// Number of samples (0 for a default-constructed table).
    std::size_t size() const { return values_.size(); }
    /// Lower/upper bound of the tabulated interval [a, b].
    T lower() const { return a_; }
    T upper() const { return b_; }

private:
    T a_{0}, b_{1};
    T inv_dx_{1};
    std::vector<T> values_;
};

} // namespace sphexa

#pragma once

/// \file rng.hpp
/// Deterministic, fast random number generation.
///
/// Reproducibility is a stated design goal of the SPH-EXA mini-app
/// (Sec. 4 of the paper): all stochastic elements (lattice jitter, failure
/// injection, SDC bit flips, scheduler noise) draw from explicitly seeded
/// generators so every experiment is bit-reproducible.

#include <cstdint>

namespace sphexa {

/// SplitMix64: used to expand a single seed into stream seeds.
class SplitMix64
{
public:
    explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

    constexpr std::uint64_t next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// Xoshiro256++: the workhorse generator. Satisfies UniformRandomBitGenerator.
class Xoshiro256pp
{
public:
    using result_type = std::uint64_t;

    explicit constexpr Xoshiro256pp(std::uint64_t seed)
    {
        SplitMix64 sm(seed);
        for (auto& s : s_)
            s = sm.next();
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~std::uint64_t(0); }

    constexpr result_type operator()()
    {
        const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
        const std::uint64_t t      = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() { return double((*this)() >> 11) * 0x1.0p-53; }

    /// Uniform double in [a, b).
    double uniform(double a, double b) { return a + (b - a) * uniform(); }

    /// Uniform integer in [0, n).
    std::uint64_t uniformInt(std::uint64_t n)
    {
        // Lemire's nearly-divisionless method.
        __uint128_t m = __uint128_t((*this)()) * __uint128_t(n);
        return std::uint64_t(m >> 64);
    }

    /// Standard normal variate (Marsaglia polar method).
    double normal()
    {
        if (haveSpare_)
        {
            haveSpare_ = false;
            return spare_;
        }
        double u, v, s;
        do
        {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        double f   = __builtin_sqrt(-2.0 * __builtin_log(s) / s);
        spare_     = v * f;
        haveSpare_ = true;
        return u * f;
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4]{};
    double        spare_{0.0};
    bool          haveSpare_{false};
};

} // namespace sphexa

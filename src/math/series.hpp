#pragma once

/// \file series.hpp
/// Initial pressure field of the rotating square patch test.
///
/// Colagrossi (2005) derives the pressure consistent with rigid rotation of
/// an inviscid free-surface square patch from the incompressible Poisson
/// equation; the paper (Sec. 5.1) quotes it as the rapidly converging
/// double sine series
///
///   P0(x, y) = rho * sum_{m,n odd} -32 w^2 / (m n pi^2 [ (m pi/L)^2 + (n pi/L)^2 ])
///                    * sin(m pi x / L) * sin(n pi y / L)
///
/// with x, y in [0, L]. Only odd (m, n) terms contribute. The series
/// converges like 1/(m n (m^2+n^2)), so a modest truncation suffices; the
/// truncation order is exposed for convergence tests.

#include <cmath>
#include <numbers>

namespace sphexa {

template<class T>
class SquarePatchPressure
{
public:
    /// \param rho    fluid density
    /// \param omega  angular velocity of the rigid rotation [rad/s]
    /// \param L      side length of the square
    /// \param terms  number of odd terms per index (m, n = 1, 3, ..., 2*terms-1)
    SquarePatchPressure(T rho, T omega, T L, int terms = 32)
        : rho_(rho), omega_(omega), L_(L), terms_(terms)
    {
    }

    /// Pressure at (x, y) with x, y in [0, L]. Zero on the boundary.
    T operator()(T x, T y) const
    {
        constexpr T pi = std::numbers::pi_v<T>;
        T acc = T(0);
        for (int i = 0; i < terms_; ++i)
        {
            int m = 2 * i + 1;
            T km  = T(m) * pi / L_;
            T sm  = std::sin(km * x);
            for (int j = 0; j < terms_; ++j)
            {
                int n = 2 * j + 1;
                T kn  = T(n) * pi / L_;
                T coeff = T(-32) * omega_ * omega_ /
                          (T(m) * T(n) * pi * pi * (km * km + kn * kn));
                acc += coeff * sm * std::sin(kn * y);
            }
        }
        return rho_ * acc;
    }

    /// Pressure at the patch center (the extremum of the field).
    T centerValue() const { return (*this)(L_ / 2, L_ / 2); }

    int terms() const { return terms_; }
    T sideLength() const { return L_; }

private:
    T rho_, omega_, L_;
    int terms_;
};

} // namespace sphexa

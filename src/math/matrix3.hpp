#pragma once

/// \file matrix3.hpp
/// Symmetric 3x3 matrix algebra for the Integral Approach to Derivatives
/// (IAD, Garcia-Senz et al. 2012).
///
/// The IAD formulation requires, per particle, the inversion of the
/// symmetric "tau" matrix
///     tau_ij = sum_b V_b (r_b - r_a)_i (r_b - r_a)_j W_ab,
/// whose inverse supplies the coefficients c_ij used in the gradient
/// estimate. Only the six independent components are stored.

#include <array>
#include <cmath>
#include <limits>

#include "math/vec.hpp"

namespace sphexa {

/// Symmetric 3x3 matrix, stored as (xx, xy, xz, yy, yz, zz).
template<class T>
struct SymMat3
{
    T xx{}, xy{}, xz{}, yy{}, yz{}, zz{};

    constexpr SymMat3() = default;
    constexpr SymMat3(T xx_, T xy_, T xz_, T yy_, T yz_, T zz_)
        : xx(xx_), xy(xy_), xz(xz_), yy(yy_), yz(yz_), zz(zz_)
    {
    }

    /// Identity matrix.
    static constexpr SymMat3 identity() { return {T(1), T(0), T(0), T(1), T(0), T(1)}; }

    constexpr SymMat3& operator+=(const SymMat3& o)
    {
        xx += o.xx; xy += o.xy; xz += o.xz;
        yy += o.yy; yz += o.yz; zz += o.zz;
        return *this;
    }

    constexpr SymMat3& operator*=(T s)
    {
        xx *= s; xy *= s; xz *= s;
        yy *= s; yz *= s; zz *= s;
        return *this;
    }

    friend constexpr SymMat3 operator+(SymMat3 a, const SymMat3& b) { return a += b; }
    friend constexpr SymMat3 operator*(SymMat3 a, T s) { return a *= s; }
    friend constexpr SymMat3 operator*(T s, SymMat3 a) { return a *= s; }

    /// Rank-1 update: M += s * v v^T. The building block of the IAD tau matrix.
    constexpr void addOuter(const Vec3<T>& v, T s)
    {
        xx += s * v.x * v.x;
        xy += s * v.x * v.y;
        xz += s * v.x * v.z;
        yy += s * v.y * v.y;
        yz += s * v.y * v.z;
        zz += s * v.z * v.z;
    }

    /// Matrix-vector product.
    constexpr Vec3<T> operator*(const Vec3<T>& v) const
    {
        return {xx * v.x + xy * v.y + xz * v.z,
                xy * v.x + yy * v.y + yz * v.z,
                xz * v.x + yz * v.y + zz * v.z};
    }

    constexpr T determinant() const
    {
        return xx * (yy * zz - yz * yz) - xy * (xy * zz - yz * xz) + xz * (xy * yz - yy * xz);
    }

    constexpr T trace() const { return xx + yy + zz; }

    /// Inverse via the adjugate. Returns identity-scaled fallback when the
    /// matrix is numerically singular (isolated particle, degenerate
    /// neighbor geometry); IAD then degenerates gracefully.
    SymMat3 inverse() const
    {
        T det = determinant();
        // Scale-aware singularity guard: compare det against trace^3.
        T scale = trace();
        T tiny  = std::numeric_limits<T>::epsilon() * T(64);
        if (std::abs(det) < tiny * std::abs(scale * scale * scale) ||
            det == T(0))
        {
            return SymMat3::identity();
        }
        T inv = T(1) / det;
        SymMat3 r;
        r.xx = (yy * zz - yz * yz) * inv;
        r.xy = (xz * yz - xy * zz) * inv;
        r.xz = (xy * yz - xz * yy) * inv;
        r.yy = (xx * zz - xz * xz) * inv;
        r.yz = (xz * xy - xx * yz) * inv;
        r.zz = (xx * yy - xy * xy) * inv;
        return r;
    }

    /// Frobenius norm of the symmetric matrix.
    T frobeniusNorm() const
    {
        return std::sqrt(xx * xx + yy * yy + zz * zz + T(2) * (xy * xy + xz * xz + yz * yz));
    }
};

using SymMat3d = SymMat3<double>;
using SymMat3f = SymMat3<float>;

} // namespace sphexa

#pragma once

/// \file timestep.hpp
/// Time-step control (step 5 of Algorithm 1), in the three modes of
/// Table 2: "Equal, Variable, and Adaptive".
///
///  - Global (equal): one Delta t = min_i dt_i for all particles (SPHYNX).
///  - Individual (variable): hierarchical power-of-two bins baseDt * 2^k
///    (ChaNGa's multi-time-stepping). The system always advances by the
///    base step; a bin-k particle integrates over intervals of 2^k base
///    steps and has its forces recomputed only at interval boundaries. The
///    paper identifies multi-time-stepping as a primary load-imbalance
///    source (Sec. 4).
///  - Adaptive: one global step, re-evaluated each step and rate-limited
///    (SPH-flow).
///
/// Per-particle candidate: dt_i = C_cfl * h_i / vsig_i combined with the
/// acceleration criterion dt_i = C_acc * sqrt(h_i / |a_i|). In Individual
/// mode vsig_i is the particle's OWN max signal velocity from its last
/// force pass (ParticleSet::vsig) — clamping every particle to the global
/// maximum would collapse dt_i toward uniform and flatten the 2^k bin
/// histogram. Global/Adaptive keep the global clamp so their dt min is
/// bitwise identical to the seed behaviour.
///
/// ## The bin schedule
///
/// Activity is anchored at the last full synchronization (cycleStart()):
/// bin k is active `phase = step - cycleStart` base steps into the cycle
/// whenever phase % 2^k == 0 (binActive()). A particle is rebinned only
/// when its own interval starts, and a promotion is capped by the largest
/// power of two dividing the phase, so a new interval always ends on a
/// step where the particle is queried active again. When the phase
/// completes the full hierarchy (phase % 2^maxUsedBin == 0 — every bin's
/// interval ends simultaneously and the preceding force pass covered all
/// particles), the controller re-derives the whole hierarchy: new
/// baseDt = min_i dt_i, every particle rebinned, cycleStart reset.
/// maxUsedBin is always the max of the CURRENT ps.bin, so a checkpoint
/// restart (restore() + restoreBins()) reconstructs the schedule exactly.
///
/// ## Step-phase convention
///
/// advance() processes driver step s = stepCount() (pre-increment) and
/// returns with stepCount() == s + 1. Two different activity sets matter
/// during that driver step, both defined by binActive():
///  - kickStartSet(): particles whose interval STARTS at s — they receive
///    the interval-opening half-kick right after advance();
///  - activeParticles(): particles whose interval ENDS at s + 1 — the set
///    the force pass recomputes and the interval-closing kick updates.
///    Because advance() increments stepCount_ before the driver queries
///    activity, activeParticles() naturally evaluates at s + 1: the
///    "off-by-one" is the force/kick-end set, by design.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "sph/particles.hpp"

namespace sphexa {

enum class TimesteppingMode
{
    Global,     ///< equal steps for all particles
    Individual, ///< 2^k bins, hierarchical activity
    Adaptive,   ///< global but continuously adapted with growth limit
};

constexpr std::string_view timesteppingName(TimesteppingMode m)
{
    switch (m)
    {
        case TimesteppingMode::Global: return "Global";
        case TimesteppingMode::Individual: return "Individual";
        case TimesteppingMode::Adaptive: return "Adaptive";
    }
    return "?";
}

template<class T>
struct TimestepParams
{
    TimesteppingMode mode = TimesteppingMode::Global;
    T cflCourant    = T(0.3);
    T cflAccel      = T(0.25);
    T maxGrowth     = T(1.1);  ///< adaptive: dt may grow at most 10%/step
    int maxBins     = 8;       ///< individual: largest 2^k bin
    T maxDt         = T(1e9);
    T initialDt     = T(1e-7);
};

/// Per-particle time-step candidate from CFL + acceleration criteria.
/// Individual mode uses the particle's own signal velocity (ps.vsig,
/// recorded by the momentum/energy pass; \p maxVsignal is the fallback
/// before the first force pass), the global modes the global maximum.
template<class T>
T particleTimestep(const ParticleSet<T>& ps, std::size_t i, T maxVsignal, const TimestepParams<T>& par)
{
    T vsigRef = par.mode == TimesteppingMode::Individual && ps.vsig[i] > T(0)
                    ? ps.vsig[i]
                    : maxVsignal;
    T vsig = std::max(vsigRef, ps.c[i]);
    T dtCfl = par.cflCourant * ps.h[i] / vsig;
    T a2 = ps.ax[i] * ps.ax[i] + ps.ay[i] * ps.ay[i] + ps.az[i] * ps.az[i];
    T dtAcc = a2 > T(0) ? par.cflAccel * std::sqrt(ps.h[i] / std::sqrt(a2)) : par.maxDt;
    return std::min({dtCfl, dtAcc, par.maxDt});
}

/// Controller holding the time-step state across the simulation loop.
template<class T>
class TimestepController
{
public:
    explicit TimestepController(const TimestepParams<T>& par = {}) : par_(par) {}

    const TimestepParams<T>& params() const { return par_; }
    TimesteppingMode mode() const { return par_.mode; }

    /// The pure schedule rule: is bin \p k active \p phase base steps after
    /// the cycle origin (the last full-hierarchy synchronization)?
    static bool binActive(int k, std::uint64_t phase)
    {
        return (phase & ((std::uint64_t(1) << k) - 1)) == 0;
    }

    /// Evaluate per-particle time-steps and derive the next global step.
    /// \p maxVsignal is the maximum signal velocity from the force pass.
    /// Returns the Delta t to advance the system by (the base step in
    /// Individual mode).
    T advance(ParticleSet<T>& ps, T maxVsignal, const LoopPolicy& policy = {})
    {
        activeStep_ = stepCount_;
        if (par_.mode == TimesteppingMode::Individual)
        {
            advanceIndividual(ps, maxVsignal, policy);
        }
        else
        {
            advanceGlobal(ps, maxVsignal, policy);
        }
        ++stepCount_;
        return current_;
    }

    /// The force/kick-end set: particles whose integration interval ends at
    /// the CURRENT step counter. Called after advance() (which increments
    /// stepCount_), this is the set the next force pass must recompute and
    /// the interval-closing kick updates — see the step-phase convention in
    /// the file header. In Global/Adaptive modes all particles are always
    /// active.
    std::vector<std::size_t> activeParticles(const ParticleSet<T>& ps) const
    {
        return activeAt(ps, stepCount_);
    }

    /// The kick-start set: particles whose integration interval starts at
    /// the step advance() just processed. They receive the interval-opening
    /// half-kick with their own ps.dt before the drift.
    std::vector<std::size_t> kickStartSet(const ParticleSet<T>& ps) const
    {
        return activeAt(ps, activeStep_);
    }

    T currentDt() const { return current_; }
    /// Individual mode: the base (smallest-bin) step of the current cycle.
    T baseDt() const { return baseDt_; }
    std::uint64_t stepCount() const { return stepCount_; }
    /// Individual mode: the step index of the last full synchronization
    /// (the origin the 2^k schedule is anchored at).
    std::uint64_t cycleStart() const { return cycleStart_; }
    /// Largest bin currently in use (max of ps.bin after the last advance).
    int maxUsedBin() const { return maxUsedBin_; }

    /// True when every bin's interval ends at the current step counter: the
    /// last force pass covered all particles, so diagnostics that need a
    /// globally consistent state (total energy with full potential) are
    /// valid here. Always true outside Individual mode.
    bool atFullSync() const
    {
        if (par_.mode != TimesteppingMode::Individual || baseDt_ <= T(0)) return true;
        return binActive(maxUsedBin_, stepCount_ - cycleStart_);
    }

    /// Restore controller state after a checkpoint restart: skip the
    /// initial-dt ramp and resume the step counter and schedule anchor.
    /// \p baseDt defaults to \p currentDt — exact in Individual mode, where
    /// the system always advances by the base step (restoring zero would
    /// leave every bin-relative ratio stale/dividing by zero until the next
    /// full sync). Call restoreBins() with the restored particle set
    /// afterwards to rebuild the hierarchy bookkeeping.
    void restore(std::uint64_t stepCount, T currentDt, T baseDt = T(0),
                 std::uint64_t cycleStart = 0)
    {
        stepCount_  = stepCount;
        activeStep_ = stepCount > 0 ? stepCount - 1 : 0;
        current_    = currentDt;
        baseDt_     = baseDt > T(0) ? baseDt : currentDt;
        cycleStart_ = cycleStart;
        firstStep_  = false;
    }

    /// Re-derive the bin-hierarchy bookkeeping from a restored particle
    /// set. maxUsedBin_ is by construction always the max of the current
    /// ps.bin (advance() re-derives it every step), so scanning the
    /// restored bins reconstructs the uninterrupted schedule exactly.
    void restoreBins(const ParticleSet<T>& ps)
    {
        int maxBin = 0;
        for (int b : ps.bin)
            maxBin = std::max(maxBin, b);
        maxUsedBin_ = maxBin;
    }

private:
    void advanceGlobal(ParticleSet<T>& ps, T maxVsignal, const LoopPolicy& policy)
    {
        std::size_t n = ps.size();

        // exact min reduction over per-worker partials (selection, not
        // accumulation: bitwise stable for any pool size or chunking)
        std::vector<WorkerSlot<T>> workerMin(parallelForWorkers(),
                                             WorkerSlot<T>{par_.maxDt});
        parallelFor(
            n,
            [&](std::size_t i, std::size_t worker) {
                T dti = particleTimestep(ps, i, maxVsignal, par_);
                ps.dt[i] = dti;
                workerMin[worker].value = std::min(workerMin[worker].value, dti);
            },
            policy);
        T dtMin = par_.maxDt;
        for (const auto& v : workerMin)
            dtMin = std::min(dtMin, v.value);
        if (firstStep_)
        {
            firstStep_ = false;
            dtMin = std::min(dtMin, par_.initialDt);
        }

        if (par_.mode == TimesteppingMode::Adaptive)
        {
            current_ = (current_ > T(0)) ? std::min(dtMin, current_ * par_.maxGrowth)
                                         : dtMin;
        }
        else
        {
            current_ = dtMin;
        }
    }

    /// One advance of the hierarchical binned schedule; see the file header
    /// for the full scheme.
    void advanceIndividual(ParticleSet<T>& ps, T maxVsignal, const LoopPolicy& policy)
    {
        std::size_t n     = ps.size();
        std::uint64_t s   = activeStep_;
        bool fullSync     = baseDt_ <= T(0) || binActive(maxUsedBin_, s - cycleStart_);

        if (fullSync)
        {
            // every particle's interval ends here and the previous force
            // pass covered the whole set: re-derive the hierarchy from
            // scratch (exact per-worker min reduction as in Global mode)
            std::vector<WorkerSlot<T>> workerMin(parallelForWorkers(),
                                                 WorkerSlot<T>{par_.maxDt});
            cand_.resize(n);
            parallelFor(
                n,
                [&](std::size_t i, std::size_t worker) {
                    T dti    = particleTimestep(ps, i, maxVsignal, par_);
                    cand_[i] = dti;
                    workerMin[worker].value = std::min(workerMin[worker].value, dti);
                },
                policy);
            T dtMin = par_.maxDt;
            for (const auto& v : workerMin)
                dtMin = std::min(dtMin, v.value);

            cycleStart_ = s;
            if (firstStep_)
            {
                // initial-dt ramp: like Global mode, the very first base
                // step is clamped because the seed accelerations are not
                // yet trustworthy — but binning against the clamped base
                // would promote everyone 2^maxBins high and freeze the
                // hierarchy for a whole tiny-step cycle. One flat bin-0
                // step instead; the next advance is then a full sync that
                // builds the real hierarchy from converged forces.
                firstStep_ = false;
                baseDt_    = std::min(dtMin, par_.initialDt);
                parallelFor(
                    n,
                    [&](std::size_t i, std::size_t) {
                        ps.bin[i] = 0;
                        ps.dt[i]  = baseDt_;
                    },
                    policy);
                maxUsedBin_ = 0;
            }
            else
            {
                baseDt_ = dtMin;
                std::vector<WorkerSlot<int>> workerMax(parallelForWorkers());
                parallelFor(
                    n,
                    [&](std::size_t i, std::size_t worker) {
                        int k     = binFor(cand_[i]);
                        ps.bin[i] = k;
                        ps.dt[i]  = snappedDt(k);
                        workerMax[worker].value = std::max(workerMax[worker].value, k);
                    },
                    policy);
                int maxBin = 0;
                for (const auto& v : workerMax)
                    maxBin = std::max(maxBin, v.value);
                maxUsedBin_ = maxBin;
            }
        }
        else
        {
            // mid-cycle: rebin only the particles whose interval starts at
            // s (their forces are fresh — they were the previous force
            // set). Promotion is capped by the largest power of two
            // dividing the phase so the new interval still ends on an
            // active query; the cap is < maxUsedBin_ by construction, so
            // the cycle length never grows mid-cycle. A particle whose
            // fresh candidate fell below the base step lands in bin 0 and
            // is re-evaluated every base step until the next full sync
            // re-derives baseDt_.
            std::uint64_t phase = s - cycleStart_;
            int cap = std::min(par_.maxBins, int(std::countr_zero(phase)));
            parallelFor(
                n,
                [&](std::size_t i, std::size_t) {
                    if (!binActive(ps.bin[i], phase)) return;
                    T dti     = particleTimestep(ps, i, maxVsignal, par_);
                    int k     = std::min(binFor(dti), cap);
                    ps.bin[i] = k;
                    ps.dt[i]  = snappedDt(k);
                },
                policy);
            // demotions may have emptied the top bin: re-derive the cycle
            // modulus from the data so it always equals max(ps.bin) — the
            // invariant restoreBins() relies on
            std::vector<WorkerSlot<int>> workerMax(parallelForWorkers());
            parallelFor(
                n,
                [&](std::size_t i, std::size_t worker) {
                    workerMax[worker].value = std::max(workerMax[worker].value, ps.bin[i]);
                },
                policy);
            int maxBin = 0;
            for (const auto& v : workerMax)
                maxBin = std::max(maxBin, v.value);
            maxUsedBin_ = maxBin;
        }
        current_ = baseDt_; // the system advances by the smallest bin
    }

    /// Bin k holds particles with candidate dt in [baseDt 2^k, baseDt 2^(k+1)).
    int binFor(T dtCandidate) const
    {
        int k    = 0;
        T scaled = dtCandidate / baseDt_;
        while (k < par_.maxBins && scaled >= T(2))
        {
            scaled /= T(2);
            ++k;
        }
        return k;
    }

    /// The snapped per-particle step of bin k: exactly baseDt * 2^k, so the
    /// interval-opening/closing kicks can use ps.dt literally.
    T snappedDt(int k) const { return baseDt_ * T(std::uint64_t(1) << k); }

    std::vector<std::size_t> activeAt(const ParticleSet<T>& ps, std::uint64_t step) const
    {
        std::vector<std::size_t> act;
        std::size_t n = ps.size();
        act.reserve(n);
        if (par_.mode != TimesteppingMode::Individual)
        {
            for (std::size_t i = 0; i < n; ++i)
                act.push_back(i);
            return act;
        }
        std::uint64_t phase = step - cycleStart_;
        for (std::size_t i = 0; i < n; ++i)
        {
            if (binActive(ps.bin[i], phase)) act.push_back(i);
        }
        return act;
    }

    TimestepParams<T> par_;
    T current_{0};
    T baseDt_{0};
    std::uint64_t stepCount_{0};
    std::uint64_t activeStep_{0}; ///< the step the last advance() processed
    std::uint64_t cycleStart_{0}; ///< schedule anchor: last full sync step
    int maxUsedBin_{0};           ///< max of the current ps.bin
    bool firstStep_{true};
    std::vector<T> cand_; ///< per-particle dt candidates (sync scratch)
};

} // namespace sphexa

#pragma once

/// \file timestep.hpp
/// Time-step control (step 5 of Algorithm 1), in the three modes of
/// Table 2: "Equal, Variable, and Adaptive".
///
///  - Global (equal): one Delta t = min_i dt_i for all particles (SPHYNX).
///  - Individual (variable): power-of-two bins dt_min * 2^k; a particle is
///    active only when the global step counter is a multiple of 2^k
///    (ChaNGa's multi-time-stepping). The paper identifies multi-
///    time-stepping as a primary load-imbalance source (Sec. 4).
///  - Adaptive: one global step, re-evaluated each step and rate-limited
///    (SPH-flow).
///
/// Per-particle candidate: dt_i = C_cfl * h_i / vsig_i combined with the
/// acceleration criterion dt_i = C_acc * sqrt(h_i / |a_i|).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "sph/particles.hpp"

namespace sphexa {

enum class TimesteppingMode
{
    Global,     ///< equal steps for all particles
    Individual, ///< 2^k bins, hierarchical activity
    Adaptive,   ///< global but continuously adapted with growth limit
};

constexpr std::string_view timesteppingName(TimesteppingMode m)
{
    switch (m)
    {
        case TimesteppingMode::Global: return "Global";
        case TimesteppingMode::Individual: return "Individual";
        case TimesteppingMode::Adaptive: return "Adaptive";
    }
    return "?";
}

template<class T>
struct TimestepParams
{
    TimesteppingMode mode = TimesteppingMode::Global;
    T cflCourant    = T(0.3);
    T cflAccel      = T(0.25);
    T maxGrowth     = T(1.1);  ///< adaptive: dt may grow at most 10%/step
    int maxBins     = 8;       ///< individual: largest 2^k bin
    T maxDt         = T(1e9);
    T initialDt     = T(1e-7);
};

/// Per-particle time-step candidate from CFL + acceleration criteria.
template<class T>
T particleTimestep(const ParticleSet<T>& ps, std::size_t i, T maxVsignal, const TimestepParams<T>& par)
{
    T vsig = std::max(maxVsignal, ps.c[i]);
    T dtCfl = par.cflCourant * ps.h[i] / vsig;
    T a2 = ps.ax[i] * ps.ax[i] + ps.ay[i] * ps.ay[i] + ps.az[i] * ps.az[i];
    T dtAcc = a2 > T(0) ? par.cflAccel * std::sqrt(ps.h[i] / std::sqrt(a2)) : par.maxDt;
    return std::min({dtCfl, dtAcc, par.maxDt});
}

/// Controller holding the time-step state across the simulation loop.
template<class T>
class TimestepController
{
public:
    explicit TimestepController(const TimestepParams<T>& par = {}) : par_(par) {}

    const TimestepParams<T>& params() const { return par_; }
    TimesteppingMode mode() const { return par_.mode; }

    /// Evaluate per-particle time-steps and derive the next global step.
    /// \p maxVsignal is the maximum signal velocity from the force pass.
    /// Returns the Delta t to advance the system by.
    T advance(ParticleSet<T>& ps, T maxVsignal, const LoopPolicy& policy = {})
    {
        std::size_t n = ps.size();

        // exact min reduction over per-worker partials (selection, not
        // accumulation: bitwise stable for any pool size or chunking)
        std::vector<WorkerSlot<T>> workerMin(parallelForWorkers(),
                                             WorkerSlot<T>{par_.maxDt});
        parallelFor(
            n,
            [&](std::size_t i, std::size_t worker) {
                T dti = particleTimestep(ps, i, maxVsignal, par_);
                ps.dt[i] = dti;
                workerMin[worker].value = std::min(workerMin[worker].value, dti);
            },
            policy);
        T dtMin = par_.maxDt;
        for (const auto& v : workerMin)
            dtMin = std::min(dtMin, v.value);
        if (firstStep_)
        {
            firstStep_ = false;
            dtMin = std::min(dtMin, par_.initialDt);
        }

        switch (par_.mode)
        {
            case TimesteppingMode::Global:
            {
                current_ = dtMin;
                break;
            }
            case TimesteppingMode::Adaptive:
            {
                current_ = (current_ > T(0)) ? std::min(dtMin, current_ * par_.maxGrowth)
                                             : dtMin;
                break;
            }
            case TimesteppingMode::Individual:
            {
                // bin particles: bin k holds particles with dt in
                // [dtMin 2^k, dtMin 2^(k+1))
                baseDt_ = dtMin;
                parallelFor(
                    n,
                    [&](std::size_t i, std::size_t) {
                        int k = 0;
                        T scaled = ps.dt[i] / baseDt_;
                        while (k < par_.maxBins && scaled >= T(2))
                        {
                            scaled /= T(2);
                            ++k;
                        }
                        ps.bin[i] = k;
                    },
                    policy);
                current_ = baseDt_; // system advances by the smallest bin
                break;
            }
        }
        ++stepCount_;
        return current_;
    }

    /// Individual mode: which particles are active at the current step
    /// (bin k active every 2^k base steps). In Global/Adaptive modes all
    /// particles are always active.
    std::vector<std::size_t> activeParticles(const ParticleSet<T>& ps) const
    {
        std::vector<std::size_t> act;
        std::size_t n = ps.size();
        act.reserve(n);
        if (par_.mode != TimesteppingMode::Individual)
        {
            for (std::size_t i = 0; i < n; ++i)
                act.push_back(i);
            return act;
        }
        for (std::size_t i = 0; i < n; ++i)
        {
            std::uint64_t period = std::uint64_t(1) << ps.bin[i];
            if (stepCount_ % period == 0) act.push_back(i);
        }
        return act;
    }

    T currentDt() const { return current_; }
    std::uint64_t stepCount() const { return stepCount_; }

    /// Restore controller state after a checkpoint restart: skip the
    /// initial-dt cap and resume the step counter (2^k bin phase).
    void restore(std::uint64_t stepCount, T currentDt)
    {
        stepCount_ = stepCount;
        current_   = currentDt;
        firstStep_ = false;
    }

private:
    TimestepParams<T> par_;
    T current_{0};
    T baseDt_{0};
    std::uint64_t stepCount_{0};
    bool firstStep_{true};
};

} // namespace sphexa

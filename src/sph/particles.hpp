#pragma once

/// \file particles.hpp
/// Structure-of-arrays particle container: the central data structure of the
/// mini-app.
///
/// All per-particle state lives in separate contiguous arrays (the layout the
/// three parent codes converge to for vectorization), 64-bit per the paper's
/// precision requirement (templated, instantiated with double by default).
/// Fields are enumerable by name so the checkpoint/restart, SDC-detection and
/// I/O substrates can treat the container generically.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sphexa {

/// Per-particle state for the SPH solver, structure-of-arrays.
template<class T>
class ParticleSet
{
public:
    using Real = T;

    // --- kinematics ---
    std::vector<T> x, y, z;    ///< positions
    std::vector<T> vx, vy, vz; ///< velocities
    std::vector<T> ax, ay, az; ///< accelerations (SPH + gravity)

    // --- thermodynamics / SPH state ---
    std::vector<T> m;      ///< particle mass (equal or variable, Table 2)
    std::vector<T> h;      ///< smoothing length
    std::vector<T> rho;    ///< density
    std::vector<T> p;      ///< pressure
    std::vector<T> c;      ///< sound speed
    std::vector<T> u;      ///< specific internal energy
    std::vector<T> du;     ///< du/dt
    std::vector<T> du_m1;  ///< du/dt at previous step (Adams-Bashforth pair)
    std::vector<T> gradh;  ///< grad-h correction term (Omega_a)
    std::vector<T> xmass;  ///< generalized volume-element weight X_a
    std::vector<T> vol;    ///< volume element V_a = X_a / kx_a
    std::vector<T> divv;   ///< velocity divergence
    std::vector<T> curlv;  ///< |velocity curl| (Balsara switch input)
    std::vector<T> balsara;///< Balsara limiter value in [0, 1]
    std::vector<T> dt;     ///< per-particle time-step (individual stepping)
    std::vector<T> vsig;   ///< max signal velocity seen by this particle in
                           ///< its last force pass (per-particle CFL input;
                           ///< zero until the first momentum/energy pass)

    // --- IAD gradient coefficients (symmetric 3x3 inverse, 6 components) ---
    std::vector<T> c11, c12, c13, c22, c23, c33;

    // --- identity / bookkeeping ---
    std::vector<std::uint64_t> id;  ///< globally unique particle id
    std::vector<int>           nc;  ///< neighbor count of the last search
    std::vector<int>           bin; ///< 2^k time-step bin (individual stepping)

    ParticleSet() = default;

    explicit ParticleSet(std::size_t n) { resize(n); }

    std::size_t size() const { return x.size(); }
    bool empty() const { return x.empty(); }

    void resize(std::size_t n)
    {
        for (auto* f : realFields())
            f->resize(n, T(0));
        id.resize(n, 0);
        nc.resize(n, 0);
        bin.resize(n, 0);
    }

    void reserve(std::size_t n)
    {
        for (auto* f : realFields())
            f->reserve(n);
        id.reserve(n);
        nc.reserve(n);
        bin.reserve(n);
    }

    void clear() { resize(0); }

    /// All floating-point fields, in a fixed canonical order.
    std::vector<std::vector<T>*> realFields()
    {
        return {&x,   &y,   &z,    &vx,    &vy,     &vz,  &ax,  &ay,  &az,  &m,
                &h,   &rho, &p,    &c,     &u,      &du,  &du_m1, &gradh, &xmass, &vol,
                &divv, &curlv, &balsara, &dt, &c11, &c12, &c13, &c22, &c23, &c33,
                &vsig};
    }

    std::vector<const std::vector<T>*> realFields() const
    {
        auto fields = const_cast<ParticleSet*>(this)->realFields();
        return {fields.begin(), fields.end()};
    }

    /// Canonical field names, index-aligned with realFields().
    static const std::vector<std::string>& realFieldNames()
    {
        static const std::vector<std::string> names = {
            "x",   "y",   "z",    "vx",    "vy",     "vz",  "ax",  "ay",  "az",  "m",
            "h",   "rho", "p",    "c",     "u",      "du",  "du_m1", "gradh", "xmass", "vol",
            "divv", "curlv", "balsara", "dt", "c11", "c12", "c13", "c22", "c23", "c33",
            "vsig"};
        return names;
    }

    /// Access a floating-point field by name; throws on unknown name.
    std::vector<T>& field(std::string_view name)
    {
        const auto& names = realFieldNames();
        auto fields = realFields();
        for (std::size_t i = 0; i < names.size(); ++i)
        {
            if (names[i] == name) return *fields[i];
        }
        throw std::out_of_range("ParticleSet: unknown field " + std::string(name));
    }

    /// Append particle \p j of \p src to this set (used by halo exchange and
    /// particle migration).
    void appendFrom(const ParticleSet& src, std::size_t j)
    {
        auto dstFields = realFields();
        auto srcFields = src.realFields();
        for (std::size_t f = 0; f < dstFields.size(); ++f)
        {
            dstFields[f]->push_back((*srcFields[f])[j]);
        }
        id.push_back(src.id[j]);
        nc.push_back(src.nc[j]);
        bin.push_back(src.bin[j]);
    }

    /// Extract the particles at \p indices into a new set.
    ParticleSet gather(std::span<const std::size_t> indices) const
    {
        ParticleSet out;
        out.reserve(indices.size());
        for (std::size_t j : indices)
            out.appendFrom(*this, j);
        return out;
    }

    /// Remove the particles at \p indices (must be sorted ascending).
    void eraseSorted(std::span<const std::size_t> indices)
    {
        if (indices.empty()) return;
        std::size_t n = size();
        std::vector<char> dead(n, 0);
        for (std::size_t j : indices)
            dead[j] = 1;
        std::size_t w = 0;
        auto fields = realFields();
        for (std::size_t r = 0; r < n; ++r)
        {
            if (dead[r]) continue;
            if (w != r)
            {
                for (auto* f : fields)
                    (*f)[w] = (*f)[r];
                id[w]  = id[r];
                nc[w]  = nc[r];
                bin[w] = bin[r];
            }
            ++w;
        }
        resize(w);
    }

    /// Concatenate all of \p other onto this set.
    void append(const ParticleSet& other)
    {
        auto dstFields = realFields();
        auto srcFields = other.realFields();
        for (std::size_t f = 0; f < dstFields.size(); ++f)
        {
            dstFields[f]->insert(dstFields[f]->end(), srcFields[f]->begin(), srcFields[f]->end());
        }
        id.insert(id.end(), other.id.begin(), other.id.end());
        nc.insert(nc.end(), other.nc.begin(), other.nc.end());
        bin.insert(bin.end(), other.bin.begin(), other.bin.end());
    }

    /// Reorder all fields by the permutation \p order (order[k] = old index
    /// of the particle that moves to slot k). Used after SFC sorting.
    void reorder(std::span<const std::size_t> order)
    {
        std::size_t n = size();
        if (order.size() != n) throw std::invalid_argument("reorder: bad permutation size");
        std::vector<T> tmp(n);
        for (auto* f : realFields())
        {
            for (std::size_t k = 0; k < n; ++k)
                tmp[k] = (*f)[order[k]];
            f->swap(tmp);
        }
        std::vector<std::uint64_t> tmpId(n);
        for (std::size_t k = 0; k < n; ++k)
            tmpId[k] = id[order[k]];
        id.swap(tmpId);
        std::vector<int> tmpI(n);
        for (std::size_t k = 0; k < n; ++k)
            tmpI[k] = nc[order[k]];
        nc.swap(tmpI);
        for (std::size_t k = 0; k < n; ++k)
            tmpI[k] = bin[order[k]];
        bin.swap(tmpI);
    }
};

using ParticleSetD = ParticleSet<double>;
using ParticleSetF = ParticleSet<float>;

} // namespace sphexa

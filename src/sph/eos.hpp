#pragma once

/// \file eos.hpp
/// Equations of state.
///
/// The two test cases of the paper exercise two different closures:
///  - Evrard collapse: ideal gas, gamma = 5/3 (astrophysics codes)
///  - rotating square patch: weakly-compressible liquid, for which the CFD
///    parent (SPH-flow) uses a stiffened Tait/Cole equation
/// plus an isothermal EOS used in astrophysical cold-flow setups.

#include <cmath>
#include <limits>
#include <string_view>
#include <variant>

namespace sphexa {

/// Result of an EOS evaluation.
template<class T>
struct EosResult
{
    T pressure;
    T soundSpeed;
};

/// Ideal gas: P = (gamma - 1) rho u,  c = sqrt(gamma P / rho).
template<class T>
class IdealGasEos
{
public:
    explicit IdealGasEos(T gamma = T(5) / T(3)) : gamma_(gamma) {}

    EosResult<T> operator()(T rho, T u) const
    {
        T p = (gamma_ - T(1)) * rho * u;
        T c = std::sqrt(gamma_ * p / rho);
        return {p, c};
    }

    T gamma() const { return gamma_; }

private:
    T gamma_;
};

/// Tait (Cole) equation for weakly-compressible liquids:
///     P = B [ (rho/rho0)^gamma - 1 ],   B = rho0 c0^2 / gamma.
/// c0 is chosen ~10x the maximum flow speed so density varies < 1%.
///
/// An optional pressure floor implements the "tensile stability control" the
/// paper mentions for the rotating square patch (Sec. 5.1): the SPH density
/// summation under-counts at free surfaces, and without a floor the stiff
/// Tait response turns that deficiency into spuriously large negative
/// pressures that destroy the patch (the tensile instability).
template<class T>
class TaitEos
{
public:
    TaitEos(T rho0, T c0, T gamma = T(7),
            T pressureFloor = -std::numeric_limits<T>::infinity())
        : rho0_(rho0), c0_(c0), gamma_(gamma), B_(rho0 * c0 * c0 / gamma),
          floor_(pressureFloor)
    {
    }

    EosResult<T> operator()(T rho, T /*u*/) const
    {
        T ratio = rho / rho0_;
        T p     = B_ * (std::pow(ratio, gamma_) - T(1));
        if (p < floor_) p = floor_;
        // c^2 = dP/drho = gamma B / rho0 (rho/rho0)^(gamma-1)
        T c2 = gamma_ * B_ / rho0_ * std::pow(ratio, gamma_ - T(1));
        return {p, std::sqrt(c2)};
    }

    T referenceDensity() const { return rho0_; }
    T referenceSoundSpeed() const { return c0_; }
    T gamma() const { return gamma_; }
    T pressureFloor() const { return floor_; }

private:
    T rho0_, c0_, gamma_, B_, floor_;
};

/// Isothermal: P = c_iso^2 rho with constant sound speed.
template<class T>
class IsothermalEos
{
public:
    explicit IsothermalEos(T cIso) : cIso_(cIso) {}

    EosResult<T> operator()(T rho, T /*u*/) const
    {
        return {cIso_ * cIso_ * rho, cIso_};
    }

    T soundSpeed() const { return cIso_; }

private:
    T cIso_;
};

/// Type-erased EOS usable in the simulation driver without virtual dispatch
/// in the inner loop (evaluated per particle, not per pair).
template<class T>
class Eos
{
public:
    Eos() : eos_(IdealGasEos<T>{}) {}
    Eos(IdealGasEos<T> e) : eos_(e) {}
    Eos(TaitEos<T> e) : eos_(e) {}
    Eos(IsothermalEos<T> e) : eos_(e) {}

    EosResult<T> operator()(T rho, T u) const
    {
        return std::visit([&](const auto& e) { return e(rho, u); }, eos_);
    }

    std::string_view name() const
    {
        switch (eos_.index())
        {
            case 0: return "ideal-gas";
            case 1: return "tait";
            case 2: return "isothermal";
        }
        return "?";
    }

    bool isIdealGas() const { return eos_.index() == 0; }

private:
    std::variant<IdealGasEos<T>, TaitEos<T>, IsothermalEos<T>> eos_;
};

} // namespace sphexa

#pragma once

/// \file kernels.hpp
/// SPH interpolation kernels: the three families the SPH-EXA mini-app must
/// support per Table 2 of the paper.
///
///  - Sinc family S_n (SPHYNX; Cabezon, Garcia-Senz & Relano 2008)
///  - M4 cubic spline (ChaNGa; Monaghan & Lattanzio 1985)
///  - Wendland C2/C4/C6 (ChaNGa, SPH-flow; Dehnen & Aly 2012)
///  - Debrun spiky (WCSPH/free-surface codes; Desbrun & Gascuel 1996),
///    whose gradient does NOT vanish at the origin — the property pressure
///    forces need to keep close particle pairs apart in weakly-compressible
///    flows
///
/// All kernels are normalized in 3D and share a compact support radius of
/// 2h, so neighbor discovery is kernel-agnostic. q = r/h throughout:
///
///     W(r, h)      = sigma / h^3 * f(q)
///     dW/dr        = sigma / h^4 * f'(q)
///     dW/dh        = -sigma / h^4 * (3 f(q) + q f'(q))     (grad-h term)
///
/// The sinc normalization has no closed form for arbitrary exponent n; it is
/// computed at construction by adaptive quadrature (math/quadrature.hpp).

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string_view>

#include "math/lookup_table.hpp"
#include "math/quadrature.hpp"
#include "math/vec.hpp"

namespace sphexa {

enum class KernelType
{
    Sinc,        ///< S_n(q) = B_n sinc(pi q / 2)^n, SPHYNX default (n ~ 5)
    CubicSpline, ///< M4 spline, the classic SPH kernel
    WendlandC2,
    WendlandC4,
    WendlandC6,
    DebrunSpiky, ///< f(q) = (2 - q)^3: the WCSPH pressure kernel
};

constexpr std::string_view kernelName(KernelType k)
{
    switch (k)
    {
        case KernelType::Sinc: return "Sinc";
        case KernelType::CubicSpline: return "M4 spline";
        case KernelType::WendlandC2: return "Wendland C2";
        case KernelType::WendlandC4: return "Wendland C4";
        case KernelType::WendlandC6: return "Wendland C6";
        case KernelType::DebrunSpiky: return "Debrun spiky";
    }
    return "?";
}

/// A 3D-normalized compact-support SPH kernel.
///
/// The class is a value type: cheap to copy, safe to share across threads
/// (all evaluation methods are const and touch only immutable state).
template<class T>
class Kernel
{
public:
    /// All supported kernels vanish at q = supportRadius.
    static constexpr T supportRadius = T(2);

    /// Build a kernel of the given type. \p sincExponent is used only by
    /// KernelType::Sinc; SPHYNX operates n in [3, 12] with 5 typical.
    explicit Kernel(KernelType type = KernelType::Sinc, T sincExponent = T(5))
        : type_(type), n_(sincExponent)
    {
        if (type_ == KernelType::Sinc)
        {
            if (!(n_ > T(2))) throw std::invalid_argument("sinc exponent must exceed 2");
            // B_n = 1 / (4 pi int_0^2 f(q) q^2 dq)
            T integral = integrate<T>([this](T q) { return fqRaw(q) * q * q; }, T(0),
                                      supportRadius, T(1e-14));
            sigma_ = T(1) / (T(4) * std::numbers::pi_v<T> * integral);
        }
        else
        {
            sigma_ = closedFormSigma(type_);
        }
    }

    KernelType type() const { return type_; }
    T sincExponent() const { return n_; }

    /// 3D normalization constant sigma (W = sigma/h^3 f(q)).
    T normalization() const { return sigma_; }

    /// Dimensionless kernel shape f(q), with f(q >= 2) = 0.
    T fq(T q) const { return q >= supportRadius ? T(0) : sigma_ * fqRaw(q); }

    /// Dimensionless derivative f'(q).
    T dfq(T q) const { return q >= supportRadius ? T(0) : sigma_ * dfqRaw(q); }

    /// Kernel value W(r, h).
    T value(T r, T h) const { return fq(r / h) / (h * h * h); }

    /// Radial derivative dW/dr (negative inside the support).
    T derivative(T r, T h) const { return dfq(r / h) / (h * h * h * h); }

    /// Derivative with respect to the smoothing length, dW/dh.
    T dh(T r, T h) const
    {
        T q = r / h;
        return -(T(3) * fq(q) + q * dfq(q)) / (h * h * h * h);
    }

private:
    static T closedFormSigma(KernelType type)
    {
        constexpr T pi = std::numbers::pi_v<T>;
        switch (type)
        {
            case KernelType::CubicSpline: return T(1) / pi;
            case KernelType::WendlandC2: return T(21) / (T(16) * pi);
            case KernelType::WendlandC4: return T(495) / (T(256) * pi);
            case KernelType::WendlandC6: return T(1365) / (T(512) * pi);
            // int_0^2 (2-q)^3 q^2 dq = 16/15  =>  sigma = 15/(64 pi); in the
            // classic support-H form this is the 15/(pi H^6) spiky of
            // Desbrun & Gascuel with H = 2h
            case KernelType::DebrunSpiky: return T(15) / (T(64) * pi);
            default: return T(0); // unreachable; sinc handled numerically
        }
    }

    /// Un-normalized shape.
    T fqRaw(T q) const
    {
        switch (type_)
        {
            case KernelType::Sinc:
            {
                return std::pow(sinc(std::numbers::pi_v<T> / 2 * q), n_);
            }
            case KernelType::CubicSpline:
            {
                if (q < T(1)) return T(1) - T(1.5) * q * q + T(0.75) * q * q * q;
                T t = T(2) - q;
                return T(0.25) * t * t * t;
            }
            case KernelType::WendlandC2:
            {
                T t = T(1) - q / 2;
                T t2 = t * t;
                return t2 * t2 * (T(2) * q + T(1));
            }
            case KernelType::WendlandC4:
            {
                T t = T(1) - q / 2;
                T t2 = t * t;
                return t2 * t2 * t2 * ((T(35) / 12) * q * q + T(3) * q + T(1));
            }
            case KernelType::WendlandC6:
            {
                T t = T(1) - q / 2;
                T t2 = t * t;
                T t4 = t2 * t2;
                return t4 * t4 * (T(4) * q * q * q + (T(25) / 4) * q * q + T(4) * q + T(1));
            }
            case KernelType::DebrunSpiky:
            {
                T t = T(2) - q;
                return t * t * t;
            }
        }
        return T(0);
    }

    /// Un-normalized derivative d f / d q.
    T dfqRaw(T q) const
    {
        switch (type_)
        {
            case KernelType::Sinc:
            {
                constexpr T halfPi = std::numbers::pi_v<T> / 2;
                T x = halfPi * q;
                T s = sinc(x);
                // d/dq [S(x)^n] = n S^{n-1} S'(x) * halfPi
                return n_ * std::pow(s, n_ - T(1)) * dsinc(x) * halfPi;
            }
            case KernelType::CubicSpline:
            {
                if (q < T(1)) return -T(3) * q + T(2.25) * q * q;
                T t = T(2) - q;
                return -T(0.75) * t * t;
            }
            case KernelType::WendlandC2:
            {
                T t = T(1) - q / 2;
                return -T(5) * q * t * t * t;
            }
            case KernelType::WendlandC4:
            {
                T t  = T(1) - q / 2;
                T t2 = t * t;
                return -(T(7) / 3) * q * (T(5) * q + T(2)) * t2 * t2 * t;
            }
            case KernelType::WendlandC6:
            {
                T t  = T(1) - q / 2;
                T t2 = t * t;
                T t4 = t2 * t2;
                return -(T(11) / 4) * q * (T(8) * q * q + T(7) * q + T(2)) * t4 * t2 * t;
            }
            case KernelType::DebrunSpiky:
            {
                // f'(0) = -12: the spiky gradient stays finite and nonzero
                // at the origin instead of vanishing like the spline family
                T t = T(2) - q;
                return -T(3) * t * t;
            }
        }
        return T(0);
    }

    /// sinc(x) = sin(x)/x with the removable singularity handled by series.
    static T sinc(T x)
    {
        if (std::abs(x) < T(1e-4))
        {
            T x2 = x * x;
            return T(1) - x2 / 6 + x2 * x2 / 120;
        }
        return std::sin(x) / x;
    }

    /// d sinc / d x.
    static T dsinc(T x)
    {
        if (std::abs(x) < T(1e-4))
        {
            T x2 = x * x;
            return -x / 3 + x * x2 / 30;
        }
        return (x * std::cos(x) - std::sin(x)) / (x * x);
    }

    KernelType type_;
    T n_;
    T sigma_{};
};

/// Table-accelerated kernel: SPHYNX-style lookup of f(q) and f'(q).
///
/// Density/momentum loops can use this drop-in to avoid transcendental
/// evaluation of the sinc kernel; accuracy is controlled by table size.
template<class T>
class TabulatedKernel
{
public:
    explicit TabulatedKernel(const Kernel<T>& kernel, std::size_t tableSize = 20000)
        : fTable_([&](T q) { return kernel.fq(q); }, T(0), Kernel<T>::supportRadius, tableSize)
        , dfTable_([&](T q) { return kernel.dfq(q); }, T(0), Kernel<T>::supportRadius, tableSize)
        , type_(kernel.type())
    {
    }

    KernelType type() const { return type_; }

    T fq(T q) const { return q >= Kernel<T>::supportRadius ? T(0) : fTable_(q); }
    T dfq(T q) const { return q >= Kernel<T>::supportRadius ? T(0) : dfTable_(q); }

    T value(T r, T h) const { return fq(r / h) / (h * h * h); }
    T derivative(T r, T h) const { return dfq(r / h) / (h * h * h * h); }
    T dh(T r, T h) const
    {
        T q = r / h;
        return -(T(3) * fq(q) + q * dfq(q)) / (h * h * h * h);
    }

private:
    LookupTable<T> fTable_;
    LookupTable<T> dfTable_;
    KernelType type_;
};

// --- Debrun spiky closed forms ----------------------------------------------
//
// The WCSPH pressure kernel as standalone (r, h) functions: W, dW/dr, the
// radial gradient vector, and the Laplacian nabla^2 W that weakly-
// compressible viscosity operators use. Equivalent to
// Kernel<T>(KernelType::DebrunSpiky) but without constructing a kernel, and
// defined (as zero) for negative r so boundary-distance arithmetic can call
// them unguarded.

/// 3D spiky normalization sigma = 15/(64 pi) (support radius 2h).
template<class T>
constexpr T debrunSpikySigma()
{
    return T(15) / (T(64) * std::numbers::pi_v<T>);
}

/// W(r, h) = sigma/h^3 (2 - r/h)^3 for 0 <= r < 2h, else 0.
template<class T>
T debrunSpikyKernel(T r, T h)
{
    T q = r / h;
    if (q < T(0) || q >= T(2)) return T(0);
    T t = T(2) - q;
    return debrunSpikySigma<T>() * t * t * t / (h * h * h);
}

/// dW/dr = -3 sigma/h^4 (2 - r/h)^2: finite and nonzero at r = 0 (the
/// defining spiky property — spline-family gradients vanish there).
template<class T>
T debrunSpikyDwdr(T r, T h)
{
    T q = r / h;
    if (q < T(0) || q >= T(2)) return T(0);
    T t = T(2) - q;
    return -T(3) * debrunSpikySigma<T>() * t * t / (h * h * h * h);
}

/// Gradient vector: d/|d| * dW/dr for separation d (zero at zero distance).
template<class T>
Vec3<T> debrunSpikyGradient(const Vec3<T>& d, T h)
{
    T r = std::sqrt(norm2(d));
    if (r <= T(0)) return {T(0), T(0), T(0)};
    T scale = debrunSpikyDwdr(r, h) / r;
    return {d.x * scale, d.y * scale, d.z * scale};
}

/// Radial Laplacian nabla^2 W = sigma/h^5 (f''(q) + 2 f'(q)/q)
///                            = 12 sigma/h^5 (2 - q)(q - 1)/q.
/// Singular (-> -inf) as r -> 0, like the classic spiky Laplacian; callers
/// evaluate it at finite pair separations only.
template<class T>
T debrunSpikyLaplacian(T r, T h)
{
    T q = r / h;
    if (q <= T(0) || q >= T(2)) return T(0);
    T t = T(2) - q;
    return T(12) * debrunSpikySigma<T>() * t * (q - T(1)) / (q * h * h * h * h * h);
}

} // namespace sphexa

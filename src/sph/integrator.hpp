#pragma once

/// \file integrator.hpp
/// Leapfrog (kick-drift-kick) time integration — step 6 of Algorithm 1
/// ("Update velocity and position").
///
/// Internal energy advances with a trapezoidal update using the stored
/// previous du/dt, matching the second-order accuracy of the position
/// update. Positions are wrapped through periodic boundaries.

#include <span>

#include "domain/box.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/particles.hpp"

namespace sphexa {

/// First kick: v^{n+1/2} = v^n + a^n dt/2, then drift x^{n+1} = x^n + v^{n+1/2} dt.
template<class T>
void kickDrift(ParticleSet<T>& ps, T dtStep, const Box<T>& box,
               const LoopPolicy& policy = {})
{
    parallelFor(
        ps.size(),
        [&](std::size_t i, std::size_t) {
            T half = T(0.5) * dtStep;
            ps.vx[i] += ps.ax[i] * half;
            ps.vy[i] += ps.ay[i] * half;
            ps.vz[i] += ps.az[i] * half;

            Vec3<T> p{ps.x[i] + ps.vx[i] * dtStep, ps.y[i] + ps.vy[i] * dtStep,
                      ps.z[i] + ps.vz[i] * dtStep};
            p = box.wrap(p);
            ps.x[i] = p.x;
            ps.y[i] = p.y;
            ps.z[i] = p.z;
        },
        policy);
}

/// Second kick: v^{n+1} = v^{n+1/2} + a^{n+1} dt/2; energy trapezoid:
/// u^{n+1} = u^n + (du^n + du^{n+1})/2 dt.
///
/// \p enforcePositiveU floors u at a tiny positive value. This is physical
/// for ideal-gas runs (u is a temperature); it must be OFF for barotropic
/// closures (Tait), where u passively tracks compression work relative to
/// the reference state and legitimately goes negative — flooring it there
/// silently injects energy.
template<class T>
void kickEnergy(ParticleSet<T>& ps, T dtStep, bool enforcePositiveU = true,
                const LoopPolicy& policy = {})
{
    parallelFor(
        ps.size(),
        [&](std::size_t i, std::size_t) {
            T half = T(0.5) * dtStep;
            ps.vx[i] += ps.ax[i] * half;
            ps.vy[i] += ps.ay[i] * half;
            ps.vz[i] += ps.az[i] * half;

            ps.u[i] += T(0.5) * (ps.du[i] + ps.du_m1[i]) * dtStep;
            if (enforcePositiveU && ps.u[i] < T(0)) ps.u[i] = T(1e-30);
            ps.du_m1[i] = ps.du[i];
        },
        policy);
}

/// Binned (individual time-step) leapfrog, interval-opening half: for every
/// particle whose integration interval starts now, kick the velocity by its
/// OWN half step a * ps.dt[i]/2 and stash the interval-start du/dt. The
/// stash makes the interval-closing energy update in kickEndIndividual() a
/// trapezoid over the particle's full interval: the base-step drifts
/// contribute du_start * dt_i in total, and the closing correction
/// (du_end - du_start) * dt_i / 2 turns that into (du_start + du_end)/2 * dt_i.
template<class T>
void kickStartIndividual(ParticleSet<T>& ps, std::span<const std::size_t> starting,
                         const LoopPolicy& policy = {})
{
    parallelFor(
        starting.size(),
        [&](std::size_t idx, std::size_t) {
            std::size_t i = starting[idx];
            T half = T(0.5) * ps.dt[i];
            ps.vx[i] += ps.ax[i] * half;
            ps.vy[i] += ps.ay[i] * half;
            ps.vz[i] += ps.az[i] * half;
            ps.du_m1[i] = ps.du[i];
        },
        policy);
}

/// Binned leapfrog, base-step drift of EVERY particle: positions move with
/// the half-kicked velocity, and the internal energy is predicted forward
/// with the frozen interval-start du/dt — this is the "inactive particles
/// are extrapolated" half of multi-time-stepping: a mid-interval particle
/// still presents time-consistent x/v/u to its active neighbors' kernels.
template<class T>
void driftAll(ParticleSet<T>& ps, T dtBase, const Box<T>& box,
              bool enforcePositiveU = true, const LoopPolicy& policy = {})
{
    parallelFor(
        ps.size(),
        [&](std::size_t i, std::size_t) {
            Vec3<T> p{ps.x[i] + ps.vx[i] * dtBase, ps.y[i] + ps.vy[i] * dtBase,
                      ps.z[i] + ps.vz[i] * dtBase};
            p = box.wrap(p);
            ps.x[i] = p.x;
            ps.y[i] = p.y;
            ps.z[i] = p.z;

            ps.u[i] += ps.du[i] * dtBase;
            if (enforcePositiveU && ps.u[i] < T(0)) ps.u[i] = T(1e-30);
        },
        policy);
}

/// Binned leapfrog, interval-closing half: for every particle whose interval
/// ends now (fresh forces just computed over this set), close the velocity
/// kick with the new acceleration and correct the predicted energy from the
/// rectangle du_start * dt_i to the trapezoid — see kickStartIndividual().
template<class T>
void kickEndIndividual(ParticleSet<T>& ps, std::span<const std::size_t> ending,
                       bool enforcePositiveU = true, const LoopPolicy& policy = {})
{
    parallelFor(
        ending.size(),
        [&](std::size_t idx, std::size_t) {
            std::size_t i = ending[idx];
            T half = T(0.5) * ps.dt[i];
            ps.vx[i] += ps.ax[i] * half;
            ps.vy[i] += ps.ay[i] * half;
            ps.vz[i] += ps.az[i] * half;

            ps.u[i] += (ps.du[i] - ps.du_m1[i]) * half;
            if (enforcePositiveU && ps.u[i] < T(0)) ps.u[i] = T(1e-30);
        },
        policy);
}

} // namespace sphexa

#pragma once

/// \file eos_wcsph.hpp
/// The Cole/Tait closure of weakly-compressible SPH (WCSPH) in the
/// reference form free-surface solvers ship it:
///
///     B = c0^2 rho0 / gamma                     (the "weak" stiffness)
///     P(rho) = B [ (rho/rho0)^gamma - 1 ]
///     c(rho)^2 = dP/drho = c0^2 (rho/rho0)^(gamma-1)
///
/// c0 is chosen ~10x the maximum expected flow speed so density varies by
/// less than 1% (the weak-compressibility regime). The standalone
/// calPressureWcsph/calSoundSpeedWcsph functions mirror the
/// cal_pressure_wcsph(rho, rho0, c^2, gamma) reference formula of WCSPH
/// codes and are the analytic oracle the golden tests check TaitEos
/// (sph/eos.hpp) against; WcsphEosParams is the SimulationConfig block that
/// selects the closure at runtime (core/config.hpp, eosFromConfig).

#include <cmath>
#include <limits>

#include "sph/eos.hpp"

namespace sphexa {

/// Tait stiffness B = c^2 rho0 / gamma from the squared reference sound
/// speed (the "B_weak" of WCSPH references).
template<class T>
T wcsphStiffness(T rho0, T c0Squared, T gamma)
{
    return c0Squared * rho0 / gamma;
}

/// Reference Cole/Tait pressure, cal_pressure_wcsph form:
/// P = B [(rho/rho0)^gamma - 1] with B = c^2 rho0 / gamma.
template<class T>
T calPressureWcsph(T rho, T rho0, T c0Squared, T gamma)
{
    T b = wcsphStiffness(rho0, c0Squared, gamma);
    return b * (std::pow(rho / rho0, gamma) - T(1));
}

/// Reference Tait sound speed c = sqrt(dP/drho) = c0 (rho/rho0)^((gamma-1)/2).
template<class T>
T calSoundSpeedWcsph(T rho, T rho0, T c0Squared, T gamma)
{
    return std::sqrt(c0Squared * std::pow(rho / rho0, gamma - T(1)));
}

/// The SimulationConfig-selectable WCSPH closure parameters. Defaults give
/// water-like stiffness in natural units; scenario generators (square
/// patch, dam break) overwrite rho0/c0 from their flow scales.
template<class T>
struct WcsphEosParams
{
    T rho0  = T(1);  ///< reference (free-surface) density
    T c0    = T(10); ///< reference sound speed, ~10x the max flow speed
    T gamma = T(7);  ///< Tait exponent (water)
    /// Tensile stability control: pressures are floored here (-inf = off).
    T pressureFloor = -std::numeric_limits<T>::infinity();
};

/// The TaitEos a WCSPH parameter block selects.
template<class T>
TaitEos<T> makeTaitEos(const WcsphEosParams<T>& p)
{
    return TaitEos<T>(p.rho0, p.c0, p.gamma, p.pressureFloor);
}

} // namespace sphexa

#pragma once

/// \file divcurl.hpp
/// Velocity divergence and curl, plus the Balsara (1995) artificial-
/// viscosity limiter
///     f_a = |div v| / (|div v| + |curl v| + 1e-4 c_a / h_a),
/// which suppresses AV in pure shear flows — essential for the rotating
/// square patch, which is exactly such a flow.

#include <cmath>
#include <span>
#include <utility>

#include "domain/box.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/iad.hpp"
#include "sph/kernels.hpp"
#include "sph/particles.hpp"
#include "tree/neighbors.hpp"

namespace sphexa {

/// Phase G of Algorithm 1: fills ps.divv, ps.curlv (magnitude), and the
/// ps.balsara limiter for every particle in `active` (all particles when
/// empty). Gradients use IAD coefficients or plain kernel derivatives
/// according to `mode`; requires density/volume and, for IAD, the phase-F
/// coefficients to be up to date.
template<class T, class KernelT>
void computeDivCurl(ParticleSet<T>& ps, const NeighborList<T>& nl, const KernelT& kernel,
                    const Box<T>& box, GradientMode mode,
                    std::type_identity_t<std::span<const std::size_t>> active = {},
                    const LoopPolicy& policy = {})
{
    std::size_t count = active.empty() ? ps.size() : active.size();
    parallelFor(
        count,
        [&](std::size_t idx, std::size_t) {
            std::size_t i = active.empty() ? idx : active[idx];
            Vec3<T> pi{ps.x[i], ps.y[i], ps.z[i]};
            Vec3<T> vi{ps.vx[i], ps.vy[i], ps.vz[i]};
            T div = T(0);
            Vec3<T> curl{};

            for (auto j : nl.neighbors(i))
            {
                Vec3<T> rab = box.delta(pi, Vec3<T>{ps.x[j], ps.y[j], ps.z[j]});
                T r = norm(rab);
                Vec3<T> gw;
                if (mode == GradientMode::IAD)
                {
                    gw = iadGradient(ps, i, -rab, r, kernel);
                }
                else
                {
                    if (r <= T(0)) continue;
                    gw = rab * (kernel.derivative(r, ps.h[i]) / r);
                }
                Vec3<T> vab = vi - Vec3<T>{ps.vx[j], ps.vy[j], ps.vz[j]};
                T Vb = ps.vol[j];
                // div v = -sum_b V_b v_ab . grad W ; curl v = +sum_b V_b v_ab x grad W
                div -= Vb * dot(vab, gw);
                curl += Vb * cross(vab, gw);
            }

            ps.divv[i]  = div;
            ps.curlv[i] = norm(curl);
            T denom = std::abs(div) + ps.curlv[i] + T(1e-4) * ps.c[i] / ps.h[i];
            ps.balsara[i] = denom > T(0) ? std::abs(div) / denom : T(1);
        },
        policy);
}

} // namespace sphexa

#pragma once

/// \file divcurl.hpp
/// Velocity divergence and curl, plus the Balsara (1995) artificial-
/// viscosity limiter
///     f_a = |div v| / (|div v| + |curl v| + 1e-4 c_a / h_a),
/// which suppresses AV in pure shear flows — essential for the rotating
/// square patch, which is exactly such a flow.

#include <cmath>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>

#include "backend/divcurl_kernel.hpp"
#include "backend/kernel_backend.hpp"
#include "backend/lane_kernel.hpp"
#include "domain/box.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/iad.hpp"
#include "sph/kernels.hpp"
#include "sph/particles.hpp"
#include "tree/neighbors.hpp"

namespace sphexa {

/// Phase G of Algorithm 1: fills ps.divv, ps.curlv (magnitude), and the
/// ps.balsara limiter for every particle in `active` (all particles when
/// empty). Gradients use IAD coefficients or plain kernel derivatives
/// according to `mode`; requires density/volume and, for IAD, the phase-F
/// coefficients to be up to date. A dispatch shell over
/// backend/divcurl_kernel.hpp, selected by \p be (Scalar when defaulted;
/// lane evaluation covers the analytic Kernel only).
template<class T, class KernelT>
void computeDivCurl(ParticleSet<T>& ps, const NeighborList<T>& nl, const KernelT& kernel,
                    const Box<T>& box, GradientMode mode,
                    std::type_identity_t<std::span<const std::size_t>> active = {},
                    const LoopPolicy& policy = {}, const ComputeBackend<T>& be = {})
{
    std::size_t count = active.empty() ? ps.size() : active.size();
    if constexpr (std::is_same_v<KernelT, Kernel<T>>)
    {
        if (be.kind == KernelBackend::Simd)
        {
            std::optional<LaneKernel<T>> transient;
            const LaneKernel<T>* lanes = be.lanes;
            if (!lanes)
            {
                transient.emplace(kernel);
                lanes = &*transient;
            }
            const backend::PeriodicWrap<T> wrap(box);
            parallelFor(
                count,
                [&](std::size_t idx, std::size_t) {
                    std::size_t i = active.empty() ? idx : active[idx];
                    auto row = nl.row(i);
                    backend::divCurlParticleSimd(ps, i, row.data, row.count, *lanes,
                                                 wrap, mode);
                },
                policy);
            return;
        }
    }
    parallelFor(
        count,
        [&](std::size_t idx, std::size_t) {
            std::size_t i = active.empty() ? idx : active[idx];
            auto row = nl.row(i);
            backend::divCurlParticle(ps, i, row.data, row.count, kernel, box, mode);
        },
        policy);
}

} // namespace sphexa

#pragma once

/// \file density.hpp
/// SPH density summation with standard and generalized volume elements
/// (Table 2 of the paper: "Volume elements: Generalized, Standard").
///
/// Generalized volume elements follow SPHYNX (Cabezon, Garcia-Senz &
/// Figueira 2017): each particle carries a weight X_a; the volume element is
///
///     V_a = X_a / kx_a,     kx_a = sum_b X_b W_ab(h_a)   (self included)
///
/// and the density estimate is rho_a = m_a / V_a = m_a kx_a / X_a.
/// X_a = m_a reproduces the standard summation rho_a = sum_b m_b W_ab.
/// X_a = (m_a / rho_a)^p (p ~ 0.9, using the previous step's density)
/// reduces the E0 interpolation error in strong density gradients.
///
/// The grad-h correction term Omega_a (Springel & Hernquist 2002 form,
/// generalized to VE weights) is accumulated in the same pass.

#include <cmath>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>

#include "backend/density_kernel.hpp"
#include "backend/kernel_backend.hpp"
#include "backend/lane_kernel.hpp"
#include "domain/box.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/kernels.hpp"
#include "sph/particles.hpp"
#include "tree/neighbors.hpp"

namespace sphexa {

/// Volume-element formulation selector.
enum class VolumeElements
{
    Standard,    ///< X_a = m_a  (classic summation)
    Generalized, ///< X_a = (m_a / rho_a)^p with previous-step density
};

constexpr std::string_view volumeElementsName(VolumeElements ve)
{
    return ve == VolumeElements::Standard ? "Standard" : "Generalized";
}

/// Fill the VE weights X_a for the chosen formulation. For the generalized
/// form the previous density estimate is used; on the very first call
/// (rho == 0) it falls back to the standard weights.
template<class T>
void computeVolumeElementWeights(ParticleSet<T>& ps, VolumeElements ve, T exponent = T(0.9),
                                 const LoopPolicy& policy = {})
{
    parallelFor(
        ps.size(),
        [&](std::size_t i, std::size_t) {
            if (ve == VolumeElements::Standard || ps.rho[i] <= T(0))
            {
                ps.xmass[i] = ps.m[i];
            }
            else
            {
                ps.xmass[i] = std::pow(ps.m[i] / ps.rho[i], exponent);
            }
        },
        policy);
}

/// Density summation (step 3 of Algorithm 1, first SPH kernel): a dispatch
/// shell over the stateless per-particle kernels in
/// backend/density_kernel.hpp, selected by \p be (Scalar when defaulted).
///
/// Reads x/y/z, h, m, xmass and the neighbor lists; writes kx-based volume
/// vol, density rho and the grad-h term gradh (Omega_a). Lane evaluation
/// covers the analytic Kernel only; other kernel types (TabulatedKernel)
/// always run the Scalar reference path.
template<class T, class KernelT>
void computeDensity(ParticleSet<T>& ps, const NeighborList<T>& nl, const KernelT& kernel,
                    const Box<T>& box,
                    std::type_identity_t<std::span<const std::size_t>> active = {},
                    const LoopPolicy& policy = {}, const ComputeBackend<T>& be = {})
{
    std::size_t count = active.empty() ? ps.size() : active.size();
    if constexpr (std::is_same_v<KernelT, Kernel<T>>)
    {
        if (be.kind == KernelBackend::Simd)
        {
            std::optional<LaneKernel<T>> transient;
            const LaneKernel<T>* lanes = be.lanes;
            if (!lanes)
            {
                transient.emplace(kernel);
                lanes = &*transient;
            }
            const backend::PeriodicWrap<T> wrap(box);
            parallelFor(
                count,
                [&](std::size_t idx, std::size_t) {
                    std::size_t i = active.empty() ? idx : active[idx];
                    auto row = nl.row(i);
                    backend::densityParticleSimd(ps, i, row.data, row.count, *lanes,
                                                 wrap);
                },
                policy);
            return;
        }
    }
    parallelFor(
        count,
        [&](std::size_t idx, std::size_t) {
            std::size_t i = active.empty() ? idx : active[idx];
            auto row = nl.row(i);
            backend::densityParticle(ps, i, row.data, row.count, kernel, box);
        },
        policy);
}

} // namespace sphexa

#pragma once

/// \file density.hpp
/// SPH density summation with standard and generalized volume elements
/// (Table 2 of the paper: "Volume elements: Generalized, Standard").
///
/// Generalized volume elements follow SPHYNX (Cabezon, Garcia-Senz &
/// Figueira 2017): each particle carries a weight X_a; the volume element is
///
///     V_a = X_a / kx_a,     kx_a = sum_b X_b W_ab(h_a)   (self included)
///
/// and the density estimate is rho_a = m_a / V_a = m_a kx_a / X_a.
/// X_a = m_a reproduces the standard summation rho_a = sum_b m_b W_ab.
/// X_a = (m_a / rho_a)^p (p ~ 0.9, using the previous step's density)
/// reduces the E0 interpolation error in strong density gradients.
///
/// The grad-h correction term Omega_a (Springel & Hernquist 2002 form,
/// generalized to VE weights) is accumulated in the same pass.

#include <cmath>
#include <span>
#include <utility>

#include "domain/box.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/kernels.hpp"
#include "sph/particles.hpp"
#include "tree/neighbors.hpp"

namespace sphexa {

/// Volume-element formulation selector.
enum class VolumeElements
{
    Standard,    ///< X_a = m_a  (classic summation)
    Generalized, ///< X_a = (m_a / rho_a)^p with previous-step density
};

constexpr std::string_view volumeElementsName(VolumeElements ve)
{
    return ve == VolumeElements::Standard ? "Standard" : "Generalized";
}

/// Fill the VE weights X_a for the chosen formulation. For the generalized
/// form the previous density estimate is used; on the very first call
/// (rho == 0) it falls back to the standard weights.
template<class T>
void computeVolumeElementWeights(ParticleSet<T>& ps, VolumeElements ve, T exponent = T(0.9),
                                 const LoopPolicy& policy = {})
{
    parallelFor(
        ps.size(),
        [&](std::size_t i, std::size_t) {
            if (ve == VolumeElements::Standard || ps.rho[i] <= T(0))
            {
                ps.xmass[i] = ps.m[i];
            }
            else
            {
                ps.xmass[i] = std::pow(ps.m[i] / ps.rho[i], exponent);
            }
        },
        policy);
}

/// Density summation (step 3 of Algorithm 1, first SPH kernel).
///
/// Reads x/y/z, h, m, xmass and the neighbor lists; writes kx-based volume
/// vol, density rho and the grad-h term gradh (Omega_a).
template<class T, class KernelT>
void computeDensity(ParticleSet<T>& ps, const NeighborList<T>& nl, const KernelT& kernel,
                    const Box<T>& box,
                    std::type_identity_t<std::span<const std::size_t>> active = {},
                    const LoopPolicy& policy = {})
{
    std::size_t count = active.empty() ? ps.size() : active.size();
    parallelFor(
        count,
        [&](std::size_t idx, std::size_t) {
            std::size_t i = active.empty() ? idx : active[idx];
            T hi  = ps.h[i];
            Vec3<T> pi{ps.x[i], ps.y[i], ps.z[i]};

            // self contribution
            T kx   = ps.xmass[i] * kernel.value(T(0), hi);
            T dkxh = ps.xmass[i] * kernel.dh(T(0), hi);

            for (auto j : nl.neighbors(i))
            {
                Vec3<T> d = box.delta(pi, Vec3<T>{ps.x[j], ps.y[j], ps.z[j]});
                T r = norm(d);
                kx += ps.xmass[j] * kernel.value(r, hi);
                dkxh += ps.xmass[j] * kernel.dh(r, hi);
            }

            ps.vol[i] = ps.xmass[i] / kx;
            ps.rho[i] = ps.m[i] * kx / ps.xmass[i];
            // Omega_a = 1 + h/(3 kx) * d(kx)/dh
            ps.gradh[i] = T(1) + hi / (T(3) * kx) * dkxh;
            // guard against pathological neighbor geometry
            if (!(ps.gradh[i] > T(0.1)) || !(ps.gradh[i] < T(10)))
            {
                ps.gradh[i] = T(1);
            }
        },
        policy);
}

} // namespace sphexa

#pragma once

/// \file smoothing_length.hpp
/// Smoothing-length adaptation (step 2 of Algorithm 1: "Find neighbors and
/// smoothing length").
///
/// "The simulation will try to reach a given target number of neighbors and
/// this influences the value of the resulting smoothing length" (paper,
/// footnote 2). Each particle's h is iterated until its neighbor count is
/// within tolerance of the target (~10^2 per the paper), re-searching only
/// the non-converged particles each pass — an individual tree walk.

#include <cmath>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "sph/particles.hpp"
#include "tree/neighbors.hpp"
#include "tree/octree.hpp"

namespace sphexa {

template<class T>
struct SmoothingLengthParams
{
    unsigned targetNeighbors = 100; ///< ~10^2 neighbors (paper Sec. 3)
    unsigned tolerance       = 5;   ///< acceptable |count - target|
    unsigned maxIterations   = 10;
    T minH = T(1e-12);
};

struct SmoothingLengthResult
{
    unsigned iterations   = 0; ///< passes actually performed
    std::size_t unconverged = 0; ///< particles still out of tolerance
};

/// Is neighbor count \p c within tolerance of the target?
inline bool neighborCountConverged(unsigned c, unsigned target, unsigned tolerance)
{
    return c + tolerance >= target && c <= target + tolerance;
}

/// One multiplicative h update driving the count toward the target:
///     h <- h * 0.5 * (1 + cbrt(target / count)),
/// a damped fixed-point step (count scales ~ h^3).
template<class T>
T updateH(T h, unsigned count, unsigned target)
{
    T c = T(count > 0 ? count : 1);
    return h * T(0.5) * (T(1) + std::cbrt(T(target) / c));
}

/// Iterate h and neighbor lists to convergence. The octree must already be
/// built over current positions; it is reused (h changes don't move
/// particles). On return, nl holds lists consistent with the final h.
///
/// With an empty \p subset, all particles are iterated and (unless
/// \p reuseLists says the caller just filled nl for the current h) an
/// initial global walk happens inside. A non-empty subset restricts the
/// iteration to those indices (a distributed rank's owned particles) and
/// always assumes current lists — both drivers then follow the exact same
/// h path.
template<class T>
SmoothingLengthResult
updateSmoothingLengths(ParticleSet<T>& ps, const Octree<T>& tree, NeighborList<T>& nl,
                       const SmoothingLengthParams<T>& params = {},
                       std::type_identity_t<std::span<const std::size_t>> subset = {},
                       bool reuseLists = false, const LoopPolicy& policy = {})
{
    std::size_t n = subset.empty() ? ps.size() : subset.size();
    auto target   = [&](std::size_t k) { return subset.empty() ? k : subset[k]; };
    if (subset.empty() && !reuseLists)
    {
        findNeighborsGlobal(tree, std::span<const T>(ps.x), std::span<const T>(ps.y),
                            std::span<const T>(ps.z), std::span<const T>(ps.h), nl);
    }

    SmoothingLengthResult res;
    std::vector<std::size_t> active;
    active.reserve(n);

    for (unsigned it = 0; it < params.maxIterations; ++it)
    {
        active.clear();
        for (std::size_t k = 0; k < n; ++k)
        {
            std::size_t i = target(k);
            unsigned c = nl.count(i);
            ps.nc[i]   = int(c);
            if (!neighborCountConverged(c, params.targetNeighbors, params.tolerance))
            {
                active.push_back(i);
            }
        }
        if (active.empty()) break;

        ++res.iterations;
        parallelFor(
            active.size(),
            [&](std::size_t a, std::size_t) {
                std::size_t i = active[a];
                ps.h[i] = std::max(params.minH,
                                   updateH(ps.h[i], nl.count(i), params.targetNeighbors));
            },
            policy);

        findNeighborsIndividual(tree, std::span<const T>(ps.x), std::span<const T>(ps.y),
                                std::span<const T>(ps.z), std::span<const T>(ps.h), active,
                                nl);
    }

    for (std::size_t k = 0; k < n; ++k)
    {
        std::size_t i = target(k);
        unsigned c = nl.count(i);
        ps.nc[i]   = int(c);
        if (!neighborCountConverged(c, params.targetNeighbors, params.tolerance))
        {
            ++res.unconverged;
        }
    }
    return res;
}

/// Initial h estimate for roughly uniform particle distributions: the radius
/// enclosing the target number of neighbors in a uniform density field.
template<class T>
T initialSmoothingLength(std::size_t nParticles, const Box<T>& box, unsigned targetNeighbors)
{
    T volPerParticle = box.volume() / T(nParticles);
    // (4/3) pi (2h)^3 * n / V = target  =>  h = 0.5 * cbrt(3 target V / (4 pi n))
    T r = std::cbrt(T(3) * T(targetNeighbors) * volPerParticle /
                    (T(4) * std::numbers::pi_v<T>));
    return T(0.5) * r;
}

} // namespace sphexa

#pragma once

/// \file momentum_energy.hpp
/// SPH momentum and energy equations (step 3 of Algorithm 1), in both
/// gradient formulations of Table 2:
///
///  - Kernel derivatives (ChaNGa, SPH-flow):
///      dv_a/dt = -sum_b m_b [ P_a/(Om_a rho_a^2) gradW_ab(h_a)
///                           + P_b/(Om_b rho_b^2) gradW_ab(h_b) ]  + AV
///  - IAD (SPHYNX): gradW_ab(h_a) replaced by A_ab(h_a) = C(a) r_ba W_ab.
///
/// Artificial viscosity is Monaghan (1992) with the Balsara switch:
///      Pi_ab = (-alpha cbar mu + beta mu^2)/rhobar * (f_a + f_b)/2,
///      mu = hbar v_ab.r_ab / (r^2 + eps hbar^2)  when v_ab.r_ab < 0.
///
/// The loop is accumulate-to-self only (no scatter), making it lock-free;
/// exact pairwise antisymmetry (and therefore momentum conservation) holds
/// when neighbor lists are pair-symmetric (see symmetrizeNeighborList).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "backend/kernel_backend.hpp"
#include "backend/lane_kernel.hpp"
#include "backend/momentum_kernel.hpp"
#include "domain/box.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/iad.hpp"
#include "sph/kernels.hpp"
#include "sph/particles.hpp"
#include "tree/neighbors.hpp"

namespace sphexa {

/// Compute accelerations ax/ay/az and du/dt for all particles.
/// Gravity is accumulated separately and must be added afterwards.
/// A dispatch shell over backend/momentum_kernel.hpp (which also defines
/// ArtificialViscosity and MomentumEnergyStats), selected by \p be (Scalar
/// when defaulted; lane evaluation covers the analytic Kernel only). The
/// shell owns the cross-particle vsig max reduction; per-particle work lives
/// in the backend kernels.
template<class T, class KernelT>
MomentumEnergyStats<T> computeMomentumEnergy(ParticleSet<T>& ps, const NeighborList<T>& nl,
                                             const KernelT& kernel, const Box<T>& box,
                                             GradientMode mode,
                                             const ArtificialViscosity<T>& av = {},
                                             std::type_identity_t<std::span<const std::size_t>> active = {},
                                             const LoopPolicy& policy = {},
                                             const ComputeBackend<T>& be = {})
{
    std::size_t count = active.empty() ? ps.size() : active.size();

    // exact max reduction over per-worker partials: max is selection, not
    // accumulation, so the result is bitwise identical for any pool size,
    // strategy, or chunk boundary
    std::vector<WorkerSlot<T>> workerVsig(parallelForWorkers());
    auto reduceVsig = [&workerVsig] {
        T maxVsig = T(0);
        for (const auto& v : workerVsig)
            maxVsig = std::max(maxVsig, v.value);
        return MomentumEnergyStats<T>{maxVsig};
    };

    if constexpr (std::is_same_v<KernelT, Kernel<T>>)
    {
        if (be.kind == KernelBackend::Simd)
        {
            std::optional<LaneKernel<T>> transient;
            const LaneKernel<T>* lanes = be.lanes;
            if (!lanes)
            {
                transient.emplace(kernel);
                lanes = &*transient;
            }
            const backend::PeriodicWrap<T> wrap(box);
            parallelFor(
                count,
                [&](std::size_t idx, std::size_t worker) {
                    std::size_t i = active.empty() ? idx : active[idx];
                    auto row = nl.row(i);
                    T vsigI = backend::momentumEnergyParticleSimd(ps, i, row.data,
                                                                  row.count, *lanes,
                                                                  wrap, mode, av);
                    workerVsig[worker].value = std::max(workerVsig[worker].value, vsigI);
                },
                policy);
            return reduceVsig();
        }
    }
    parallelFor(
        count,
        [&](std::size_t idx, std::size_t worker) {
            std::size_t i = active.empty() ? idx : active[idx];
            auto row = nl.row(i);
            T vsigI = backend::momentumEnergyParticle(ps, i, row.data, row.count,
                                                      kernel, box, mode, av);
            workerVsig[worker].value = std::max(workerVsig[worker].value, vsigI);
        },
        policy);
    return reduceVsig();
}

/// Ensure neighbor lists are pair-symmetric: if j lists i, i lists j.
/// Required for exact momentum conservation when smoothing lengths differ
/// (a particle pair can satisfy r < 2 h_i but r > 2 h_j).
///
/// Missing pairs are collected in storage-slot scan order, which is frame-
/// dependent once the SFC reorder (tree/sfc_sort.hpp) permutes the set.
/// When \p ids is non-empty the appended run is stable-sorted by particle
/// id so the list extension — and therefore the FP summation order of every
/// downstream SPH loop — is a function of the physical pair set, not of the
/// storage permutation. With identity ids (the unreordered seed layout) the
/// sort is a no-op: slot order IS id order.
template<class T>
void symmetrizeNeighborList(NeighborList<T>& nl, std::span<const std::uint64_t> ids = {})
{
    using Index = typename NeighborList<T>::Index;
    std::size_t n = nl.size();
    std::vector<std::vector<Index>> missing(n);

    for (std::size_t i = 0; i < n; ++i)
    {
        for (auto j : nl.neighbors(i))
        {
            auto njs = nl.neighbors(j);
            bool found = false;
            for (auto k : njs)
            {
                if (k == Index(i))
                {
                    found = true;
                    break;
                }
            }
            if (!found) missing[j].push_back(Index(i));
        }
    }

    std::vector<Index> merged;
    for (std::size_t i = 0; i < n; ++i)
    {
        if (missing[i].empty()) continue;
        if (!ids.empty())
        {
            std::stable_sort(missing[i].begin(), missing[i].end(),
                             [&](Index a, Index b) { return ids[a] < ids[b]; });
        }
        auto cur = nl.neighbors(i);
        merged.assign(cur.begin(), cur.end());
        merged.insert(merged.end(), missing[i].begin(), missing[i].end());
        nl.set(i, merged);
    }
}

} // namespace sphexa

#pragma once

/// \file momentum_energy.hpp
/// SPH momentum and energy equations (step 3 of Algorithm 1), in both
/// gradient formulations of Table 2:
///
///  - Kernel derivatives (ChaNGa, SPH-flow):
///      dv_a/dt = -sum_b m_b [ P_a/(Om_a rho_a^2) gradW_ab(h_a)
///                           + P_b/(Om_b rho_b^2) gradW_ab(h_b) ]  + AV
///  - IAD (SPHYNX): gradW_ab(h_a) replaced by A_ab(h_a) = C(a) r_ba W_ab.
///
/// Artificial viscosity is Monaghan (1992) with the Balsara switch:
///      Pi_ab = (-alpha cbar mu + beta mu^2)/rhobar * (f_a + f_b)/2,
///      mu = hbar v_ab.r_ab / (r^2 + eps hbar^2)  when v_ab.r_ab < 0.
///
/// The loop is accumulate-to-self only (no scatter), making it lock-free;
/// exact pairwise antisymmetry (and therefore momentum conservation) holds
/// when neighbor lists are pair-symmetric (see symmetrizeNeighborList).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "domain/box.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/iad.hpp"
#include "sph/kernels.hpp"
#include "sph/particles.hpp"
#include "tree/neighbors.hpp"

namespace sphexa {

/// Artificial-viscosity parameters.
template<class T>
struct ArtificialViscosity
{
    T alpha = T(1);
    T beta  = T(2);
    T eps   = T(0.01);   ///< softening in mu denominator
    bool useBalsara = true;
};

/// Result accumulated per call for time-step control.
template<class T>
struct MomentumEnergyStats
{
    T maxVsignal = T(0); ///< max signal velocity (CFL input)
};

/// Compute accelerations ax/ay/az and du/dt for all particles.
/// Gravity is accumulated separately and must be added afterwards.
template<class T, class KernelT>
MomentumEnergyStats<T> computeMomentumEnergy(ParticleSet<T>& ps, const NeighborList<T>& nl,
                                             const KernelT& kernel, const Box<T>& box,
                                             GradientMode mode,
                                             const ArtificialViscosity<T>& av = {},
                                             std::type_identity_t<std::span<const std::size_t>> active = {},
                                             const LoopPolicy& policy = {})
{
    std::size_t count = active.empty() ? ps.size() : active.size();

    // exact max reduction over per-worker partials: max is selection, not
    // accumulation, so the result is bitwise identical for any pool size,
    // strategy, or chunk boundary
    std::vector<WorkerSlot<T>> workerVsig(parallelForWorkers());

    parallelFor(
        count,
        [&](std::size_t idx, std::size_t worker) {
        T maxVsig = workerVsig[worker].value;
        T vsigI   = T(0); ///< this particle's own max over its pairs
        std::size_t i = active.empty() ? idx : active[idx];
        Vec3<T> pi{ps.x[i], ps.y[i], ps.z[i]};
        Vec3<T> vi{ps.vx[i], ps.vy[i], ps.vz[i]};
        T rhoi = ps.rho[i];
        T prhoi = ps.p[i] / (ps.gradh[i] * rhoi * rhoi);

        Vec3<T> acc{};
        T du = T(0);

        for (auto j : nl.neighbors(i))
        {
            Vec3<T> rab = box.delta(pi, Vec3<T>{ps.x[j], ps.y[j], ps.z[j]}); // r_a - r_b
            T r = norm(rab);
            if (r <= T(0)) continue;
            Vec3<T> vab = vi - Vec3<T>{ps.vx[j], ps.vy[j], ps.vz[j]};

            T rhoj  = ps.rho[j];
            T prhoj = ps.p[j] / (ps.gradh[j] * rhoj * rhoj);

            // gradient terms with h_a and h_b
            Vec3<T> gwa, gwb;
            if (mode == GradientMode::IAD)
            {
                // A_ab(h_a) = C(a) (r_b - r_a) W_ab(h_a) : "toward b" sense
                gwa = iadGradient(ps, i, -rab, r, kernel);
                // A_ba(h_b) = C(b) (r_a - r_b) W_ab(h_b); flip to a-centric
                SymMat3<T> cb{ps.c11[j], ps.c12[j], ps.c13[j],
                              ps.c22[j], ps.c23[j], ps.c33[j]};
                gwb = -(cb * rab) * kernel.value(r, ps.h[j]);
                // note: gwa points a->b (negative radial); gwb = -C(b) r_ab W(h_b)
                // also points a->b for isotropic C.
            }
            else
            {
                T invR = T(1) / r;
                gwa = rab * (kernel.derivative(r, ps.h[i]) * invR);
                gwb = rab * (kernel.derivative(r, ps.h[j]) * invR);
            }

            // pressure part: dv_a/dt -= m_b (Pa' gwa_(a->b, so sign below) ...)
            // Using the a-centric gradient (pointing a->b when dW/dr<0):
            //   dv_a/dt += -m_b [prhoi * gwa + prhoj * gwb]
            acc -= ps.m[j] * (prhoi * gwa + prhoj * gwb);

            // energy: du_a/dt = prhoi sum_b m_b v_ab . gwa
            du += ps.m[j] * prhoi * dot(vab, gwa);

            // artificial viscosity on the symmetrized gradient
            T vdotr = dot(vab, rab);
            T cbar  = T(0.5) * (ps.c[i] + ps.c[j]);
            T vsig  = ps.c[i] + ps.c[j] - T(3) * std::min(T(0), vdotr / r);
            maxVsig = std::max(maxVsig, vsig);
            vsigI   = std::max(vsigI, vsig);
            if (vdotr < T(0))
            {
                T hbar   = T(0.5) * (ps.h[i] + ps.h[j]);
                T rhobar = T(0.5) * (rhoi + rhoj);
                T mu     = hbar * vdotr / (r * r + av.eps * hbar * hbar);
                T f      = av.useBalsara ? T(0.5) * (ps.balsara[i] + ps.balsara[j]) : T(1);
                T piab   = f * (-av.alpha * cbar * mu + av.beta * mu * mu) / rhobar;
                Vec3<T> gwbar = T(0.5) * (gwa + gwb);
                acc -= ps.m[j] * piab * gwbar;
                du += T(0.5) * ps.m[j] * piab * dot(vab, gwbar);
            }
        }

        ps.ax[i] = acc.x;
        ps.ay[i] = acc.y;
        ps.az[i] = acc.z;
        ps.du[i] = du;
        // per-particle CFL input (individual time-stepping reads this so a
        // quiet particle is not clamped by the loudest shock in the box);
        // the per-worker max below is a superset, so recording it does not
        // change the global reduction bitwise
        ps.vsig[i] = vsigI;
        workerVsig[worker].value = maxVsig;
        },
        policy);

    T maxVsig = T(0);
    for (const auto& v : workerVsig)
        maxVsig = std::max(maxVsig, v.value);
    return {maxVsig};
}

/// Ensure neighbor lists are pair-symmetric: if j lists i, i lists j.
/// Required for exact momentum conservation when smoothing lengths differ
/// (a particle pair can satisfy r < 2 h_i but r > 2 h_j).
///
/// Missing pairs are collected in storage-slot scan order, which is frame-
/// dependent once the SFC reorder (tree/sfc_sort.hpp) permutes the set.
/// When \p ids is non-empty the appended run is stable-sorted by particle
/// id so the list extension — and therefore the FP summation order of every
/// downstream SPH loop — is a function of the physical pair set, not of the
/// storage permutation. With identity ids (the unreordered seed layout) the
/// sort is a no-op: slot order IS id order.
template<class T>
void symmetrizeNeighborList(NeighborList<T>& nl, std::span<const std::uint64_t> ids = {})
{
    using Index = typename NeighborList<T>::Index;
    std::size_t n = nl.size();
    std::vector<std::vector<Index>> missing(n);

    for (std::size_t i = 0; i < n; ++i)
    {
        for (auto j : nl.neighbors(i))
        {
            auto njs = nl.neighbors(j);
            bool found = false;
            for (auto k : njs)
            {
                if (k == Index(i))
                {
                    found = true;
                    break;
                }
            }
            if (!found) missing[j].push_back(Index(i));
        }
    }

    std::vector<Index> merged;
    for (std::size_t i = 0; i < n; ++i)
    {
        if (missing[i].empty()) continue;
        if (!ids.empty())
        {
            std::stable_sort(missing[i].begin(), missing[i].end(),
                             [&](Index a, Index b) { return ids[a] < ids[b]; });
        }
        auto cur = nl.neighbors(i);
        merged.assign(cur.begin(), cur.end());
        merged.insert(merged.end(), missing[i].begin(), missing[i].end());
        nl.set(i, merged);
    }
}

} // namespace sphexa

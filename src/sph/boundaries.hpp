#pragma once

/// \file boundaries.hpp
/// Mirror ghost-particle solid boundaries for the WCSPH free-surface mode.
///
/// The astro test cases of the paper are wall-free (periodic or open), but
/// the CFD parent's scenarios — dam break, tank sloshing — need solid walls.
/// The classic WCSPH treatment mirrors every fluid particle that lies
/// within the kernel support of a wall across that wall: the ghost carries
/// the same mass, smoothing length and thermodynamic state, so the density
/// sum sees a full neighborhood at the wall and the pressure force pushes
/// the fluid back symmetrically. Corners reflect across every non-empty
/// subset of the nearby walls (face, edge and corner ghosts).
///
/// Lifecycle (wired in core/propagator.hpp as phase K):
///   ghostCreate -> ghosts appended at the TAIL of the ParticleSet, before
///                  the tree build so they participate in neighbor search;
///   ghostRemove -> tail truncated after the force phases, so integration,
///                  conservation and I/O only ever see real particles.
///
/// Ghost positions may land outside the global box; that is safe: SFC keys
/// clamp to the boundary cells (tree/morton.hpp) and tree-walk pruning uses
/// the tight node AABBs, not the box.

#include <array>
#include <cstddef>
#include <string_view>
#include <vector>

#include "domain/box.hpp"
#include "sph/particles.hpp"

namespace sphexa {

/// Velocity condition a solid wall imposes on its mirror ghosts.
enum class WallCondition
{
    FreeSlip, ///< normal velocity negated, tangential kept (inviscid wall)
    NoSlip,   ///< full velocity negated (viscous wall at rest)
};

constexpr std::string_view wallConditionName(WallCondition c)
{
    return c == WallCondition::FreeSlip ? "free-slip" : "no-slip";
}

/// Which faces of the global box are solid walls, and how ghosts mirror
/// across them. Part of SimulationConfig; all-false (the default) keeps
/// every pipeline wall-free.
template<class T>
struct BoundaryConfig
{
    bool enabled = false;
    std::array<bool, 3> wallLo{{false, false, false}}; ///< x/y/z low faces
    std::array<bool, 3> wallHi{{false, false, false}}; ///< x/y/z high faces
    WallCondition condition = WallCondition::FreeSlip;
    /// Ghost band width as a multiple of each particle's smoothing length
    /// (2 = the full kernel support radius).
    T bandFactor = T(2);

    bool anyWall() const
    {
        return enabled && (wallLo[0] || wallLo[1] || wallLo[2] || wallHi[0] ||
                           wallHi[1] || wallHi[2]);
    }
};

/// Append mirror ghosts for every real particle within its ghost band of a
/// configured wall; returns the number appended. Deterministic (serial,
/// particle-order) so runs are bitwise identical across worker-pool sizes.
template<class T>
std::size_t appendMirrorGhosts(ParticleSet<T>& ps, const Box<T>& box,
                               const BoundaryConfig<T>& bc)
{
    if (!bc.anyWall()) return 0;

    struct Wall
    {
        int axis;
        T pos;
    };
    std::vector<Wall> walls;
    for (int ax = 0; ax < 3; ++ax)
    {
        if (bc.wallLo[ax]) walls.push_back({ax, box.lo[ax]});
        if (bc.wallHi[ax]) walls.push_back({ax, box.hi[ax]});
    }

    std::vector<T>* pos[3] = {&ps.x, &ps.y, &ps.z};
    std::vector<T>* vel[3] = {&ps.vx, &ps.vy, &ps.vz};

    std::size_t nReal = ps.size();
    for (std::size_t i = 0; i < nReal; ++i)
    {
        T band = bc.bandFactor * ps.h[i];
        Wall near[6];
        int nNear = 0;
        for (const Wall& w : walls)
        {
            if (std::abs((*pos[w.axis])[i] - w.pos) < band) near[nNear++] = w;
        }
        // every non-empty subset of the nearby walls: single walls give the
        // face ghosts, pairs the edge ghosts, triples the corner ghost
        for (int mask = 1; mask < (1 << nNear); ++mask)
        {
            ps.appendFrom(ps, i);
            std::size_t g = ps.size() - 1;
            for (int b = 0; b < nNear; ++b)
            {
                if (!(mask & (1 << b))) continue;
                int ax          = near[b].axis;
                (*pos[ax])[g]   = T(2) * near[b].pos - (*pos[ax])[g];
                (*vel[ax])[g]   = -(*vel[ax])[g]; // normal component reflects
            }
            if (bc.condition == WallCondition::NoSlip)
            {
                // wall at rest: the full mirrored velocity opposes the fluid
                ps.vx[g] = -ps.vx[i];
                ps.vy[g] = -ps.vy[i];
                ps.vz[g] = -ps.vz[i];
            }
        }
    }
    return ps.size() - nReal;
}

/// Drop the \p nGhosts tail particles appended by appendMirrorGhosts.
template<class T>
void removeGhosts(ParticleSet<T>& ps, std::size_t nGhosts)
{
    ps.resize(ps.size() - nGhosts);
}

} // namespace sphexa

#pragma once

/// \file iad.hpp
/// Integral Approach to Derivatives (IAD), Garcia-Senz, Cabezon & Escartin
/// 2012 — SPHYNX's gradient formulation (Table 1) and one of the two
/// gradient options of the mini-app (Table 2).
///
/// Per particle a, the symmetric matrix
///     tau_ij(a) = sum_b V_b (r_b - r_a)_i (r_b - r_a)_j W_ab(h_a)
/// is inverted to give coefficients C(a) = tau^{-1}. The kernel-gradient
/// replacement used in the momentum/energy equations is then
///     A_ab(h_a) = C(a) . (r_b - r_a) W_ab(h_a),
/// which is exact for linear fields regardless of particle disorder (the
/// property tested in test_sph_gradients.cpp).

#include <optional>
#include <span>
#include <type_traits>
#include <utility>

#include "backend/iad_kernel.hpp"
#include "backend/kernel_backend.hpp"
#include "backend/lane_kernel.hpp"
#include "domain/box.hpp"
#include "math/matrix3.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/kernels.hpp"
#include "sph/particles.hpp"
#include "tree/neighbors.hpp"

namespace sphexa {

/// Gradient formulation selector (Table 2: "IAD, Kernel derivatives").
enum class GradientMode
{
    KernelDerivative, ///< analytic grad W (ChaNGa, SPH-flow)
    IAD,              ///< integral approach (SPHYNX)
};

constexpr std::string_view gradientModeName(GradientMode g)
{
    return g == GradientMode::KernelDerivative ? "Kernel derivatives" : "IAD";
}

/// Compute the IAD coefficient matrices C(a) = tau^{-1}(a) for all
/// particles; stores the 6 independent components in c11..c33. A dispatch
/// shell over backend/iad_kernel.hpp, selected by \p be (Scalar when
/// defaulted; lane evaluation covers the analytic Kernel only).
template<class T, class KernelT>
void computeIadCoefficients(ParticleSet<T>& ps, const NeighborList<T>& nl,
                            const KernelT& kernel, const Box<T>& box,
                            std::type_identity_t<std::span<const std::size_t>> active = {},
                            const LoopPolicy& policy = {}, const ComputeBackend<T>& be = {})
{
    std::size_t count = active.empty() ? ps.size() : active.size();
    if constexpr (std::is_same_v<KernelT, Kernel<T>>)
    {
        if (be.kind == KernelBackend::Simd)
        {
            std::optional<LaneKernel<T>> transient;
            const LaneKernel<T>* lanes = be.lanes;
            if (!lanes)
            {
                transient.emplace(kernel);
                lanes = &*transient;
            }
            const backend::PeriodicWrap<T> wrap(box);
            parallelFor(
                count,
                [&](std::size_t idx, std::size_t) {
                    std::size_t i = active.empty() ? idx : active[idx];
                    auto row = nl.row(i);
                    backend::iadParticleSimd(ps, i, row.data, row.count, *lanes, wrap);
                },
                policy);
            return;
        }
    }
    parallelFor(
        count,
        [&](std::size_t idx, std::size_t) {
            std::size_t i = active.empty() ? idx : active[idx];
            auto row = nl.row(i);
            backend::iadParticle(ps, i, row.data, row.count, kernel, box);
        },
        policy);
}

/// IAD kernel-gradient replacement A_ab(h_a) = C(a) . (r_b - r_a) W_ab(h_a).
/// \p rba must be the minimum-image vector r_b - r_a.
template<class T, class KernelT>
Vec3<T> iadGradient(const ParticleSet<T>& ps, std::size_t i, const Vec3<T>& rba, T r,
                    const KernelT& kernel)
{
    T w = kernel.value(r, ps.h[i]);
    SymMat3<T> c{ps.c11[i], ps.c12[i], ps.c13[i], ps.c22[i], ps.c23[i], ps.c33[i]};
    return (c * rba) * w;
}

/// Estimate the gradient of an arbitrary per-particle scalar field with IAD:
///     grad f(a) = sum_b V_b (f_b - f_a) A_ab.
/// Used by tests (linear-field exactness) and by the gradients ablation.
template<class T, class KernelT>
Vec3<T> iadScalarGradient(const ParticleSet<T>& ps, const NeighborList<T>& nl,
                          const KernelT& kernel, const Box<T>& box,
                          std::span<const T> field, std::size_t i)
{
    Vec3<T> pi{ps.x[i], ps.y[i], ps.z[i]};
    Vec3<T> grad{};
    for (auto j : nl.neighbors(i))
    {
        Vec3<T> rba = -box.delta(pi, Vec3<T>{ps.x[j], ps.y[j], ps.z[j]});
        T r = norm(rba);
        Vec3<T> A = iadGradient(ps, i, rba, r, kernel);
        grad += ps.vol[j] * (field[j] - field[i]) * A;
    }
    return grad;
}

/// Kernel-derivative estimate of the same scalar gradient, for comparison:
///     grad f(a) = sum_b V_b (f_b - f_a) grad_a W_ab.
template<class T, class KernelT>
Vec3<T> kernelDerivativeScalarGradient(const ParticleSet<T>& ps, const NeighborList<T>& nl,
                                       const KernelT& kernel, const Box<T>& box,
                                       std::span<const T> field, std::size_t i)
{
    Vec3<T> pi{ps.x[i], ps.y[i], ps.z[i]};
    Vec3<T> grad{};
    for (auto j : nl.neighbors(i))
    {
        Vec3<T> rab = box.delta(pi, Vec3<T>{ps.x[j], ps.y[j], ps.z[j]}); // r_a - r_b
        T r = norm(rab);
        if (r <= T(0)) continue;
        // grad_a W_ab = (r_a - r_b)/r * dW/dr
        Vec3<T> gw = rab * (kernel.derivative(r, ps.h[i]) / r);
        grad += ps.vol[j] * (field[j] - field[i]) * gw;
    }
    return grad;
}

} // namespace sphexa

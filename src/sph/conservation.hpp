#pragma once

/// \file conservation.hpp
/// Conserved-quantity diagnostics.
///
/// Sec. 5 of the paper stresses that SPH code comparisons are constrained by
/// "enforcing fundamental conservation laws" rather than pointwise
/// convergence. These diagnostics are computed every step by the simulation
/// driver, logged by the examples, and asserted (bounded drift) by the
/// integration tests. They also feed the conservation-based silent-error
/// detector (ft/sdc.hpp).

#include <cmath>
#include <ostream>

#include "math/vec.hpp"
#include "sph/particles.hpp"

namespace sphexa {

template<class T>
struct Conservation
{
    T mass{};
    Vec3<T> momentum{};
    Vec3<T> angularMomentum{};
    T kineticEnergy{};
    T internalEnergy{};
    T potentialEnergy{}; ///< filled by the gravity solver when active

    T totalEnergy() const { return kineticEnergy + internalEnergy + potentialEnergy; }

    friend std::ostream& operator<<(std::ostream& os, const Conservation& c)
    {
        os << "mass=" << c.mass << " p=" << c.momentum << " L=" << c.angularMomentum
           << " Ekin=" << c.kineticEnergy << " Eint=" << c.internalEnergy
           << " Egrav=" << c.potentialEnergy << " Etot=" << c.totalEnergy();
        return os;
    }
};

/// Compute all conserved quantities. \p potentialEnergy is passed through
/// from the gravity solve (zero for non-self-gravitating runs).
template<class T>
Conservation<T> computeConservation(const ParticleSet<T>& ps, T potentialEnergy = T(0))
{
    std::size_t n = ps.size();
    T mass = 0, ekin = 0, eint = 0;
    T px = 0, py = 0, pz = 0;
    T lx = 0, ly = 0, lz = 0;

#pragma omp parallel for schedule(static) \
    reduction(+ : mass, ekin, eint, px, py, pz, lx, ly, lz)
    for (std::size_t i = 0; i < n; ++i)
    {
        T m = ps.m[i];
        mass += m;
        Vec3<T> v{ps.vx[i], ps.vy[i], ps.vz[i]};
        Vec3<T> r{ps.x[i], ps.y[i], ps.z[i]};
        ekin += T(0.5) * m * norm2(v);
        eint += m * ps.u[i];
        px += m * v.x;
        py += m * v.y;
        pz += m * v.z;
        Vec3<T> L = cross(r, v) * m;
        lx += L.x;
        ly += L.y;
        lz += L.z;
    }

    Conservation<T> c;
    c.mass            = mass;
    c.momentum        = {px, py, pz};
    c.angularMomentum = {lx, ly, lz};
    c.kineticEnergy   = ekin;
    c.internalEnergy  = eint;
    c.potentialEnergy = potentialEnergy;
    return c;
}

/// Relative drift of a scalar conserved quantity against its initial value,
/// normalized by a characteristic scale (to handle zero initial values).
template<class T>
T relativeDrift(T current, T initial, T scale)
{
    T denom = std::max(std::abs(initial), std::abs(scale));
    return denom > T(0) ? std::abs(current - initial) / denom : std::abs(current - initial);
}

} // namespace sphexa

#pragma once

/// \file conservation.hpp
/// Conserved-quantity diagnostics.
///
/// Sec. 5 of the paper stresses that SPH code comparisons are constrained by
/// "enforcing fundamental conservation laws" rather than pointwise
/// convergence. These diagnostics are computed every step by the simulation
/// driver, logged by the examples, and asserted (bounded drift) by the
/// integration tests. They also feed the conservation-based silent-error
/// detector (ft/sdc.hpp).

#include <cmath>
#include <ostream>
#include <vector>

#include "math/vec.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/particles.hpp"

namespace sphexa {

template<class T>
struct Conservation
{
    T mass{};
    Vec3<T> momentum{};
    Vec3<T> angularMomentum{};
    T kineticEnergy{};
    T internalEnergy{};
    T potentialEnergy{}; ///< filled by the gravity solver when active

    T totalEnergy() const { return kineticEnergy + internalEnergy + potentialEnergy; }

    friend std::ostream& operator<<(std::ostream& os, const Conservation& c)
    {
        os << "mass=" << c.mass << " p=" << c.momentum << " L=" << c.angularMomentum
           << " Ekin=" << c.kineticEnergy << " Eint=" << c.internalEnergy
           << " Egrav=" << c.potentialEnergy << " Etot=" << c.totalEnergy();
        return os;
    }
};

/// Compute all conserved quantities. \p potentialEnergy is passed through
/// from the gravity solve (zero for non-self-gravitating runs).
template<class T>
Conservation<T> computeConservation(const ParticleSet<T>& ps, T potentialEnergy = T(0))
{
    struct alignas(64) Partial
    {
        T mass = 0, ekin = 0, eint = 0;
        T px = 0, py = 0, pz = 0;
        T lx = 0, ly = 0, lz = 0;
    };
    // per-worker cache-aligned partial sums, combined in worker order below
    // (same summation structure as the former OpenMP `reduction(+ : ...)`)
    std::vector<Partial> partials(parallelForWorkers());

    parallelFor(ps.size(), [&](std::size_t i, std::size_t worker) {
        Partial& acc = partials[worker];
        T m = ps.m[i];
        acc.mass += m;
        Vec3<T> v{ps.vx[i], ps.vy[i], ps.vz[i]};
        Vec3<T> r{ps.x[i], ps.y[i], ps.z[i]};
        acc.ekin += T(0.5) * m * norm2(v);
        acc.eint += m * ps.u[i];
        acc.px += m * v.x;
        acc.py += m * v.y;
        acc.pz += m * v.z;
        Vec3<T> L = cross(r, v) * m;
        acc.lx += L.x;
        acc.ly += L.y;
        acc.lz += L.z;
    });

    Partial sum;
    for (const Partial& p : partials)
    {
        sum.mass += p.mass;
        sum.ekin += p.ekin;
        sum.eint += p.eint;
        sum.px += p.px;
        sum.py += p.py;
        sum.pz += p.pz;
        sum.lx += p.lx;
        sum.ly += p.ly;
        sum.lz += p.lz;
    }

    Conservation<T> c;
    c.mass            = sum.mass;
    c.momentum        = {sum.px, sum.py, sum.pz};
    c.angularMomentum = {sum.lx, sum.ly, sum.lz};
    c.kineticEnergy   = sum.ekin;
    c.internalEnergy  = sum.eint;
    c.potentialEnergy = potentialEnergy;
    return c;
}

/// Relative drift of a scalar conserved quantity against its initial value,
/// normalized by a characteristic scale (to handle zero initial values).
template<class T>
T relativeDrift(T current, T initial, T scale)
{
    T denom = std::max(std::abs(initial), std::abs(scale));
    return denom > T(0) ? std::abs(current - initial) / denom : std::abs(current - initial);
}

} // namespace sphexa

#pragma once

/// \file cell_list.hpp
/// Uniform-grid cell list: the classic alternative to tree-based neighbor
/// discovery, used as a baseline in bench_neighbors and as an independent
/// implementation for cross-checking the octree walk in tests.
///
/// The grid cell edge is the maximum interaction radius, so each query only
/// inspects the 27 surrounding cells. Efficient when smoothing lengths are
/// uniform (square patch), increasingly wasteful with strong h contrast
/// (Evrard collapse) — exactly the trade-off that drives SPH codes to trees.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "domain/box.hpp"
#include "tree/neighbors.hpp"

namespace sphexa {

/// Uniform grid over the box; build() bins particles with a counting sort,
/// forEachNeighbor() visits the 27 surrounding cells per query.
template<class T>
class CellList
{
public:
    using Index = std::uint32_t;

    /// Build over positions with interaction cutoff \p cutoff (cell edge).
    void build(std::type_identity_t<std::span<const T>> x, std::type_identity_t<std::span<const T>> y, std::type_identity_t<std::span<const T>> z,
               const Box<T>& box, T cutoff)
    {
        box_    = box;
        cutoff_ = cutoff;
        x_ = x; y_ = y; z_ = z;
        for (int ax = 0; ax < 3; ++ax)
        {
            dims_[ax] = std::max<std::int64_t>(1, std::int64_t(box.length(ax) / cutoff));
            cellLen_[ax] = box.length(ax) / T(dims_[ax]);
        }
        std::size_t nCells = std::size_t(dims_[0]) * dims_[1] * dims_[2];
        std::size_t n      = x.size();

        // counting sort into cells
        cellStart_.assign(nCells + 1, 0);
        std::vector<Index> cellOf(n);
        for (std::size_t i = 0; i < n; ++i)
        {
            cellOf[i] = cellIndex(cellCoords(Vec3<T>{x[i], y[i], z[i]}));
            ++cellStart_[cellOf[i] + 1];
        }
        for (std::size_t c = 0; c < nCells; ++c)
            cellStart_[c + 1] += cellStart_[c];
        perm_.resize(n);
        std::vector<Index> cursor(cellStart_.begin(), cellStart_.end() - 1);
        for (std::size_t i = 0; i < n; ++i)
            perm_[cursor[cellOf[i]]++] = Index(i);
    }

    /// Visit all particles within \p radius of \p pos; radius must be
    /// <= cutoff used at build time.
    template<class F>
    void forEachNeighbor(const Vec3<T>& pos, T radius, F&& f) const
    {
        T r2 = radius * radius;
        auto cc = cellCoords(pos);
        for (int dz = -1; dz <= 1; ++dz)
            for (int dy = -1; dy <= 1; ++dy)
                for (int dx = -1; dx <= 1; ++dx)
                {
                    std::int64_t c[3] = {cc[0] + dx, cc[1] + dy, cc[2] + dz};
                    if (!wrapCell(c)) continue;
                    Index cid = cellIndex(c);
                    for (Index k = cellStart_[cid]; k < cellStart_[cid + 1]; ++k)
                    {
                        Index j = perm_[k];
                        Vec3<T> d = box_.delta(pos, Vec3<T>{x_[j], y_[j], z_[j]});
                        T dist2 = norm2(d);
                        if (dist2 < r2) f(j, dist2);
                    }
                }
    }

    /// Grid resolution along \p axis (cells, >= 1).
    std::int64_t cells(int axis) const { return dims_[axis]; }

private:
    std::array<std::int64_t, 3> cellCoords(const Vec3<T>& p) const
    {
        std::array<std::int64_t, 3> c;
        for (int ax = 0; ax < 3; ++ax)
        {
            auto v = std::int64_t((p[ax] - box_.lo[ax]) / cellLen_[ax]);
            c[ax]  = std::clamp<std::int64_t>(v, 0, dims_[ax] - 1);
        }
        return c;
    }

    /// Wrap or reject out-of-range cell coordinates. Returns false if the
    /// cell is outside a non-periodic boundary.
    bool wrapCell(std::int64_t c[3]) const
    {
        for (int ax = 0; ax < 3; ++ax)
        {
            if (c[ax] < 0)
            {
                if (!box_.pbc[ax]) return false;
                c[ax] += dims_[ax];
            }
            else if (c[ax] >= dims_[ax])
            {
                if (!box_.pbc[ax]) return false;
                c[ax] -= dims_[ax];
            }
        }
        return true;
    }

    Index cellIndex(const std::array<std::int64_t, 3>& c) const
    {
        return Index((c[2] * dims_[1] + c[1]) * dims_[0] + c[0]);
    }
    Index cellIndex(const std::int64_t c[3]) const
    {
        return Index((c[2] * dims_[1] + c[1]) * dims_[0] + c[0]);
    }

    Box<T> box_{};
    T      cutoff_{1};
    std::type_identity_t<std::span<const T>> x_, y_, z_;
    std::array<std::int64_t, 3> dims_{1, 1, 1};
    std::array<T, 3>            cellLen_{1, 1, 1};
    std::vector<Index> cellStart_;
    std::vector<Index> perm_;
};

/// Fill neighbor lists with the cell-list backend (global mode).
template<class T>
void findNeighborsCellList(std::type_identity_t<std::span<const T>> x, std::type_identity_t<std::span<const T>> y, std::type_identity_t<std::span<const T>> z,
                           std::type_identity_t<std::span<const T>> h, const Box<T>& box, NeighborList<T>& nl)
{
    using Index = std::uint32_t;
    T hmax = T(0);
    for (T hi : h)
        hmax = std::max(hmax, hi);
    CellList<T> cl;
    cl.build(x, y, z, box, T(2) * hmax);

    std::size_t n = x.size();
    std::vector<std::vector<Index>> scratch(parallelForWorkers());
    parallelFor(n, [&](std::size_t i, std::size_t w) {
        auto& local = scratch[w];
        local.clear();
        cl.forEachNeighbor(Vec3<T>{x[i], y[i], z[i]}, T(2) * h[i], [&](Index j, T) {
            if (j != Index(i)) local.push_back(j);
        });
        nl.set(i, local);
    });
}

} // namespace sphexa

#pragma once

/// \file octree.hpp
/// SFC-ordered octree over the particle set.
///
/// Step 1 of the paper's Algorithm 1 ("Build tree"). Particles are sorted by
/// a space-filling-curve key (Morton or Hilbert); octree nodes are key
/// ranges, so every node's particles are contiguous in the sorted order and
/// every subtree is a contiguous slice — the property both the neighbor walk
/// (step 2) and the SFC domain decomposition rely on.
///
/// The build is sequential by default, mirroring the SPHYNX v1.3.1 behaviour
/// the paper's Extrae analysis exposed (serial phase A with idle threads,
/// Fig. 4); a task-parallel build is available as the "improved" variant and
/// is compared in bench_neighbors.
///
/// Neighbor queries over the built tree live in tree/neighbors.hpp; the
/// SFC keys are defined in tree/morton.hpp and tree/hilbert.hpp
/// (docs/ARCHITECTURE.md §3).

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <vector>

#include "domain/box.hpp"
#include "parallel/parallel_for.hpp"
#include "tree/hilbert.hpp"
#include "tree/morton.hpp"

namespace sphexa {

template<class T>
class Octree
{
public:
    using KeyType = std::uint64_t;
    using Index   = std::uint32_t;

    static constexpr int maxDepth = sfcBitsPerDim; // 21

    struct Node
    {
        Vec3<T> lo{};        ///< tight AABB of contained particles
        Vec3<T> hi{};
        Index first{0};      ///< first particle (in SFC order) in this node
        Index count{0};      ///< number of particles in this node
        Index child{0};      ///< index of first child node; 0 for leaves
        std::uint8_t nChildren{0};
        std::uint8_t depth{0};
    };

    struct BuildParams
    {
        unsigned leafSize = 64;             ///< max particles per leaf
        SfcCurve curve    = SfcCurve::Morton;
        bool     parallelBuild = false;     ///< task-parallel subtree builds
    };

    Octree() = default;

    /// Build the tree over the given positions. Positions are NOT modified;
    /// the SFC permutation is available via order().
    void build(std::span<const T> x, std::span<const T> y, std::span<const T> z,
               const Box<T>& box, const BuildParams& params = {})
    {
        n_      = x.size();
        box_    = box;
        params_ = params;
        x_ = x; y_ = y; z_ = z;

        keys_.resize(n_);
        order_.resize(n_);

        // parallel key pass above the small-N threshold (slot-i writes, so
        // the result is identical for any pool size); serial below it
        if (n_ > 4096)
        {
            parallelFor(n_, [&](std::size_t i, std::size_t) {
                keys_[i] = sfcKey(params.curve, Vec3<T>{x[i], y[i], z[i]}, box);
            });
        }
        else
        {
            for (std::size_t i = 0; i < n_; ++i)
                keys_[i] = sfcKey(params.curve, Vec3<T>{x[i], y[i], z[i]}, box);
        }

        std::iota(order_.begin(), order_.end(), Index(0));
        std::sort(order_.begin(), order_.end(),
                  [&](Index a, Index b) { return keys_[a] < keys_[b]; });

        sortedKeys_.resize(n_);
        for (std::size_t i = 0; i < n_; ++i)
            sortedKeys_[i] = keys_[order_[i]];

        nodes_.clear();
        nodes_.reserve(2 * n_ / std::max(1u, params.leafSize) + 64);
        nodes_.push_back(Node{{}, {}, 0, Index(n_), 0, 0, 0});
        if (n_ > params.leafSize) buildChildren(0, 0, Index(n_), 0, 0);

        computeAabbs();
    }

    std::size_t particleCount() const { return n_; }
    std::size_t nodeCount() const { return nodes_.size(); }
    const Node& node(Index i) const { return nodes_[i]; }
    const std::vector<Node>& nodes() const { return nodes_; }

    /// Particle indices in SFC order: order()[k] is the original index of the
    /// k-th particle along the curve.
    const std::vector<Index>& order() const { return order_; }

    /// SFC key of original particle i.
    KeyType key(Index i) const { return keys_[i]; }
    const std::vector<KeyType>& sortedKeys() const { return sortedKeys_; }

    const Box<T>& box() const { return box_; }

    std::size_t leafCount() const
    {
        std::size_t c = 0;
        for (const auto& nd : nodes_)
            if (nd.nChildren == 0) ++c;
        return c;
    }

    int depth() const
    {
        std::uint8_t d = 0;
        for (const auto& nd : nodes_)
            d = std::max(d, nd.depth);
        return d;
    }

    /// Visit all particles within \p radius of \p pos (minimum-image in
    /// periodic boxes). Calls f(originalParticleIndex, distanceSquared).
    template<class F>
    void forEachNeighbor(const Vec3<T>& pos, T radius, F&& f) const
    {
        if (nodes_.empty() || n_ == 0) return;
        T r2 = radius * radius;
        Index stack[128];
        int   sp   = 0;
        stack[sp++] = 0;
        while (sp > 0)
        {
            const Node& nd = nodes_[stack[--sp]];
            if (distanceSqToBox(pos, nd.lo, nd.hi, box_) > r2) continue;
            if (nd.nChildren == 0)
            {
                for (Index k = nd.first; k < nd.first + nd.count; ++k)
                {
                    Index j = order_[k];
                    Vec3<T> d = box_.delta(pos, Vec3<T>{x_[j], y_[j], z_[j]});
                    T dist2 = norm2(d);
                    if (dist2 < r2) f(j, dist2);
                }
            }
            else
            {
                for (int c = 0; c < nd.nChildren; ++c)
                {
                    assert(sp < 127);
                    stack[sp++] = nd.child + Index(c);
                }
            }
        }
    }

private:
    void buildChildren(Index nodeIdx, Index first, Index last, KeyType keyBase, int depth)
    {
        // Key width of one child octant at this depth.
        KeyType childWidth = KeyType(1) << (3 * (maxDepth - depth - 1));

        Index childStart = Index(nodes_.size());
        struct Pending
        {
            Index   node;
            Index   first, last;
            KeyType base;
        };
        Pending pending[8];
        int nPending = 0;

        Index segFirst = first;
        for (int c = 0; c < 8; ++c)
        {
            KeyType upper = keyBase + KeyType(c + 1) * childWidth;
            Index segLast;
            if (c == 7) { segLast = last; }
            else
            {
                auto it = std::lower_bound(sortedKeys_.begin() + segFirst,
                                           sortedKeys_.begin() + last, upper);
                segLast = Index(it - sortedKeys_.begin());
            }
            if (segLast > segFirst)
            {
                Node child;
                child.first = segFirst;
                child.count = segLast - segFirst;
                child.depth = std::uint8_t(depth + 1);
                Index childIdx = Index(nodes_.size());
                nodes_.push_back(child);
                if (child.count > params_.leafSize && depth + 1 < maxDepth)
                {
                    pending[nPending++] = {childIdx, segFirst, segLast,
                                           keyBase + KeyType(c) * childWidth};
                }
            }
            segFirst = segLast;
        }

        nodes_[nodeIdx].child     = childStart;
        nodes_[nodeIdx].nChildren = std::uint8_t(nodes_.size() - childStart);

        if (params_.parallelBuild && depth < 3)
        {
            // Shallow levels: spawn tasks; nodes_ is pre-sized per child via
            // sequential splitting above, so only subtree vectors grow.
            // Recursion below depth 3 is sequential inside each task.
            // NOTE: nodes_ reallocation is not thread-safe; tasks therefore
            // build into private subtrees that are spliced afterwards.
            std::vector<std::vector<Node>> subtrees(nPending);
            LoopPolicy taskPolicy;
            taskPolicy.strategy = SchedulingStrategy::SelfScheduling; // 1 subtree per chunk
            parallelFor(std::size_t(nPending), [&](std::size_t i, std::size_t) {
                subtrees[i] = buildSubtree(pending[i].first, pending[i].last,
                                           pending[i].base, depth + 1);
            }, taskPolicy);
            for (int i = 0; i < nPending; ++i)
            {
                spliceSubtree(pending[i].node, subtrees[i]);
            }
        }
        else
        {
            for (int i = 0; i < nPending; ++i)
            {
                buildChildren(pending[i].node, pending[i].first, pending[i].last,
                              pending[i].base, depth + 1);
            }
        }
    }

    /// Build a detached subtree (children of the given range) with node
    /// indices relative to the subtree vector; index 0 is a placeholder root.
    std::vector<Node> buildSubtree(Index first, Index last, KeyType keyBase, int depth)
    {
        std::vector<Node> out;
        out.push_back(Node{{}, {}, first, last - first, 0, 0, std::uint8_t(depth)});
        buildSubtreeRec(out, 0, first, last, keyBase, depth);
        return out;
    }

    void buildSubtreeRec(std::vector<Node>& out, Index nodeIdx, Index first, Index last,
                         KeyType keyBase, int depth)
    {
        KeyType childWidth = KeyType(1) << (3 * (maxDepth - depth - 1));
        Index childStart = Index(out.size());
        struct Pending
        {
            Index   node;
            Index   first, last;
            KeyType base;
        };
        Pending pending[8];
        int nPending = 0;

        Index segFirst = first;
        for (int c = 0; c < 8; ++c)
        {
            KeyType upper = keyBase + KeyType(c + 1) * childWidth;
            Index segLast;
            if (c == 7) { segLast = last; }
            else
            {
                auto it = std::lower_bound(sortedKeys_.begin() + segFirst,
                                           sortedKeys_.begin() + last, upper);
                segLast = Index(it - sortedKeys_.begin());
            }
            if (segLast > segFirst)
            {
                Node child;
                child.first = segFirst;
                child.count = segLast - segFirst;
                child.depth = std::uint8_t(depth + 1);
                Index childIdx = Index(out.size());
                out.push_back(child);
                if (child.count > params_.leafSize && depth + 1 < maxDepth)
                {
                    pending[nPending++] = {childIdx, segFirst, segLast,
                                           keyBase + KeyType(c) * childWidth};
                }
            }
            segFirst = segLast;
        }
        out[nodeIdx].child     = childStart;
        out[nodeIdx].nChildren = std::uint8_t(out.size() - childStart);
        for (int i = 0; i < nPending; ++i)
        {
            buildSubtreeRec(out, pending[i].node, pending[i].first, pending[i].last,
                            pending[i].base, depth + 1);
        }
    }

    /// Splice a detached subtree under \p attachAt: subtree node 0 replaces
    /// the attach node; remaining nodes are appended with shifted indices.
    void spliceSubtree(Index attachAt, const std::vector<Node>& sub)
    {
        if (sub.size() <= 1) return;
        Index base = Index(nodes_.size());
        // Subtree root's children start at sub index 1 -> global base.
        Node root = sub[0];
        nodes_[attachAt].child     = base + root.child - 1;
        nodes_[attachAt].nChildren = root.nChildren;
        for (std::size_t i = 1; i < sub.size(); ++i)
        {
            Node nd = sub[i];
            if (nd.nChildren > 0) nd.child = base + nd.child - 1;
            nodes_.push_back(nd);
        }
    }

    void computeAabbs()
    {
        // Children are always stored after their parent, so a reverse sweep
        // sees children before parents.
        for (std::size_t i = nodes_.size(); i-- > 0;)
        {
            Node& nd = nodes_[i];
            if (nd.nChildren == 0)
            {
                Vec3<T> lo{std::numeric_limits<T>::max(), std::numeric_limits<T>::max(),
                           std::numeric_limits<T>::max()};
                Vec3<T> hi{std::numeric_limits<T>::lowest(), std::numeric_limits<T>::lowest(),
                           std::numeric_limits<T>::lowest()};
                for (Index k = nd.first; k < nd.first + nd.count; ++k)
                {
                    Index j = order_[k];
                    Vec3<T> p{x_[j], y_[j], z_[j]};
                    lo = min(lo, p);
                    hi = max(hi, p);
                }
                if (nd.count == 0) { lo = hi = box_.center(); }
                nd.lo = lo;
                nd.hi = hi;
            }
            else
            {
                Vec3<T> lo = nodes_[nd.child].lo;
                Vec3<T> hi = nodes_[nd.child].hi;
                for (int c = 1; c < nd.nChildren; ++c)
                {
                    lo = min(lo, nodes_[nd.child + c].lo);
                    hi = max(hi, nodes_[nd.child + c].hi);
                }
                nd.lo = lo;
                nd.hi = hi;
            }
        }
    }

    std::size_t n_{0};
    Box<T>      box_{};
    BuildParams params_{};
    std::span<const T> x_, y_, z_;

    std::vector<KeyType> keys_;       ///< key per original particle index
    std::vector<KeyType> sortedKeys_; ///< keys in SFC order
    std::vector<Index>   order_;      ///< SFC permutation
    std::vector<Node>    nodes_;
};

} // namespace sphexa

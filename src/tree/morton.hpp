#pragma once

/// \file morton.hpp
/// 63-bit Morton (Z-order) space-filling-curve keys, 21 bits per dimension.
///
/// Morton keys serve two roles in the mini-app, mirroring ChaNGa's design:
/// they define the particle ordering from which the octree is built, and
/// they drive the SFC-based domain decomposition (Table 4).

#include <cstdint>

#include "domain/box.hpp"
#include "math/vec.hpp"

namespace sphexa {

/// Bits per dimension in a 63-bit 3D SFC key.
inline constexpr int sfcBitsPerDim = 21;
/// Number of cells per dimension at the deepest level.
inline constexpr std::uint64_t sfcCellsPerDim = 1ULL << sfcBitsPerDim;

namespace detail {

/// Spread the lower 21 bits of x so that bit i moves to bit 3i.
inline constexpr std::uint64_t spreadBits3(std::uint64_t x)
{
    x &= 0x1fffffULL;
    x = (x | x << 32) & 0x1f00000000ffffULL;
    x = (x | x << 16) & 0x1f0000ff0000ffULL;
    x = (x | x << 8) & 0x100f00f00f00f00fULL;
    x = (x | x << 4) & 0x10c30c30c30c30c3ULL;
    x = (x | x << 2) & 0x1249249249249249ULL;
    return x;
}

/// Inverse of spreadBits3: compact every third bit into the low 21 bits.
inline constexpr std::uint64_t compactBits3(std::uint64_t x)
{
    x &= 0x1249249249249249ULL;
    x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3ULL;
    x = (x ^ (x >> 4)) & 0x100f00f00f00f00fULL;
    x = (x ^ (x >> 8)) & 0x1f0000ff0000ffULL;
    x = (x ^ (x >> 16)) & 0x1f00000000ffffULL;
    x = (x ^ (x >> 32)) & 0x1fffffULL;
    return x;
}

} // namespace detail

/// Encode integer cell coordinates (each < 2^21) into a Morton key.
inline constexpr std::uint64_t mortonEncode(std::uint64_t ix, std::uint64_t iy,
                                            std::uint64_t iz)
{
    return detail::spreadBits3(ix) << 2 | detail::spreadBits3(iy) << 1 |
           detail::spreadBits3(iz);
}

/// Decode a Morton key into integer cell coordinates.
inline constexpr void mortonDecode(std::uint64_t key, std::uint64_t& ix, std::uint64_t& iy,
                                   std::uint64_t& iz)
{
    ix = detail::compactBits3(key >> 2);
    iy = detail::compactBits3(key >> 1);
    iz = detail::compactBits3(key);
}

/// Map a normalized coordinate in [0, 1) to an integer cell coordinate.
template<class T>
constexpr std::uint64_t toCellCoord(T xNorm)
{
    if (xNorm <= T(0)) return 0;
    if (xNorm >= T(1)) return sfcCellsPerDim - 1;
    auto c = static_cast<std::uint64_t>(xNorm * T(sfcCellsPerDim));
    return c < sfcCellsPerDim ? c : sfcCellsPerDim - 1;
}

/// Morton key of a point within a global box.
template<class T>
std::uint64_t mortonKey(const Vec3<T>& p, const Box<T>& box)
{
    Vec3<T> n = box.normalize(p);
    return mortonEncode(toCellCoord(n.x), toCellCoord(n.y), toCellCoord(n.z));
}

} // namespace sphexa

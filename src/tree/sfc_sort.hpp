#pragma once

/// \file sfc_sort.hpp
/// Per-step SFC particle reordering: the "sort" half of the sorted-reorder +
/// cluster neighbor-search subsystem (tree/cluster_list.hpp).
///
/// Consecutive particles along a Morton/Hilbert curve are spatial neighbors,
/// so physically storing the ParticleSet in curve order makes every
/// downstream sweep cache-local: the octree permutation collapses to
/// (near-)identity, neighbor lists reference nearby memory, and fixed-size
/// runs of consecutive particles form the tight clusters the pseudo-Verlet
/// interaction lists group by (Gonnet arXiv:1404.2303; Shamrock's
/// sort-then-cluster GPU pipeline, arXiv:2503.09713).
///
/// The sorter is deterministic (key ties break by pre-sort index), applies
/// ParticleSet::reorder to every per-particle field — kinematics, the
/// Adams-Bashforth du_m1 history, ids, time-step bins — and keeps its key
/// and permutation buffers across steps so a steady-state resort allocates
/// nothing. State that is NOT per-particle needs no remap: AWF scheduling
/// weights are per-worker, and the WCSPH ghost bracket is created after the
/// reorder runs (phase L precedes phase K in the pipeline), so ghosts never
/// move. Neighbor lists are invalidated by a resort; the pipeline refills
/// them in phase B before any consumer runs.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "domain/box.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/particles.hpp"
#include "tree/hilbert.hpp"

namespace sphexa {

/// Inverse of a permutation: out[perm[k]] = k. Applying reorder(perm) then
/// reorder(invertPermutation(perm)) restores the original field order
/// bitwise (property-tested in tests/test_cluster_list.cpp).
inline std::vector<std::size_t> invertPermutation(std::span<const std::size_t> perm)
{
    std::vector<std::size_t> inv(perm.size());
    for (std::size_t k = 0; k < perm.size(); ++k)
    {
        if (perm[k] >= perm.size())
        {
            throw std::invalid_argument("invertPermutation: out-of-range entry");
        }
        inv[perm[k]] = k;
    }
    return inv;
}

/// Reusable SFC reordering pass. One instance per driver: the key and
/// permutation buffers persist across steps (no per-step allocation once
/// warm), and perm() exposes the last applied permutation so callers can
/// un-permute derived state.
template<class T>
class SfcSorter
{
public:
    /// Sort \p ps into SFC order along \p curve. Returns true when a
    /// reorder was applied; false when the set was already sorted (the
    /// steady-state fast path — small per-step displacements rarely change
    /// the curve order), in which case perm() is the identity.
    bool apply(ParticleSet<T>& ps, const Box<T>& box, SfcCurve curve)
    {
        std::size_t n = ps.size();
        keys_.resize(n);
        parallelFor(n, [&](std::size_t i, std::size_t) {
            keys_[i] = sfcKey(curve, Vec3<T>{ps.x[i], ps.y[i], ps.z[i]}, box);
        });

        perm_.resize(n);
        std::iota(perm_.begin(), perm_.end(), std::size_t(0));
        if (std::is_sorted(keys_.begin(), keys_.end())) return false;

        std::sort(perm_.begin(), perm_.end(), [&](std::size_t a, std::size_t b) {
            return keys_[a] != keys_[b] ? keys_[a] < keys_[b] : a < b;
        });
        ps.reorder(perm_);
        return true;
    }

    /// Permutation of the last apply(): perm()[k] is the pre-sort index of
    /// the particle now in slot k (identity when apply() returned false).
    const std::vector<std::size_t>& perm() const { return perm_; }

    const std::vector<std::uint64_t>& keys() const { return keys_; }

private:
    std::vector<std::uint64_t> keys_;
    std::vector<std::size_t>   perm_;
};

} // namespace sphexa

#pragma once

/// \file hilbert.hpp
/// 63-bit 3D Hilbert space-filling-curve keys (Skilling's transpose
/// algorithm, AIP Conf. Proc. 707, 2004).
///
/// The Hilbert curve trades slightly costlier key computation for strictly
/// better locality than Morton order: consecutive keys are always unit steps
/// in exactly one axis, which reduces the surface (and therefore the halo
/// traffic) of SFC domain decompositions. Offered as an alternative to the
/// Morton curve in the decomposition ablation (bench_decomposition).

#include <cstdint>

#include "domain/box.hpp"
#include "tree/morton.hpp"

namespace sphexa {

namespace detail {

/// In-place conversion of axis coordinates to Hilbert "transpose" form.
inline constexpr void axesToTranspose(std::uint64_t X[3], int bits)
{
    std::uint64_t M = 1ULL << (bits - 1), P, Q, t;
    // Inverse undo
    for (Q = M; Q > 1; Q >>= 1)
    {
        P = Q - 1;
        for (int i = 0; i < 3; ++i)
        {
            if (X[i] & Q) { X[0] ^= P; }
            else
            {
                t = (X[0] ^ X[i]) & P;
                X[0] ^= t;
                X[i] ^= t;
            }
        }
    }
    // Gray encode
    for (int i = 1; i < 3; ++i)
        X[i] ^= X[i - 1];
    t = 0;
    for (Q = M; Q > 1; Q >>= 1)
    {
        if (X[2] & Q) t ^= Q - 1;
    }
    for (int i = 0; i < 3; ++i)
        X[i] ^= t;
}

/// Inverse of axesToTranspose.
inline constexpr void transposeToAxes(std::uint64_t X[3], int bits)
{
    std::uint64_t M = 2ULL << (bits - 1), P, Q, t;
    // Gray decode by H ^ (H/2)
    t = X[2] >> 1;
    for (int i = 2; i > 0; --i)
        X[i] ^= X[i - 1];
    X[0] ^= t;
    // Undo excess work
    for (Q = 2; Q != M; Q <<= 1)
    {
        P = Q - 1;
        for (int i = 2; i >= 0; --i)
        {
            if (X[i] & Q) { X[0] ^= P; }
            else
            {
                t = (X[0] ^ X[i]) & P;
                X[0] ^= t;
                X[i] ^= t;
            }
        }
    }
}

/// Interleave the transpose form into a single key: bit j of X[d] becomes
/// bit 3j + (2 - d) of the key.
inline constexpr std::uint64_t interleaveTranspose(const std::uint64_t X[3], int bits)
{
    std::uint64_t key = 0;
    for (int j = bits - 1; j >= 0; --j)
    {
        key = key << 3 | ((X[0] >> j & 1) << 2) | ((X[1] >> j & 1) << 1) | (X[2] >> j & 1);
    }
    return key;
}

inline constexpr void deinterleaveTranspose(std::uint64_t key, std::uint64_t X[3], int bits)
{
    X[0] = X[1] = X[2] = 0;
    for (int j = 0; j < bits; ++j)
    {
        X[0] |= ((key >> (3 * j + 2)) & 1) << j;
        X[1] |= ((key >> (3 * j + 1)) & 1) << j;
        X[2] |= ((key >> (3 * j + 0)) & 1) << j;
    }
}

} // namespace detail

/// Encode integer cell coordinates (each < 2^21) into a Hilbert key.
inline constexpr std::uint64_t hilbertEncode(std::uint64_t ix, std::uint64_t iy,
                                             std::uint64_t iz)
{
    std::uint64_t X[3] = {ix, iy, iz};
    detail::axesToTranspose(X, sfcBitsPerDim);
    return detail::interleaveTranspose(X, sfcBitsPerDim);
}

/// Decode a Hilbert key back to integer cell coordinates.
inline constexpr void hilbertDecode(std::uint64_t key, std::uint64_t& ix, std::uint64_t& iy,
                                    std::uint64_t& iz)
{
    std::uint64_t X[3];
    detail::deinterleaveTranspose(key, X, sfcBitsPerDim);
    detail::transposeToAxes(X, sfcBitsPerDim);
    ix = X[0];
    iy = X[1];
    iz = X[2];
}

/// Hilbert key of a point within a global box.
template<class T>
std::uint64_t hilbertKey(const Vec3<T>& p, const Box<T>& box)
{
    Vec3<T> n = box.normalize(p);
    return hilbertEncode(toCellCoord(n.x), toCellCoord(n.y), toCellCoord(n.z));
}

/// SFC curve selector shared by tree build and domain decomposition.
enum class SfcCurve
{
    Morton,
    Hilbert,
};

template<class T>
std::uint64_t sfcKey(SfcCurve curve, const Vec3<T>& p, const Box<T>& box)
{
    return curve == SfcCurve::Morton ? mortonKey(p, box) : hilbertKey(p, box);
}

} // namespace sphexa

#pragma once

/// \file multipole.hpp
/// Cartesian multipole moments of octree nodes, up to hexadecapole order —
/// the "Multipoles (16-pole)" self-gravity of Table 2 (ChaNGa uses 16-pole,
/// SPHYNX 4-pole; both orders are supported and selected per code profile).
///
/// Moments are raw (non-traceless) Cartesian tensors about the node's center
/// of mass (so the dipole vanishes identically):
///     M        = sum m_b
///     Q_ij     = sum m_b d_i d_j
///     O_ijk    = sum m_b d_i d_j d_k
///     H_ijkl   = sum m_b d_i d_j d_k d_l,     d = r_b - R_com.
/// Raw moments are valid because the trace parts act through the harmonic
/// Laplacian of 1/r and vanish away from the source.
///
/// Field evaluation contracts the moments with the derivative tensors of
/// 1/s (ranks 1-5). The monopole and quadrupole contractions are closed
/// forms; octupole/hexadecapole use generic symmetric-tensor contraction.

#include <array>
#include <cmath>

#include "math/vec.hpp"

namespace sphexa {

/// Expansion order selector, named by the paper's N-pole convention.
enum class MultipoleOrder
{
    Monopole = 1,     ///< 2-pole: mass only
    Quadrupole = 2,   ///< 4-pole (SPHYNX)
    Octupole = 3,     ///< 8-pole
    Hexadecapole = 4, ///< 16-pole (ChaNGa)
};

constexpr std::string_view multipoleOrderName(MultipoleOrder o)
{
    switch (o)
    {
        case MultipoleOrder::Monopole: return "Multipoles (2-pole)";
        case MultipoleOrder::Quadrupole: return "Multipoles (4-pole)";
        case MultipoleOrder::Octupole: return "Multipoles (8-pole)";
        case MultipoleOrder::Hexadecapole: return "Multipoles (16-pole)";
    }
    return "?";
}

namespace detail {

/// Symmetric rank-2 storage index for sorted (i <= j).
constexpr int sym2Index(int i, int j)
{
    // (0,0) (0,1) (0,2) (1,1) (1,2) (2,2) -> 0..5
    if (i > j) { int t = i; i = j; j = t; }
    constexpr int base[3] = {0, 3, 5};
    return base[i] + (j - i);
}

/// Symmetric rank-3 storage index: 10 entries for sorted (i <= j <= k).
constexpr int sym3Index(int i, int j, int k)
{
    int a = i, b = j, c = k;
    if (a > b) { int t = a; a = b; b = t; }
    if (b > c) { int t = b; b = c; c = t; }
    if (a > b) { int t = a; a = b; b = t; }
    // enumerate sorted triples over {0,1,2}:
    // (000)(001)(002)(011)(012)(022)(111)(112)(122)(222)
    if (a == 0)
    {
        if (b == 0) return c;          // 000,001,002 -> 0,1,2
        if (b == 1) return 2 + c;      // 011->3, 012->4
        return 5;                      // 022
    }
    if (a == 1)
    {
        if (b == 1) return 5 + c;      // 111->6, 112->7
        return 8;                      // 122
    }
    return 9;                          // 222
}

/// Symmetric rank-4 storage index: 15 entries for sorted (i<=j<=k<=l).
constexpr int sym4Index(int i, int j, int k, int l)
{
    int v[4] = {i, j, k, l};
    // tiny insertion sort
    for (int a = 1; a < 4; ++a)
    {
        int key = v[a], b = a - 1;
        while (b >= 0 && v[b] > key)
        {
            v[b + 1] = v[b];
            --b;
        }
        v[b + 1] = key;
    }
    // enumerate the 15 sorted quadruples over {0,1,2}:
    // 0000 0001 0002 0011 0012 0022 0111 0112 0122 0222 1111 1112 1122 1222 2222
    int a = v[0], b = v[1], c = v[2], d = v[3];
    if (a == 0)
    {
        if (b == 0)
        {
            if (c == 0) return d;              // 0000..0002 -> 0..2
            if (c == 1) return 2 + d;          // 0011->3 0012->4
            return 5;                          // 0022
        }
        if (b == 1)
        {
            if (c == 1) return 5 + d;          // 0111->6 0112->7
            return 8;                          // 0122
        }
        return 9;                              // 0222
    }
    if (a == 1)
    {
        if (b == 1)
        {
            if (c == 1) return 9 + d;          // 1111->10 1112->11
            return 12;                         // 1122
        }
        return 13;                             // 1222
    }
    return 14;                                 // 2222
}

} // namespace detail

/// Multipole moments of a mass distribution about its center of mass.
template<class T>
struct Multipole
{
    T mass{};
    Vec3<T> com{};
    std::array<T, 6>  q{};  ///< rank-2 raw moments
    std::array<T, 10> o{};  ///< rank-3 raw moments
    std::array<T, 15> hx{}; ///< rank-4 raw moments

    T q2(int i, int j) const { return q[detail::sym2Index(i, j)]; }
    T o3(int i, int j, int k) const { return o[detail::sym3Index(i, j, k)]; }
    T h4(int i, int j, int k, int l) const { return hx[detail::sym4Index(i, j, k, l)]; }
};

/// Particle-to-multipole: accumulate moments of the given particles about
/// their center of mass, up to \p order.
template<class T>
Multipole<T> computeMultipole(std::span<const T> x, std::span<const T> y,
                              std::span<const T> z, std::span<const T> m,
                              std::span<const std::uint32_t> indices, MultipoleOrder order)
{
    Multipole<T> mp;
    for (auto j : indices)
    {
        mp.mass += m[j];
        mp.com += m[j] * Vec3<T>{x[j], y[j], z[j]};
    }
    if (mp.mass > T(0)) mp.com /= mp.mass;
    if (order == MultipoleOrder::Monopole) return mp;

    for (auto j : indices)
    {
        Vec3<T> d = Vec3<T>{x[j], y[j], z[j]} - mp.com;
        T mb = m[j];
        for (int a = 0; a < 3; ++a)
            for (int b = a; b < 3; ++b)
                mp.q[detail::sym2Index(a, b)] += mb * d[a] * d[b];

        if (order >= MultipoleOrder::Octupole)
        {
            for (int a = 0; a < 3; ++a)
                for (int b = a; b < 3; ++b)
                    for (int c = b; c < 3; ++c)
                        mp.o[detail::sym3Index(a, b, c)] += mb * d[a] * d[b] * d[c];
        }
        if (order >= MultipoleOrder::Hexadecapole)
        {
            for (int a = 0; a < 3; ++a)
                for (int b = a; b < 3; ++b)
                    for (int c = b; c < 3; ++c)
                        for (int e = c; e < 3; ++e)
                            mp.hx[detail::sym4Index(a, b, c, e)] +=
                                mb * d[a] * d[b] * d[c] * d[e];
        }
    }
    return mp;
}

template<class T>
T d4Tensor(const Vec3<T>& s, T r2, T inv9, int i, int j, int k, int l);
template<class T>
T d5Tensor(const Vec3<T>& s, T r2, T inv11, int i, int j, int k, int l, int m);

/// Gravitational field (acceleration and potential) of a multipole at
/// displacement s = r_target - com. G = 1 units; scale externally.
template<class T>
void evaluateMultipole(const Multipole<T>& mp, const Vec3<T>& s, MultipoleOrder order,
                       Vec3<T>& acc, T& pot)
{
    T r2   = norm2(s);
    T r    = std::sqrt(r2);
    T inv  = T(1) / r;
    T inv2 = inv * inv;
    T inv3 = inv2 * inv;
    T inv5 = inv3 * inv2;
    T inv7 = inv5 * inv2;

    // monopole
    pot -= mp.mass * inv;
    acc -= s * (mp.mass * inv3);
    if (order == MultipoleOrder::Monopole) return;

    // quadrupole, closed form with raw moments:
    //   phi_Q  = -(1/2) (3 sQs - r^2 trQ) / r^5
    //   acc_Q  = +(1/2) [ -15 sQs s / r^7 + 3 (trQ s + 2 Qs) / r^5 ]   (as -grad phi)
    {
        Vec3<T> Qs{mp.q2(0, 0) * s.x + mp.q2(0, 1) * s.y + mp.q2(0, 2) * s.z,
                   mp.q2(1, 0) * s.x + mp.q2(1, 1) * s.y + mp.q2(1, 2) * s.z,
                   mp.q2(2, 0) * s.x + mp.q2(2, 1) * s.y + mp.q2(2, 2) * s.z};
        T sQs = dot(s, Qs);
        T trQ = mp.q2(0, 0) + mp.q2(1, 1) + mp.q2(2, 2);
        pot -= T(0.5) * (T(3) * sQs - r2 * trQ) * inv5;
        acc += T(0.5) * (T(-15) * sQs * inv7 * s + T(3) * inv5 * (trQ * s + T(2) * Qs));
    }
    if (order == MultipoleOrder::Quadrupole) return;

    T inv9  = inv7 * inv2;
    T inv11 = inv9 * inv2;

    // octupole: phi_O = +(1/6) O_jkl D3_jkl ... with Taylor sign (-1)^3:
    // phi = -G sum_n ((-1)^n / n!) Moment_n . D_n; for n=3 the sign is -1/6.
    // D3_jkl = -(15 s_j s_k s_l - 3 r^2 (s_j d_kl + s_k d_jl + s_l d_jk)) / r^7
    {
        // contract O with D3 (potential) and with D4 (acceleration)
        T o_d3 = T(0);
        Vec3<T> o_d4{};
        for (int j = 0; j < 3; ++j)
            for (int k = 0; k < 3; ++k)
                for (int l = 0; l < 3; ++l)
                {
                    T ojkl = mp.o3(j, k, l);
                    if (ojkl == T(0)) continue;
                    // D3
                    T t = T(15) * s[j] * s[k] * s[l];
                    T dterm = T(0);
                    if (k == l) dterm += s[j];
                    if (j == l) dterm += s[k];
                    if (j == k) dterm += s[l];
                    T d3 = -(t - T(3) * r2 * dterm) * inv7;
                    o_d3 += ojkl * d3;
                    // D4_ijkl for each i
                    for (int i = 0; i < 3; ++i)
                    {
                        o_d4[i] += ojkl * d4Tensor(s, r2, inv9, i, j, k, l);
                    }
                }
        // phi += -G * (-1/6) O.D3  (with G=1 folded): pot -= (-1/6) o_d3
        pot += o_d3 / T(6);
        // acc_i = -d(phi)/ds_i = -(1/6) O.D4_i
        acc -= o_d4 / T(6);
    }
    if (order == MultipoleOrder::Octupole) return;

    // hexadecapole: n=4, sign +1/24
    {
        T h_d4 = T(0);
        Vec3<T> h_d5{};
        for (int j = 0; j < 3; ++j)
            for (int k = 0; k < 3; ++k)
                for (int l = 0; l < 3; ++l)
                    for (int mth = 0; mth < 3; ++mth)
                    {
                        T hj = mp.h4(j, k, l, mth);
                        if (hj == T(0)) continue;
                        h_d4 += hj * d4Tensor(s, r2, inv9, j, k, l, mth);
                        for (int i = 0; i < 3; ++i)
                        {
                            h_d5[i] += hj * d5Tensor(s, r2, inv11, i, j, k, l, mth);
                        }
                    }
        pot -= h_d4 / T(24);
        acc += h_d5 / T(24);
    }
}

/// Rank-4 derivative tensor of 1/s:
/// D4 = (105 ssss - 15 r^2 (ss d, 6 terms) + 3 r^4 (dd, 3 terms)) / r^9.
template<class T>
T d4Tensor(const Vec3<T>& s, T r2, T inv9, int i, int j, int k, int l)
{
    T t1 = T(105) * s[i] * s[j] * s[k] * s[l];
    T t2 = T(0);
    if (k == l) t2 += s[i] * s[j];
    if (j == l) t2 += s[i] * s[k];
    if (j == k) t2 += s[i] * s[l];
    if (i == l) t2 += s[j] * s[k];
    if (i == k) t2 += s[j] * s[l];
    if (i == j) t2 += s[k] * s[l];
    T t3 = T(0);
    if (i == j && k == l) t3 += T(1);
    if (i == k && j == l) t3 += T(1);
    if (i == l && j == k) t3 += T(1);
    return (t1 - T(15) * r2 * t2 + T(3) * r2 * r2 * t3) * inv9;
}

/// Rank-5 derivative tensor of 1/s:
/// D5 = -(945 sssss - 105 r^2 (sss d, 10 terms) + 15 r^4 (s dd, 15 terms)) / r^11.
template<class T>
T d5Tensor(const Vec3<T>& s, T r2, T inv11, int i, int j, int k, int l, int m)
{
    const int idx[5] = {i, j, k, l, m};
    T t1 = T(945) * s[i] * s[j] * s[k] * s[l] * s[m];

    // 10 terms: delta over one pair, s over remaining three
    T t2 = T(0);
    for (int a = 0; a < 5; ++a)
        for (int b = a + 1; b < 5; ++b)
        {
            if (idx[a] != idx[b]) continue;
            T prod = T(1);
            for (int c = 0; c < 5; ++c)
            {
                if (c != a && c != b) prod *= s[idx[c]];
            }
            t2 += prod;
        }

    // 15 terms: two disjoint delta pairs, s over the remaining index
    T t3 = T(0);
    for (int a = 0; a < 5; ++a)
        for (int b = a + 1; b < 5; ++b)
        {
            for (int c = a + 1; c < 5; ++c)
            {
                if (c == b) continue;
                for (int d = c + 1; d < 5; ++d)
                {
                    if (d == b) continue;
                    // pairs (a,b) and (c,d), a < b, c < d, a < c: each
                    // unordered pair-of-pairs counted once
                    if (idx[a] == idx[b] && idx[c] == idx[d])
                    {
                        int e = 0 + 1 + 2 + 3 + 4 - a - b - c - d;
                        t3 += s[idx[e]];
                    }
                }
            }
        }

    return -(t1 - T(105) * r2 * t2 + T(15) * r2 * r2 * t3) * inv11;
}

} // namespace sphexa

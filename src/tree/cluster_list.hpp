#pragma once

/// \file cluster_list.hpp
/// Cluster (pseudo-Verlet) neighbor search: the "cluster" half of the
/// sorted-reorder + cluster subsystem (tree/sfc_sort.hpp).
///
/// Fixed-size runs of consecutive SFC-sorted particles form clusters with
/// tight AABBs. Instead of one octree walk per particle (ngmax-bounded tree
/// walk of tree/neighbors.hpp), the search walks the tree once per CLUSTER:
/// nodes are pruned by cluster-AABB-to-node-AABB distance against the
/// cluster's largest support radius, surviving leaves are gathered into a
/// packed candidate buffer, and every member then scans that contiguous
/// buffer — amortizing the traversal over clusterSize particles and turning
/// the scattered per-leaf gathers into dense streaming loops (Gonnet's
/// sorted cell-pair lists, arXiv:1404.2303; Shamrock's cluster pipeline,
/// arXiv:2503.09713).
///
/// Output equivalence is EXACT, not just set-equal: candidate leaves are
/// visited in the same depth-first order as Octree::forEachNeighbor and
/// members test candidates with the same predicate, and since box-box
/// pruning distances never exceed the member's point-box distances
/// (aabbDistanceSq, domain/box.hpp), every leaf a per-particle walk visits
/// survives cluster pruning. Each particle therefore receives the same
/// neighbor indices in the same order as findNeighborsGlobal — so every
/// downstream SPH sum is bitwise identical between the two search modes
/// (gated by tests/test_cluster_list.cpp and the golden gallery).
///
/// The search runs through parallelFor (one iteration per cluster); each
/// cluster writes only its own members' list slots, so results are bitwise
/// invariant under pool size and scheduling strategy like every other hot
/// loop.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "backend/simd_tile.hpp"
#include "domain/box.hpp"
#include "parallel/parallel_for.hpp"
#include "tree/neighbors.hpp"
#include "tree/octree.hpp"

namespace sphexa {

/// Persistent scratch of the cluster search: per-worker candidate buffers
/// that survive across steps, so a steady-state search allocates nothing.
/// Owned by a driver (like the AWF weight store) and referenced by its
/// StepContexts; a default-constructed workspace is valid and warms up on
/// first use.
template<class T>
struct ClusterWorkspace
{
    using Index = typename Octree<T>::Index;

    struct WorkerScratch
    {
        std::vector<Index> candidates; ///< candidate indices, traversal order
        std::vector<T>     cx, cy, cz; ///< packed candidate coordinates
        std::vector<T>     d2;         ///< per-candidate squared distances
        std::vector<Index> list;       ///< per-member neighbor staging
    };

    std::vector<WorkerScratch> workers;

    /// Sweep statistics of the last search (diagnostics / bench output).
    std::size_t clusters = 0;
    std::size_t candidatesVisited = 0;
};

/// Fill neighbor lists for all particles via cluster interaction lists.
/// Drop-in replacement for findNeighborsGlobal over the same octree: the
/// arrays must be the ones the tree was built over. Clusters are runs of
/// \p clusterSize consecutive particles — tight when the set is SFC-sorted
/// (tree/sfc_sort.hpp), merely suboptimal when it is not.
template<class T>
void findNeighborsClustered(const Octree<T>& tree, std::type_identity_t<std::span<const T>> x,
                            std::type_identity_t<std::span<const T>> y,
                            std::type_identity_t<std::span<const T>> z,
                            std::type_identity_t<std::span<const T>> h, NeighborList<T>& nl,
                            ClusterWorkspace<T>& ws, unsigned clusterSize = 32,
                            const LoopPolicy& policy = {})
{
    using Index = typename Octree<T>::Index;

    std::size_t n = x.size();
    if (n == 0) return;
    std::size_t m         = std::max(1u, clusterSize);
    std::size_t nClusters = (n + m - 1) / m;
    const Box<T>& box     = tree.box();
    const auto& nodes     = tree.nodes();
    const auto& order     = tree.order();

    ws.workers.resize(WorkerPool::instance().size());
    ws.clusters = nClusters;

    // Periodic-wrap constants hoisted out of the member scan, shared with
    // the Simd backend tiles (backend/simd_tile.hpp): a non-periodic axis
    // gets an infinite half-width so its wrap selects never fire; a periodic
    // axis reproduces Box::delta exactly — same L/2 threshold, same single-
    // subtraction corrections, just expressed as selects so the inner loop
    // stays branch-free (and vectorizable).
    const backend::PeriodicWrap<T> wrap(box);

    std::vector<WorkerSlot<std::size_t>> visited(ws.workers.size());

    parallelFor(
        nClusters,
        [&](std::size_t c, std::size_t worker) {
            auto& scr         = ws.workers[worker];
            std::size_t first = c * m;
            std::size_t last  = std::min(n, first + m);

            // tight cluster AABB and the largest member support radius
            Vec3<T> lo{x[first], y[first], z[first]};
            Vec3<T> hi = lo;
            T maxR     = T(0);
            for (std::size_t i = first; i < last; ++i)
            {
                Vec3<T> p{x[i], y[i], z[i]};
                lo   = min(lo, p);
                hi   = max(hi, p);
                maxR = std::max(maxR, T(2) * h[i]);
            }
            T maxR2 = maxR * maxR;

            // one DFS per cluster, same stack discipline as forEachNeighbor
            // so surviving leaves appear in the identical traversal order
            scr.candidates.clear();
            scr.cx.clear();
            scr.cy.clear();
            scr.cz.clear();
            Index stack[512];
            int   sp    = 0;
            stack[sp++] = 0;
            while (sp > 0)
            {
                const auto& nd = nodes[stack[--sp]];
                if (aabbDistanceSq(lo, hi, nd.lo, nd.hi, box) > maxR2) continue;
                if (nd.nChildren == 0)
                {
                    for (Index k = nd.first; k < nd.first + nd.count; ++k)
                    {
                        Index j = order[k];
                        Vec3<T> pj{x[j], y[j], z[j]};
                        // one point-box test here saves clusterSize point-
                        // point tests below: a candidate farther than maxR
                        // from the cluster AABB can be accepted by no member
                        // (point-box <= the member's point-point distance
                        // under monotone FP rounding — the same conservative
                        // bound the per-particle walk's leaf pruning uses),
                        // and dropping it keeps the surviving candidates a
                        // subsequence in traversal order, preserving exact
                        // list equality. This trims the leaf-granularity
                        // overhang that would otherwise triple member scans.
                        if (distanceSqToBox(pj, lo, hi, box) > maxR2) continue;
                        scr.candidates.push_back(j);
                        scr.cx.push_back(pj.x);
                        scr.cy.push_back(pj.y);
                        scr.cz.push_back(pj.z);
                    }
                }
                else
                {
                    for (int ch = 0; ch < nd.nChildren; ++ch)
                    {
                        assert(sp < 511);
                        stack[sp++] = nd.child + Index(ch);
                    }
                }
            }
            visited[worker].value += scr.candidates.size();

            // Every member streams the packed candidate buffer in two
            // branch-free passes. Pass 1 computes the minimum-image squared
            // distance of every candidate: the wrap selects pick among the
            // identical FP values Box::delta's branches would produce, and
            // the sum keeps norm2's left-to-right association — so d2 is
            // bitwise the value the per-particle walk compares. Pass 2 is an
            // ordered compaction (write always, advance on accept) with the
            // walk's exact predicate, so accepted candidates land in
            // traversal order with no data-dependent branch. This is where
            // cluster mode beats the walk: the walk retests ~O(r^3) scattered
            // candidates per particle through branchy code, while this loop
            // streams a filtered contiguous buffer the whole cluster shares.
            std::size_t nCand = scr.candidates.size();
            if (scr.d2.size() < nCand) scr.d2.resize(nCand);
            if (scr.list.size() < nCand) scr.list.resize(nCand);
            const T* cxp     = scr.cx.data();
            const T* cyp     = scr.cy.data();
            const T* czp     = scr.cz.data();
            const Index* cdp = scr.candidates.data();
            T* d2p           = scr.d2.data();
            Index* outp      = scr.list.data();
            for (std::size_t i = first; i < last; ++i)
            {
                T pix    = x[i];
                T piy    = y[i];
                T piz    = z[i];
                T radius = T(2) * h[i];
                T r2     = radius * radius;
                for (std::size_t k = 0; k < nCand; ++k)
                {
                    T dx   = wrap.x(pix - cxp[k]);
                    T dy   = wrap.y(piy - cyp[k]);
                    T dz   = wrap.z(piz - czp[k]);
                    d2p[k] = dx * dx + dy * dy + dz * dz;
                }
                std::size_t cnt = 0;
                for (std::size_t k = 0; k < nCand; ++k)
                {
                    outp[cnt] = cdp[k];
                    cnt += std::size_t((d2p[k] < r2) & (cdp[k] != Index(i)));
                }
                nl.set(i, std::span<const Index>(outp, cnt));
            }
        },
        policy);

    ws.candidatesVisited = 0;
    for (const auto& v : visited)
        ws.candidatesVisited += v.value;
}

} // namespace sphexa

#pragma once

/// \file gravity.hpp
/// Barnes-Hut self-gravity (step 4 of Algorithm 1), O(N log N): the solver
/// SPH "naturally couples with" per the paper's introduction.
///
/// Per-node multipoles (tree/multipole.hpp) are accepted under the classic
/// geometric multipole-acceptance criterion size/d < theta; rejected nodes
/// are opened, leaves fall back to direct particle-particle sums with
/// Plummer softening. The expansion order is a runtime parameter so the
/// SPHYNX (4-pole) and ChaNGa (16-pole) configurations of Table 1 both map
/// onto this solver.

#include <cmath>
#include <span>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "sph/particles.hpp"
#include "tree/multipole.hpp"
#include "tree/octree.hpp"

namespace sphexa {

template<class T>
struct GravityParams
{
    T G = T(1);                  ///< gravitational constant
    T theta = T(0.5);            ///< opening angle (MAC)
    T softening = T(0);          ///< Plummer softening length
    MultipoleOrder order = MultipoleOrder::Quadrupole;
};

/// Work statistics of a gravity solve (feeds the cluster simulator).
struct GravityStats
{
    std::size_t p2pInteractions = 0; ///< direct particle pairs evaluated
    std::size_t m2pInteractions = 0; ///< node multipole evaluations
};

/// Gravity solver bound to an octree built over the particle set.
template<class T>
class GravitySolver
{
public:
    using Index = typename Octree<T>::Index;

    /// Precompute per-node multipoles (direct P2M per node; each particle
    /// contributes to its ~depth ancestors).
    void prepare(const Octree<T>& tree, const ParticleSet<T>& ps, const GravityParams<T>& params)
    {
        tree_   = &tree;
        params_ = params;
        std::size_t nNodes = tree.nodeCount();
        multipoles_.resize(nNodes);

        const auto& order = tree.order();
        LoopPolicy policy;
        policy.strategy = SchedulingStrategy::Guided; // node cost ~ particle count
        parallelFor(nNodes, [&](std::size_t nIdx, std::size_t) {
            const auto& nd = tree.node(Index(nIdx));
            multipoles_[nIdx] =
                computeMultipole<T>(ps.x, ps.y, ps.z, ps.m,
                                    std::span<const Index>(order.data() + nd.first, nd.count),
                                    params_.order);
        }, policy);
    }

    /// Accumulate gravitational acceleration into ax/ay/az and return the
    /// total potential energy U = 1/2 sum m_i phi_i. When \p targets is
    /// non-empty, only those particles receive forces (the distributed
    /// driver's per-rank walk and the workload probe use this).
    T accumulate(ParticleSet<T>& ps, GravityStats* stats = nullptr,
                 std::span<const std::size_t> targets = {},
                 const LoopPolicy& policy = {SchedulingStrategy::Guided})
    {
        std::size_t count = targets.empty() ? ps.size() : targets.size();

        // Exact reduction, pool-size invariant: each target's potential
        // contribution lands in slot k and the slots are summed serially in
        // index order afterwards, so the total is bitwise identical for any
        // pool size and scheduling strategy (the interaction COUNTS are
        // integers, so per-worker slots suffice for them).
        potScratch_.assign(count, T(0));
        std::size_t nw = parallelForWorkers();
        std::vector<WorkerSlot<GravityStats>> counts(nw);

        parallelFor(count, [&](std::size_t k, std::size_t w) {
            std::size_t i = targets.empty() ? k : targets[k];
            Vec3<T> acc{};
            T pot = T(0);
            walk(ps, i, acc, pot, counts[w].value.p2pInteractions,
                 counts[w].value.m2pInteractions);
            ps.ax[i] += params_.G * acc.x;
            ps.ay[i] += params_.G * acc.y;
            ps.az[i] += params_.G * acc.z;
            potScratch_[k] = T(0.5) * ps.m[i] * params_.G * pot;
        }, policy);

        T totalPot = T(0);
        for (std::size_t k = 0; k < count; ++k)
            totalPot += potScratch_[k];

        if (stats)
        {
            stats->p2pInteractions = 0;
            stats->m2pInteractions = 0;
            for (const auto& c : counts)
            {
                stats->p2pInteractions += c.value.p2pInteractions;
                stats->m2pInteractions += c.value.m2pInteractions;
            }
        }
        return totalPot;
    }

    /// Reference O(N^2) direct sum (tests, ablation baseline). Returns the
    /// total potential energy; accelerations go to ax/ay/az (overwritten).
    static T directSum(ParticleSet<T>& ps, const GravityParams<T>& params)
    {
        std::size_t n = ps.size();
        T eps2 = params.softening * params.softening;
        // per-particle potential slots + serial index-order sum: bitwise
        // identical total for any pool size (same idiom as accumulate())
        std::vector<T> pots(n, T(0));

        parallelFor(n, [&](std::size_t i, std::size_t) {
            Vec3<T> pi{ps.x[i], ps.y[i], ps.z[i]};
            Vec3<T> acc{};
            T pot = T(0);
            for (std::size_t j = 0; j < n; ++j)
            {
                if (j == i) continue;
                Vec3<T> d = pi - Vec3<T>{ps.x[j], ps.y[j], ps.z[j]};
                T r2   = norm2(d) + eps2;
                T invR = T(1) / std::sqrt(r2);
                T invR3 = invR / r2;
                acc -= ps.m[j] * invR3 * d;
                pot -= ps.m[j] * invR;
            }
            ps.ax[i] = params.G * acc.x;
            ps.ay[i] = params.G * acc.y;
            ps.az[i] = params.G * acc.z;
            pots[i] = T(0.5) * ps.m[i] * params.G * pot;
        });

        T totalPot = T(0);
        for (std::size_t i = 0; i < n; ++i)
            totalPot += pots[i];
        return totalPot;
    }

    const Multipole<T>& nodeMultipole(Index n) const { return multipoles_[n]; }

private:
    void walk(ParticleSet<T>& ps, std::size_t i, Vec3<T>& acc, T& pot, std::size_t& p2p,
              std::size_t& m2p) const
    {
        const Octree<T>& tree = *tree_;
        Vec3<T> pi{ps.x[i], ps.y[i], ps.z[i]};
        T eps2 = params_.softening * params_.softening;

        Index stack[256];
        int   sp    = 0;
        stack[sp++] = 0;
        while (sp > 0)
        {
            Index nIdx = stack[--sp];
            const auto& nd = tree.node(nIdx);
            if (nd.count == 0) continue;

            const Multipole<T>& mp = multipoles_[nIdx];
            Vec3<T> s = pi - mp.com;
            T d2 = norm2(s);
            Vec3<T> ext = nd.hi - nd.lo;
            T size = std::max({ext.x, ext.y, ext.z});

            // multipole acceptance: geometric MAC, and the target must lie
            // outside the node's bounding box (inside forces opening)
            bool inside = pi.x >= nd.lo.x && pi.x <= nd.hi.x && pi.y >= nd.lo.y &&
                          pi.y <= nd.hi.y && pi.z >= nd.lo.z && pi.z <= nd.hi.z;
            bool accept = !inside && d2 > T(0) &&
                          size * size < params_.theta * params_.theta * d2;
            if (accept)
            {
                evaluateMultipole(mp, s, params_.order, acc, pot);
                ++m2p;
            }
            else if (nd.nChildren == 0)
            {
                // leaf: direct sum
                for (Index k = nd.first; k < nd.first + nd.count; ++k)
                {
                    Index j = tree.order()[k];
                    if (j == Index(i)) continue;
                    Vec3<T> d = pi - Vec3<T>{ps.x[j], ps.y[j], ps.z[j]};
                    T r2 = norm2(d) + eps2;
                    T invR = T(1) / std::sqrt(r2);
                    acc -= ps.m[j] * (invR / r2) * d;
                    pot -= ps.m[j] * invR;
                    ++p2p;
                }
            }
            else
            {
                for (int c = 0; c < nd.nChildren; ++c)
                {
                    stack[sp++] = nd.child + Index(c);
                }
            }
        }
    }

    const Octree<T>* tree_{nullptr};
    GravityParams<T> params_{};
    std::vector<Multipole<T>> multipoles_;
    std::vector<T> potScratch_; ///< per-target potential slots (exact reduction)
};

} // namespace sphexa

#pragma once

/// \file neighbors.hpp
/// Neighbor discovery (step 2 of Algorithm 1): tree walks over the octree.
///
/// Per Table 1/2 of the paper, both discovery modes are provided:
///  - Global tree walk (SPHYNX, SPH-flow): every particle searches each step.
///  - Individual tree walk (ChaNGa): only an active subset searches — the
///    mode used with individual (multi-) time-stepping.
///
/// Neighbor lists are stored flat with a fixed per-particle capacity
/// (ngmax), the layout used by the production SPH-EXA mini-app; overflow is
/// recorded rather than silently truncated.
///
/// The walks run through parallelFor (parallel/parallel_for.hpp) with
/// per-worker scratch buffers: iteration i writes only list slot i, so the
/// produced lists are bitwise identical for any pool size and strategy.

#include <atomic>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "tree/octree.hpp"

namespace sphexa {

/// Flat fixed-capacity neighbor lists.
template<class T>
class NeighborList
{
public:
    using Index = typename Octree<T>::Index;

    explicit NeighborList(std::size_t n = 0, unsigned ngmax = 256) { reset(n, ngmax); }

    /// Size the lists for \p n particles and zero the counts. The entry
    /// storage only ever GROWS: steady-state resets (every step, plus the
    /// WCSPH ghost bracket growing and shrinking the set within a step)
    /// reuse the high-water-mark allocation instead of reassigning
    /// n*ngmax entries — entries are never read past their count, so
    /// stale storage needs no zeroing (bench_neighbors asserts the
    /// no-churn property).
    void reset(std::size_t n, unsigned ngmax)
    {
        n_     = n;
        ngmax_ = ngmax;
        if (list_.size() < n * std::size_t(ngmax)) list_.resize(n * std::size_t(ngmax));
        count_.assign(n, 0);
        overflow_ = 0;
    }

    /// Zero the overflow counter only (start of each search pass); keeps
    /// lists and counts, unlike reset().
    void resetOverflow() { overflow_ = 0; }

    /// Allocated entry storage, in entries (high-water mark across resets).
    std::size_t entryCapacity() const { return list_.capacity(); }
    /// Address of the entry storage (stable across steady-state resets).
    const Index* entryData() const { return list_.data(); }

    unsigned ngmax() const { return ngmax_; }
    std::size_t size() const { return n_; }

    /// Number of neighbors found for particle i (capped at ngmax).
    unsigned count(std::size_t i) const { return count_[i]; }

    /// Neighbor indices of particle i.
    std::span<const Index> neighbors(std::size_t i) const
    {
        return {list_.data() + i * ngmax_, count_[i]};
    }

    /// One particle's neighbor row — entry pointer and count from a single
    /// lookup, the flat contiguous form the backend kernels consume
    /// (src/backend/*_kernel.hpp). Iterable like neighbors(i).
    struct Row
    {
        const Index* data;
        std::size_t  count;

        std::span<const Index> span() const { return {data, count}; }
        const Index* begin() const { return data; }
        const Index* end() const { return data + count; }
        std::size_t size() const { return count; }
        bool empty() const { return count == 0; }
    };

    /// Row accessor: both the entries and the count of particle i in one call.
    Row row(std::size_t i) const { return {list_.data() + i * ngmax_, count_[i]}; }

    /// Number of particles whose neighborhood exceeded ngmax in the last fill.
    std::size_t overflowCount() const { return overflow_; }

    /// Total number of neighbor entries (interaction count proxy).
    std::size_t totalNeighbors() const
    {
        std::size_t s = 0;
        for (auto c : count_)
            s += c;
        return s;
    }

    void set(std::size_t i, std::span<const Index> nbs)
    {
        unsigned c = unsigned(std::min<std::size_t>(nbs.size(), ngmax_));
        for (unsigned k = 0; k < c; ++k)
            list_[i * ngmax_ + k] = nbs[k];
        count_[i] = c;
        if (nbs.size() > ngmax_)
        {
            // set() runs concurrently for distinct i from parallelFor
            // workers; atomic_ref makes the shared overflow tally atomic
            // while keeping the member a plain (copyable) size_t.
            std::atomic_ref<std::size_t>(overflow_).fetch_add(1, std::memory_order_relaxed);
        }
    }

private:
    std::size_t n_{0};
    unsigned    ngmax_{256};
    std::vector<Index>    list_;
    std::vector<unsigned> count_;
    std::size_t           overflow_{0};
};

/// Fill neighbor lists for all particles ("global tree walk").
///
/// The search radius of particle i is 2 h_i (kernel support). Self is
/// excluded from the list; SPH sums add the self contribution analytically.
template<class T>
void findNeighborsGlobal(const Octree<T>& tree, std::type_identity_t<std::span<const T>> x, std::type_identity_t<std::span<const T>> y,
                         std::type_identity_t<std::span<const T>> z, std::type_identity_t<std::span<const T>> h, NeighborList<T>& nl,
                         const LoopPolicy& policy = {})
{
    using Index = typename Octree<T>::Index;
    std::size_t n = x.size();
    std::vector<std::vector<Index>> scratch(parallelForWorkers());
    for (auto& s : scratch)
        s.reserve(nl.ngmax());
    parallelFor(n, [&](std::size_t i, std::size_t w) {
        auto& local = scratch[w];
        local.clear();
        Vec3<T> pos{x[i], y[i], z[i]};
        T radius = T(2) * h[i];
        tree.forEachNeighbor(pos, radius, [&](Index j, T) {
            if (j != Index(i)) local.push_back(j);
        });
        nl.set(i, local);
    }, policy);
}

/// Fill neighbor lists only for the \p active particles ("individual tree
/// walk", ChaNGa-style): the inactive entries keep their previous lists.
/// This is the phase-B search of every subset walk — the binned-integration
/// pipeline (PipelineFactory::individual, where \p active is the time-step
/// controller's force set) and the distributed driver's per-rank walk. No
/// ClusterList counterpart exists: clusters are runs of consecutive
/// SFC-sorted slots and an active bin scatters across them, so the
/// per-particle walk remains the subset path (open item in the ROADMAP).
template<class T>
void findNeighborsIndividual(const Octree<T>& tree, std::type_identity_t<std::span<const T>> x,
                             std::type_identity_t<std::span<const T>> y, std::type_identity_t<std::span<const T>> z,
                             std::type_identity_t<std::span<const T>> h, std::type_identity_t<std::span<const std::size_t>> active,
                             NeighborList<T>& nl, const LoopPolicy& policy = {})
{
    using Index = typename Octree<T>::Index;
    std::vector<std::vector<Index>> scratch(parallelForWorkers());
    for (auto& s : scratch)
        s.reserve(nl.ngmax());
    parallelFor(active.size(), [&](std::size_t a, std::size_t w) {
        std::size_t i = active[a];
        auto& local = scratch[w];
        local.clear();
        Vec3<T> pos{x[i], y[i], z[i]};
        T radius = T(2) * h[i];
        tree.forEachNeighbor(pos, radius, [&](Index j, T) {
            if (j != Index(i)) local.push_back(j);
        });
        nl.set(i, local);
    }, policy);
}

/// Brute-force O(N^2) reference used by tests and the neighbor ablation.
template<class T>
void findNeighborsBruteForce(std::type_identity_t<std::span<const T>> x, std::type_identity_t<std::span<const T>> y,
                             std::type_identity_t<std::span<const T>> z, std::type_identity_t<std::span<const T>> h, const Box<T>& box,
                             NeighborList<T>& nl)
{
    using Index = typename Octree<T>::Index;
    std::size_t n = x.size();
    std::vector<std::vector<Index>> scratch(parallelForWorkers());
    parallelFor(n, [&](std::size_t i, std::size_t w) {
        auto& local = scratch[w];
        local.clear();
        Vec3<T> pi{x[i], y[i], z[i]};
        T r2 = T(4) * h[i] * h[i];
        for (std::size_t j = 0; j < n; ++j)
        {
            if (j == i) continue;
            Vec3<T> d = box.delta(pi, Vec3<T>{x[j], y[j], z[j]});
            if (norm2(d) < r2) local.push_back(Index(j));
        }
        nl.set(i, local);
    });
}

} // namespace sphexa

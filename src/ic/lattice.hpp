#pragma once

/// \file lattice.hpp
/// Particle lattice generators: the building blocks of all initial
/// conditions. "Generating initial conditions for different numbers of
/// particles is a non-trivial process" (paper Sec. 5.2) — these generators
/// are deterministic and parameterized by per-axis counts so strong-scaling
/// experiments always run the exact same particle distribution.

#include <cstddef>

#include "domain/box.hpp"
#include "math/rng.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/particles.hpp"

namespace sphexa {

/// Fill positions with an nx x ny x nz cubic lattice covering \p box,
/// cell-centered (first point at lo + spacing/2). Returns particle count.
template<class T>
std::size_t cubicLattice(ParticleSet<T>& ps, std::size_t nx, std::size_t ny, std::size_t nz,
                         const Box<T>& box)
{
    std::size_t n = nx * ny * nz;
    ps.resize(n);
    T dx = box.length(0) / T(nx);
    T dy = box.length(1) / T(ny);
    T dz = box.length(2) / T(nz);

    // flattened (k, j) plane loop (the old collapse(2)); slot-idx writes
    parallelFor(nz * ny, [&](std::size_t t, std::size_t) {
        std::size_t k = t / ny, j = t % ny;
        for (std::size_t i = 0; i < nx; ++i)
        {
            std::size_t idx = (k * ny + j) * nx + i;
            ps.x[idx] = box.lo.x + (T(i) + T(0.5)) * dx;
            ps.y[idx] = box.lo.y + (T(j) + T(0.5)) * dy;
            ps.z[idx] = box.lo.z + (T(k) + T(0.5)) * dz;
            ps.id[idx] = idx;
        }
    });
    return n;
}

/// Add deterministic jitter to lattice positions (fraction of the local
/// spacing), wrapping through periodic boundaries. Breaks the exact lattice
/// symmetry that can stall SPH relaxation.
template<class T>
void jitterPositions(ParticleSet<T>& ps, const Box<T>& box, T spacing, T fraction,
                     std::uint64_t seed)
{
    std::size_t n = ps.size();
    Xoshiro256pp rng(seed);
    for (std::size_t i = 0; i < n; ++i)
    {
        Vec3<T> p{ps.x[i], ps.y[i], ps.z[i]};
        p.x += T(rng.uniform(-0.5, 0.5)) * fraction * spacing;
        p.y += T(rng.uniform(-0.5, 0.5)) * fraction * spacing;
        p.z += T(rng.uniform(-0.5, 0.5)) * fraction * spacing;
        p = box.wrap(p);
        // non-periodic axes: clamp inside
        for (int ax = 0; ax < 3; ++ax)
        {
            if (p[ax] < box.lo[ax]) p[ax] = box.lo[ax];
            if (p[ax] >= box.hi[ax]) p[ax] = box.hi[ax] - T(1e-12) * box.length(ax);
        }
        ps.x[i] = p.x;
        ps.y[i] = p.y;
        ps.z[i] = p.z;
    }
}

} // namespace sphexa

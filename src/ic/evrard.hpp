#pragma once

/// \file evrard.hpp
/// Evrard collapse (Evrard 1988), as configured in Sec. 5.1 of the paper
/// following SPHYNX (Cabezon et al. 2017):
///
///  - initially static, cold gas sphere with density profile
///        rho(r) = M / (2 pi R^2 r)   for r <= R       (paper eq. 2)
///  - R = 1, M = 1, G = 1; specific internal energy u0 = 0.05;
///  - ideal-gas EOS with gamma = 5/3;
///  - gravitational energy >> internal energy, so the sphere collapses,
///    bounces and launches an outward shock.
///
/// The 1/r profile is realized by the standard radial stretch of a uniform
/// lattice: M(<r) = M r^2/R^2 for the target vs M s^3/R^3 for the uniform
/// sphere gives the exact map r = R (s/R)^{3/2} with equal-mass particles.

#include <cmath>
#include <numbers>

#include "domain/box.hpp"
#include "ic/lattice.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/eos.hpp"
#include "sph/particles.hpp"

namespace sphexa {

template<class T>
struct EvrardConfig
{
    std::size_t nSide = 50; ///< lattice side; sphere keeps ~pi/6 of nSide^3
    T R  = T(1);            ///< initial radius
    T M  = T(1);            ///< total mass
    T u0 = T(0.05);         ///< initial specific internal energy (paper)
    T gamma = T(5) / T(3);
    T G = T(1);
};

template<class T>
struct EvrardSetup
{
    Box<T> box;            ///< open (non-periodic) domain with margins
    IdealGasEos<T> eos;
    T particleMass;
    std::size_t nParticles;
};

/// Generate the Evrard collapse initial conditions into \p ps.
template<class T>
EvrardSetup<T> makeEvrard(ParticleSet<T>& ps, const EvrardConfig<T>& cfg = {})
{
    // uniform lattice in the bounding cube of the unit sphere
    ParticleSet<T> cube;
    Box<T> latticeBox{{-cfg.R, -cfg.R, -cfg.R}, {cfg.R, cfg.R, cfg.R}};
    cubicLattice(cube, cfg.nSide, cfg.nSide, cfg.nSide, latticeBox);

    // keep points inside the sphere, stretch radially: r -> R (s/R)^{3/2}
    ps.clear();
    ps.reserve(cube.size());
    std::size_t kept = 0;
    for (std::size_t i = 0; i < cube.size(); ++i)
    {
        Vec3<T> s{cube.x[i], cube.y[i], cube.z[i]};
        T sr = norm(s);
        if (sr >= cfg.R || sr == T(0)) continue;
        T rNew  = cfg.R * std::pow(sr / cfg.R, T(1.5));
        Vec3<T> p = s * (rNew / sr);
        ps.appendFrom(cube, i);
        std::size_t idx = ps.size() - 1;
        ps.x[idx] = p.x;
        ps.y[idx] = p.y;
        ps.z[idx] = p.z;
        ps.id[idx] = kept++;
    }

    std::size_t n = ps.size();
    T mass = cfg.M / T(n);
    constexpr unsigned targetNeighbors = 100; // paper: ~10^2 neighbors

    parallelFor(n, [&](std::size_t i, std::size_t) {
        ps.m[i]  = mass;
        ps.vx[i] = ps.vy[i] = ps.vz[i] = T(0); // initially static
        ps.u[i]  = cfg.u0;
        T r = std::sqrt(ps.x[i] * ps.x[i] + ps.y[i] * ps.y[i] + ps.z[i] * ps.z[i]);
        ps.rho[i] = cfg.M / (T(2) * std::numbers::pi_v<T> * cfg.R * cfg.R *
                             std::max(r, T(1e-6)));
        // h so that (4/3) pi (2h)^3 rho / m ~ targetNeighbors; the h
        // iteration refines this
        ps.h[i] = T(0.5) * std::cbrt(T(3) * T(targetNeighbors) * mass /
                                     (T(4) * std::numbers::pi_v<T> * ps.rho[i]));
    });

    // The collapse stays within ~2R; give the open box generous margins.
    Box<T> box{{-3 * cfg.R, -3 * cfg.R, -3 * cfg.R}, {3 * cfg.R, 3 * cfg.R, 3 * cfg.R}};
    return {box, IdealGasEos<T>(cfg.gamma), mass, n};
}

/// Analytic total gravitational potential energy of the 1/r profile sphere:
///     U = -2/3 G M^2 / R   (for rho ~ 1/r within R).
template<class T>
T evrardAnalyticPotentialEnergy(T G, T M, T R)
{
    return -T(2) / T(3) * G * M * M / R;
}

} // namespace sphexa

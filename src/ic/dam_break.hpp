#pragma once

/// \file dam_break.hpp
/// Dam-break free-surface test: a water column held against the left wall
/// of a rectangular tank collapses under gravity and surges along the dry
/// bed. The classical WCSPH validation case beyond the paper's two
/// scenarios — the surge-front position has an analytic reference, the
/// Ritter (1892) shallow-water solution, whose front travels at
///
///     x_front(t) = x0 + 2 sqrt(g H) t
///
/// (H = initial column height). Published SPH results lag this inviscid
/// bound — typically reaching 55-80% of the Ritter displacement in the
/// early surge — so the golden test checks the measured front against a
/// band, not a point value.
///
/// Geometry: tank [0,L] x [0,Htank] x [0,D], periodic in Z (quasi-2D, like
/// the square patch's layering); solid walls on the x faces and the floor;
/// open top. The column [0,W] x [0,H] x [0,D] starts in hydrostatic
/// equilibrium: p = rho0 g (H - y), with the density lifted off rho0 by the
/// inverse Tait relation so EOS and initial pressure agree.

#include <cmath>

#include "core/config.hpp"
#include "domain/box.hpp"
#include "ic/lattice.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/eos_wcsph.hpp"
#include "sph/particles.hpp"

namespace sphexa {

template<class T>
struct DamBreakConfig
{
    std::size_t nx = 20, ny = 20, nz = 4; ///< lattice of the water column
    T columnWidth  = T(0.5);  ///< W: initial dam position
    T columnHeight = T(1);    ///< H: the Ritter scale
    T depth        = T(0.2);  ///< D: z extent (periodic, quasi-2D)
    T tankLength   = T(2);    ///< L: dry bed ahead of the dam
    T tankHeight   = T(2);    ///< open headspace above the column
    T rho0 = T(1);
    T g    = T(1);            ///< gravity magnitude, acting along -y
    T soundSpeedFactor = T(10); ///< c0 = factor * sqrt(g H)
    T gamma = T(7);
};

template<class T>
struct DamBreakSetup
{
    Box<T> box;     ///< the tank (periodic in Z only)
    TaitEos<T> eos;
    T particleMass;
    T spacing;
    T surgeSpeed;   ///< Ritter front speed 2 sqrt(g H)
};

/// Generate the dam-break initial conditions into \p ps.
template<class T>
DamBreakSetup<T> makeDamBreak(ParticleSet<T>& ps, const DamBreakConfig<T>& cfg = {})
{
    T W = cfg.columnWidth, H = cfg.columnHeight, D = cfg.depth;
    Box<T> tank{{T(0), T(0), T(0)}, {cfg.tankLength, cfg.tankHeight, D},
                false, false, true};
    Box<T> column{{T(0), T(0), T(0)}, {W, H, D}};
    cubicLattice(ps, cfg.nx, cfg.ny, cfg.nz, column);

    std::size_t n = ps.size();
    T dx   = W / T(cfg.nx);
    T mass = cfg.rho0 * W * H * D / T(n);
    T c0   = cfg.soundSpeedFactor * std::sqrt(cfg.g * H);
    T B    = wcsphStiffness(cfg.rho0, c0 * c0, cfg.gamma);
    // free surface: spurious tension is unphysical here, floor p at zero
    TaitEos<T> eos(cfg.rho0, c0, cfg.gamma, T(0));

    parallelFor(n, [&](std::size_t i, std::size_t) {
        ps.m[i]  = mass;
        ps.vx[i] = ps.vy[i] = ps.vz[i] = T(0);
        // hydrostatic column: p = rho0 g (H - y), rho from the inverse Tait
        // relation rho = rho0 (1 + p/B)^(1/gamma) so the EOS reproduces the
        // initial pressure exactly
        T p       = cfg.rho0 * cfg.g * (H - ps.y[i]);
        ps.p[i]   = p;
        ps.rho[i] = cfg.rho0 * std::pow(T(1) + p / B, T(1) / cfg.gamma);
        ps.u[i]   = T(0); // Tait: internal energy is passive
        ps.h[i]   = T(2) * dx; // refined by the h iteration
        ps.c[i]   = c0;
    });

    return {tank, eos, mass, dx, T(2) * std::sqrt(cfg.g * H)};
}

/// The SimulationConfig the dam break runs under: WCSPH pipeline with the
/// setup's Tait closure, solid walls on both x faces and the floor
/// (free-slip), gravity as the constant body force.
template<class T>
SimulationConfig<T> damBreakConfig(const DamBreakConfig<T>& cfg,
                                   const DamBreakSetup<T>& setup)
{
    SimulationConfig<T> sc;
    sc.hydroMode              = HydroMode::WeaklyCompressible;
    sc.wcsphEos.rho0          = setup.eos.referenceDensity();
    sc.wcsphEos.c0            = setup.eos.referenceSoundSpeed();
    sc.wcsphEos.gamma         = setup.eos.gamma();
    sc.wcsphEos.pressureFloor = setup.eos.pressureFloor();
    sc.boundaries.enabled     = true;
    sc.boundaries.wallLo      = {{true, true, false}}; // x=0 wall, floor
    sc.boundaries.wallHi      = {{true, false, false}}; // far x wall; open top
    sc.boundaries.condition   = WallCondition::FreeSlip;
    sc.constantAccel          = {T(0), -cfg.g, T(0)};
    return sc;
}

/// Ritter dry-bed surge front x(t) = x0 + 2 sqrt(g H) t.
template<class T>
T ritterFrontPosition(T t, T x0, T H, T g)
{
    return x0 + T(2) * std::sqrt(g * H) * t;
}

/// Measured surge front: the largest x among particles near the bed (below
/// \p bedBand), where the Ritter solution describes the flow.
template<class T>
T damBreakFront(const ParticleSet<T>& ps, T bedBand)
{
    T front = T(0);
    for (std::size_t i = 0; i < ps.size(); ++i)
    {
        if (ps.y[i] < bedBand && ps.x[i] > front) front = ps.x[i];
    }
    return front;
}

} // namespace sphexa

#pragma once

/// \file square_patch.hpp
/// Rotating square patch test (Colagrossi 2005), exactly as set up in
/// Sec. 5.1 of the paper:
///
///  - the original 2D test, [nx x ny] particles over a square of side L,
///    copied nz times along Z with periodic boundary conditions in Z;
///  - rigid-rotation velocity field  vx = w y, vy = -w x  (w = 5 rad/s);
///  - initial pressure from the incompressible-Poisson double sine series
///    (math/series.hpp);
///  - weakly-compressible Tait EOS (the CFD closure; c0 ~ 10 v_max).
///
/// The paper's full-size configuration is nx = ny = 100, nz = 100
/// (10^6 particles, Table 5); any size reproduces the same physics.

#include <cmath>
#include <numbers>

#include "core/config.hpp"
#include "domain/box.hpp"
#include "ic/lattice.hpp"
#include "math/series.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/eos.hpp"
#include "sph/particles.hpp"

namespace sphexa {

template<class T>
struct SquarePatchConfig
{
    std::size_t nx = 100, ny = 100, nz = 100; ///< paper: 100x100x100 = 10^6
    T L     = T(1);    ///< side length of the square
    T omega = T(5);    ///< angular velocity [rad/s] (paper Sec. 5.1)
    T rho0  = T(1);    ///< fluid density
    int pressureTerms = 32; ///< series truncation
    T soundSpeedFactor = T(10); ///< c0 = factor * v_max (weak compressibility)
    /// Tensile stability control (paper Sec. 5.1): the EOS pressure floor is
    /// this factor times the most negative pressure of the analytic field,
    /// leaving the physical negative-pressure interior untouched while
    /// capping the spurious free-surface response.
    T tensileFloorFactor = T(1.5);
};

template<class T>
struct SquarePatchSetup
{
    Box<T> box;        ///< z-periodic domain
    TaitEos<T> eos;    ///< weakly-compressible closure
    T particleMass;
    T spacing;
};

/// Generate the rotating square patch initial conditions into \p ps.
template<class T>
SquarePatchSetup<T> makeSquarePatch(ParticleSet<T>& ps, const SquarePatchConfig<T>& cfg = {})
{
    T L  = cfg.L;
    T dx = L / T(cfg.nx);
    T lz = dx * T(cfg.nz);

    // centered square in x/y; z column of nz layers, periodic
    Box<T> box{{-L / 2, -L / 2, T(0)}, {L / 2, L / 2, lz}, false, false, true};
    cubicLattice(ps, cfg.nx, cfg.ny, cfg.nz, box);

    std::size_t n = ps.size();
    T mass = cfg.rho0 * L * L * lz / T(n);

    SquarePatchPressure<T> pressure(cfg.rho0, cfg.omega, L, cfg.pressureTerms);
    T vmax = cfg.omega * L * std::numbers::sqrt2_v<T> / T(2); // corner speed
    T c0 = cfg.soundSpeedFactor * vmax;
    // pressure floor = factor x the analytic minimum (at the patch center)
    T pFloor = cfg.tensileFloorFactor * pressure.centerValue();
    TaitEos<T> eos(cfg.rho0, c0, T(7), pFloor);

    parallelFor(n, [&](std::size_t i, std::size_t) {
        ps.m[i] = mass;
        // rigid rotation (paper eq. 1)
        ps.vx[i] = cfg.omega * ps.y[i];
        ps.vy[i] = -cfg.omega * ps.x[i];
        ps.vz[i] = T(0);
        // pressure series wants coordinates in [0, L]
        ps.p[i]   = pressure(ps.x[i] + L / 2, ps.y[i] + L / 2);
        ps.rho[i] = cfg.rho0;
        ps.u[i]   = T(0); // Tait EOS: internal energy is passive
        ps.h[i]   = T(2) * dx; // refined by the h iteration
        ps.c[i]   = c0;
    });

    return {box, eos, mass, dx};
}

/// The SimulationConfig the validated free-surface square patch runs
/// under: the WCSPH pipeline with the setup's Tait parameters. The patch
/// is all free surface (no solid walls), so only the closure and pipeline
/// seams differ from the compressible configuration — which is exactly the
/// pipeline-equivalence property the golden gallery checks.
template<class T>
SimulationConfig<T> squarePatchConfig(const SquarePatchSetup<T>& setup)
{
    SimulationConfig<T> cfg;
    cfg.hydroMode              = HydroMode::WeaklyCompressible;
    cfg.wcsphEos.rho0          = setup.eos.referenceDensity();
    cfg.wcsphEos.c0            = setup.eos.referenceSoundSpeed();
    cfg.wcsphEos.gamma         = setup.eos.gamma();
    cfg.wcsphEos.pressureFloor = setup.eos.pressureFloor();
    return cfg;
}

} // namespace sphexa

#pragma once

/// \file sedov.hpp
/// Sedov-Taylor point explosion — an extension test beyond the paper's two
/// cases (it became the standard SPH-EXA validation case in the follow-on
/// project). A uniform-density box receives a point-like energy injection
/// smoothed over the central kernel support; the blast wave then follows the
/// self-similar solution R_shock(t) = xi0 (E t^2 / rho0)^{1/5}.

#include <cmath>
#include <numbers>

#include "domain/box.hpp"
#include "ic/lattice.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/eos.hpp"
#include "sph/kernels.hpp"
#include "sph/particles.hpp"

namespace sphexa {

template<class T>
struct SedovConfig
{
    std::size_t nSide = 50;   ///< lattice side (n^3 particles)
    T L      = T(1);          ///< box side, centered at origin
    T rho0   = T(1);
    T energy = T(1);          ///< injected blast energy
    T uBackground = T(1e-8);  ///< cold background specific energy
    T gamma  = T(5) / T(3);
};

template<class T>
struct SedovSetup
{
    Box<T> box;               ///< fully periodic
    IdealGasEos<T> eos;
    T particleMass;
    T spacing;
};

template<class T>
SedovSetup<T> makeSedov(ParticleSet<T>& ps, const SedovConfig<T>& cfg = {})
{
    T half = cfg.L / 2;
    Box<T> box{{-half, -half, -half}, {half, half, half}, true, true, true};
    cubicLattice(ps, cfg.nSide, cfg.nSide, cfg.nSide, box);

    std::size_t n = ps.size();
    T dx   = cfg.L / T(cfg.nSide);
    T mass = cfg.rho0 * cfg.L * cfg.L * cfg.L / T(n);

    // smooth the energy injection with a kernel of width 2 dx about origin
    Kernel<T> k(KernelType::CubicSpline);
    T hInj = T(2) * dx;
    T wsum = T(0);
    for (std::size_t i = 0; i < n; ++i)
    {
        T r = std::sqrt(ps.x[i] * ps.x[i] + ps.y[i] * ps.y[i] + ps.z[i] * ps.z[i]);
        wsum += k.value(r, hInj);
    }

    parallelFor(n, [&](std::size_t i, std::size_t) {
        ps.m[i]  = mass;
        ps.vx[i] = ps.vy[i] = ps.vz[i] = T(0);
        ps.rho[i] = cfg.rho0;
        T r = std::sqrt(ps.x[i] * ps.x[i] + ps.y[i] * ps.y[i] + ps.z[i] * ps.z[i]);
        T w = k.value(r, hInj);
        ps.u[i] = cfg.uBackground + (wsum > T(0) ? cfg.energy * w / (wsum * mass) : T(0));
        ps.h[i] = T(2) * dx;
    });

    return {box, IdealGasEos<T>(cfg.gamma), mass, dx};
}

/// Self-similar shock radius R(t) = xi0 (E t^2 / rho0)^{1/5};
/// xi0 ~ 1.152 for gamma = 5/3.
template<class T>
T sedovShockRadius(T t, T energy, T rho0, T gamma = T(5) / T(3))
{
    T xi0 = gamma > T(1.6) ? T(1.152) : T(1.033); // 5/3 vs 7/5
    return xi0 * std::pow(energy * t * t / rho0, T(0.2));
}

} // namespace sphexa

#pragma once

/// \file code_profiles.hpp
/// Emulation profiles of the three parent codes, straight from Tables 1 and
/// 3 of the paper, plus the SPH-EXA mini-app target configuration of
/// Tables 2 and 4.
///
/// A profile is (a) a SimulationConfig preset selecting the parent's
/// algorithm variants — so the feature-dependent behaviour (individual
/// time-stepping, IAD cost, gravity order, decomposition method) flows from
/// the real code paths — and (b) the descriptive metadata needed to
/// regenerate the comparison tables, and (c) a cost scale calibrating the
/// simulated absolute per-step times to the paper's measurements
/// (EXPERIMENTS.md documents the calibration).

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/propagator.hpp"

namespace sphexa {

/// Load-balancing strategies named in Table 3/4.
enum class LoadBalancingStrategy
{
    StaticNone,       ///< SPHYNX: "None (static)"
    Dynamic,          ///< ChaNGa: measurement-driven rebalancing
    LocalInnerOuter,  ///< SPH-flow: overlap-oriented local scheme
    DlbSelfScheduling ///< SPH-EXA target: DLB with self-scheduling per level
};

constexpr std::string_view loadBalancingName(LoadBalancingStrategy s)
{
    switch (s)
    {
        case LoadBalancingStrategy::StaticNone: return "None (static)";
        case LoadBalancingStrategy::Dynamic: return "Dynamic";
        case LoadBalancingStrategy::LocalInnerOuter: return "Local-Inner-Outer";
        case LoadBalancingStrategy::DlbSelfScheduling: return "DLB with self-scheduling";
    }
    return "?";
}

/// The per-phase ParallelFor schedule a Table 3/4 load-balancing row maps
/// onto: the neighbor-bound SPH phases (E..H) carry the profile's
/// self-scheduling character, the uniform loops stay STATIC.
///  - "None (static)"            -> STATIC everywhere (SPHYNX)
///  - "Dynamic"                  -> GSS, measurement-free decreasing chunks
///                                  standing in for ChaNGa's rebalancing
///  - "Local-Inner-Outer"        -> TSS, the linear taper matching SPH-flow's
///                                  overlap-oriented local scheme
///  - "DLB with self-scheduling" -> AWF, the adaptive factoring the SPH-EXA
///                                  target names in Table 4
constexpr PhaseSchedule phaseScheduleFor(LoadBalancingStrategy s)
{
    PhaseSchedule sched;
    sched.fill(SchedulingStrategy::Static);
    switch (s)
    {
        case LoadBalancingStrategy::StaticNone: break;
        case LoadBalancingStrategy::Dynamic:
            sched.fillSphPhases(SchedulingStrategy::Guided);
            break;
        case LoadBalancingStrategy::LocalInnerOuter:
            sched.fillSphPhases(SchedulingStrategy::Trapezoid);
            break;
        case LoadBalancingStrategy::DlbSelfScheduling:
            sched.fillSphPhases(SchedulingStrategy::AdaptiveWeightedFactoring);
            break;
    }
    return sched;
}

/// One parent code (or the mini-app itself) as a named configuration.
template<class T>
struct CodeProfile
{
    std::string name;
    std::string version;

    SimulationConfig<T> config;

    // Table 1 metadata (strings as printed in the paper)
    std::string kernelDesc;
    std::string gradientsDesc;
    std::string volumeElementsDesc;
    std::string massDesc;
    std::string timeSteppingDesc;
    std::string neighborDesc;
    std::string gravityDesc;

    // Table 3 metadata
    std::string domainDecompositionDesc;
    LoadBalancingStrategy loadBalancing = LoadBalancingStrategy::StaticNone;
    bool checkpointRestart = true;
    std::string precisionDesc = "64-bit";
    std::string language;
    std::string parallelization;
    std::size_t linesOfCode = 0;

    /// Relative per-interaction cost on the square patch and on Evrard,
    /// normalized to SPHYNX = 1 on each test. Calibrated from the 12-core
    /// points of Figs. 1-3 (see EXPERIMENTS.md); encodes implementation
    /// overheads our feature emulation cannot reproduce (e.g. ChaNGa's
    /// gravity-oriented tree being exercised by a pure-CFD test).
    T costScaleSquare = T(1);
    T costScaleEvrard = T(1);
};

/// SPHYNX v1.3.1 (Table 1/3 row 1).
template<class T>
CodeProfile<T> sphynxProfile()
{
    CodeProfile<T> p;
    p.name    = "SPHYNX";
    p.version = "1.3.1";

    p.config.kernel         = KernelType::Sinc;
    p.config.sincExponent   = T(5);
    p.config.gradients      = GradientMode::IAD;
    p.config.volumeElements = VolumeElements::Generalized;
    p.config.timestep.mode  = TimesteppingMode::Global;
    p.config.neighborMode   = NeighborMode::GlobalTreeWalk;
    p.config.gravity.order  = MultipoleOrder::Quadrupole;
    p.config.decomposition  = DecompositionMethod::Slab1D; // "Straightforward"
    p.config.parallelTreeBuild = false; // the serial phase A of Fig. 4

    p.kernelDesc              = "Sinc";
    p.gradientsDesc           = "IAD";
    p.volumeElementsDesc      = "Generalized";
    p.massDesc                = "Equal or Variable";
    p.timeSteppingDesc        = "Global";
    p.neighborDesc            = "Tree Walk";
    p.gravityDesc             = "Multipoles (4-pole)";
    p.domainDecompositionDesc = "Straightforward";
    p.loadBalancing           = LoadBalancingStrategy::StaticNone;
    p.config.phaseSchedule    = phaseScheduleFor(p.loadBalancing);
    p.language                = "Fortran 90,";
    p.parallelization         = "MPI+OpenMP";
    p.linesOfCode             = 25000;
    p.costScaleSquare         = T(1);
    p.costScaleEvrard         = T(1);
    return p;
}

/// ChaNGa v3.3 (Table 1/3 row 2).
template<class T>
CodeProfile<T> changaProfile()
{
    CodeProfile<T> p;
    p.name    = "ChaNGa";
    p.version = "3.3";

    p.config.kernel         = KernelType::WendlandC2; // "Wendland, M4 spline"
    p.config.gradients      = GradientMode::KernelDerivative;
    p.config.volumeElements = VolumeElements::Standard;
    p.config.timestep.mode  = TimesteppingMode::Individual;
    p.config.neighborMode   = NeighborMode::IndividualTreeWalk;
    p.config.gravity.order  = MultipoleOrder::Hexadecapole;
    p.config.decomposition  = DecompositionMethod::SpaceFillingCurve;

    p.kernelDesc              = "Wendland, M4 spline";
    p.gradientsDesc           = "Kernel derivatives";
    p.volumeElementsDesc      = "Standard";
    p.massDesc                = "Equal or Variable";
    p.timeSteppingDesc        = "Individual";
    p.neighborDesc            = "Tree Walk";
    p.gravityDesc             = "Multipoles (16-pole)";
    p.domainDecompositionDesc = "Space Filling Curve";
    p.loadBalancing           = LoadBalancingStrategy::Dynamic;
    p.config.phaseSchedule    = phaseScheduleFor(p.loadBalancing);
    p.language                = "C++";
    p.parallelization         = "MPI+OpenMP+CUDA";
    p.linesOfCode             = 110000;
    // Fig. 2a vs 1a at 12 cores: 738.0 / 38.25 ~ 19.3; Fig. 2b vs 1c:
    // 30.38 / 40.27 ~ 0.75 (the gravity-first design pays off on Evrard).
    p.costScaleSquare = T(19.3);
    p.costScaleEvrard = T(0.75);
    return p;
}

/// SPH-flow v17.6 (Table 1/3 row 3).
template<class T>
CodeProfile<T> sphflowProfile()
{
    CodeProfile<T> p;
    p.name    = "SPH-flow";
    p.version = "17.6";

    p.config.kernel         = KernelType::WendlandC2;
    p.config.gradients      = GradientMode::KernelDerivative;
    p.config.volumeElements = VolumeElements::Standard;
    p.config.timestep.mode  = TimesteppingMode::Adaptive;
    p.config.neighborMode   = NeighborMode::GlobalTreeWalk;
    p.config.selfGravity    = false; // "Self-Gravity: No"
    p.config.decomposition  = DecompositionMethod::OrthogonalRecursiveBisection;

    p.kernelDesc              = "Wendland";
    p.gradientsDesc           = "Kernel derivatives";
    p.volumeElementsDesc      = "Standard";
    p.massDesc                = "Equal or Adaptive";
    p.timeSteppingDesc        = "Global";
    p.neighborDesc            = "Tree Walk";
    p.gravityDesc             = "No";
    p.domainDecompositionDesc = "Orthogonal Recursive Bisection";
    p.loadBalancing           = LoadBalancingStrategy::LocalInnerOuter;
    p.config.phaseSchedule    = phaseScheduleFor(p.loadBalancing);
    p.language                = "Fortran 90";
    p.parallelization         = "MPI";
    p.linesOfCode             = 37000;
    // Fig. 3 vs 1a at 12 cores: 31.00 / 38.25 ~ 0.81
    p.costScaleSquare = T(0.81);
    p.costScaleEvrard = T(1); // not run (no self-gravity)
    return p;
}

/// SPH-flow run in its native regime: the weakly-compressible free-surface
/// mode (Tait closure, Debrun spiky kernel, mirror-ghost walls available).
/// The Table 1/3 sphflowProfile() emulates SPH-flow inside the paper's
/// compressible comparison; this preset is the same parent pointed at the
/// CFD scenarios the golden validation gallery covers (square patch, dam
/// break). Scenario generators fill in the Tait parameters, walls and body
/// force (ic/square_patch.hpp, ic/dam_break.hpp).
template<class T>
CodeProfile<T> wcsphProfile()
{
    CodeProfile<T> p     = sphflowProfile<T>();
    p.name               = "SPH-flow/WCSPH";
    p.config.hydroMode   = HydroMode::WeaklyCompressible;
    p.config.kernel      = KernelType::DebrunSpiky;
    p.kernelDesc         = "Debrun spiky";
    return p;
}

/// The SPH-EXA mini-app target configuration (Tables 2 and 4): the union of
/// the parents' features with the state-of-the-art defaults.
template<class T>
CodeProfile<T> sphexaProfile()
{
    CodeProfile<T> p;
    p.name    = "SPH-EXA";
    p.version = "mini-app";

    p.config.kernel            = KernelType::Sinc;
    p.config.gradients         = GradientMode::IAD;
    p.config.volumeElements    = VolumeElements::Generalized;
    p.config.timestep.mode     = TimesteppingMode::Global;
    p.config.neighborMode      = NeighborMode::GlobalTreeWalk;
    p.config.gravity.order     = MultipoleOrder::Hexadecapole;
    p.config.decomposition     = DecompositionMethod::SpaceFillingCurve;
    p.config.parallelTreeBuild = true; // the improvement Fig. 4 motivated

    p.kernelDesc              = "Sinc, M4 spline, Wendland";
    p.gradientsDesc           = "IAD, Kernel derivatives";
    p.volumeElementsDesc      = "Generalized, Standard";
    p.massDesc                = "Equal, Variable, and Adaptive";
    p.timeSteppingDesc        = "Global, Individual";
    p.neighborDesc            = "Tree Walk";
    p.gravityDesc             = "Multipoles (16-pole)";
    p.domainDecompositionDesc = "Orthogonal Recursive Bisection, Space Filling Curves";
    p.loadBalancing           = LoadBalancingStrategy::DlbSelfScheduling;
    p.config.phaseSchedule    = phaseScheduleFor(p.loadBalancing);
    p.language                = "C++";
    p.parallelization         = "X+Y+Z: X={MPI} Y={OpenMP, HPX} Z={OpenACC, CUDA}";
    p.linesOfCode             = 0; // measured from this repository
    return p;
}

/// The three parent codes in paper order.
template<class T>
std::vector<CodeProfile<T>> parentProfiles()
{
    return {sphynxProfile<T>(), changaProfile<T>(), sphflowProfile<T>()};
}

/// The shared-memory force pipeline a parent-code preset selects: the
/// profile's SimulationConfig determines the phase list declaratively
/// (hydro-only vs hydro+gravity; see core/propagator.hpp).
template<class T>
Propagator<T> pipelineFor(const CodeProfile<T>& profile)
{
    return PipelineFactory<T>::singleRank(profile.config);
}

} // namespace sphexa

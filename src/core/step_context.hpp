#pragma once

/// \file step_context.hpp
/// The shared vocabulary of the propagator layer (core/propagator.hpp):
/// the workflow phases of the paper's Algorithm 1 / Fig. 4 timeline, the
/// per-step report both drivers fill, the mutable state bundle a phase
/// operates on (StepContext), and the runner-emitted phase-event log that
/// feeds the Extrae-style tracer (perf/tracer.hpp).
///
/// Both drivers — the shared-memory Simulation (core/simulation.hpp) and
/// the distributed DistributedSimulation (domain/distributed.hpp) — execute
/// the same phase units over a StepContext; only decomposition, halo and
/// reduction glue remains driver-specific. docs/ARCHITECTURE.md walks the
/// pipeline stage by stage.

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "backend/kernel_backend.hpp"
#include "backend/lane_kernel.hpp"
#include "core/config.hpp"
#include "core/phases.hpp"
#include "domain/box.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/eos.hpp"
#include "sph/particles.hpp"
#include "sph/timestep.hpp"
#include "tree/cluster_list.hpp"
#include "tree/gravity.hpp"
#include "tree/neighbors.hpp"
#include "tree/octree.hpp"
#include "tree/sfc_sort.hpp"

namespace sphexa {

/// Per-step report: timings and work counters, the raw material of the
/// performance experiments.
template<class T>
struct StepReport
{
    std::uint64_t step = 0;
    T time = T(0);      ///< simulated time after the step
    T dt = T(0);        ///< step size used
    std::array<double, phaseCount> phaseSeconds{};
    std::size_t neighborInteractions = 0; ///< total SPH pair visits
    std::size_t activeParticles = 0;
    GravityStats gravityStats{};
    unsigned hIterations = 0;
    /// Neighbor-list fills that exceeded ngmax this step (truncated lists).
    /// Zero in a healthy run; the shared-memory driver warns once per step
    /// when it is not, instead of silently losing interactions.
    std::size_t neighborOverflow = 0;

    /// Measured per-worker busy times of each phase's ParallelFor loops —
    /// the raw material of the per-phase POP load-balance metrics
    /// (perf/pop_metrics.hpp). Empty for phases without ParallelFor loops
    /// (tree build and neighbor search run their own OpenMP walks).
    std::array<PhaseLoadStats, phaseCount> phaseLoad{};

    /// POP load-balance efficiency of one phase: mean/max worker busy time
    /// over the phase's ParallelFor executions (1.0 when unmeasured).
    double phaseLoadBalance(Phase p) const { return phaseLoad[int(p)].loadBalance(); }

    double totalSeconds() const
    {
        double s = 0;
        for (double p : phaseSeconds)
            s += p;
        return s;
    }
};

/// How the neighbor phases (B/C) traverse the particle set.
enum class WalkMode
{
    Global,       ///< global tree walk + h iteration over all particles
    ActiveSubset, ///< individual walks over the controller's active bin
                  ///< (ChaNGa-style multi-time-stepping); empty set = all
    LocalIndices, ///< distributed rank: walk the owned (non-ghost) particles
};

/// Everything a phase unit may read or write during one force evaluation.
/// The driver owns the referenced state; the context adds the traversal
/// mode and collects the per-step outputs that end up in StepReport.
template<class T>
struct StepContext
{
    ParticleSet<T>& ps;
    const Box<T>& box;
    const SimulationConfig<T>& cfg;
    const Kernel<T>& kernel;
    const Eos<T>& eos;
    Octree<T>& tree;
    NeighborList<T>& nl;

    /// Barnes-Hut solver for the in-place phase I; null in the distributed
    /// driver, which replicates the tree in its reduction glue instead.
    GravitySolver<T>* gravity = nullptr;
    /// Time-step controller; consulted by phase B in ActiveSubset mode.
    TimestepController<T>* controller = nullptr;

    WalkMode walkMode = WalkMode::Global;
    /// Indices walked in ActiveSubset/LocalIndices modes (phase B fills the
    /// active set itself when a controller is attached). In LocalIndices
    /// mode these are the rank's owned particles; entries of ps beyond them
    /// are ghosts.
    std::vector<std::size_t> walkIndices{};

    /// Driver-owned persistent AWF weights (parallel/parallel_for.hpp).
    /// The driver rebuilds its StepContext every force pass but points it
    /// at the same store, so adapted weights carry across steps; a context
    /// without a store (the fresh/default state) runs AWF from equal
    /// weights every loop.
    AwfWeightStore* awf = nullptr;

    /// Driver-owned persistent buffers of the sorted-reorder + cluster
    /// neighbor-search subsystem (tree/sfc_sort.hpp, tree/cluster_list.hpp):
    /// key/permutation storage for phase L and per-worker candidate scratch
    /// for the phase B cluster path. Null-safe — the phase ops fall back to
    /// transient local buffers (correct, just re-allocating each step).
    SfcSorter<T>* sorter = nullptr;
    ClusterWorkspace<T>* clusters = nullptr;

    /// Driver-owned lane-evaluation tables/constants for the Simd backend
    /// (backend/lane_kernel.hpp). Null-safe — the phase shells construct a
    /// transient LaneKernel when the config selects Simd without one
    /// (correct, just rebuilding the Sinc tables every dispatch).
    const LaneKernel<T>* laneKernel = nullptr;

    // --- outputs, harvested into StepReport/driver state by the runner ---
    T maxVsignal{0};
    T potentialEnergy{0};
    /// Mirror ghosts currently appended at the tail of ps (WCSPH phase K);
    /// zero outside the ghostCreate..ghostRemove bracket.
    std::size_t nGhosts = 0;
    unsigned hIterations = 0;
    std::size_t neighborInteractions = 0;
    std::size_t activeParticles = 0;
    std::size_t neighborOverflow = 0;
    GravityStats gravityStats{};
    std::array<PhaseLoadStats, phaseCount> phaseLoad{};

    /// The LoopPolicy a phase's ParallelFor loops run under: strategy from
    /// the config's per-phase schedule, persistent AWF weights from the
    /// driver's store (when attached), busy-time accounting into this
    /// context's phaseLoad slot.
    LoopPolicy loopPolicy(Phase p)
    {
        LoopPolicy pol;
        pol.strategy = cfg.phaseSchedule[p];
        if (pol.strategy == SchedulingStrategy::AdaptiveWeightedFactoring && awf)
        {
            pol.awfWeights = &awf->weightsFor(std::size_t(p));
        }
        pol.stats = &phaseLoad[int(p)];
        return pol;
    }

    /// The compute-backend selection the SPH phase shells dispatch on:
    /// the config's choice plus the driver's persistent lane kernel.
    ComputeBackend<T> computeBackend() const { return {cfg.kernelBackend, laneKernel}; }

    /// Index span the SPH kernels iterate: empty means "all particles"
    /// (the convention of computeDensity & friends).
    std::span<const std::size_t> activeSpan() const
    {
        return walkMode == WalkMode::Global ? std::span<const std::size_t>{}
                                            : std::span<const std::size_t>(walkIndices);
    }

    /// A distributed rank that owns no particles skips every phase body
    /// (an empty ActiveSubset means "all", so only LocalIndices short-circuits).
    bool skipEmptyLocal() const
    {
        return walkMode == WalkMode::LocalIndices && walkIndices.empty();
    }

    /// The post-search variant for phases C..I: once phase B has filled
    /// walkIndices, an empty ActiveSubset is a genuinely empty force set
    /// (every bin-0 particle was promoted at an interval boundary), NOT
    /// "all" — running a kernel with the empty-span convention there would
    /// overwrite the stashed mid-interval du/dt of inactive particles.
    /// Phases before B (tree build, ghost bracket) must keep skipEmptyLocal().
    bool skipEmptyWalk() const
    {
        return (walkMode == WalkMode::LocalIndices ||
                walkMode == WalkMode::ActiveSubset) &&
               walkIndices.empty();
    }
};

/// One runner-emitted phase timing event. The pipeline runner records these
/// uniformly for every phase it executes — call sites no longer hand-insert
/// Timer::lap() bookkeeping — and the tracer (perf/tracer.hpp) expands them
/// into the Fig. 4 timeline.
struct PhaseEvent
{
    int rank;
    std::uint64_t step;
    Phase phase;
    double seconds;
};

/// Append-only log of runner-emitted phase events; attach one to a driver
/// with attachPhaseLog() to trace its steps.
class PhaseEventLog
{
public:
    void beginStep(std::uint64_t step) { step_ = step; }

    void record(int rank, Phase phase, double seconds)
    {
        events_.push_back({rank, step_, phase, seconds});
    }

    void clear() { events_.clear(); }
    const std::vector<PhaseEvent>& events() const { return events_; }

    /// Total recorded seconds (all ranks, all phases).
    double totalSeconds() const
    {
        double s = 0;
        for (const auto& e : events_)
            s += e.seconds;
        return s;
    }

    /// Aggregate the logged events into per-rank phase durations — the input
    /// of expandTrace() (perf/tracer.hpp). Events of all logged steps are
    /// summed; clear() between steps for a single-step view.
    std::vector<std::array<double, phaseCount>> phaseSecondsByRank(int nRanks) const
    {
        std::vector<std::array<double, phaseCount>> out(nRanks);
        for (auto& a : out)
            a.fill(0.0);
        for (const auto& e : events_)
        {
            if (e.rank >= 0 && e.rank < nRanks) out[e.rank][int(e.phase)] += e.seconds;
        }
        return out;
    }

private:
    std::uint64_t step_ = 0;
    std::vector<PhaseEvent> events_;
};

} // namespace sphexa

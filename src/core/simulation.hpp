#pragma once

/// \file simulation.hpp
/// The shared-memory mini-app driver: Algorithm 1 of the paper as a thin
/// owner of state that executes a phase pipeline (core/propagator.hpp).
///
///   while target time not reached:
///     1. Build tree                      (phase A)
///     2. Find neighbors + smoothing len  (phases B, C, D)
///     3. SPH & physics kernels           (phases E..H)
///     4. (optional) self-gravity         (phase I)
///     5. New time-step                   (phase J)
///     6. Update velocity and position    (phase J)
///
/// The phase letters match the Extrae timeline of Fig. 4; the pipeline
/// runner times every phase uniformly and emits tracer events (attach a
/// PhaseEventLog to capture them). The phase bodies themselves live in
/// core/propagator.hpp and are shared with the distributed driver
/// (domain/distributed.hpp), which runs them per rank over a decomposed
/// domain. Phase J (time-step + kick-drift-kick) brackets the force
/// pipeline and stays in the driver.
///
/// docs/ARCHITECTURE.md walks the full pipeline stage by stage and names
/// the header implementing each stage.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <stdexcept>
#include <utility>

#include "backend/lane_kernel.hpp"
#include "core/config.hpp"
#include "core/propagator.hpp"
#include "core/step_context.hpp"
#include "domain/box.hpp"
#include "perf/timer.hpp"
#include "sph/conservation.hpp"
#include "sph/integrator.hpp"
#include "sph/particles.hpp"

namespace sphexa {

/// Shared-memory SPH simulation of one particle set.
template<class T>
class Simulation
{
public:
    Simulation(ParticleSet<T> ps, Box<T> box, Eos<T> eos, SimulationConfig<T> cfg)
        : ps_(std::move(ps))
        , box_(box)
        , eos_(std::move(eos))
        , cfg_(std::move(cfg))
        , kernel_(cfg_.kernel, cfg_.sincExponent)
        , laneKernel_(kernel_)
        , nl_(ps_.size(), cfg_.ngmax)
        , controller_(cfg_.timestep)
        , pipeline_(PipelineFactory<T>::singleRank(cfg_))
    {
        if (ps_.empty()) throw std::invalid_argument("Simulation: empty particle set");
    }

    /// Convenience: derive the EOS from the configuration — the Tait
    /// closure of the config's WCSPH parameters in the weakly-compressible
    /// mode, an ideal gas otherwise (core/config.hpp, eosFromConfig).
    Simulation(ParticleSet<T> ps, Box<T> box, SimulationConfig<T> cfg)
        : Simulation(std::move(ps), box, eosFromConfig<T>(cfg), cfg)
    {
    }

    const ParticleSet<T>& particles() const { return ps_; }
    ParticleSet<T>& particles() { return ps_; }
    const Box<T>& box() const { return box_; }
    const SimulationConfig<T>& config() const { return cfg_; }
    const Kernel<T>& kernel() const { return kernel_; }
    const NeighborList<T>& neighborList() const { return nl_; }
    const Octree<T>& tree() const { return tree_; }
    T time() const { return time_; }
    std::uint64_t step() const { return stepCount_; }
    T potentialEnergy() const { return potentialEnergy_; }

    /// The force pipeline this driver executes (phases A..I).
    const Propagator<T>& pipeline() const { return pipeline_; }

    /// The persistent per-phase AWF weight store the step contexts share
    /// (inspectable by tests and the scheduling ablation; reset() returns
    /// every phase to equal weights).
    AwfWeightStore& awfWeights() { return awf_; }
    const AwfWeightStore& awfWeights() const { return awf_; }

    /// Replace the force pipeline (custom phase sequences; the default is
    /// PipelineFactory::singleRank(config)). Forces must be recomputed.
    void setPipeline(Propagator<T> pipeline)
    {
        pipeline_    = std::move(pipeline);
        forcesValid_ = false;
    }

    /// Attach a tracer log: the pipeline runner emits one PhaseEvent per
    /// executed phase into it (pass nullptr to detach).
    void attachPhaseLog(PhaseEventLog* log) { log_ = log; }

    /// Signal velocity of the last force evaluation (checkpoint metadata:
    /// restoring it makes the continuation bitwise instead of merely
    /// physically equivalent, because the artificial viscosity is
    /// velocity-dependent and the checkpointed accelerations were computed
    /// with the half-kicked velocities of the KDK scheme).
    T maxVsignal() const { return maxVsignal_; }

    /// Resume from a checkpoint: restores simulated time, step counter and
    /// time-step controller. When \p maxVsignal is supplied, the
    /// checkpointed accelerations/du are reused (no force recomputation)
    /// and the continuation is bit-identical to an uninterrupted run.
    /// Individual-mode restarts additionally pass the controller's base
    /// step and cycle anchor (controller().baseDt()/cycleStart() at write
    /// time) so the 2^k activity schedule resumes mid-cycle exactly; the
    /// bin hierarchy itself rides in the serialized ps.bin/ps.dt fields and
    /// is re-derived here via restoreBins().
    void restoreFromCheckpoint(T time, std::uint64_t step, T lastDt = T(0),
                               std::optional<T> maxVsignal = {}, T baseDt = T(0),
                               std::uint64_t cycleStart = 0)
    {
        time_      = time;
        stepCount_ = step;
        controller_.restore(step, lastDt, baseDt, cycleStart);
        controller_.restoreBins(ps_);
        if (maxVsignal)
        {
            maxVsignal_  = *maxVsignal;
            forcesValid_ = true;
        }
    }

    /// The time-step controller (bin schedule, sync state — read-only).
    const TimestepController<T>& timestepController() const { return controller_; }

    /// Compute forces for the current positions (phases A..I) by running
    /// the force pipeline. Must be called once before the first step();
    /// step() calls it internally afterwards. The report's time/dt reflect
    /// the current simulation state (dt is the last step size used, zero
    /// before the first advance()).
    StepReport<T> computeForces() { return forcePass(stepCount_); }

    /// Advance one time-step (kick-drift-kick). Returns the step report of
    /// the force recomputation plus the J-phase timing.
    StepReport<T> advance()
    {
        if (!forcesValid_)
        {
            // seed forces silently: this pass's report is discarded, and
            // logging it would double-count phases A..I for the step
            PhaseEventLog* saved = std::exchange(log_, nullptr);
            try
            {
                computeForces();
            }
            catch (...)
            {
                log_ = saved;
                throw;
            }
            log_ = saved;
        }

        // phase J runs under the configured strategy like any hot loop; its
        // busy times land in the report harvested from the force pass below
        LoopPolicy jPolicy;
        jPolicy.strategy = cfg_.phaseSchedule[Phase::J_TimestepUpdate];
        if (jPolicy.strategy == SchedulingStrategy::AdaptiveWeightedFactoring)
        {
            jPolicy.awfWeights = &awf_.weightsFor(std::size_t(Phase::J_TimestepUpdate));
        }
        PhaseLoadStats jLoad;
        jPolicy.stats = &jLoad;

        bool binned = binnedIntegration();

        Timer t;
        // --- phase J (part 1): new time-step, first kick + drift ---
        T dtStep = controller_.advance(ps_, maxVsignal_, jPolicy);
        if (binned)
        {
            // binned leapfrog: only particles whose interval starts now get
            // the opening half-kick (with their OWN ps.dt), then everyone
            // drifts by the base step — the prediction of inactive
            // particles the active subset's kernels read
            kickStartIndividual(ps_, controller_.kickStartSet(ps_), jPolicy);
            driftAll(ps_, dtStep, box_, eos_.isIdealGas(), jPolicy);
        }
        else
        {
            kickDrift(ps_, dtStep, box_, jPolicy);
        }
        double jTime = t.lap();

        // forces at the new positions (phases A..I), tagged with the step
        // id the returned report will carry so log events and reports join
        StepReport<T> rep = forcePass(stepCount_ + 1);

        // --- phase J (part 2): second kick + energy update ---
        t.reset();
        if (binned)
        {
            // close the intervals that end here: the force pass just walked
            // exactly this set (phase B queried the controller at the
            // post-increment step counter — the force/kick-end convention)
            kickEndIndividual(ps_, lastWalkIndices_, eos_.isIdealGas(), jPolicy);
        }
        else
        {
            kickEnergy(ps_, dtStep, eos_.isIdealGas(), jPolicy);
        }
        time_ += dtStep;
        ++stepCount_;
        jTime += t.lap();

        rep.phaseSeconds[int(Phase::J_TimestepUpdate)] = jTime;
        rep.phaseLoad[int(Phase::J_TimestepUpdate)]    = std::move(jLoad);
        if (log_) log_->record(0, Phase::J_TimestepUpdate, jTime);
        rep.dt   = dtStep;
        rep.time = time_;
        rep.step = stepCount_;
        return rep;
    }

    /// Run \p nSteps steps; returns the report of the last one. The optional
    /// callback receives every report (used by examples and benches).
    StepReport<T> run(std::uint64_t nSteps,
                      const std::function<void(const StepReport<T>&)>& onStep = {})
    {
        StepReport<T> last;
        for (std::uint64_t s = 0; s < nSteps; ++s)
        {
            last = advance();
            if (onStep) onStep(last);
        }
        return last;
    }

    /// Conservation snapshot, including gravitational potential when active.
    Conservation<T> conservation() const
    {
        return computeConservation(ps_, potentialEnergy_);
    }

private:
    /// Whether this driver runs the binned (individual time-stepping)
    /// leapfrog: Individual bins + active-subset walks, compressible hydro
    /// only (the WCSPH ghost bracket would put mirror particles into the
    /// active set; that combination falls back to global stepping at the
    /// controller's base dt).
    bool binnedIntegration() const
    {
        return cfg_.hydroMode == HydroMode::Compressible &&
               cfg_.timestep.mode == TimesteppingMode::Individual &&
               cfg_.neighborMode == NeighborMode::IndividualTreeWalk;
    }

    /// One force-pipeline pass; \p stepId tags the report and the emitted
    /// phase events (the current step for standalone computeForces(), the
    /// upcoming one inside advance()).
    StepReport<T> forcePass(std::uint64_t stepId)
    {
        StepReport<T> rep;
        rep.step = stepId;
        rep.time = time_;
        rep.dt   = controller_.currentDt();

        StepContext<T> ctx{ps_, box_, cfg_, kernel_, eos_, tree_, nl_};
        ctx.gravity    = &gravity_;
        ctx.controller = &controller_;
        ctx.awf        = &awf_; // AWF weights persist across the driver's steps
        ctx.sorter     = &sorter_;    // phase L key/perm buffers persist too,
        ctx.clusters   = &clusterWs_; // as does the cluster-search scratch
        ctx.laneKernel = &laneKernel_; // Simd backend tables persist as well
        // active-subset walks only under the binned integrator: mixing a
        // subset force pass with the global kick (stale du on inactive
        // particles) would silently violate the trapezoid energy update, so
        // every non-binned combination runs full global walks
        bool subset  = binnedIntegration() && controller_.stepCount() > 0;
        ctx.walkMode = subset ? WalkMode::ActiveSubset : WalkMode::Global;

        if (log_) log_->beginStep(stepId);
        pipeline_.run(ctx, rep, log_, /*rank*/ 0);

        // keep the walked set: on a binned step this is the force/kick-end
        // set advance() closes right after this pass (empty on Global walks)
        lastWalkIndices_ = std::move(ctx.walkIndices);

        if (rep.neighborOverflow > 0)
        {
            std::fprintf(stderr,
                         "sphexa: step %llu: %zu neighbor list(s) exceeded ngmax=%u "
                         "(truncated; raise ngmax or lower targetNeighbors)\n",
                         static_cast<unsigned long long>(stepId), rep.neighborOverflow,
                         cfg_.ngmax);
        }

        maxVsignal_      = ctx.maxVsignal;
        potentialEnergy_ = ctx.potentialEnergy;
        forcesValid_     = true;
        return rep;
    }

    ParticleSet<T> ps_;
    Box<T> box_;
    Eos<T> eos_;
    SimulationConfig<T> cfg_;
    Kernel<T> kernel_;
    LaneKernel<T> laneKernel_; ///< Simd-backend lane tables, built once
    Octree<T> tree_;
    NeighborList<T> nl_;
    GravitySolver<T> gravity_;
    TimestepController<T> controller_;
    Propagator<T> pipeline_;
    AwfWeightStore awf_; ///< per-phase AWF weights, adapted across steps
    SfcSorter<T> sorter_;           ///< phase L buffers, persist across steps
    ClusterWorkspace<T> clusterWs_; ///< cluster-search scratch, persists too
    std::vector<std::size_t> lastWalkIndices_; ///< last force pass's walked set
    PhaseEventLog* log_{nullptr};

    T time_{0};
    std::uint64_t stepCount_{0};
    T maxVsignal_{0};
    T potentialEnergy_{0};
    bool forcesValid_{false};
};

} // namespace sphexa

#pragma once

/// \file simulation.hpp
/// The mini-app driver: Algorithm 1 of the paper, instrumented per phase.
///
///   while target time not reached:
///     1. Build tree                      (phase A)
///     2. Find neighbors + smoothing len  (phases B, C, D)
///     3. SPH & physics kernels           (phases E..H)
///     4. (optional) self-gravity         (phase I)
///     5. New time-step                   (phase J)
///     6. Update velocity and position    (phase J)
///
/// The phase letters match the Extrae timeline of Fig. 4 so the tracer can
/// reproduce that figure. Phase mapping:
///   A tree build · B global neighbor walk · C h-iteration re-walks ·
///   D neighbor-list symmetrization · E density (+VE weights) ·
///   F EOS + IAD coefficients · G velocity div/curl (Balsara) ·
///   H momentum & energy · I self-gravity · J time-step + update.
///
/// This driver is the shared-memory (single-rank, OpenMP) engine; the
/// distributed-memory driver (domain/distributed.hpp) runs one of these per
/// simulated rank over a decomposed domain.
///
/// docs/ARCHITECTURE.md walks the full pipeline stage by stage and names
/// the header implementing each stage.

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>

#include "core/config.hpp"
#include "domain/box.hpp"
#include "perf/timer.hpp"
#include "sph/conservation.hpp"
#include "sph/density.hpp"
#include "sph/divcurl.hpp"
#include "sph/eos.hpp"
#include "sph/integrator.hpp"
#include "sph/iad.hpp"
#include "sph/kernels.hpp"
#include "sph/momentum_energy.hpp"
#include "sph/particles.hpp"
#include "sph/smoothing_length.hpp"
#include "sph/timestep.hpp"
#include "tree/gravity.hpp"
#include "tree/neighbors.hpp"
#include "tree/octree.hpp"

namespace sphexa {

/// Workflow phases, lettered as in the paper's Fig. 4.
enum class Phase : int
{
    A_TreeBuild = 0,
    B_NeighborSearch,
    C_SmoothingLength,
    D_NeighborSymmetrize,
    E_Density,
    F_EosAndIad,
    G_DivCurl,
    H_MomentumEnergy,
    I_SelfGravity,
    J_TimestepUpdate,
    Count
};

constexpr int phaseCount = int(Phase::Count);

constexpr std::string_view phaseName(Phase p)
{
    switch (p)
    {
        case Phase::A_TreeBuild: return "A:tree-build";
        case Phase::B_NeighborSearch: return "B:neighbor-search";
        case Phase::C_SmoothingLength: return "C:smoothing-length";
        case Phase::D_NeighborSymmetrize: return "D:neighbor-symmetrize";
        case Phase::E_Density: return "E:density";
        case Phase::F_EosAndIad: return "F:eos+iad";
        case Phase::G_DivCurl: return "G:div-curl";
        case Phase::H_MomentumEnergy: return "H:momentum-energy";
        case Phase::I_SelfGravity: return "I:self-gravity";
        case Phase::J_TimestepUpdate: return "J:timestep-update";
        default: return "?";
    }
}

/// Per-step report: timings and work counters, the raw material of the
/// performance experiments.
template<class T>
struct StepReport
{
    std::uint64_t step = 0;
    T time = T(0);      ///< simulated time after the step
    T dt = T(0);        ///< step size used
    std::array<double, phaseCount> phaseSeconds{};
    std::size_t neighborInteractions = 0; ///< total SPH pair visits
    std::size_t activeParticles = 0;
    GravityStats gravityStats{};
    unsigned hIterations = 0;

    double totalSeconds() const
    {
        double s = 0;
        for (double p : phaseSeconds)
            s += p;
        return s;
    }
};

/// Shared-memory SPH simulation of one particle set.
template<class T>
class Simulation
{
public:
    Simulation(ParticleSet<T> ps, Box<T> box, Eos<T> eos, SimulationConfig<T> cfg)
        : ps_(std::move(ps))
        , box_(box)
        , eos_(std::move(eos))
        , cfg_(std::move(cfg))
        , kernel_(cfg_.kernel, cfg_.sincExponent)
        , nl_(ps_.size(), cfg_.ngmax)
        , controller_(cfg_.timestep)
    {
        if (ps_.empty()) throw std::invalid_argument("Simulation: empty particle set");
    }

    const ParticleSet<T>& particles() const { return ps_; }
    ParticleSet<T>& particles() { return ps_; }
    const Box<T>& box() const { return box_; }
    const SimulationConfig<T>& config() const { return cfg_; }
    const Kernel<T>& kernel() const { return kernel_; }
    const NeighborList<T>& neighborList() const { return nl_; }
    const Octree<T>& tree() const { return tree_; }
    T time() const { return time_; }
    std::uint64_t step() const { return stepCount_; }
    T potentialEnergy() const { return potentialEnergy_; }

    /// Signal velocity of the last force evaluation (checkpoint metadata:
    /// restoring it makes the continuation bitwise instead of merely
    /// physically equivalent, because the artificial viscosity is
    /// velocity-dependent and the checkpointed accelerations were computed
    /// with the half-kicked velocities of the KDK scheme).
    T maxVsignal() const { return maxVsignal_; }

    /// Resume from a checkpoint: restores simulated time, step counter and
    /// time-step controller. When \p maxVsignal is supplied, the
    /// checkpointed accelerations/du are reused (no force recomputation)
    /// and the continuation is bit-identical to an uninterrupted run.
    void restoreFromCheckpoint(T time, std::uint64_t step, T lastDt = T(0),
                               std::optional<T> maxVsignal = {})
    {
        time_      = time;
        stepCount_ = step;
        controller_.restore(step, lastDt);
        if (maxVsignal)
        {
            maxVsignal_  = *maxVsignal;
            forcesValid_ = true;
        }
    }

    /// Compute forces for the current positions (phases A..I). Must be
    /// called once before the first step(); step() calls it internally
    /// afterwards.
    StepReport<T> computeForces()
    {
        StepReport<T> rep;
        rep.step = stepCount_;
        Timer t;

        // --- phase A: build tree ---
        typename Octree<T>::BuildParams bp;
        bp.leafSize      = cfg_.treeLeafSize;
        bp.curve         = cfg_.sfcCurve;
        bp.parallelBuild = cfg_.parallelTreeBuild;
        tree_.build(ps_.x, ps_.y, ps_.z, box_, bp);
        rep.phaseSeconds[int(Phase::A_TreeBuild)] = t.lap();

        // --- phases B + C: neighbors and smoothing length ---
        std::vector<std::size_t> active;
        bool subset = cfg_.neighborMode == NeighborMode::IndividualTreeWalk &&
                      controller_.stepCount() > 0;
        if (subset)
        {
            active = controller_.activeParticles(ps_);
            findNeighborsIndividual(tree_, ps_.x, ps_.y, ps_.z, ps_.h, active, nl_);
            rep.phaseSeconds[int(Phase::B_NeighborSearch)] = t.lap();
        }
        else
        {
            SmoothingLengthParams<T> hp;
            hp.targetNeighbors = cfg_.targetNeighbors;
            hp.tolerance       = cfg_.neighborTolerance;
            // B: the initial global walk happens inside; C: iterations
            findNeighborsGlobal(tree_, ps_.x, ps_.y, ps_.z, ps_.h, nl_);
            rep.phaseSeconds[int(Phase::B_NeighborSearch)] = t.lap();
            auto hres = updateSmoothingLengths(ps_, tree_, nl_, hp);
            rep.hIterations = hres.iterations;
            rep.phaseSeconds[int(Phase::C_SmoothingLength)] = t.lap();
        }
        rep.activeParticles = subset ? active.size() : ps_.size();

        // --- phase D: neighbor-list symmetrization ---
        if (cfg_.symmetrizeNeighbors && !subset)
        {
            symmetrizeNeighborList(nl_);
        }
        rep.phaseSeconds[int(Phase::D_NeighborSymmetrize)] = t.lap();
        rep.neighborInteractions = nl_.totalNeighbors();

        std::span<const std::size_t> act =
            subset ? std::span<const std::size_t>(active) : std::span<const std::size_t>{};

        // --- phase E: density (+ generalized volume elements) ---
        computeVolumeElementWeights(ps_, cfg_.volumeElements, cfg_.veExponent);
        computeDensity(ps_, nl_, kernel_, box_, act);
        rep.phaseSeconds[int(Phase::E_Density)] = t.lap();

        // --- phase F: EOS + IAD coefficients ---
        applyEos(act);
        if (cfg_.gradients == GradientMode::IAD)
        {
            computeIadCoefficients(ps_, nl_, kernel_, box_, act);
        }
        rep.phaseSeconds[int(Phase::F_EosAndIad)] = t.lap();

        // --- phase G: velocity divergence/curl (Balsara switch) ---
        computeDivCurl(ps_, nl_, kernel_, box_, cfg_.gradients, act);
        rep.phaseSeconds[int(Phase::G_DivCurl)] = t.lap();

        // --- phase H: momentum and energy ---
        auto stats = computeMomentumEnergy(ps_, nl_, kernel_, box_, cfg_.gradients,
                                           cfg_.av, act);
        maxVsignal_ = stats.maxVsignal;
        rep.phaseSeconds[int(Phase::H_MomentumEnergy)] = t.lap();

        // --- phase I: self-gravity ---
        if (cfg_.selfGravity)
        {
            gravity_.prepare(tree_, ps_, cfg_.gravity);
            potentialEnergy_ = gravity_.accumulate(ps_, &rep.gravityStats);
        }
        else
        {
            potentialEnergy_ = T(0);
        }
        rep.phaseSeconds[int(Phase::I_SelfGravity)] = t.lap();

        forcesValid_ = true;
        return rep;
    }

    /// Advance one time-step (kick-drift-kick). Returns the step report of
    /// the force recomputation plus the J-phase timing.
    StepReport<T> advance()
    {
        if (!forcesValid_) { computeForces(); }

        Timer t;
        // --- phase J (part 1): new time-step, first kick + drift ---
        T dtStep = controller_.advance(ps_, maxVsignal_);
        kickDrift(ps_, dtStep, box_);
        double jTime = t.lap();

        // forces at the new positions (phases A..I)
        StepReport<T> rep = computeForces();

        // --- phase J (part 2): second kick + energy update ---
        t.reset();
        kickEnergy(ps_, dtStep, eos_.isIdealGas());
        time_ += dtStep;
        ++stepCount_;
        jTime += t.lap();

        rep.phaseSeconds[int(Phase::J_TimestepUpdate)] = jTime;
        rep.dt   = dtStep;
        rep.time = time_;
        rep.step = stepCount_;
        return rep;
    }

    /// Run \p nSteps steps; returns the report of the last one. The optional
    /// callback receives every report (used by examples and benches).
    StepReport<T> run(std::uint64_t nSteps,
                      const std::function<void(const StepReport<T>&)>& onStep = {})
    {
        StepReport<T> last;
        for (std::uint64_t s = 0; s < nSteps; ++s)
        {
            last = advance();
            if (onStep) onStep(last);
        }
        return last;
    }

    /// Conservation snapshot, including gravitational potential when active.
    Conservation<T> conservation() const
    {
        return computeConservation(ps_, potentialEnergy_);
    }

private:
    void applyEos(std::span<const std::size_t> active)
    {
        std::size_t count = active.empty() ? ps_.size() : active.size();
#pragma omp parallel for schedule(static)
        for (std::size_t k = 0; k < count; ++k)
        {
            std::size_t i = active.empty() ? k : active[k];
            auto res  = eos_(ps_.rho[i], ps_.u[i]);
            ps_.p[i]  = res.pressure;
            ps_.c[i]  = res.soundSpeed;
        }
    }

    ParticleSet<T> ps_;
    Box<T> box_;
    Eos<T> eos_;
    SimulationConfig<T> cfg_;
    Kernel<T> kernel_;
    Octree<T> tree_;
    NeighborList<T> nl_;
    GravitySolver<T> gravity_;
    TimestepController<T> controller_;

    T time_{0};
    std::uint64_t stepCount_{0};
    T maxVsignal_{0};
    T potentialEnergy_{0};
    bool forcesValid_{false};
};

} // namespace sphexa

#pragma once

/// \file config.hpp
/// Feature configuration of the mini-app: the runtime-selectable options of
/// Tables 2 and 4 of the paper. A SimulationConfig fully determines which
/// algorithm variants the driver executes; the parent-code emulation
/// profiles (code_profiles.hpp) are simply named presets of this struct.

#include <array>
#include <cstddef>
#include <string>

#include "backend/kernel_backend.hpp"
#include "core/phases.hpp"
#include "math/vec.hpp"
#include "parallel/schedulers.hpp"
#include "sph/boundaries.hpp"
#include "sph/density.hpp"
#include "sph/eos_wcsph.hpp"
#include "sph/iad.hpp"
#include "sph/kernels.hpp"
#include "sph/momentum_energy.hpp"
#include "sph/timestep.hpp"
#include "tree/gravity.hpp"
#include "tree/hilbert.hpp"
#include "tree/multipole.hpp"

namespace sphexa {

/// Hydrodynamic closure regime: the compressible (astro) pipelines of the
/// paper's two test cases, or the weakly-compressible free-surface mode of
/// the CFD parent (Tait EOS, optional solid walls and body force).
enum class HydroMode
{
    Compressible,
    WeaklyCompressible,
};

constexpr std::string_view hydroModeName(HydroMode m)
{
    return m == HydroMode::Compressible ? "compressible" : "weakly-compressible";
}

/// Neighbor discovery mode (Table 1: "Global Tree Walk" vs individual).
enum class NeighborMode
{
    GlobalTreeWalk,
    IndividualTreeWalk,
};

constexpr std::string_view neighborModeName(NeighborMode m)
{
    return m == NeighborMode::GlobalTreeWalk ? "Global Tree Walk" : "Individual Tree Walk";
}

/// How a global search fills the neighbor lists (tree/cluster_list.hpp):
/// one octree walk per particle (the seed path, and the only shape the
/// active-subset and per-rank walks support), or one walk per cluster of
/// consecutive SFC-sorted particles expanded into the same flat lists —
/// the large-N fast path. The two modes are bitwise-equivalent on every
/// downstream field (tests/test_cluster_list.cpp, golden gallery).
enum class NeighborSearchMode
{
    TreeWalk,
    ClusterList,
};

constexpr std::string_view neighborSearchModeName(NeighborSearchMode m)
{
    return m == NeighborSearchMode::TreeWalk ? "per-particle tree walk"
                                             : "cluster interaction lists";
}

/// Domain decomposition method (Tables 3 and 4). Slab1D is SPHYNX's
/// "Straightforward" decomposition: contiguous slabs along one axis —
/// simple, but with the worst surface-to-volume ratio of the three.
enum class DecompositionMethod
{
    OrthogonalRecursiveBisection,
    SpaceFillingCurve,
    Slab1D,
};

constexpr std::string_view decompositionName(DecompositionMethod m)
{
    switch (m)
    {
        case DecompositionMethod::OrthogonalRecursiveBisection:
            return "Orthogonal Recursive Bisection";
        case DecompositionMethod::SpaceFillingCurve: return "Space Filling Curve";
        case DecompositionMethod::Slab1D: return "Straightforward (1D slabs)";
    }
    return "?";
}

/// Per-phase scheduling strategies for the ParallelFor hot loops (Table 4:
/// "DLB with self-scheduling"): which self-scheduling rule each phase of
/// Algorithm 1 runs under. The default maps the uniform per-particle loops
/// (EOS, integrator, time-step) to STATIC and the neighbor-bound SPH sums
/// (density, IAD, div/curl, momentum-energy) to FAC, whose decreasing
/// batches absorb the per-particle cost spread of clustered neighborhoods
/// at a fraction of pure self-scheduling's overhead. Chunk boundaries never
/// affect results (the loops are accumulate-to-self), so any assignment is
/// bitwise-equivalent — strategy choice is purely a load-balance knob.
struct PhaseSchedule
{
    constexpr PhaseSchedule()
    {
        strategies.fill(SchedulingStrategy::Static);
        for (Phase p : {Phase::E_Density, Phase::F_EosAndIad, Phase::G_DivCurl,
                        Phase::H_MomentumEnergy})
        {
            strategies[std::size_t(p)] = SchedulingStrategy::Factoring;
        }
    }

    /// One strategy for every phase (profile presets use this wholesale).
    constexpr void fill(SchedulingStrategy s) { strategies.fill(s); }

    /// One strategy for the neighbor-bound SPH phases E..H only, the hot
    /// loops the scheduling ablation targets.
    constexpr void fillSphPhases(SchedulingStrategy s)
    {
        for (Phase p : {Phase::E_Density, Phase::F_EosAndIad, Phase::G_DivCurl,
                        Phase::H_MomentumEnergy})
        {
            strategies[std::size_t(p)] = s;
        }
    }

    constexpr SchedulingStrategy& operator[](Phase p) { return strategies[std::size_t(p)]; }
    constexpr SchedulingStrategy operator[](Phase p) const
    {
        return strategies[std::size_t(p)];
    }

    std::array<SchedulingStrategy, phaseCount> strategies{};
};

/// Scientific + computer-science feature selection for one simulation.
template<class T>
struct SimulationConfig
{
    // --- scientific features (Table 2) ---
    KernelType kernel = KernelType::Sinc;
    T sincExponent    = T(5);
    GradientMode gradients = GradientMode::IAD;
    VolumeElements volumeElements = VolumeElements::Generalized;
    T veExponent = T(0.9);
    /// Time-step control (sph/timestep.hpp). Individual mode together with
    /// IndividualTreeWalk below selects the binned-integration pipeline
    /// (PipelineFactory::individual + the shared-memory driver's binned
    /// kick/drift path): forces are recomputed only for the active 2^k bins
    /// while the rest of the set is drifted. Individual mode with a global
    /// walk, or any non-Compressible hydroMode, degenerates to global
    /// stepping at the controller's base dt.
    TimestepParams<T> timestep{};
    NeighborMode neighborMode = NeighborMode::GlobalTreeWalk;

    bool selfGravity = false;
    GravityParams<T> gravity{};

    ArtificialViscosity<T> av{};

    // --- WCSPH free-surface mode (sph/eos_wcsph.hpp, sph/boundaries.hpp) ---
    HydroMode hydroMode = HydroMode::Compressible;
    /// Tait closure parameters, used when hydroMode is WeaklyCompressible.
    WcsphEosParams<T> wcsphEos{};
    /// Solid-wall mirror-ghost boundaries (phase K of the WCSPH pipeline).
    BoundaryConfig<T> boundaries{};
    /// Uniform body force (dam-break gravity), applied after the SPH
    /// accelerations by the WCSPH pipeline's body-force op.
    Vec3<T> constantAccel{T(0), T(0), T(0)};

    // --- discretization control ---
    unsigned targetNeighbors = 100;  ///< ~10^2 per the paper
    unsigned neighborTolerance = 10;
    unsigned ngmax = 384;            ///< neighbor list capacity
    unsigned treeLeafSize = 64;
    /// Morton keeps the seed's tree ordering bitwise; prefer Hilbert with
    /// ClusterList mode — its locality (no octant-boundary jumps) measures
    /// ~1.6x fewer candidate tests per cluster member than Morton.
    SfcCurve sfcCurve = SfcCurve::Morton;
    /// Global-walk neighbor discovery shape. ClusterList implies the SFC
    /// reorder below (clusters are runs of consecutive particles, tight
    /// only in curve order) and is the default: the cluster path wins from
    /// ~1e5 particles up (BENCH_neighbors.json) and is bitwise-equivalent
    /// to TreeWalk on every downstream field. Select TreeWalk for the
    /// subset/per-rank walk shapes or to pin the unreordered seed layout.
    NeighborSearchMode searchMode = NeighborSearchMode::ClusterList;
    /// Particles per cluster in ClusterList mode: large enough to amortize
    /// one tree traversal, small enough to keep the cluster's candidate
    /// superset tight (~2x the per-particle candidates at 32).
    unsigned clusterSize = 32;
    /// Physically reorder the ParticleSet along the SFC each step (phase L,
    /// tree/sfc_sort.hpp) even in TreeWalk mode — cache locality without
    /// the cluster lists. Forced on by ClusterList mode (so the default
    /// pipeline runs reordered); turn both off to pin the seed layout.
    bool sfcReorder = true;
    bool parallelTreeBuild = false;  ///< SPHYNX v1.3.1 built its tree serially
    bool symmetrizeNeighbors = true; ///< exact pairwise momentum conservation

    /// Compute backend of the hot SPH sums (phases E-H): the Scalar
    /// reference loops, or the lane-tiled Simd kernels in src/backend/.
    /// Simd is gated against Scalar by relative tolerance (the neighbor-sum
    /// association differs), and is itself bitwise pool- and strategy-
    /// invariant; see docs/ARCHITECTURE.md "Backend layer".
    KernelBackend kernelBackend = KernelBackend::Scalar;

    // --- CS features (Table 4), used by the distributed driver ---
    DecompositionMethod decomposition = DecompositionMethod::SpaceFillingCurve;
    /// Self-scheduling strategy of each phase's ParallelFor loops.
    PhaseSchedule phaseSchedule{};
};

/// The equation of state a configuration selects: the Tait closure built
/// from the config's WCSPH parameters in the weakly-compressible mode, an
/// ideal gas (\p idealGamma) otherwise.
template<class T>
Eos<T> eosFromConfig(const SimulationConfig<T>& cfg, T idealGamma = T(5) / T(3))
{
    if (cfg.hydroMode == HydroMode::WeaklyCompressible)
    {
        return Eos<T>(makeTaitEos(cfg.wcsphEos));
    }
    return Eos<T>(IdealGasEos<T>(idealGamma));
}

} // namespace sphexa

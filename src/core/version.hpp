#pragma once

/// \file version.hpp
/// Library identification.

#include <string_view>

namespace sphexa {

/// Semantic version of the sphexa reproduction library.
std::string_view version();

/// One-line banner printed by examples and benches.
std::string_view banner();

} // namespace sphexa

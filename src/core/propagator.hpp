#pragma once

/// \file propagator.hpp
/// The phase-pipeline ("Propagator") layer: Algorithm 1 as data.
///
/// A phase of the paper's Fig. 4 timeline is a first-class named unit — a
/// PhaseOp with a run(StepContext&) entry point — instead of a block of
/// driver code. A pipeline is an ordered list of phases grouped into
/// segments; segment boundaries carry the halo fields the distributed
/// driver must refresh before the next segment may run (the cross-rank data
/// dependencies of IAD, momentum and the Balsara limiter). The Propagator
/// runs a pipeline and applies timing, StepReport accounting and the
/// tracer's phase events uniformly — no call site hand-inserts Timer::lap().
///
/// Both drivers execute these same units:
///  - Simulation (core/simulation.hpp) runs the full pipeline in one
///    address space, ignoring the sync specs;
///  - DistributedSimulation (domain/distributed.hpp) runs each segment once
///    per rank and performs the halo refresh named at the boundary.
///
/// PipelineFactory assembles pipelines declaratively from a
/// SimulationConfig — and therefore from the Table 1/3 parent-code presets
/// of core/code_profiles.hpp: an Evrard-style config (selfGravity on)
/// selects hydro+gravity, the square patch and Sedov configs select
/// hydro-only, and custom() accepts any op list for bespoke scenarios.

#include <algorithm>
#include <functional>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/step_context.hpp"
#include "perf/timer.hpp"
#include "sph/boundaries.hpp"
#include "sph/density.hpp"
#include "sph/divcurl.hpp"
#include "sph/iad.hpp"
#include "sph/momentum_energy.hpp"
#include "sph/smoothing_length.hpp"

namespace sphexa {

/// A named, first-class unit of work: one lettered phase of Algorithm 1.
template<class T>
struct PhaseOp
{
    Phase phase;
    std::function<void(StepContext<T>&)> run;
};

/// A run of consecutive phases with no cross-rank data dependency inside,
/// plus the ghost fields that must be refreshed before the next segment
/// (empty for the shared-memory driver and for the final segment).
template<class T>
struct PipelineSegment
{
    std::vector<PhaseOp<T>> ops;
    std::vector<std::string> haloFieldsAfter{};
};

/// The pipeline runner: executes phase units over a StepContext, timing
/// each one into StepReport::phaseSeconds and emitting a PhaseEvent per
/// phase when a log is attached.
template<class T>
class Propagator
{
public:
    Propagator() = default;
    explicit Propagator(std::vector<PipelineSegment<T>> segments)
        : segments_(std::move(segments))
    {
    }

    const std::vector<PipelineSegment<T>>& segments() const { return segments_; }

    /// Flattened phase order across all segments.
    std::vector<Phase> phases() const
    {
        std::vector<Phase> out;
        for (const auto& seg : segments_)
            for (const auto& op : seg.ops)
                out.push_back(op.phase);
        return out;
    }

    bool hasPhase(Phase p) const
    {
        for (const auto& seg : segments_)
            for (const auto& op : seg.ops)
                if (op.phase == p) return true;
        return false;
    }

    /// Execute one segment for one rank; the distributed driver interleaves
    /// these with the halo refreshes named in haloFieldsAfter.
    void runSegment(std::size_t segment, StepContext<T>& ctx,
                    std::array<double, phaseCount>& phaseSeconds,
                    PhaseEventLog* log = nullptr, int rank = 0) const
    {
        Timer t;
        for (const auto& op : segments_[segment].ops)
        {
            op.run(ctx);
            double sec = t.lap();
            phaseSeconds[int(op.phase)] += sec;
            if (log) log->record(rank, op.phase, sec);
        }
    }

    /// Execute the whole pipeline in one address space (shared-memory
    /// driver): sync specs are no-ops, outputs land in the report.
    void run(StepContext<T>& ctx, StepReport<T>& rep, PhaseEventLog* log = nullptr,
             int rank = 0) const
    {
        for (std::size_t s = 0; s < segments_.size(); ++s)
            runSegment(s, ctx, rep.phaseSeconds, log, rank);
        harvest(ctx, rep);
    }

    /// Copy the context's per-step outputs into the report (the runner does
    /// this in run(); segment-wise callers invoke it after the last segment).
    static void harvest(const StepContext<T>& ctx, StepReport<T>& rep)
    {
        rep.neighborInteractions = ctx.neighborInteractions;
        rep.activeParticles      = ctx.activeParticles;
        rep.hIterations          = ctx.hIterations;
        rep.neighborOverflow     = ctx.neighborOverflow;
        rep.gravityStats         = ctx.gravityStats;
        rep.phaseLoad            = ctx.phaseLoad;
    }

private:
    std::vector<PipelineSegment<T>> segments_;
};

/// The phase units themselves. Each body is mode-aware through the
/// StepContext (global walk, active-subset walk, or per-rank local walk) so
/// the shared-memory and distributed drivers execute the exact same code.
namespace phase_ops {

/// SFC particle reorder (phase L, tree/sfc_sort.hpp): physically sort the
/// set along the configured curve so every downstream sweep is cache-local
/// and the cluster search's fixed-size runs of consecutive particles are
/// spatially tight. Placed FIRST in the pipelines that carry it — before
/// the WCSPH ghost bracket (ghosts never move) and before the tree build
/// (every list is rebuilt over the new order). Self-gates on the config
/// (ClusterList search implies it) and runs only on Global walks: an
/// active-subset step reuses neighbor lists whose entries reference
/// pre-reorder slots, and the distributed driver orders particles in its
/// decomposition glue instead.
template<class T>
PhaseOp<T> sfcReorder()
{
    return {Phase::L_SfcSort, [](StepContext<T>& ctx) {
                if (ctx.walkMode != WalkMode::Global) return;
                if (!ctx.cfg.sfcReorder &&
                    ctx.cfg.searchMode != NeighborSearchMode::ClusterList)
                {
                    return;
                }
                SfcSorter<T>  local;
                SfcSorter<T>& sorter = ctx.sorter ? *ctx.sorter : local;
                sorter.apply(ctx.ps, ctx.box, ctx.cfg.sfcCurve);
            }};
}

template<class T>
PhaseOp<T> treeBuild()
{
    return {Phase::A_TreeBuild, [](StepContext<T>& ctx) {
                if (ctx.skipEmptyLocal()) return;
                typename Octree<T>::BuildParams bp;
                bp.leafSize      = ctx.cfg.treeLeafSize;
                bp.curve         = ctx.cfg.sfcCurve;
                bp.parallelBuild = ctx.cfg.parallelTreeBuild;
                ctx.tree.build(ctx.ps.x, ctx.ps.y, ctx.ps.z, ctx.box, bp);
            }};
}

template<class T>
PhaseOp<T> neighborSearch()
{
    return {Phase::B_NeighborSearch, [](StepContext<T>& ctx) {
                auto& ps = ctx.ps;
                // this step's overflow accounting starts at the search
                // (phases C/D may add more via their nl.set calls)
                ctx.nl.resetOverflow();
                switch (ctx.walkMode)
                {
                    case WalkMode::Global:
                        if (ctx.cfg.searchMode == NeighborSearchMode::ClusterList)
                        {
                            ClusterWorkspace<T>  local;
                            ClusterWorkspace<T>& ws =
                                ctx.clusters ? *ctx.clusters : local;
                            findNeighborsClustered(ctx.tree, ps.x, ps.y, ps.z, ps.h,
                                                   ctx.nl, ws, ctx.cfg.clusterSize,
                                                   ctx.loopPolicy(Phase::B_NeighborSearch));
                        }
                        else
                        {
                            findNeighborsGlobal(ctx.tree, ps.x, ps.y, ps.z, ps.h, ctx.nl,
                                                ctx.loopPolicy(Phase::B_NeighborSearch));
                        }
                        ctx.activeParticles = ps.size();
                        break;
                    case WalkMode::ActiveSubset:
                        if (ctx.controller)
                        {
                            ctx.walkIndices = ctx.controller->activeParticles(ps);
                        }
                        findNeighborsIndividual(ctx.tree, ps.x, ps.y, ps.z, ps.h,
                                                ctx.walkIndices, ctx.nl,
                                                ctx.loopPolicy(Phase::B_NeighborSearch));
                        ctx.activeParticles = ctx.walkIndices.size();
                        break;
                    case WalkMode::LocalIndices:
                        if (ctx.skipEmptyLocal()) return;
                        findNeighborsIndividual(ctx.tree, ps.x, ps.y, ps.z, ps.h,
                                                ctx.walkIndices, ctx.nl,
                                                ctx.loopPolicy(Phase::B_NeighborSearch));
                        ctx.activeParticles = ctx.walkIndices.size();
                        break;
                }
            }};
}

/// \param activeSubsetIterates whether an ActiveSubset walk runs the h
/// iteration over the active set (the binned-integration pipeline, where
/// every subset step is a real force evaluation for its active particles)
/// or reuses the converged h of the last full walk (the legacy behaviour,
/// kept as the default for bespoke subset pipelines).
template<class T>
PhaseOp<T> smoothingLength(bool activeSubsetIterates = false)
{
    return {Phase::C_SmoothingLength, [activeSubsetIterates](StepContext<T>& ctx) {
                if (ctx.walkMode == WalkMode::ActiveSubset && !activeSubsetIterates)
                {
                    return;
                }
                if (ctx.skipEmptyWalk()) return;
                SmoothingLengthParams<T> hp;
                hp.targetNeighbors = ctx.cfg.targetNeighbors;
                hp.tolerance       = ctx.cfg.neighborTolerance;
                // phase B just filled the lists for the current h (all
                // particles in Global mode, the rank's owned particles in
                // LocalIndices mode, the controller's active bins in
                // ActiveSubset mode), so the iteration never repeats the
                // initial walk — one shared h path for all drivers
                auto hres = updateSmoothingLengths(ctx.ps, ctx.tree, ctx.nl, hp,
                                                   ctx.activeSpan(), /*reuseLists*/ true,
                                                   ctx.loopPolicy(Phase::C_SmoothingLength));
                ctx.hIterations = hres.iterations;
            }};
}

template<class T>
PhaseOp<T> neighborSymmetrize()
{
    return {Phase::D_NeighborSymmetrize, [](StepContext<T>& ctx) {
                if (ctx.skipEmptyWalk())
                {
                    ctx.neighborInteractions = 0;
                    ctx.neighborOverflow     = 0;
                    return;
                }
                // ActiveSubset lists are deliberately NOT symmetrized: an
                // inactive neighbor's list is stale by construction, so
                // pairwise antisymmetry only holds at full synchronizations
                // (where conservation is measured) — ChaNGa's trade-off.
                if (ctx.walkMode == WalkMode::Global && ctx.cfg.symmetrizeNeighbors)
                {
                    symmetrizeNeighborList(
                        ctx.nl, std::span<const std::uint64_t>(ctx.ps.id.data(),
                                                               ctx.nl.size()));
                }
                // phase D closes the list-building bracket (B fills, C may
                // re-walk, the symmetrize pass appends): snapshot overflow
                // here so the report reflects the lists the SPH sums read
                ctx.neighborOverflow = ctx.nl.overflowCount();
                // interaction counter: walked particles only when a subset
                // was searched (other entries are stale/ghost), whole list
                // on a global walk
                if (ctx.walkMode == WalkMode::Global)
                {
                    ctx.neighborInteractions = ctx.nl.totalNeighbors();
                }
                else
                {
                    std::size_t inter = 0;
                    for (std::size_t i : ctx.walkIndices)
                        inter += ctx.nl.count(i);
                    ctx.neighborInteractions = inter;
                }
            }};
}

template<class T>
PhaseOp<T> density()
{
    return {Phase::E_Density, [](StepContext<T>& ctx) {
                if (ctx.skipEmptyWalk()) return;
                auto pol = ctx.loopPolicy(Phase::E_Density);
                // the near-free uniform VE loop must not adapt the AWF
                // weights the neighbor-bound density sum is calibrated by —
                // its noise-dominated rates would drag them off every step
                LoopPolicy vePol = pol;
                vePol.awfWeights = nullptr;
                computeVolumeElementWeights(ctx.ps, ctx.cfg.volumeElements,
                                            ctx.cfg.veExponent, vePol);
                computeDensity(ctx.ps, ctx.nl, ctx.kernel, ctx.box, ctx.activeSpan(), pol,
                               ctx.computeBackend());
            }};
}

template<class T>
PhaseOp<T> eosAndIad()
{
    return {Phase::F_EosAndIad, [](StepContext<T>& ctx) {
                if (ctx.skipEmptyWalk()) return;
                auto& ps  = ctx.ps;
                auto act  = ctx.activeSpan();
                auto pol  = ctx.loopPolicy(Phase::F_EosAndIad);
                // the cheap EOS sweep runs weightless for the same reason
                // as the VE loop of phase E: only the IAD sum below should
                // drive the phase's AWF adaptation
                LoopPolicy eosPol = pol;
                eosPol.awfWeights = nullptr;
                std::size_t count = act.empty() ? ps.size() : act.size();
                parallelFor(
                    count,
                    [&](std::size_t k, std::size_t) {
                        std::size_t i = act.empty() ? k : act[k];
                        auto res = ctx.eos(ps.rho[i], ps.u[i]);
                        ps.p[i]  = res.pressure;
                        ps.c[i]  = res.soundSpeed;
                    },
                    eosPol);
                if (ctx.cfg.gradients == GradientMode::IAD)
                {
                    computeIadCoefficients(ps, ctx.nl, ctx.kernel, ctx.box, act, pol,
                                           ctx.computeBackend());
                }
            }};
}

template<class T>
PhaseOp<T> divCurl()
{
    return {Phase::G_DivCurl, [](StepContext<T>& ctx) {
                if (ctx.skipEmptyWalk()) return;
                computeDivCurl(ctx.ps, ctx.nl, ctx.kernel, ctx.box, ctx.cfg.gradients,
                               ctx.activeSpan(), ctx.loopPolicy(Phase::G_DivCurl),
                               ctx.computeBackend());
            }};
}

template<class T>
PhaseOp<T> momentumEnergy()
{
    return {Phase::H_MomentumEnergy, [](StepContext<T>& ctx) {
                if (ctx.skipEmptyWalk()) return;
                auto stats = computeMomentumEnergy(ctx.ps, ctx.nl, ctx.kernel, ctx.box,
                                                   ctx.cfg.gradients, ctx.cfg.av,
                                                   ctx.activeSpan(),
                                                   ctx.loopPolicy(Phase::H_MomentumEnergy),
                                                   ctx.computeBackend());
                ctx.maxVsignal = stats.maxVsignal;
            }};
}

template<class T>
PhaseOp<T> selfGravity()
{
    return {Phase::I_SelfGravity, [](StepContext<T>& ctx) {
                if (!ctx.gravity) return; // distributed glue replicates instead
                if (ctx.skipEmptyWalk()) return;
                ctx.gravity->prepare(ctx.tree, ctx.ps, ctx.cfg.gravity);
                // active-subset steps accelerate the walked targets only; the
                // accumulated potential is then partial, so conservation
                // diagnostics read it at full synchronizations (where the
                // span is the whole set). Empty span = all (Global walks).
                ctx.potentialEnergy = ctx.gravity->accumulate(
                    ctx.ps, &ctx.gravityStats, ctx.activeSpan(),
                    ctx.loopPolicy(Phase::I_SelfGravity));
            }};
}

/// WCSPH ghost creation (phase K, before the tree build): mirror the reals
/// across the configured walls and size the neighbor list for the enlarged
/// set. A no-op when the config declares no walls, so the WCSPH pipeline
/// degenerates to the compressible one on wall-free scenarios.
template<class T>
PhaseOp<T> ghostCreate()
{
    return {Phase::K_GhostExchange, [](StepContext<T>& ctx) {
                ctx.nGhosts = appendMirrorGhosts(ctx.ps, ctx.box, ctx.cfg.boundaries);
                if (ctx.nGhosts) ctx.nl.reset(ctx.ps.size(), ctx.cfg.ngmax);
            }};
}

/// WCSPH ghost removal (phase K, after the force phases): truncate the
/// ghost tail so integration and conservation see real particles only.
template<class T>
PhaseOp<T> ghostRemove()
{
    return {Phase::K_GhostExchange, [](StepContext<T>& ctx) {
                if (!ctx.nGhosts) return;
                removeGhosts(ctx.ps, ctx.nGhosts);
                ctx.nl.reset(ctx.ps.size(), ctx.cfg.ngmax);
                ctx.nGhosts = 0;
            }};
}

/// Uniform body force (dam-break gravity): added onto the SPH
/// accelerations, so it shares phase H's timing slot. A no-op at zero
/// acceleration.
template<class T>
PhaseOp<T> bodyForce()
{
    return {Phase::H_MomentumEnergy, [](StepContext<T>& ctx) {
                const Vec3<T>& g = ctx.cfg.constantAccel;
                if (g.x == T(0) && g.y == T(0) && g.z == T(0)) return;
                auto& ps = ctx.ps;
                parallelFor(
                    ps.size(),
                    [&](std::size_t i, std::size_t) {
                        ps.ax[i] += g.x;
                        ps.ay[i] += g.y;
                        ps.az[i] += g.z;
                    },
                    ctx.loopPolicy(Phase::H_MomentumEnergy));
            }};
}

} // namespace phase_ops

/// Assembles pipelines declaratively from a SimulationConfig (and therefore
/// from the code_profiles.hpp presets).
template<class T>
class PipelineFactory
{
public:
    /// Hydro-only force pipeline: phases A..H (square patch, Sedov),
    /// preceded by the self-gating SFC reorder of phase L.
    static Propagator<T> hydro()
    {
        return custom({phase_ops::sfcReorder<T>(), phase_ops::treeBuild<T>(),
                       phase_ops::neighborSearch<T>(),
                       phase_ops::smoothingLength<T>(),
                       phase_ops::neighborSymmetrize<T>(), phase_ops::density<T>(),
                       phase_ops::eosAndIad<T>(), phase_ops::divCurl<T>(),
                       phase_ops::momentumEnergy<T>()});
    }

    /// Hydro + self-gravity pipeline: phases A..I (Evrard collapse).
    static Propagator<T> hydroGravity()
    {
        auto p   = hydro();
        auto seg = p.segments();
        seg.back().ops.push_back(phase_ops::selfGravity<T>());
        return Propagator<T>(std::move(seg));
    }

    /// WCSPH free-surface pipeline: the hydro phases bracketed by the
    /// mirror-ghost ops of phase K (create before the tree build, remove
    /// after forces) plus the uniform body force after phase H. With no
    /// walls and zero body force every added op is a no-op and the phase
    /// bodies match hydro()/hydroGravity() exactly — the pipeline-
    /// equivalence gate the golden tests exploit.
    static Propagator<T> wcsph(const SimulationConfig<T>& cfg)
    {
        std::vector<PhaseOp<T>> ops{
            phase_ops::sfcReorder<T>(),   phase_ops::ghostCreate<T>(),
            phase_ops::treeBuild<T>(),
            phase_ops::neighborSearch<T>(), phase_ops::smoothingLength<T>(),
            phase_ops::neighborSymmetrize<T>(), phase_ops::density<T>(),
            phase_ops::eosAndIad<T>(),    phase_ops::divCurl<T>(),
            phase_ops::momentumEnergy<T>(), phase_ops::bodyForce<T>()};
        if (cfg.selfGravity) ops.push_back(phase_ops::selfGravity<T>());
        ops.push_back(phase_ops::ghostRemove<T>());
        return custom(std::move(ops));
    }

    /// Binned-integration ("individual time-stepping") pipeline: the hydro
    /// phases with every post-search op running over the controller's
    /// active bins. Phase B fills the active set (the force/kick-end set,
    /// see sph/timestep.hpp) and walks it individually; phase C iterates h
    /// for the active particles; D..H(..I) evaluate densities, gradients
    /// and forces for the subset only, while inactive particles are merely
    /// drifted by the driver. The paper's Table 1/2 ChaNGa row.
    static Propagator<T> individual(const SimulationConfig<T>& cfg)
    {
        std::vector<PhaseOp<T>> ops{
            phase_ops::sfcReorder<T>(), phase_ops::treeBuild<T>(),
            phase_ops::neighborSearch<T>(),
            phase_ops::smoothingLength<T>(/*activeSubsetIterates*/ true),
            phase_ops::neighborSymmetrize<T>(), phase_ops::density<T>(),
            phase_ops::eosAndIad<T>(), phase_ops::divCurl<T>(),
            phase_ops::momentumEnergy<T>()};
        if (cfg.selfGravity) ops.push_back(phase_ops::selfGravity<T>());
        return custom(std::move(ops));
    }

    /// Shared-memory pipeline for a configuration: the scenario (gravity or
    /// not, compressible or WCSPH, binned integration or global steps)
    /// selects the phase list.
    static Propagator<T> singleRank(const SimulationConfig<T>& cfg)
    {
        if (cfg.hydroMode == HydroMode::WeaklyCompressible) return wcsph(cfg);
        if (cfg.timestep.mode == TimesteppingMode::Individual &&
            cfg.neighborMode == NeighborMode::IndividualTreeWalk)
        {
            return individual(cfg);
        }
        return cfg.selfGravity ? hydroGravity() : hydro();
    }

    /// Distributed per-rank pipeline for a configuration: the same phase
    /// units grouped into segments, with the ghost fields each cross-rank
    /// data dependency needs refreshed at the boundaries (IAD reads the
    /// neighbors' density-pass volumes, momentum their EOS + IAD outputs,
    /// the AV limiter their Balsara value). Self-gravity is not a per-rank
    /// phase: the driver replicates the tree in its reduction glue.
    static Propagator<T> distributed(const SimulationConfig<T>&)
    {
        std::vector<PipelineSegment<T>> segs;
        segs.push_back({{phase_ops::treeBuild<T>(), phase_ops::neighborSearch<T>(),
                         phase_ops::smoothingLength<T>(),
                         phase_ops::neighborSymmetrize<T>(), phase_ops::density<T>()},
                        {"h", "rho", "vol", "gradh", "xmass"}});
        segs.push_back({{phase_ops::eosAndIad<T>()},
                        {"p", "c", "c11", "c12", "c13", "c22", "c23", "c33"}});
        segs.push_back({{phase_ops::divCurl<T>()}, {"balsara", "divv", "curlv"}});
        segs.push_back({{phase_ops::momentumEnergy<T>()}, {}});
        return Propagator<T>(std::move(segs));
    }

    /// A bespoke single-segment pipeline from any op list.
    static Propagator<T> custom(std::vector<PhaseOp<T>> ops)
    {
        std::vector<PipelineSegment<T>> segs;
        segs.push_back({std::move(ops), {}});
        return Propagator<T>(std::move(segs));
    }
};

} // namespace sphexa

#include "core/version.hpp"

namespace sphexa {

std::string_view version() { return "1.0.0"; }

std::string_view banner()
{
    return "SPH-EXA mini-app reproduction (Guerrera et al., CLUSTER 2018)";
}

} // namespace sphexa

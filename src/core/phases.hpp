#pragma once

/// \file phases.hpp
/// The workflow phases of the paper's Algorithm 1 / Fig. 4 timeline,
/// lettered as in the Extrae trace. Split out of step_context.hpp so the
/// low-level layers (SimulationConfig's per-phase scheduling map, the
/// propagator, the tracer) can all name phases without pulling in the
/// whole step-context vocabulary.

#include <string_view>

namespace sphexa {

/// Workflow phases, lettered as in the paper's Fig. 4.
enum class Phase : int
{
    A_TreeBuild = 0,
    B_NeighborSearch,
    C_SmoothingLength,
    D_NeighborSymmetrize,
    E_Density,
    F_EosAndIad,
    G_DivCurl,
    H_MomentumEnergy,
    I_SelfGravity,
    J_TimestepUpdate,
    /// WCSPH mirror-ghost bracket (sph/boundaries.hpp): appended after the
    /// paper's lettered phases so A..J keep their Fig. 4 values.
    K_GhostExchange,
    /// SFC particle reordering (tree/sfc_sort.hpp): runs FIRST in the
    /// pipelines that enable it (before the ghost bracket and tree build),
    /// but is lettered after K so A..K keep their established values.
    L_SfcSort,
    Count
};

constexpr int phaseCount = int(Phase::Count);

constexpr std::string_view phaseName(Phase p)
{
    switch (p)
    {
        case Phase::A_TreeBuild: return "A:tree-build";
        case Phase::B_NeighborSearch: return "B:neighbor-search";
        case Phase::C_SmoothingLength: return "C:smoothing-length";
        case Phase::D_NeighborSymmetrize: return "D:neighbor-symmetrize";
        case Phase::E_Density: return "E:density";
        case Phase::F_EosAndIad: return "F:eos+iad";
        case Phase::G_DivCurl: return "G:div-curl";
        case Phase::H_MomentumEnergy: return "H:momentum-energy";
        case Phase::I_SelfGravity: return "I:self-gravity";
        case Phase::J_TimestepUpdate: return "J:timestep-update";
        case Phase::K_GhostExchange: return "K:ghost-exchange";
        case Phase::L_SfcSort: return "L:sfc-sort";
        default: return "?";
    }
}

} // namespace sphexa

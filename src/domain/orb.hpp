#pragma once

/// \file orb.hpp
/// Orthogonal Recursive Bisection domain decomposition — SPH-flow's method
/// (Table 3) and one of the two methods the mini-app must provide (Table 4).
///
/// The particle cloud is recursively split along the longest axis of the
/// current sub-box at the weighted median, so every rank receives an equal
/// share of work weight. Non-power-of-two rank counts are handled by
/// splitting the rank range unevenly and placing the cut at the matching
/// weight fraction.

#include <algorithm>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "domain/box.hpp"

namespace sphexa {

template<class T>
struct OrbPartition
{
    std::vector<Box<T>> rankBoxes;  ///< disjoint boxes tiling the domain
    std::vector<int>    assignment; ///< owning rank per particle
    std::vector<T>      rankWeights;///< total weight per rank
};

namespace detail {

template<class T>
void orbRecurse(std::span<const T> x, std::span<const T> y, std::span<const T> z,
                std::span<const T> w, std::vector<std::size_t>& indices, std::size_t lo,
                std::size_t hi, const Box<T>& box, int rankLo, int rankHi,
                OrbPartition<T>& out)
{
    int nRanks = rankHi - rankLo + 1;
    if (nRanks == 1)
    {
        out.rankBoxes[rankLo] = box;
        T wsum = T(0);
        for (std::size_t k = lo; k < hi; ++k)
        {
            out.assignment[indices[k]] = rankLo;
            wsum += w[indices[k]];
        }
        out.rankWeights[rankLo] = wsum;
        return;
    }

    int nLeft = nRanks / 2;
    T fraction = T(nLeft) / T(nRanks);

    int axis = box.longestAxis();
    const T* coord = axis == 0 ? x.data() : axis == 1 ? y.data() : z.data();

    std::sort(indices.begin() + lo, indices.begin() + hi,
              [&](std::size_t a, std::size_t b) { return coord[a] < coord[b]; });

    T total = T(0);
    for (std::size_t k = lo; k < hi; ++k)
        total += w[indices[k]];

    T target = fraction * total;
    T acc = T(0);
    std::size_t cut = lo;
    while (cut < hi && acc + w[indices[cut]] <= target)
    {
        acc += w[indices[cut]];
        ++cut;
    }
    // keep both halves non-empty when possible
    if (cut == lo && hi - lo > 1) ++cut;
    if (cut == hi && hi - lo > 1) --cut;

    T cutPos = (cut > lo && cut < hi)
                   ? (coord[indices[cut - 1]] + coord[indices[cut]]) / T(2)
                   : box.center()[axis];

    Box<T> left = box, right = box;
    left.hi[axis]  = cutPos;
    right.lo[axis] = cutPos;

    orbRecurse(x, y, z, w, indices, lo, cut, left, rankLo, rankLo + nLeft - 1, out);
    orbRecurse(x, y, z, w, indices, cut, hi, right, rankLo + nLeft, rankHi, out);
}

} // namespace detail

/// Decompose particles into \p nRanks boxes by weighted ORB. Weights are
/// per-particle work estimates (interaction counts); pass uniform weights
/// for a pure particle-count split.
template<class T>
OrbPartition<T> orbDecompose(std::span<const T> x, std::span<const T> y,
                             std::span<const T> z, std::span<const T> weights, int nRanks,
                             const Box<T>& domain)
{
    OrbPartition<T> out;
    out.rankBoxes.resize(nRanks);
    out.assignment.assign(x.size(), 0);
    out.rankWeights.assign(nRanks, T(0));

    std::vector<std::size_t> indices(x.size());
    std::iota(indices.begin(), indices.end(), std::size_t(0));
    detail::orbRecurse(x, y, z, weights, indices, 0, x.size(), domain, 0, nRanks - 1, out);
    return out;
}

} // namespace sphexa

#pragma once

/// \file distributed.hpp
/// Distributed-memory SPH driver: the "MPI+X" reference implementation of
/// Table 4, running over the simulated communicator (parallel/comm.hpp).
///
/// Every step executes the full distributed workflow of a production SPH
/// code:
///   1. domain decomposition (ORB or SFC, Table 4) + particle migration
///   2. halo exchange with a 2 h_max margin
///   3. per-rank Algorithm-1 phases A..H through the SAME phase units the
///      shared-memory driver runs (core/propagator.hpp), segment by
///      segment; the ghost-field refreshes between segments come from the
///      pipeline's declarative halo-sync specs
///   4. self-gravity via a replicated tree (positions/masses allgathered —
///      the communication is counted; see docs/DESIGN.md substitution notes)
///   5. global time-step reduction (allreduce-min), local update
///
/// Only decomposition, migration, halo exchange and the global reductions
/// live here; the phase bodies are the propagator's. Per-rank phase wall
/// times are recorded uniformly by the pipeline runner (attach a
/// PhaseEventLog to trace them); they drive the POP metrics, the Fig. 4
/// trace, and the strong-scaling predictions of perf/cluster_sim.hpp.
///
/// See docs/ARCHITECTURE.md for the stage-by-stage pipeline walk-through.

#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "backend/lane_kernel.hpp"
#include "core/config.hpp"
#include "core/propagator.hpp"
#include "core/simulation.hpp"
#include "domain/box.hpp"
#include "domain/halo.hpp"
#include "domain/orb.hpp"
#include "domain/sfc_partition.hpp"
#include "domain/slab.hpp"
#include "parallel/comm.hpp"
#include "perf/timer.hpp"
#include "sph/conservation.hpp"
#include "sph/eos.hpp"

namespace sphexa {

/// Per-rank, per-step measurements.
template<class T>
struct RankStepReport
{
    std::array<double, phaseCount> phaseSeconds{};
    /// Per-worker busy times of the rank's ParallelFor loops, by phase
    /// (the intra-rank load-balance axis of the POP hierarchy).
    std::array<PhaseLoadStats, phaseCount> phaseLoad{};
    double decompositionSeconds = 0;
    double haloSeconds = 0;
    std::size_t localParticles = 0;
    std::size_t ghostParticles = 0;
    std::size_t neighborInteractions = 0;
    simmpi::Traffic traffic{}; ///< traffic sent this step

    double computeSeconds() const
    {
        double s = 0;
        for (double p : phaseSeconds)
            s += p;
        return s;
    }
};

/// Whole-step view across ranks.
template<class T>
struct DistributedStepReport
{
    T dt = T(0);
    T time = T(0);
    std::uint64_t step = 0;
    std::vector<RankStepReport<T>> ranks;

    /// POP load balance of the compute time: mean/max across ranks.
    double loadBalance() const
    {
        double mx = 0, sum = 0;
        for (const auto& r : ranks)
        {
            double c = r.computeSeconds();
            mx = std::max(mx, c);
            sum += c;
        }
        return mx > 0 ? sum / (double(ranks.size()) * mx) : 1.0;
    }
};

/// Distributed-memory simulation over P simulated ranks.
template<class T>
class DistributedSimulation
{
public:
    DistributedSimulation(ParticleSet<T> global, Box<T> box, Eos<T> eos,
                          SimulationConfig<T> cfg, int nRanks)
        : comm_(nRanks)
        , box_(box)
        , eos_(std::move(eos))
        , cfg_(std::move(cfg))
        , kernel_(cfg_.kernel, cfg_.sincExponent)
        , laneKernel_(kernel_)
        , pipeline_(PipelineFactory<T>::distributed(cfg_))
        , locals_(nRanks)
        , maps_(nRanks)
        , nLocal_(nRanks, 0)
    {
        if (global.empty())
            throw std::invalid_argument("DistributedSimulation: empty particle set");
        // initial decomposition: all particles start on rank 0 and are
        // migrated, as a real code would bootstrap
        locals_[0] = std::move(global);
        nLocal_[0] = locals_[0].size();
        DistributedStepReport<T> bootstrap;
        bootstrap.ranks.resize(nRanks);
        computeAllForces(bootstrap);
    }

    int ranks() const { return comm_.size(); }
    const Box<T>& box() const { return box_; }
    T time() const { return time_; }
    std::uint64_t step() const { return stepCount_; }
    const simmpi::Communicator& comm() const { return comm_; }
    const SimulationConfig<T>& config() const { return cfg_; }

    std::size_t localCount(int rank) const { return nLocal_[rank]; }

    /// The per-rank force pipeline (phases A..H in halo-synced segments).
    const Propagator<T>& pipeline() const { return pipeline_; }

    /// Attach a tracer log: the pipeline runner emits one PhaseEvent per
    /// (rank, phase) into it (pass nullptr to detach).
    void attachPhaseLog(PhaseEventLog* log) { log_ = log; }

    /// Advance one step (kick-drift-kick, matching the shared-memory
    /// driver); returns per-rank measurements.
    DistributedStepReport<T> advance()
    {
        DistributedStepReport<T> rep;
        rep.ranks.resize(comm_.size());
        comm_.resetTraffic();
        // events carry the step id the returned report will have
        if (log_) log_->beginStep(stepCount_ + 1);

        // phase J part 1: global dt from the current forces, then
        // first kick + drift on every rank
        std::vector<T> dtContrib(comm_.size());
        for (int r = 0; r < comm_.size(); ++r)
        {
            T dtMin = cfg_.timestep.maxDt;
            auto& ps = locals_[r];
            for (std::size_t i = 0; i < ps.size(); ++i)
            {
                dtMin = std::min(dtMin,
                                 particleTimestep(ps, i, lastMaxVsig_, cfg_.timestep));
            }
            dtContrib[r] = dtMin;
        }
        T dtStep = comm_.allreduceMin<T>(dtContrib);
        if (firstStep_)
        {
            dtStep = std::min(dtStep, cfg_.timestep.initialDt);
            firstStep_ = false;
        }
        // phase J runs under the configured strategy on every rank, like
        // the pipeline phases; drift + energy times join the rank's J slot
        rankAwf_.resize(comm_.size());
        std::vector<PhaseLoadStats> jLoad(comm_.size());
        std::vector<double> jSeconds(comm_.size(), 0.0);
        auto jPolicyFor = [&](int r) {
            LoopPolicy pol;
            pol.strategy = cfg_.phaseSchedule[Phase::J_TimestepUpdate];
            if (pol.strategy == SchedulingStrategy::AdaptiveWeightedFactoring)
            {
                pol.awfWeights =
                    &rankAwf_[r].weightsFor(std::size_t(Phase::J_TimestepUpdate));
            }
            pol.stats = &jLoad[r];
            return pol;
        };
        for (int r = 0; r < comm_.size(); ++r)
        {
            Timer t;
            kickDrift(locals_[r], dtStep, box_, jPolicyFor(r));
            jSeconds[r] = t.elapsed();
        }

        // forces at the new positions (decompose, halos, phases A..I)
        computeAllForces(rep);

        // phase J part 2: second kick + energy update
        for (int r = 0; r < comm_.size(); ++r)
        {
            Timer t;
            kickEnergy(locals_[r], dtStep, eos_.isIdealGas(), jPolicyFor(r));
            jSeconds[r] += t.elapsed();
            rep.ranks[r].phaseSeconds[int(Phase::J_TimestepUpdate)] = jSeconds[r];
            rep.ranks[r].phaseLoad[int(Phase::J_TimestepUpdate)]    = std::move(jLoad[r]);
            if (log_) log_->record(r, Phase::J_TimestepUpdate, jSeconds[r]);
        }

        time_ += dtStep;
        ++stepCount_;
        rep.dt = dtStep;
        rep.time = time_;
        rep.step = stepCount_;
        for (int r = 0; r < comm_.size(); ++r)
        {
            rep.ranks[r].traffic = comm_.traffic(r);
        }
        return rep;
    }

    /// Gather all particles into one set, sorted by id (for comparisons
    /// against the shared-memory driver).
    ParticleSet<T> gather() const
    {
        ParticleSet<T> out;
        for (int r = 0; r < comm_.size(); ++r)
        {
            ParticleSet<T> local = locals_[r];
            local.resize(nLocal_[r]); // drop any ghosts
            out.append(local);
        }
        // sort by id
        std::vector<std::size_t> order(out.size());
        std::iota(order.begin(), order.end(), std::size_t(0));
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) { return out.id[a] < out.id[b]; });
        out.reorder(order);
        return out;
    }

    Conservation<T> conservation() const
    {
        auto g = gather();
        return computeConservation(g, potentialEnergy_);
    }

    /// Imbalance of the current decomposition: max/mean local count.
    double particleImbalance() const
    {
        double mx = 0, sum = 0;
        for (int r = 0; r < comm_.size(); ++r)
        {
            mx = std::max(mx, double(nLocal_[r]));
            sum += double(nLocal_[r]);
        }
        return sum > 0 ? mx * comm_.size() / sum : 1.0;
    }

private:
    /// Decomposition, migration, halo exchange and the per-rank force
    /// pipeline; leaves every rank with valid forces on its local particles
    /// (ghosts dropped). The phase bodies are the propagator's shared units;
    /// this driver contributes only the glue between segments.
    void computeAllForces(DistributedStepReport<T>& rep)
    {
        int P = comm_.size();

        // 1. decomposition + migration
        {
            Timer t;
            decomposeAndMigrate();
            double sec = t.elapsed() / P;
            for (auto& r : rep.ranks)
                r.decompositionSeconds = sec;
        }

        // 2. halo exchange with margin
        {
            Timer t;
            T margin = haloMargin();
            exchangeHalos(comm_, locals_, maps_, box_, margin);
            double sec = t.elapsed() / P;
            for (auto& r : rep.ranks)
                r.haloSeconds = sec;
        }

        // 3. per-rank force pipeline (phases A..H). One StepContext per
        // rank over the shared phase units; the halo-sync specs at segment
        // boundaries name the ghost fields each cross-rank data dependency
        // needs refreshed.
        rankTree_.resize(P);
        rankNl_.resize(P);
        rankVsig_.assign(P, T(0));
        rankAwf_.resize(P);
        std::vector<StepContext<T>> ctxs;
        ctxs.reserve(P);
        for (int r = 0; r < P; ++r)
        {
            rankNl_[r].reset(locals_[r].size(), cfg_.ngmax);
            ctxs.push_back(StepContext<T>{locals_[r], box_, cfg_, kernel_, eos_,
                                          rankTree_[r], rankNl_[r]});
            auto& ctx    = ctxs.back();
            ctx.awf      = &rankAwf_[r]; // per-rank AWF weights persist across steps
            ctx.laneKernel = &laneKernel_; // shared: lane tables are read-only
            ctx.walkMode = WalkMode::LocalIndices;
            ctx.walkIndices.resize(nLocal_[r]);
            std::iota(ctx.walkIndices.begin(), ctx.walkIndices.end(), std::size_t(0));
            rep.ranks[r].localParticles = nLocal_[r];
            rep.ranks[r].ghostParticles = locals_[r].size() - nLocal_[r];
        }
        const auto& segments = pipeline_.segments();
        for (std::size_t s = 0; s < segments.size(); ++s)
        {
            for (int r = 0; r < P; ++r)
            {
                pipeline_.runSegment(s, ctxs[r], rep.ranks[r].phaseSeconds, log_, r);
            }
            if (!segments[s].haloFieldsAfter.empty())
            {
                refreshHaloFields(comm_, locals_, maps_, segments[s].haloFieldsAfter,
                                  nLocal_);
            }
        }
        for (int r = 0; r < P; ++r)
        {
            rankVsig_[r] = ctxs[r].maxVsignal;
            rep.ranks[r].neighborInteractions = ctxs[r].neighborInteractions;
            rep.ranks[r].phaseLoad            = ctxs[r].phaseLoad;
        }
        lastMaxVsig_ = comm_.allreduceMax<T>(std::span<const T>(rankVsig_));

        // ghost forces are NOT applied; drop ghosts before the update
        dropGhosts();

        // 4. self-gravity on the replicated set (Evrard path)
        if (cfg_.selfGravity) { accumulateGravityReplicated(rep); }
    }

    T haloMargin() const
    {
        T hmax = T(0);
        for (int r = 0; r < comm_.size(); ++r)
        {
            const auto& ps = locals_[r];
            for (std::size_t i = 0; i < nLocal_[r]; ++i)
                hmax = std::max(hmax, ps.h[i]);
        }
        return T(2) * hmax * T(1.5); // safety factor for the h iteration
    }

    void dropGhosts()
    {
        for (int r = 0; r < comm_.size(); ++r)
        {
            locals_[r].resize(nLocal_[r]);
        }
    }

    /// Re-decompose on current positions and migrate particles to their
    /// owners through the communicator.
    void decomposeAndMigrate()
    {
        int P = comm_.size();
        // gather positions (counted as collective traffic)
        std::vector<std::vector<T>> xs(P), ys(P), zs(P), ws(P);
        for (int r = 0; r < P; ++r)
        {
            xs[r].assign(locals_[r].x.begin(), locals_[r].x.end());
            ys[r].assign(locals_[r].y.begin(), locals_[r].y.end());
            zs[r].assign(locals_[r].z.begin(), locals_[r].z.end());
            // work weight: last neighbor count (interaction proxy), or 1
            ws[r].resize(locals_[r].size());
            for (std::size_t i = 0; i < locals_[r].size(); ++i)
            {
                ws[r][i] = locals_[r].nc[i] > 0 ? T(locals_[r].nc[i]) : T(1);
            }
        }
        auto gx = comm_.allgatherv(xs);
        auto gy = comm_.allgatherv(ys);
        auto gz = comm_.allgatherv(zs);
        auto gw = comm_.allgatherv(ws);

        // global assignment
        std::vector<int> assignment;
        if (cfg_.decomposition == DecompositionMethod::OrthogonalRecursiveBisection)
        {
            auto part = orbDecompose<T>(gx, gy, gz, gw, P, box_);
            assignment = std::move(part.assignment);
        }
        else if (cfg_.decomposition == DecompositionMethod::Slab1D)
        {
            auto part = slabDecompose<T>(gx, gy, gz, gw, P, box_);
            assignment = std::move(part.assignment);
        }
        else
        {
            auto part = sfcPartition<T>(gx, gy, gz, gw, P, box_, cfg_.sfcCurve);
            assignment = std::move(part.assignment);
        }

        // map global index -> (rank, local index)
        std::vector<std::size_t> rankStart(P + 1, 0);
        for (int r = 0; r < P; ++r)
            rankStart[r + 1] = rankStart[r] + locals_[r].size();

        // each rank sends leavers
        for (int src = 0; src < P; ++src)
        {
            auto& ps = locals_[src];
            std::vector<std::vector<std::size_t>> leaving(P);
            for (std::size_t i = 0; i < ps.size(); ++i)
            {
                int owner = assignment[rankStart[src] + i];
                if (owner != src) leaving[owner].push_back(i);
            }
            for (int dst = 0; dst < P; ++dst)
            {
                if (dst == src) continue;
                auto sub = ps.gather(leaving[dst]);
                // pack all real fields + ids
                std::vector<T> packed;
                auto fields = sub.realFields();
                for (auto* f : fields)
                    packed.insert(packed.end(), f->begin(), f->end());
                comm_.sendVector<T>(src, dst, "migrate", packed);
                comm_.sendVector<std::uint64_t>(src, dst, "migrate-id", sub.id);
            }
            // erase leavers locally (collect all)
            std::vector<std::size_t> all;
            for (int dst = 0; dst < P; ++dst)
            {
                all.insert(all.end(), leaving[dst].begin(), leaving[dst].end());
            }
            std::sort(all.begin(), all.end());
            ps.eraseSorted(all);
        }

        comm_.exchange();

        const auto nFields = ParticleSet<T>::realFieldNames().size();
        for (int dst = 0; dst < P; ++dst)
        {
            auto& ps = locals_[dst];
            for (int src = 0; src < P; ++src)
            {
                if (src == dst) continue;
                auto ids    = comm_.receiveVector<std::uint64_t>(dst, src, "migrate-id");
                auto packed = comm_.receiveVector<T>(dst, src, "migrate");
                std::size_t k = ids.size();
                if (packed.size() != k * nFields)
                    throw std::runtime_error("migrate: size mismatch");
                std::size_t base = ps.size();
                ps.resize(base + k);
                auto fields = ps.realFields();
                for (std::size_t f = 0; f < nFields; ++f)
                {
                    for (std::size_t g = 0; g < k; ++g)
                        (*fields[f])[base + g] = packed[f * k + g];
                }
                for (std::size_t g = 0; g < k; ++g)
                    ps.id[base + g] = ids[g];
            }
            nLocal_[dst] = ps.size();
        }
        for (int r = 0; r < P; ++r)
            nLocal_[r] = locals_[r].size();
    }

    /// Replicated-tree gravity: allgather (x,y,z,m), run Barnes-Hut per rank
    /// for its local targets.
    void accumulateGravityReplicated(DistributedStepReport<T>& rep)
    {
        int P = comm_.size();
        std::vector<std::vector<T>> xs(P), ys(P), zs(P), ms(P);
        for (int r = 0; r < P; ++r)
        {
            xs[r].assign(locals_[r].x.begin(), locals_[r].x.end());
            ys[r].assign(locals_[r].y.begin(), locals_[r].y.end());
            zs[r].assign(locals_[r].z.begin(), locals_[r].z.end());
            ms[r].assign(locals_[r].m.begin(), locals_[r].m.end());
        }
        auto gx = comm_.allgatherv(xs);
        auto gy = comm_.allgatherv(ys);
        auto gz = comm_.allgatherv(zs);
        auto gm = comm_.allgatherv(ms);

        ParticleSet<T> rep_ps(gx.size());
        rep_ps.x = std::move(gx);
        rep_ps.y = std::move(gy);
        rep_ps.z = std::move(gz);
        rep_ps.m = std::move(gm);

        // identical tree parameters to the shared-memory driver so the two
        // drivers compute identical gravity (the tree structure depends only
        // on positions + params, not input order)
        Octree<T> tree;
        typename Octree<T>::BuildParams bp;
        bp.leafSize = cfg_.treeLeafSize;
        bp.curve    = cfg_.sfcCurve;
        tree.build(rep_ps.x, rep_ps.y, rep_ps.z, box_, bp);
        GravitySolver<T> solver;
        solver.prepare(tree, rep_ps, cfg_.gravity);

        Timer t;
        GravityStats stats;
        T pot = solver.accumulate(rep_ps, &stats);
        potentialEnergy_ = pot;
        double sec = t.elapsed() / P;
        for (int r = 0; r < P; ++r)
        {
            rep.ranks[r].phaseSeconds[int(Phase::I_SelfGravity)] += sec;
            if (log_) log_->record(r, Phase::I_SelfGravity, sec);
        }

        // scatter accelerations back to owners (same order as the gathers)
        std::size_t cursor = 0;
        for (int r = 0; r < P; ++r)
        {
            auto& ps = locals_[r];
            for (std::size_t i = 0; i < ps.size(); ++i, ++cursor)
            {
                ps.ax[i] += rep_ps.ax[cursor];
                ps.ay[i] += rep_ps.ay[cursor];
                ps.az[i] += rep_ps.az[cursor];
            }
        }
    }

    simmpi::Communicator comm_;
    Box<T> box_;
    Eos<T> eos_;
    SimulationConfig<T> cfg_;
    Kernel<T> kernel_;
    LaneKernel<T> laneKernel_; ///< Simd-backend lane tables, built once
    Propagator<T> pipeline_;
    PhaseEventLog* log_{nullptr};

    std::vector<ParticleSet<T>> locals_;
    std::vector<HaloMap> maps_;
    std::vector<std::size_t> nLocal_;

    // per-rank scratch between the phase segments
    std::vector<Octree<T>> rankTree_;
    std::vector<NeighborList<T>> rankNl_;
    std::vector<T> rankVsig_;
    std::vector<AwfWeightStore> rankAwf_; ///< per-rank persistent AWF weights

    T time_{0};
    std::uint64_t stepCount_{0};
    T potentialEnergy_{0};
    T lastMaxVsig_{0};
    bool firstStep_{true};
};

} // namespace sphexa

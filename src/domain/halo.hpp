#pragma once

/// \file halo.hpp
/// Halo (ghost) particle discovery and field refresh between simulated
/// ranks. The SPH interaction stencil is 2 h, so each rank needs copies of
/// all remote particles within 2 h_max (times a safety factor for the h
/// iteration) of its own particles.
///
/// Discovery is box-based and decomposition-agnostic: every rank publishes
/// the AABB of its local particles expanded by the interaction margin
/// (allgather), then each pair of ranks exchanges exactly the particles
/// falling inside the other's expanded box (minimum-image aware for
/// periodic axes). This is a superset of the exact halo — correct, with
/// modest over-communication, matching what production SPH codes do with
/// coarse halo descriptors.

#include <cstdint>
#include <string>
#include <vector>

#include "domain/box.hpp"
#include "parallel/comm.hpp"
#include "sph/particles.hpp"

namespace sphexa {

/// Ghost bookkeeping on one rank: ghosts are appended to the local set;
/// entry g came from sourceRank[g] at local index sourceIndex[g] there.
struct HaloMap
{
    std::vector<int>         sourceRank;
    std::vector<std::uint32_t> sourceIndex;
    /// Per remote rank: which of *my* local particles I sent as their ghosts.
    std::vector<std::vector<std::uint32_t>> sentTo; // [rank][k] = local index

    std::size_t ghostCount() const { return sourceRank.size(); }

    void clear(int nRanks)
    {
        sourceRank.clear();
        sourceIndex.clear();
        sentTo.assign(nRanks, {});
    }
};

/// Does point p fall within \p box expanded by \p margin (minimum-image on
/// the periodic axes of \p global)?
template<class T>
bool inExpandedBox(const Vec3<T>& p, const Box<T>& box, T margin, const Box<T>& global)
{
    return distanceSqToBox(p, box.lo, box.hi, global) <= margin * margin;
}

/// Exchange halos between all ranks.
///
/// \param comm     the simulated communicator
/// \param locals   per-rank particle sets (locals only; ghosts are appended)
/// \param maps     per-rank halo maps (filled)
/// \param global   the global box (periodicity)
/// \param margin   interaction margin (>= 2 max h, with safety factor)
template<class T>
void exchangeHalos(simmpi::Communicator& comm, std::vector<ParticleSet<T>>& locals,
                   std::vector<HaloMap>& maps, const Box<T>& global, T margin)
{
    int P = comm.size();

    // publish per-rank AABBs of local particles (allgather of 6 T's)
    std::vector<Box<T>> rankBoxes(P);
    {
        std::vector<std::vector<T>> contributions(P);
        for (int r = 0; r < P; ++r)
        {
            Box<T> b = computeBoundingBox<T>(locals[r].x, locals[r].y, locals[r].z, T(0));
            contributions[r] = {b.lo.x, b.lo.y, b.lo.z, b.hi.x, b.hi.y, b.hi.z};
        }
        auto flat = comm.allgatherv(contributions);
        for (int r = 0; r < P; ++r)
        {
            rankBoxes[r] = Box<T>{{flat[6 * r + 0], flat[6 * r + 1], flat[6 * r + 2]},
                                  {flat[6 * r + 3], flat[6 * r + 4], flat[6 * r + 5]}};
        }
    }

    // select and send halo candidates per (src, dst) pair
    const auto& fieldNames = ParticleSet<T>::realFieldNames();
    for (int src = 0; src < P; ++src)
    {
        maps[src].clear(P);
    }
    for (int src = 0; src < P; ++src)
    {
        for (int dst = 0; dst < P; ++dst)
        {
            if (dst == src) continue;
            std::vector<std::uint32_t> picks;
            const auto& ps = locals[src];
            for (std::size_t i = 0; i < ps.size(); ++i)
            {
                Vec3<T> p{ps.x[i], ps.y[i], ps.z[i]};
                if (inExpandedBox(p, rankBoxes[dst], margin, global))
                {
                    picks.push_back(std::uint32_t(i));
                }
            }
            maps[src].sentTo[dst] = picks;

            // pack all real fields gathered by picks, plus identities
            std::vector<T> packed;
            packed.reserve(picks.size() * fieldNames.size());
            auto fields = ps.realFields();
            for (auto* f : fields)
            {
                for (auto i : picks)
                    packed.push_back((*f)[i]);
            }
            std::vector<std::uint64_t> ids;
            ids.reserve(picks.size());
            for (auto i : picks)
                ids.push_back(ps.id[i]);
            comm.sendVector<T>(src, dst, "halo", packed);
            comm.sendVector<std::uint32_t>(src, dst, "halo-idx", picks);
            comm.sendVector<std::uint64_t>(src, dst, "halo-id", ids);
        }
    }

    comm.exchange();

    // receive and append ghosts
    for (int dst = 0; dst < P; ++dst)
    {
        auto& ps = locals[dst];
        for (int src = 0; src < P; ++src)
        {
            if (src == dst) continue;
            auto idx    = comm.receiveVector<std::uint32_t>(dst, src, "halo-idx");
            auto packed = comm.receiveVector<T>(dst, src, "halo");
            auto ids    = comm.receiveVector<std::uint64_t>(dst, src, "halo-id");
            std::size_t k = idx.size();
            if (packed.size() != k * fieldNames.size() || ids.size() != k)
            {
                throw std::runtime_error("halo: packed size mismatch");
            }
            std::size_t base = ps.size();
            ps.resize(base + k);
            auto fields = ps.realFields();
            for (std::size_t f = 0; f < fields.size(); ++f)
            {
                for (std::size_t g = 0; g < k; ++g)
                {
                    (*fields[f])[base + g] = packed[f * k + g];
                }
            }
            for (std::size_t g = 0; g < k; ++g)
            {
                ps.id[base + g] = ids[g];
                maps[dst].sourceRank.push_back(src);
                maps[dst].sourceIndex.push_back(idx[g]);
            }
        }
    }
}

/// Refresh a subset of fields on existing ghosts (after their owners
/// recomputed them, e.g. rho/p/c after the density + EOS phase). Ghost
/// layout is unchanged; only values are updated.
template<class T>
void refreshHaloFields(simmpi::Communicator& comm, std::vector<ParticleSet<T>>& locals,
                       const std::vector<HaloMap>& maps,
                       const std::vector<std::string>& fields,
                       const std::vector<std::size_t>& nLocal)
{
    int P = comm.size();
    for (int src = 0; src < P; ++src)
    {
        auto& ps = locals[src];
        for (int dst = 0; dst < P; ++dst)
        {
            if (dst == src) continue;
            const auto& picks = maps[src].sentTo[dst];
            std::vector<T> packed;
            packed.reserve(picks.size() * fields.size());
            for (const auto& fname : fields)
            {
                auto& f = ps.field(fname);
                for (auto i : picks)
                    packed.push_back(f[i]);
            }
            comm.sendVector<T>(src, dst, "halo-refresh", packed);
        }
    }
    comm.exchange();
    for (int dst = 0; dst < P; ++dst)
    {
        auto& ps = locals[dst];
        // ghost g of rank dst lives at index nLocal[dst] + g; collect the
        // ghost slots per source (robust to any append order)
        std::vector<std::vector<std::size_t>> slotsOf(P);
        for (std::size_t g = 0; g < maps[dst].ghostCount(); ++g)
        {
            slotsOf[maps[dst].sourceRank[g]].push_back(nLocal[dst] + g);
        }
        for (int src = 0; src < P; ++src)
        {
            if (src == dst) continue;
            auto packed = comm.receiveVector<T>(dst, src, "halo-refresh");
            const auto& slots = slotsOf[src];
            if (packed.size() != slots.size() * fields.size())
            {
                throw std::runtime_error("halo-refresh: size mismatch");
            }
            for (std::size_t f = 0; f < fields.size(); ++f)
            {
                auto& dstField = ps.field(fields[f]);
                for (std::size_t g = 0; g < slots.size(); ++g)
                {
                    dstField[slots[g]] = packed[f * slots.size() + g];
                }
            }
        }
    }
}

} // namespace sphexa

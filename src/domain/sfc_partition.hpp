#pragma once

/// \file sfc_partition.hpp
/// Space-filling-curve domain decomposition — ChaNGa's method (Table 3) and
/// the second method of Table 4.
///
/// Particles are ordered along a Morton or Hilbert curve and the curve is
/// cut into nRanks contiguous segments of equal work weight. Rank domains
/// are curve segments (not boxes); their spatial extent is the AABB of
/// their particles, which the halo layer uses.

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "domain/box.hpp"
#include "parallel/parallel_for.hpp"
#include "tree/hilbert.hpp"
#include "tree/morton.hpp"

namespace sphexa {

template<class T>
struct SfcPartition
{
    std::vector<int> assignment;       ///< owning rank per particle
    std::vector<T>   rankWeights;      ///< total weight per rank
    std::vector<std::uint64_t> splits; ///< key-space split points (nRanks-1)
};

/// Partition by SFC key into \p nRanks equal-weight contiguous segments.
template<class T>
SfcPartition<T> sfcPartition(std::span<const T> x, std::span<const T> y,
                             std::span<const T> z, std::span<const T> weights, int nRanks,
                             const Box<T>& domain, SfcCurve curve = SfcCurve::Morton)
{
    std::size_t n = x.size();
    std::vector<std::uint64_t> keys(n);
    parallelFor(n, [&](std::size_t i, std::size_t) {
        keys[i] = sfcKey(curve, Vec3<T>{x[i], y[i], z[i]}, domain);
    });

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t(0));
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });

    T total = T(0);
    for (std::size_t i = 0; i < n; ++i)
        total += weights[i];

    SfcPartition<T> out;
    out.assignment.assign(n, 0);
    out.rankWeights.assign(nRanks, T(0));

    T perRank = total / T(nRanks);
    int rank = 0;
    T acc = T(0);
    for (std::size_t k = 0; k < n; ++k)
    {
        std::size_t i = order[k];
        // advance to the next rank when this one has its share (keep the
        // last rank open so everything lands somewhere)
        while (rank < nRanks - 1 && acc >= T(rank + 1) * perRank)
        {
            out.splits.push_back(keys[i]);
            ++rank;
        }
        out.assignment[i] = rank;
        out.rankWeights[rank] += weights[i];
        acc += weights[i];
    }
    while (int(out.splits.size()) < nRanks - 1)
        out.splits.push_back(~std::uint64_t(0));
    return out;
}

} // namespace sphexa

#pragma once

/// \file box.hpp
/// Global simulation bounding box with optional per-axis periodicity.
///
/// The rotating square patch test is periodic in Z only (the 2D test layered
/// 100x in Z, Sec. 5.1 of the paper); the Evrard collapse is open in all
/// directions. The box therefore carries per-axis periodic flags and supplies
/// minimum-image displacement.

#include <algorithm>
#include <cmath>
#include <span>

#include "math/vec.hpp"

namespace sphexa {

template<class T>
struct Box
{
    Vec3<T> lo{};
    Vec3<T> hi{};
    bool pbc[3] = {false, false, false};

    Box() = default;

    Box(Vec3<T> lo_, Vec3<T> hi_, bool px = false, bool py = false, bool pz = false)
        : lo(lo_), hi(hi_), pbc{px, py, pz}
    {
    }

    /// Edge length along one axis / all three axes.
    T length(int axis) const { return hi[axis] - lo[axis]; }
    Vec3<T> lengths() const { return hi - lo; }
    /// Geometric center of the box.
    Vec3<T> center() const { return (lo + hi) * T(0.5); }

    T volume() const { return length(0) * length(1) * length(2); }

    /// True if p lies inside the half-open box [lo, hi).
    bool contains(const Vec3<T>& p) const
    {
        return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y && p.z >= lo.z &&
               p.z < hi.z;
    }

    /// Longest axis index (ORB split direction).
    int longestAxis() const
    {
        Vec3<T> l = lengths();
        if (l.x >= l.y && l.x >= l.z) return 0;
        if (l.y >= l.z) return 1;
        return 2;
    }

    /// Minimum-image displacement a - b respecting periodic axes.
    Vec3<T> delta(const Vec3<T>& a, const Vec3<T>& b) const
    {
        Vec3<T> d = a - b;
        for (int ax = 0; ax < 3; ++ax)
        {
            if (!pbc[ax]) continue;
            T L = length(ax);
            if (d[ax] > L / 2) d[ax] -= L;
            else if (d[ax] < -L / 2) d[ax] += L;
        }
        return d;
    }

    /// Wrap a point back into the box along periodic axes.
    Vec3<T> wrap(Vec3<T> p) const
    {
        for (int ax = 0; ax < 3; ++ax)
        {
            if (!pbc[ax]) continue;
            T L = length(ax);
            while (p[ax] >= hi[ax]) p[ax] -= L;
            while (p[ax] < lo[ax]) p[ax] += L;
        }
        return p;
    }

    /// Normalize a point to [0, 1)^3 within the box (SFC key input).
    Vec3<T> normalize(const Vec3<T>& p) const
    {
        Vec3<T> l = lengths();
        return {(p.x - lo.x) / l.x, (p.y - lo.y) / l.y, (p.z - lo.z) / l.z};
    }

    /// Grow the box on all sides by \p margin.
    Box grown(T margin) const
    {
        Box b = *this;
        b.lo -= Vec3<T>{margin, margin, margin};
        b.hi += Vec3<T>{margin, margin, margin};
        return b;
    }
};

/// Compute the tight bounding box of a point cloud, optionally expanded by a
/// relative safety margin so boundary particles stay strictly inside.
template<class T>
Box<T> computeBoundingBox(std::span<const T> x, std::span<const T> y, std::span<const T> z,
                          T relMargin = T(1e-6))
{
    Box<T> b{{T(0), T(0), T(0)}, {T(1), T(1), T(1)}};
    if (x.empty()) return b;
    Vec3<T> lo{x[0], y[0], z[0]};
    Vec3<T> hi = lo;
    for (std::size_t i = 1; i < x.size(); ++i)
    {
        lo = min(lo, Vec3<T>{x[i], y[i], z[i]});
        hi = max(hi, Vec3<T>{x[i], y[i], z[i]});
    }
    Vec3<T> span = hi - lo;
    T margin = relMargin * std::max({span.x, span.y, span.z, T(1e-30)});
    b.lo = lo - Vec3<T>{margin, margin, margin};
    b.hi = hi + Vec3<T>{margin, margin, margin};
    return b;
}

/// Squared distance between the axis-aligned boxes [alo, ahi] and
/// [blo, bhi], honoring periodic axes of the global box \p global. The
/// periodic images shift the first box by ±L, mirroring the point shifts of
/// distanceSqToBox, so for any point p inside [alo, ahi] the box-box
/// distance never exceeds distanceSqToBox(p, blo, bhi, global) — the
/// conservative-pruning property the cluster neighbor search relies on.
template<class T>
T aabbDistanceSq(const Vec3<T>& alo, const Vec3<T>& ahi, const Vec3<T>& blo,
                 const Vec3<T>& bhi, const Box<T>& global)
{
    auto gap = [](T lo1, T hi1, T lo2, T hi2) {
        if (hi1 < lo2) return lo2 - hi1;
        if (lo1 > hi2) return lo1 - hi2;
        return T(0);
    };
    T d2 = T(0);
    for (int ax = 0; ax < 3; ++ax)
    {
        T d = gap(alo[ax], ahi[ax], blo[ax], bhi[ax]);
        if (global.pbc[ax])
        {
            T L = global.length(ax);
            d   = std::min({d, gap(alo[ax] - L, ahi[ax] - L, blo[ax], bhi[ax]),
                            gap(alo[ax] + L, ahi[ax] + L, blo[ax], bhi[ax])});
        }
        d2 += d * d;
    }
    return d2;
}

/// Squared distance from point \p p to the axis-aligned box [blo, bhi],
/// honoring periodic axes of the global box \p global.
template<class T>
T distanceSqToBox(const Vec3<T>& p, const Vec3<T>& blo, const Vec3<T>& bhi,
                  const Box<T>& global)
{
    T d2 = T(0);
    for (int ax = 0; ax < 3; ++ax)
    {
        T d = T(0);
        if (p[ax] < blo[ax]) d = blo[ax] - p[ax];
        else if (p[ax] > bhi[ax]) d = p[ax] - bhi[ax];
        if (global.pbc[ax])
        {
            T L = global.length(ax);
            // alternative distance through the periodic wrap
            T dWrapLo = (p[ax] - L < blo[ax]) ? blo[ax] - (p[ax] - L) : T(0);
            if (p[ax] - L > bhi[ax]) dWrapLo = (p[ax] - L) - bhi[ax];
            T dWrapHi = (p[ax] + L < blo[ax]) ? blo[ax] - (p[ax] + L) : T(0);
            if (p[ax] + L > bhi[ax]) dWrapHi = (p[ax] + L) - bhi[ax];
            d = std::min({d, dWrapLo, dWrapHi});
        }
        d2 += d * d;
    }
    return d2;
}

} // namespace sphexa

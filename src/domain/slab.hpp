#pragma once

/// \file slab.hpp
/// "Straightforward" 1D slab decomposition — SPHYNX's method per Table 3.
/// Particles are sorted along one axis and cut into nRanks contiguous
/// equal-weight slabs. Each rank's halo spans its two full slab faces, so
/// the halo fraction grows linearly with the rank count — the classic
/// scalability limit of slab decompositions, and part of why the paper
/// found SPHYNX's efficiency dropping between 48 and 192 cores.

#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include "domain/box.hpp"

namespace sphexa {

/// Result of slabDecompose().
template<class T>
struct SlabPartition
{
    std::vector<int> assignment;  ///< owning rank per particle (input order)
    std::vector<T>   rankWeights; ///< total particle weight per rank
    int axis = 0;                 ///< split axis actually used (0/1/2)
};

/// Partition into equal-weight slabs along \p axis (default: the longest
/// axis of the domain).
template<class T>
SlabPartition<T> slabDecompose(std::span<const T> x, std::span<const T> y,
                               std::span<const T> z, std::span<const T> weights,
                               int nRanks, const Box<T>& domain, int axis = -1)
{
    if (axis < 0) axis = domain.longestAxis();
    const T* coord = axis == 0 ? x.data() : axis == 1 ? y.data() : z.data();

    std::size_t n = x.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t(0));
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return coord[a] < coord[b]; });

    T total = T(0);
    for (std::size_t i = 0; i < n; ++i)
        total += weights[i];

    SlabPartition<T> out;
    out.axis = axis;
    out.assignment.assign(n, 0);
    out.rankWeights.assign(nRanks, T(0));

    T perRank = total / T(nRanks);
    int rank = 0;
    T acc = T(0);
    for (std::size_t k = 0; k < n; ++k)
    {
        std::size_t i = order[k];
        while (rank < nRanks - 1 && acc >= T(rank + 1) * perRank)
        {
            ++rank;
        }
        out.assignment[i] = rank;
        out.rankWeights[rank] += weights[i];
        acc += weights[i];
    }
    return out;
}

} // namespace sphexa

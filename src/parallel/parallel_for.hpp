#pragma once

/// \file parallel_for.hpp
/// The ParallelFor execution layer: a persistent worker pool running
/// index-range loops under any SchedulingStrategy (parallel/schedulers.hpp).
///
/// This is the bridge between the self-scheduling layer of Table 4 ("DLB
/// with self-scheduling") and the SPH hot loops: instead of raw
/// `#pragma omp parallel for` pragmas, the phase kernels (density, IAD,
/// div/curl, momentum-energy, ...) call parallelFor() with a LoopPolicy
/// naming the strategy, and the pool executes the loop through a
/// LoopScheduler work queue while measuring per-worker busy time. The
/// measurements feed the POP load-balance metrics of each StepReport
/// (perf/pop_metrics.hpp), so the scheduling ablation runs on the actual
/// solver rather than a synthetic loop.
///
/// Three properties the SPH pipeline relies on:
///
///  - Persistence: WorkerPool threads are created once and reused by every
///    phase of every step (executeLoop() in schedulers.hpp spawns threads
///    per call; that harness remains for the synthetic ablation only).
///  - Determinism: every loop body dispatched here is accumulate-to-self
///    (iteration i writes only slot i) and reductions are exact min/max
///    over per-worker partials, so particle state is bitwise identical for
///    any pool size and any strategy — chunk boundaries never change
///    results (proven by tests/test_parallel_for.cpp).
///  - Adaptivity: AWF weights live in an AwfWeightStore owned by the
///    driver and referenced by each StepContext, so the measured
///    per-worker rates of step n shape the chunk sizes of step n+1.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "parallel/schedulers.hpp"
#include "perf/timer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace sphexa {

/// Accumulated measurement of the parallelFor executions of one phase:
/// per-worker busy seconds (the "useful time" of the POP methodology),
/// iteration counts, scheduling events and wall time.
struct PhaseLoadStats
{
    std::vector<double> workerBusySeconds;
    std::vector<std::size_t> workerIterations;
    std::size_t chunks = 0;     ///< scheduling events (overhead proxy)
    double wallSeconds = 0;     ///< summed wall time of the executions
    std::size_t invocations = 0;

    /// Merge one loop execution into the phase totals (a phase may run
    /// several loops, e.g. EOS + IAD inside phase F).
    void accumulate(std::span<const double> busy, std::span<const std::size_t> iters,
                    std::size_t loopChunks, double wall)
    {
        if (workerBusySeconds.size() < busy.size())
        {
            workerBusySeconds.resize(busy.size(), 0.0);
            workerIterations.resize(busy.size(), 0);
        }
        for (std::size_t w = 0; w < busy.size(); ++w)
        {
            workerBusySeconds[w] += busy[w];
            workerIterations[w] += iters[w];
        }
        chunks += loopChunks;
        wallSeconds += wall;
        ++invocations;
    }

    /// POP-style load balance of the phase: mean/max worker busy time.
    double loadBalance() const
    {
        double mx = 0, sum = 0;
        for (double t : workerBusySeconds)
        {
            mx = std::max(mx, t);
            sum += t;
        }
        return mx > 0 ? sum / (double(workerBusySeconds.size()) * mx) : 1.0;
    }
};

/// Blend persisted AWF weights toward the measured per-worker execution
/// rates (iterations per busy second), the adaptive step of Banicescu's
/// adaptive weighted factoring. Workers that received no work keep their
/// previous weight; the result is renormalized to mean 1 (the invariant
/// LoopScheduler expects). \p blend in (0, 1] controls convergence speed.
inline void adaptAwfWeights(std::vector<double>& weights,
                            std::span<const std::size_t> iterations,
                            std::span<const double> busySeconds, double blend = 0.5)
{
    std::size_t p = weights.size();
    if (iterations.size() != p || busySeconds.size() != p)
    {
        throw std::invalid_argument("adaptAwfWeights: size mismatch");
    }

    std::vector<double> rate(p, 0.0);
    double rateSum = 0;
    std::size_t measured = 0;
    for (std::size_t w = 0; w < p; ++w)
    {
        if (iterations[w] > 0 && busySeconds[w] > 0)
        {
            rate[w] = double(iterations[w]) / busySeconds[w];
            rateSum += rate[w];
            ++measured;
        }
    }
    if (measured == 0 || rateSum <= 0) return;

    double rateMean = rateSum / double(measured);
    for (std::size_t w = 0; w < p; ++w)
    {
        if (rate[w] > 0)
        {
            weights[w] = (1.0 - blend) * weights[w] + blend * rate[w] / rateMean;
        }
    }
    double wsum = 0;
    for (double w : weights)
        wsum += w;
    if (wsum > 0)
    {
        for (double& w : weights)
            w = w * double(p) / wsum;
    }
}

/// Per-phase persistent AWF weight vectors, keyed by phase index. Owned by
/// a driver (one per Simulation) and referenced by each StepContext it
/// builds, so the weights survive across steps while a freshly constructed
/// context starts from equal weights. reset() returns every phase to the
/// equal-weight state.
class AwfWeightStore
{
public:
    /// The weight vector of phase \p phase (empty until first adapted;
    /// parallelFor initializes an empty vector to equal weights). The
    /// returned reference stays valid across later weightsFor() calls
    /// (node-stable map), so a LoopPolicy may hold it for several loops.
    std::vector<double>& weightsFor(std::size_t phase) { return weights_[phase]; }

    void reset() { weights_.clear(); }

    std::size_t phaseCount() const { return weights_.size(); }

private:
    std::map<std::size_t, std::vector<double>> weights_;
};

/// The persistent worker pool. The process-wide instance() is created on
/// first use and reused by every parallelFor call; the calling thread
/// participates as worker 0, so a pool of size 1 executes loops inline
/// with zero synchronization. resize() must not be called while a loop is
/// in flight (the SPH drivers never nest parallelFor calls).
class WorkerPool
{
public:
    static WorkerPool& instance()
    {
        static WorkerPool pool;
        return pool;
    }

    /// A standalone pool of \p n workers (including the calling thread).
    /// parallelFor always uses instance(); standalone pools exist so the
    /// lifecycle tests (and TSan) can exercise construct/run/destroy cycles
    /// without touching the process-wide pool.
    explicit WorkerPool(std::size_t n) : nWorkers_(n)
    {
        if (n == 0) throw std::invalid_argument("WorkerPool: size must be positive");
        startThreads();
    }

    /// Total workers, including the calling thread.
    std::size_t size() const { return nWorkers_; }

    /// The pool size implied by the current OpenMP thread budget
    /// (`OMP_NUM_THREADS` / omp_set_num_threads). instance() starts at this
    /// size; callers that change the budget at runtime can follow it with
    /// `resize(WorkerPool::defaultSize())`.
    static std::size_t defaultSize()
    {
#ifdef _OPENMP
        int n = omp_get_max_threads();
        return n > 0 ? std::size_t(n) : 1;
#else
        if (const char* env = std::getenv("OMP_NUM_THREADS"))
        {
            long n = std::strtol(env, nullptr, 10);
            if (n > 0) return std::size_t(n);
        }
        unsigned hc = std::thread::hardware_concurrency();
        return hc > 0 ? hc : 1;
#endif
    }

    void resize(std::size_t n)
    {
        if (n == 0) throw std::invalid_argument("WorkerPool: size must be positive");
        if (n == nWorkers_) return;
        stopThreads();
        nWorkers_ = n;
        startThreads();
    }

    /// Run job(worker) once per worker; returns when all workers finished.
    /// Not reentrant: a job must not itself call run().
    void run(const std::function<void(std::size_t)>& job)
    {
        if (nWorkers_ == 1)
        {
            job(0);
            return;
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            job_ = &job;
            ++generation_;
            pending_ = nWorkers_ - 1;
        }
        cv_.notify_all();
        job(0);
        std::unique_lock<std::mutex> lock(mu_);
        doneCv_.wait(lock, [&] { return pending_ == 0; });
        job_ = nullptr;
    }

    ~WorkerPool() { stopThreads(); }

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

private:
    WorkerPool() : WorkerPool(defaultSize()) {}

    void startThreads()
    {
        stop_ = false;
        // capture the generation now (no job can be in flight during
        // start-up), so a thread that is slow to reach its wait cannot
        // mistake the first published job for one it already ran
        const std::uint64_t gen = generation_;
        threads_.reserve(nWorkers_ - 1);
        for (std::size_t w = 1; w < nWorkers_; ++w)
        {
            threads_.emplace_back([this, w, gen] { workerMain(w, gen); });
        }
    }

    void stopThreads()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto& t : threads_)
            t.join();
        threads_.clear();
    }

    void workerMain(std::size_t id, std::uint64_t seen)
    {
        std::unique_lock<std::mutex> lock(mu_);
        while (true)
        {
            cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
            if (stop_) return;
            seen = generation_;
            const auto* job = job_;
            lock.unlock();
            (*job)(id);
            lock.lock();
            if (--pending_ == 0) doneCv_.notify_all();
        }
    }

    std::size_t nWorkers_;
    std::vector<std::thread> threads_;
    std::mutex mu_;
    std::condition_variable cv_, doneCv_;
    const std::function<void(std::size_t)>* job_{nullptr};
    std::uint64_t generation_{0};
    std::size_t pending_{0};
    bool stop_{false};
};

/// How one parallelFor execution schedules its iterations and where it
/// reports its measurements. Default: static chunking, no accounting —
/// the drop-in equivalent of `#pragma omp parallel for schedule(static)`.
struct LoopPolicy
{
    SchedulingStrategy strategy = SchedulingStrategy::Static;
    /// Persistent AWF weights (from an AwfWeightStore); read before the
    /// loop and adapted from the measured rates afterwards. Ignored for
    /// the non-adaptive strategies.
    std::vector<double>* awfWeights = nullptr;
    /// Busy-time accounting sink; one phase accumulates all its loops here.
    PhaseLoadStats* stats = nullptr;
};

namespace detail {

/// The contiguous block worker w owns under STATIC chunking (matches
/// chunkSequence(n, p, Static): first n%p workers get one extra).
inline std::pair<std::size_t, std::size_t> staticBlock(std::size_t n, std::size_t p,
                                                       std::size_t w)
{
    std::size_t base = n / p, extra = n % p;
    std::size_t begin = w * base + std::min(w, extra);
    std::size_t count = base + (w < extra ? 1 : 0);
    return {begin, begin + count};
}

} // namespace detail

/// Cache-line-padded per-worker scratch slot for the exact-reduction idiom:
/// adjacent workers' partials never share a line, so the per-iteration
/// read-modify-write of the hot loops does not ping-pong cache lines.
template<class T>
struct alignas(64) WorkerSlot
{
    T value{};
};

/// Run body(i, worker) for every i in [0, n) on the persistent pool under
/// the policy's scheduling strategy, measuring per-worker busy time when
/// anyone will read it (a stats sink is attached or AWF needs rates).
///
/// The body must be safe to run concurrently for distinct i and must not
/// depend on which worker executes which iteration except through
/// per-worker scratch slots (the exact-reduction idiom: each worker folds
/// into slot `worker` — use WorkerSlot — and the caller combines the slots
/// afterwards).
template<class Body>
inline void parallelFor(std::size_t n, Body&& body, const LoopPolicy& policy = {})
{
    auto& pool = WorkerPool::instance();
    std::size_t p = pool.size();
    if (n == 0) return;

    const bool adaptive = policy.strategy ==
                              SchedulingStrategy::AdaptiveWeightedFactoring &&
                          policy.awfWeights != nullptr;
    const bool measure = policy.stats != nullptr || adaptive;

    // unmeasured paths: no per-chunk timing, no accounting allocations
    if (!measure)
    {
        if (policy.strategy == SchedulingStrategy::Static)
        {
            pool.run([&](std::size_t w) {
                auto [b, e] = detail::staticBlock(n, p, w);
                for (std::size_t i = b; i < e; ++i)
                    body(i, w);
            });
        }
        else
        {
            LoopScheduler sched(n, p, policy.strategy);
            pool.run([&](std::size_t w) {
                while (true)
                {
                    auto [b, e] = sched.next(w);
                    if (b == e) break;
                    for (std::size_t i = b; i < e; ++i)
                        body(i, w);
                }
            });
        }
        return;
    }

    Timer wall;
    std::vector<double> busy(p, 0.0);
    std::vector<std::size_t> iters(p, 0);
    std::size_t chunks = 0;

    if (policy.strategy == SchedulingStrategy::Static)
    {
        // fast path: precomputed contiguous blocks, no work queue
        pool.run([&](std::size_t w) {
            auto [b, e] = detail::staticBlock(n, p, w);
            if (b == e) return;
            Timer t;
            for (std::size_t i = b; i < e; ++i)
                body(i, w);
            busy[w] = t.elapsed();
            iters[w] = e - b;
        });
        chunks = std::min(n, p);
    }
    else
    {
        std::vector<double> weights;
        if (adaptive)
        {
            if (policy.awfWeights->size() != p) policy.awfWeights->assign(p, 1.0);
            weights = *policy.awfWeights;
        }
        LoopScheduler sched(n, p, policy.strategy, std::move(weights));
        pool.run([&](std::size_t w) {
            Timer t;
            double total = 0;
            std::size_t done = 0;
            while (true)
            {
                auto [b, e] = sched.next(w);
                if (b == e) break;
                t.reset();
                for (std::size_t i = b; i < e; ++i)
                    body(i, w);
                total += t.elapsed();
                done += e - b;
            }
            busy[w] = total;
            iters[w] = done;
        });
        chunks = sched.chunksHanded();
        if (adaptive) adaptAwfWeights(*policy.awfWeights, iters, busy);
    }

    if (policy.stats) policy.stats->accumulate(busy, iters, chunks, wall.elapsed());
}

/// Number of per-worker scratch slots a caller needs for the exact-reduction
/// idiom with the current pool.
inline std::size_t parallelForWorkers() { return WorkerPool::instance().size(); }

} // namespace sphexa

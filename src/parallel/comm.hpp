#pragma once

/// \file comm.hpp
/// simmpi: an in-process message-passing substrate with the MPI semantics
/// the mini-app needs (point-to-point exchange, collectives, traffic
/// accounting).
///
/// Substitution note (see docs/DESIGN.md): the paper runs MPI over Cray Aries /
/// Intel Omni-Path fabrics; this environment has no MPI runtime, so ranks
/// are simulated in-process and executed BSP-style: a superstep runs every
/// rank's compute phase, then exchange() routes all queued messages
/// atomically. All domain-decomposition code (halo exchange, particle
/// migration, global reductions) is written against this interface exactly
/// as it would be against MPI, and every message's size is accounted so the
/// network model (perf/netmodel.hpp) can convert traffic into modeled
/// communication time. Porting to real MPI is a transport swap, not a
/// redesign: the call surface (send/receive, allreduce min/max/sum,
/// allgatherv, barrier) maps directly onto MPI's.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace sphexa::simmpi {

/// Per-rank traffic counters, reset via resetTraffic().
struct Traffic
{
    std::size_t messagesSent = 0;
    std::size_t bytesSent    = 0;
    std::size_t collectives  = 0; ///< collective operations participated in
};

/// A BSP-style communicator over \p size simulated ranks.
///
/// Usage pattern (one superstep):
///   for r in 0..P: compute(r); comm.send(r, dest, tag, data...);
///   comm.exchange();
///   for r in 0..P: data = comm.receive(r, src, tag); ...
class Communicator
{
public:
    explicit Communicator(int size) : size_(validatedSize(size)), traffic_(size_) {}

    int size() const { return size_; }

    // --- point-to-point ------------------------------------------------------

    /// Queue a message from rank \p from to rank \p to under \p tag.
    /// Visible to the receiver only after the next exchange().
    void send(int from, int to, const std::string& tag, std::vector<std::byte> data)
    {
        checkRank(from);
        checkRank(to);
        traffic_[from].messagesSent += 1;
        traffic_[from].bytesSent += data.size();
        pending_[{to, from, tag}].push_back(std::move(data));
    }

    /// Typed convenience: send a vector of trivially-copyable T.
    template<class T>
    void sendVector(int from, int to, const std::string& tag, std::span<const T> v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::vector<std::byte> buf(v.size() * sizeof(T));
        std::memcpy(buf.data(), v.data(), buf.size());
        send(from, to, tag, std::move(buf));
    }

    /// Deliver all queued messages (the BSP superstep boundary).
    void exchange()
    {
        for (auto& [key, msgs] : pending_)
        {
            auto& inbox = delivered_[key];
            for (auto& m : msgs)
                inbox.push_back(std::move(m));
        }
        pending_.clear();
    }

    /// Pop the oldest delivered message to \p to from \p from under \p tag.
    /// Throws if none is available (protocol error in the caller).
    std::vector<std::byte> receive(int to, int from, const std::string& tag)
    {
        checkRank(from);
        checkRank(to);
        auto it = delivered_.find({to, from, tag});
        if (it == delivered_.end() || it->second.empty())
        {
            throw std::runtime_error("simmpi: no message for rank " + std::to_string(to) +
                                     " from " + std::to_string(from) + " tag " + tag);
        }
        auto msg = std::move(it->second.front());
        it->second.erase(it->second.begin());
        return msg;
    }

    /// Does rank \p to have a delivered message from \p from under \p tag?
    bool hasMessage(int to, int from, const std::string& tag) const
    {
        auto it = delivered_.find({to, from, tag});
        return it != delivered_.end() && !it->second.empty();
    }

    /// Typed receive matching sendVector.
    template<class T>
    std::vector<T> receiveVector(int to, int from, const std::string& tag)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        auto buf = receive(to, from, tag);
        if (buf.size() % sizeof(T)) throw std::runtime_error("simmpi: size mismatch");
        std::vector<T> v(buf.size() / sizeof(T));
        std::memcpy(v.data(), buf.data(), buf.size());
        return v;
    }

    // --- collectives -----------------------------------------------------------
    // BSP-immediate: each rank contributes one value; the result every rank
    // would observe is returned. Traffic is accounted with the standard
    // recursive-doubling volume (log2(P) rounds).

    template<class T>
    T allreduceSum(std::span<const T> contributions)
    {
        accountCollective(sizeof(T));
        T s{};
        for (const T& c : contributions)
            s += c;
        return s;
    }

    template<class T>
    T allreduceMin(std::span<const T> contributions)
    {
        accountCollective(sizeof(T));
        T m = contributions[0];
        for (const T& c : contributions)
            m = c < m ? c : m;
        return m;
    }

    template<class T>
    T allreduceMax(std::span<const T> contributions)
    {
        accountCollective(sizeof(T));
        T m = contributions[0];
        for (const T& c : contributions)
            m = c > m ? c : m;
        return m;
    }

    /// Every rank contributes a vector; all ranks observe the concatenation.
    template<class T>
    std::vector<T> allgatherv(const std::vector<std::vector<T>>& contributions)
    {
        std::size_t total = 0;
        for (const auto& c : contributions)
            total += c.size() * sizeof(T);
        accountCollective(total / std::max<std::size_t>(1, size_));
        std::vector<T> out;
        out.reserve(total / sizeof(T));
        for (const auto& c : contributions)
            out.insert(out.end(), c.begin(), c.end());
        return out;
    }

    /// Barrier: pure accounting (BSP supersteps are implicit barriers).
    void barrier() { accountCollective(0); }

    // --- traffic accounting -------------------------------------------------------

    const Traffic& traffic(int rank) const { return traffic_[rank]; }

    Traffic totalTraffic() const
    {
        Traffic t;
        for (const auto& r : traffic_)
        {
            t.messagesSent += r.messagesSent;
            t.bytesSent += r.bytesSent;
            t.collectives += r.collectives;
        }
        return t;
    }

    void resetTraffic()
    {
        for (auto& t : traffic_)
            t = Traffic{};
    }

    /// Any undelivered or unconsumed messages? (test hygiene)
    bool quiescent() const
    {
        if (!pending_.empty()) return false;
        for (const auto& [k, v] : delivered_)
        {
            if (!v.empty()) return false;
        }
        return true;
    }

private:
    static int validatedSize(int size)
    {
        if (size <= 0) throw std::invalid_argument("Communicator: size must be positive");
        return size;
    }

    void checkRank(int r) const
    {
        if (r < 0 || r >= size_) throw std::out_of_range("simmpi: bad rank");
    }

    void accountCollective(std::size_t bytesPerRound)
    {
        int rounds = 0;
        for (int p = 1; p < size_; p <<= 1)
            ++rounds;
        for (auto& t : traffic_)
        {
            t.collectives += 1;
            t.messagesSent += rounds;
            t.bytesSent += rounds * bytesPerRound;
        }
    }

    using Key = std::tuple<int, int, std::string>; // (to, from, tag)

    int size_;
    std::map<Key, std::vector<std::vector<std::byte>>> pending_;
    std::map<Key, std::vector<std::vector<std::byte>>> delivered_;
    std::vector<Traffic> traffic_;
};

} // namespace sphexa::simmpi

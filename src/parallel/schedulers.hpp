#pragma once

/// \file schedulers.hpp
/// Dynamic loop self-scheduling: the load-balancing layer of Table 4
/// ("DLB with self-scheduling per X, Y, Z level"), implementing the
/// techniques of the paper's load-balancing references:
///
///  - STATIC     : one contiguous block per worker
///  - SS         : pure self-scheduling, chunk = 1 (max balance, max overhead)
///  - GSS        : guided self-scheduling, chunk = remaining/P
///                 (Polychronopoulos & Kuck 1987)
///  - TSS        : trapezoid self-scheduling, linearly decreasing chunks
///                 (Tzen & Ni 1993)
///  - FAC        : factoring, batches of P chunks of remaining/(2P)
///                 (Hummel, Schonberg & Flynn / ref [27])
///  - AWF        : adaptive weighted factoring, FAC with per-worker weights
///                 adapted to measured execution rates (Banicescu et al.,
///                 ref [3])
///
/// chunkSequence() is the pure chunking rule (unit-testable against the
/// published sequences); LoopScheduler is the thread-safe work queue used in
/// parallel loops; executeLoop() is a measurement harness that runs a loop
/// under a strategy and reports per-worker busy times for the synthetic
/// scheduling ablation (bench_schedulers). The production SPH loops drain
/// the same LoopScheduler through the persistent worker pool of
/// parallel/parallel_for.hpp.

#include <atomic>
#include <cmath>
#include <cstddef>
#include <functional>
#include <mutex>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <vector>

#include "perf/timer.hpp"

namespace sphexa {

enum class SchedulingStrategy
{
    Static,
    SelfScheduling,
    Guided,
    Trapezoid,
    Factoring,
    AdaptiveWeightedFactoring,
};

constexpr std::string_view schedulingName(SchedulingStrategy s)
{
    switch (s)
    {
        case SchedulingStrategy::Static: return "STATIC";
        case SchedulingStrategy::SelfScheduling: return "SS";
        case SchedulingStrategy::Guided: return "GSS";
        case SchedulingStrategy::Trapezoid: return "TSS";
        case SchedulingStrategy::Factoring: return "FAC";
        case SchedulingStrategy::AdaptiveWeightedFactoring: return "AWF";
    }
    return "?";
}

/// The deterministic chunk-size sequence a strategy produces for n
/// iterations on p workers (worker identity ignored; AWF reduces to FAC
/// with equal weights here). Used by tests and for analysis.
inline std::vector<std::size_t> chunkSequence(std::size_t n, std::size_t p,
                                              SchedulingStrategy s)
{
    if (p == 0) throw std::invalid_argument("chunkSequence: p must be positive");
    std::vector<std::size_t> chunks;
    std::size_t remaining = n;
    switch (s)
    {
        case SchedulingStrategy::Static:
        {
            std::size_t base = n / p, extra = n % p;
            for (std::size_t w = 0; w < p && remaining > 0; ++w)
            {
                std::size_t c = base + (w < extra ? 1 : 0);
                if (c == 0) continue;
                chunks.push_back(c);
                remaining -= c;
            }
            break;
        }
        case SchedulingStrategy::SelfScheduling:
        {
            chunks.assign(n, 1);
            break;
        }
        case SchedulingStrategy::Guided:
        {
            while (remaining > 0)
            {
                std::size_t c = std::max<std::size_t>(1, remaining / p);
                chunks.push_back(c);
                remaining -= c;
            }
            break;
        }
        case SchedulingStrategy::Trapezoid:
        {
            // first chunk f = n/(2p), last chunk l = 1, linear decrement
            std::size_t f = std::max<std::size_t>(1, n / (2 * p));
            std::size_t l = 1;
            std::size_t steps = (2 * n) / (f + l); // number of chunks N
            double delta = steps > 1 ? double(f - l) / double(steps - 1) : 0.0;
            double cur = double(f);
            while (remaining > 0)
            {
                auto c = std::min<std::size_t>(remaining,
                                               std::max<std::size_t>(1, std::size_t(cur)));
                chunks.push_back(c);
                remaining -= c;
                cur = std::max(1.0, cur - delta);
            }
            break;
        }
        case SchedulingStrategy::Factoring:
        case SchedulingStrategy::AdaptiveWeightedFactoring:
        {
            while (remaining > 0)
            {
                std::size_t batchChunk = std::max<std::size_t>(
                    1, std::size_t(std::ceil(double(remaining) / double(2 * p))));
                for (std::size_t w = 0; w < p && remaining > 0; ++w)
                {
                    std::size_t c = std::min(batchChunk, remaining);
                    chunks.push_back(c);
                    remaining -= c;
                }
            }
            break;
        }
    }
    return chunks;
}

/// Thread-safe self-scheduling work queue over the iteration space [0, n).
class LoopScheduler
{
public:
    LoopScheduler(std::size_t n, std::size_t workers, SchedulingStrategy strategy,
                  std::vector<double> workerWeights = {})
        : n_(n), p_(workers), strategy_(strategy), weights_(std::move(workerWeights))
    {
        if (p_ == 0) throw std::invalid_argument("LoopScheduler: workers must be positive");
        if (weights_.empty()) weights_.assign(p_, 1.0);
        if (weights_.size() != p_)
            throw std::invalid_argument("LoopScheduler: weight count mismatch");
        double wsum = std::accumulate(weights_.begin(), weights_.end(), 0.0);
        for (auto& w : weights_)
            w = w * double(p_) / wsum; // normalize to mean 1
    }

    /// Claim the next chunk for \p worker. Returns {begin, end}; begin==end
    /// signals exhaustion.
    std::pair<std::size_t, std::size_t> next(std::size_t worker)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (cursor_ >= n_) return {n_, n_};
        std::size_t remaining = n_ - cursor_;
        std::size_t c = 1;
        switch (strategy_)
        {
            case SchedulingStrategy::Static:
                c = std::max<std::size_t>(1, n_ / p_ + (handed_ < n_ % p_ ? 1 : 0));
                break;
            case SchedulingStrategy::SelfScheduling: c = 1; break;
            case SchedulingStrategy::Guided:
                c = std::max<std::size_t>(1, remaining / p_);
                break;
            case SchedulingStrategy::Trapezoid:
            {
                if (tssFirst_ == 0)
                {
                    tssFirst_ = std::max<std::size_t>(1, n_ / (2 * p_));
                    std::size_t steps = (2 * n_) / (tssFirst_ + 1);
                    tssDelta_ = steps > 1 ? double(tssFirst_ - 1) / double(steps - 1) : 0.0;
                    tssCur_   = double(tssFirst_);
                }
                c = std::max<std::size_t>(1, std::size_t(tssCur_));
                tssCur_ = std::max(1.0, tssCur_ - tssDelta_);
                break;
            }
            case SchedulingStrategy::Factoring:
            {
                if (batchLeft_ == 0)
                {
                    batchChunk_ = std::max<std::size_t>(
                        1, std::size_t(std::ceil(double(remaining) / double(2 * p_))));
                    batchLeft_ = p_;
                }
                c = batchChunk_;
                --batchLeft_;
                break;
            }
            case SchedulingStrategy::AdaptiveWeightedFactoring:
            {
                if (batchLeft_ == 0)
                {
                    batchChunk_ = std::max<std::size_t>(
                        1, std::size_t(std::ceil(double(remaining) / double(2 * p_))));
                    batchLeft_ = p_;
                }
                c = std::max<std::size_t>(
                    1, std::size_t(std::round(double(batchChunk_) * weights_[worker])));
                --batchLeft_;
                break;
            }
        }
        c = std::min(c, remaining);
        std::size_t begin = cursor_;
        cursor_ += c;
        ++handed_;
        return {begin, begin + c};
    }

    std::size_t chunksHanded() const { return handed_; }

    /// AWF weight adaptation: new weights proportional to measured rates
    /// (iterations per second); call between loop executions.
    void adaptWeights(std::span<const double> rates)
    {
        if (rates.size() != p_) throw std::invalid_argument("adaptWeights: size mismatch");
        double sum = 0;
        for (double r : rates)
            sum += r;
        if (sum <= 0) return;
        for (std::size_t w = 0; w < p_; ++w)
        {
            weights_[w] = rates[w] * double(p_) / sum;
        }
        cursor_ = 0;
        handed_ = 0;
        batchLeft_ = 0;
        tssFirst_ = 0;
    }

    const std::vector<double>& weights() const { return weights_; }

    void reset()
    {
        std::lock_guard<std::mutex> lock(mu_);
        cursor_ = 0;
        handed_ = 0;
        batchLeft_ = 0;
        tssFirst_ = 0;
    }

private:
    std::size_t n_, p_;
    SchedulingStrategy strategy_;
    std::vector<double> weights_;

    std::mutex mu_;
    std::size_t cursor_{0};
    std::size_t handed_{0};
    std::size_t batchChunk_{0};
    std::size_t batchLeft_{0};
    std::size_t tssFirst_{0};
    double tssDelta_{0};
    double tssCur_{0};
};

/// Result of one measured loop execution.
struct LoopExecutionReport
{
    std::vector<double> workerBusySeconds; ///< per-worker useful time
    std::size_t chunks = 0;                ///< scheduling events (overhead proxy)
    double wallSeconds = 0;

    /// POP-style load balance of the execution: mean/max busy time.
    double loadBalance() const
    {
        double mx = 0, sum = 0;
        for (double t : workerBusySeconds)
        {
            mx = std::max(mx, t);
            sum += t;
        }
        return mx > 0 ? sum / (double(workerBusySeconds.size()) * mx) : 1.0;
    }
};

/// Run body(i) for i in [0, n) on \p workers std::threads under the given
/// strategy, measuring per-worker busy time. The harness of the synthetic
/// scheduling ablation only — it spawns fresh threads per call; production
/// loops go through parallelFor() and its persistent WorkerPool instead.
inline LoopExecutionReport executeLoop(std::size_t n, std::size_t workers,
                                       SchedulingStrategy strategy,
                                       const std::function<void(std::size_t)>& body,
                                       std::vector<double> weights = {})
{
    LoopScheduler sched(n, workers, strategy, std::move(weights));
    LoopExecutionReport rep;
    rep.workerBusySeconds.assign(workers, 0.0);

    Timer wall;
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
    {
        threads.emplace_back([&, w] {
            Timer busy;
            double total = 0;
            while (true)
            {
                auto [b, e] = sched.next(w);
                if (b == e) break;
                busy.reset();
                for (std::size_t i = b; i < e; ++i)
                    body(i);
                total += busy.elapsed();
            }
            rep.workerBusySeconds[w] = total;
        });
    }
    for (auto& t : threads)
        t.join();
    rep.wallSeconds = wall.elapsed();
    rep.chunks = sched.chunksHanded();
    return rep;
}

} // namespace sphexa

#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full CTest suite.
# The command below is the ROADMAP.md tier-1 command, verbatim; any red
# test fails the script (set -e + ctest's non-zero exit on failure).
set -euo pipefail

cd "$(dirname "$0")/.."

rm -rf build

cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j

#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the tier1-labeled CTest
# suites (all GoogleTest suites + the quickstart smoke test carry the
# label; see tests/CMakeLists.txt). Any red test fails the script
# (set -e + ctest's non-zero exit on failure).
set -euo pipefail

cd "$(dirname "$0")/.."

rm -rf build

cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -L tier1 --no-tests=error -j

#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the tier1-labeled CTest
# suites (all GoogleTest suites, the lint checks, and the quickstart smoke
# test carry the label; see tests/CMakeLists.txt). Any red test fails the
# script (set -e + ctest's non-zero exit on failure).
#
# Usage: ci/run_tier1.sh [--clean]
#   --clean   wipe the build tree first; default is an incremental rebuild
#             so local iteration (and CI's ccache leg) reuses prior objects
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--clean" ]]; then
    rm -rf build
fi

cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -L tier1 --no-tests=error -j

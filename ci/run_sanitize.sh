#!/usr/bin/env bash
# Sanitizer verification: build the tier2-sanitize test set under one
# sanitizer and run it. Any report fails the run: TSan/ASan exit non-zero
# on findings, UBSan is compiled with -fno-sanitize-recover.
#
# Usage: ci/run_sanitize.sh <address|undefined|thread|address+undefined>
#
# The build tree is build-san-<mode> (kept apart from the plain tier-1
# tree). GoogleTest is built from source inside the sanitized tree so the
# test framework itself is instrumented — see the SPHEXA_SANITIZE branch in
# CMakeLists.txt. Suppression files live in tools/sanitize/ and are
# intentionally empty: fix findings, don't suppress them.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-}"
case "$MODE" in
    address|undefined|thread|address+undefined) ;;
    *)
        echo "usage: $0 <address|undefined|thread|address+undefined>" >&2
        exit 2
        ;;
esac

BUILD="build-san-${MODE//+/-}"
SUPP="$PWD/tools/sanitize"

# halt_on_error so the first report fails the test instead of scrolling by;
# second_deadlock_stack gives both lock orders on TSan deadlock reports
export TSAN_OPTIONS="suppressions=$SUPP/tsan.supp halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"
export ASAN_OPTIONS="suppressions=$SUPP/asan.supp detect_leaks=1 ${ASAN_OPTIONS:-}"
export LSAN_OPTIONS="suppressions=$SUPP/lsan.supp ${LSAN_OPTIONS:-}"
export UBSAN_OPTIONS="suppressions=$SUPP/ubsan.supp print_stacktrace=1 ${UBSAN_OPTIONS:-}"

# Debug-with-O1: sanitizers need symbols and un-elided frames, -O1 keeps the
# golden gallery runtime tolerable under instrumentation
cmake -B "$BUILD" -S . \
    -DSPHEXA_SANITIZE="$MODE" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS_DEBUG="-O1 -g" \
    -DSPHEXA_BUILD_BENCHMARKS=OFF \
    -DSPHEXA_BUILD_EXAMPLES=OFF \
    -DSPHEXA_WERROR="${SPHEXA_WERROR:-OFF}"

# only the three suites the tier2-sanitize label selects
cmake --build "$BUILD" -j --target test_parallel_for test_cluster_list test_golden

ctest --test-dir "$BUILD" --output-on-failure -L tier2-sanitize --no-tests=error

#!/usr/bin/env bash
# clang-tidy driver over src/ (config in .clang-tidy at the repo root).
#
# The library is header-only, so headers are checked through the TUs that
# include them (tests/, bench/, examples/, src/core/version.cpp) with
# HeaderFilterRegex selecting src/. Requires a configured build tree with
# compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default).
#
# Usage:
#   tools/run_clang_tidy.sh [-B build] [--changed [BASE]] [--] [extra tidy args]
#     -B DIR       build tree holding compile_commands.json (default: build)
#     --changed    only check TUs touching files changed vs BASE
#                  (default BASE: origin/main); used by the CI lint job
#
# Exit: 0 clean or skipped (clang-tidy not installed), 1 findings, 2 usage.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD=build
CHANGED=""
BASE="origin/main"
while [[ $# -gt 0 ]]; do
    case "$1" in
        -B) BUILD="$2"; shift 2 ;;
        --changed)
            CHANGED=1
            if [[ $# -gt 1 && "$2" != -* ]]; then BASE="$2"; shift; fi
            shift ;;
        --) shift; break ;;
        *) echo "usage: $0 [-B build] [--changed [BASE]]" >&2; exit 2 ;;
    esac
done

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "run_clang_tidy: $TIDY not installed - SKIP (CI runs the real pass)"
    exit 0
fi

if [[ ! -f "$BUILD/compile_commands.json" ]]; then
    echo "run_clang_tidy: $BUILD/compile_commands.json missing - configure first:" >&2
    echo "  cmake -B $BUILD -S ." >&2
    exit 2
fi

# TU set: every .cpp the build knows about.
mapfile -t TUS < <(python3 - "$BUILD/compile_commands.json" <<'EOF'
import json, sys
for e in json.load(open(sys.argv[1])):
    f = e["file"]
    if "_deps" not in f and "/_gtest/" not in f:
        print(f)
EOF
)

if [[ -n "$CHANGED" ]]; then
    mapfile -t DIFF < <(git diff --name-only "$BASE" -- '*.hpp' '*.cpp' || true)
    if [[ ${#DIFF[@]} -eq 0 ]]; then
        echo "run_clang_tidy: no C++ changes vs $BASE - nothing to check"
        exit 0
    fi
    # keep TUs that are changed themselves or textually include a changed header
    FILTERED=()
    for tu in "${TUS[@]}"; do
        keep=""
        for d in "${DIFF[@]}"; do
            if [[ "$tu" == *"$d" ]] || grep -q "$(basename "$d")" "$tu" 2>/dev/null; then
                keep=1; break
            fi
        done
        [[ -n "$keep" ]] && FILTERED+=("$tu")
    done
    TUS=("${FILTERED[@]}")
    echo "run_clang_tidy: ${#TUS[@]} TU(s) touch the ${#DIFF[@]} changed file(s)"
fi

if [[ ${#TUS[@]} -eq 0 ]]; then
    echo "run_clang_tidy: empty TU set"
    exit 0
fi

STATUS=0
for tu in "${TUS[@]}"; do
    echo "--- $tu"
    "$TIDY" -p "$BUILD" --quiet "$@" "$tu" || STATUS=1
done

if [[ $STATUS -eq 0 ]]; then
    echo "run_clang_tidy: clean (${#TUS[@]} TUs)"
fi
exit $STATUS

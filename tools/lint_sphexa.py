#!/usr/bin/env python3
"""lint_sphexa: the repo-specific determinism / hygiene linter.

An AST-free, single-file static checker for the invariants the codebase
relies on but the compiler never enforces (docs/ARCHITECTURE.md,
"Correctness tooling"):

  raw-omp          No `#pragma omp` anywhere under src/ except
                   src/parallel/parallel_for.hpp. PR 3 funneled every hot
                   loop through parallelFor(); a raw OpenMP region
                   reintroduces scheduling the bitwise thread/strategy
                   invariance suite cannot see.
  nondeterminism   No nondeterminism sources in the solver directories
                   (src/sph/, src/tree/, src/core/): std::random_device,
                   std::rand/srand, std::time/clock seeds, and unordered
                   associative containers (iteration order is
                   address-keyed, so results would depend on allocation).
                   Seeded, explicit RNG lives in src/math/rng.hpp.
  io-in-kernels    No std::cout / printf in the phase-kernel directories
                   (src/sph/, src/tree/): kernels report through
                   StepReport; diagnostics go to std::cerr in the drivers.
  pragma-once      Every header under src/ opens with #pragma once.
  include-hygiene  Project includes are repo-relative ("tree/octree.hpp"),
                   never parent-relative ("../tree/octree.hpp"), so a file
                   has exactly one spelling and include graphs stay
                   greppable.
  naked-new        No naked new/delete under src/ — ownership lives in
                   containers and values (the SoA layout); placement or
                   raw allocation would also break checkpoint/replication
                   assumptions.
  simd-containment No raw vectorization outside src/backend/: intrinsic
                   headers (immintrin.h family), _mm* intrinsics,
                   __m128/256/512 vector types, and `#pragma omp simd`.
                   PR 10 funneled all lane-level code through the
                   backend kernels so the Simd path has exactly one
                   audited reduction order; a stray intrinsic elsewhere
                   reintroduces lane math the bitwise pool/strategy
                   invariance suite cannot see.

Exit status: 0 when clean, 1 when any violation is found (the ctest /
CI contract). `--self-test` seeds one violation per rule into a temp tree
and asserts each is caught AND that a clean file passes — proving the
checker actually fails on what it claims to check.

Adding a rule: write a `check_<name>(path, text) -> list[Violation]`
function, add it to CHECKS, seed a violating and a clean sample in
SELF_TEST_CASES. Suppress a single line with `// lint:allow(<rule>)`.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = "src"

# Directories whose kernels must be deterministic and silent.
SOLVER_DIRS = ("src/sph/", "src/tree/", "src/core/")
KERNEL_DIRS = ("src/sph/", "src/tree/")
RAW_OMP_ALLOWED = ("src/parallel/parallel_for.hpp",)

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")


class Violation:
    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure,
    so rules never fire on documentation or log text."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def allowed_rules(raw_line: str) -> set[str]:
    return set(ALLOW_RE.findall(raw_line))


def iter_code_lines(path: str, text: str):
    """(lineno, code_line, raw_line) triples with comments/strings blanked."""
    code = strip_comments_and_strings(text)
    raw_lines = text.splitlines()
    for lineno, line in enumerate(code.splitlines(), start=1):
        raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        yield lineno, line, raw


# --- rules -------------------------------------------------------------------

def check_raw_omp(path: str, text: str):
    if path in RAW_OMP_ALLOWED:
        return []
    out = []
    for lineno, line, raw in iter_code_lines(path, text):
        if "raw-omp" in allowed_rules(raw):
            continue
        if re.search(r"#\s*pragma\s+omp\b", line):
            out.append(Violation(
                "raw-omp", path, lineno,
                "raw OpenMP pragma outside src/parallel/parallel_for.hpp — "
                "route the loop through parallelFor()"))
    return out


NONDET_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"\bstd\s*::\s*rand\s*\(|(?<![\w:])rand\s*\(\s*\)"), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\bstd\s*::\s*time\s*\(|(?<![\w:.])time\s*\(\s*(NULL|nullptr|0)\s*\)"),
     "time() seed"),
    (re.compile(r"\bstd\s*::\s*unordered_(map|set|multimap|multiset)\b"),
     "unordered container (address-keyed iteration order)"),
]


def check_nondeterminism(path: str, text: str):
    if not path.startswith(SOLVER_DIRS):
        return []
    out = []
    for lineno, line, raw in iter_code_lines(path, text):
        if "nondeterminism" in allowed_rules(raw):
            continue
        for pat, what in NONDET_PATTERNS:
            if pat.search(line):
                out.append(Violation(
                    "nondeterminism", path, lineno,
                    f"{what} in a solver directory — results must be "
                    "reproducible bit-for-bit (use math/rng.hpp for seeded "
                    "randomness)"))
    return out


IO_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*cout\b"), "std::cout"),
    (re.compile(r"(?<![\w:.])printf\s*\("), "printf"),
]


def check_io_in_kernels(path: str, text: str):
    if not path.startswith(KERNEL_DIRS):
        return []
    out = []
    for lineno, line, raw in iter_code_lines(path, text):
        if "io-in-kernels" in allowed_rules(raw):
            continue
        for pat, what in IO_PATTERNS:
            if pat.search(line):
                out.append(Violation(
                    "io-in-kernels", path, lineno,
                    f"{what} in a phase-kernel directory — report through "
                    "StepReport, or std::cerr in a driver"))
    return out


def check_pragma_once(path: str, text: str):
    if not path.endswith((".hpp", ".h")):
        return []
    for _, line, _ in iter_code_lines(path, text):
        stripped = line.strip()
        if not stripped:
            continue
        if re.match(r"#\s*pragma\s+once\b", stripped):
            return []
        return [Violation("pragma-once", path, 1,
                          "header does not open with #pragma once")]
    return [Violation("pragma-once", path, 1,
                      "header does not open with #pragma once")]


def check_include_hygiene(path: str, text: str):
    out = []
    for lineno, line, raw in iter_code_lines(path, text):
        if "include-hygiene" in allowed_rules(raw):
            continue
        # the quoted path is blanked in the stripped line (it is a string
        # literal), so gate on the directive surviving comment-stripping and
        # read the path from the raw line
        if not re.match(r"\s*#\s*include\b", line):
            continue
        m = re.match(r'\s*#\s*include\s+"([^"]+)"', raw)
        if m and (m.group(1).startswith("../") or "/../" in m.group(1)):
            out.append(Violation(
                "include-hygiene", path, lineno,
                f'parent-relative include "{m.group(1)}" — use the '
                "repo-relative spelling (src/ is the include root)"))
    return out


def check_naked_new(path: str, text: str):
    out = []
    for lineno, line, raw in iter_code_lines(path, text):
        if "naked-new" in allowed_rules(raw):
            continue
        if re.search(r"(?<![\w_])new\s+[A-Za-z_(]", line) and "placement" not in raw:
            out.append(Violation(
                "naked-new", path, lineno,
                "naked new — own memory with containers/values "
                "(std::vector, std::unique_ptr)"))
        if re.search(r"(?<![\w_])delete(\s*\[\s*\])?\s+[A-Za-z_*]", line):
            out.append(Violation(
                "naked-new", path, lineno,
                "naked delete — pair of a naked new; use owning types"))
    return out


SIMD_CONTAINED = "src/backend/"

SIMD_INCLUDE_RE = re.compile(
    r"\b(immintrin|xmmintrin|emmintrin|pmmintrin|tmmintrin|smmintrin|"
    r"nmmintrin|wmmintrin|ammintrin|x86intrin|arm_neon|arm_sve)\.h\b")

SIMD_PATTERNS = [
    (re.compile(r"\b_mm\d*_\w+\s*\("), "_mm* intrinsic call"),
    (re.compile(r"\b__m(128|256|512)[di]?\b"), "raw vector register type"),
    (re.compile(r"#\s*pragma\s+omp\s+.*\bsimd\b"), "#pragma omp simd"),
]


def check_simd_containment(path: str, text: str):
    if path.startswith(SIMD_CONTAINED):
        return []
    out = []
    for lineno, line, raw in iter_code_lines(path, text):
        if "simd-containment" in allowed_rules(raw):
            continue
        # include paths are string-ish but #include <...> survives stripping;
        # match the quoted form on the raw line
        if re.match(r"\s*#\s*include\b", line) and SIMD_INCLUDE_RE.search(raw):
            out.append(Violation(
                "simd-containment", path, lineno,
                "intrinsics header outside src/backend/ — lane-level code "
                "lives behind the KernelBackend dispatch seam"))
            continue
        for pat, what in SIMD_PATTERNS:
            if pat.search(line):
                out.append(Violation(
                    "simd-containment", path, lineno,
                    f"{what} outside src/backend/ — route lane math through "
                    "the backend kernels (audited reduction order)"))
    return out


CHECKS = [
    check_raw_omp,
    check_nondeterminism,
    check_io_in_kernels,
    check_pragma_once,
    check_include_hygiene,
    check_naked_new,
    check_simd_containment,
]


def lint_tree(root: pathlib.Path):
    violations = []
    src_root = root / SRC
    for f in sorted(src_root.rglob("*")):
        if f.suffix not in (".hpp", ".h", ".cpp", ".cc"):
            continue
        rel = f.relative_to(root).as_posix()
        text = f.read_text(encoding="utf-8", errors="replace")
        for check in CHECKS:
            violations.extend(check(rel, text))
    return violations


# --- self-test ---------------------------------------------------------------

# (rule, path, violating content, clean content): the violating sample MUST
# trip exactly that rule and the clean sample MUST pass every rule.
SELF_TEST_CASES = [
    ("raw-omp", "src/sph/seeded.hpp",
     "#pragma once\nvoid f(){\n#pragma omp parallel for\nfor(;;);}\n",
     "#pragma once\n// mentions #pragma omp in a comment only\nvoid f();\n"),
    ("nondeterminism", "src/tree/seeded.hpp",
     "#pragma once\n#include <random>\nint f(){ std::random_device rd; return rd(); }\n",
     '#pragma once\n#include "math/rng.hpp"\nint f();\n'),
    ("nondeterminism", "src/core/seeded_map.hpp",
     "#pragma once\n#include <unordered_map>\nstd::unordered_map<int,int> m;\n",
     "#pragma once\n#include <map>\n// std::unordered_map named in a comment is fine\n"),
    ("io-in-kernels", "src/sph/seeded_io.hpp",
     "#pragma once\n#include <iostream>\nvoid f(){ std::cout << 1; }\n",
     '#pragma once\nvoid f(const char* s); // printf("fmt") in comments/strings ok\n'),
    ("pragma-once", "src/core/seeded_guard.hpp",
     "#ifndef GUARD_H\n#define GUARD_H\n#endif\n",
     "#pragma once\nvoid f();\n"),
    ("include-hygiene", "src/domain/seeded_inc.hpp",
     '#pragma once\n#include "../tree/octree.hpp"\n',
     '#pragma once\n#include "tree/octree.hpp"\n'),
    ("naked-new", "src/perf/seeded_new.hpp",
     "#pragma once\nint* f(){ return new int(3); }\n",
     "#pragma once\n#include <vector>\nstd::vector<int> f();\n"),
    ("simd-containment", "src/tree/seeded_simd.hpp",
     "#pragma once\n#include <immintrin.h>\n"
     "double f(__m256d v){ return _mm256_cvtsd_f64(v); }\n",
     "#pragma once\n// _mm256_add_pd and __m256d in a comment are fine\n"
     '#include "backend/simd_tile.hpp"\nvoid f();\n'),
    ("simd-containment", "src/perf/seeded_pragma.hpp",
     "#pragma once\nvoid f(double* a){\n"
     "#pragma omp simd // lint:allow(raw-omp)\nfor(int i=0;i<4;++i) a[i]=0;}\n",
     "#pragma once\nvoid f(double* a, int n);\n"),
]


def self_test() -> int:
    failures = []
    for rule, rel, bad, good in SELF_TEST_CASES:
        for content, expect_hit in ((bad, True), (good, False)):
            with tempfile.TemporaryDirectory() as tmp:
                root = pathlib.Path(tmp)
                f = root / rel
                f.parent.mkdir(parents=True, exist_ok=True)
                f.write_text(content, encoding="utf-8")
                got = lint_tree(root)
                hit = any(v.rule == rule for v in got)
                if expect_hit and not hit:
                    failures.append(f"{rule}: seeded violation in {rel} NOT caught")
                if not expect_hit and got:
                    failures.append(
                        f"{rule}: clean sample {rel} flagged: {got[0]}")
    if failures:
        print("lint_sphexa --self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"lint_sphexa --self-test: {len(SELF_TEST_CASES)} rules verified "
          "(seeded violations caught, clean samples pass)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=pathlib.Path, default=REPO,
                    help="repo root to lint (default: this checkout)")
    ap.add_argument("--self-test", action="store_true",
                    help="seed one violation per rule and assert it is caught")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    violations = lint_tree(args.root)
    if violations:
        for v in violations:
            print(v, file=sys.stderr)
        print(f"lint_sphexa: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint_sphexa: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

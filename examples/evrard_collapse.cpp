/// \file evrard_collapse.cpp
/// The paper's second test case (Table 5): the Evrard (1988) adiabatic
/// collapse with self-gravity — "shock waves and self-gravity ... capital
/// for astrophysical simulations". Runs the SPHYNX configuration by default
/// (the paper ran this test with the astrophysics codes only) and writes
/// the energy budget over time: the collapse converts potential energy into
/// kinetic and then, through the bounce shock, into internal energy.
///
///   ./evrard_collapse [nSide] [steps] [profile]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/code_profiles.hpp"
#include "core/simulation.hpp"
#include "ic/evrard.hpp"
#include "io/ascii_io.hpp"

using namespace sphexa;

int main(int argc, char** argv)
{
    std::size_t nSide = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
    int steps         = argc > 2 ? std::atoi(argv[2]) : 20; // paper: 20 steps
    std::string profileName = argc > 3 ? argv[3] : "sphynx";

    CodeProfile<double> profile =
        profileName == "changa" ? changaProfile<double>() : sphynxProfile<double>();

    ParticleSet<double> ps;
    EvrardConfig<double> ic;
    ic.nSide = nSide;
    auto setup = makeEvrard(ps, ic);

    SimulationConfig<double> cfg = profile.config;
    cfg.selfGravity       = true;
    cfg.gravity.G         = 1.0;
    cfg.gravity.theta     = 0.5;
    cfg.gravity.softening = 0.02;

    std::printf("Evrard collapse | profile=%s | %zu particles | %d steps\n",
                profile.name.c_str(), ps.size(), steps);
    std::printf("gravity: %s, theta=%.2f | u0=%.3f gamma=%.3f\n",
                std::string(multipoleOrderName(cfg.gravity.order)).c_str(),
                cfg.gravity.theta, ic.u0, ic.gamma);

    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);
    sim.computeForces();
    auto c0 = sim.conservation();
    std::printf("initial energies: Egrav=%.4f (analytic %.4f) Eint=%.4f\n",
                c0.potentialEnergy, evrardAnalyticPotentialEnergy<double>(1, 1, 1),
                c0.internalEnergy);

    SeriesWriter series({"step", "t", "dt", "Ekin", "Eint", "Egrav", "Etot"});
    std::printf("%5s %10s %10s %10s %10s %10s\n", "step", "t", "Ekin", "Eint", "Egrav",
                "Etot");
    for (int s = 0; s < steps; ++s)
    {
        auto rep = sim.advance();
        auto c   = sim.conservation();
        series.addRow({double(rep.step), rep.time, rep.dt, c.kineticEnergy,
                       c.internalEnergy, c.potentialEnergy, c.totalEnergy()});
        if (s % 5 == 4 || s == 0)
        {
            std::printf("%5llu %10.5f %10.6f %10.6f %10.6f %10.6f\n",
                        (unsigned long long)rep.step, rep.time, c.kineticEnergy,
                        c.internalEnergy, c.potentialEnergy, c.totalEnergy());
        }
    }
    series.writeFile("evrard_series.csv");

    auto c1 = sim.conservation();
    std::printf("\ncollapse progressing: Ekin %.2e -> %.2e, Egrav %.4f -> %.4f\n",
                c0.kineticEnergy, c1.kineticEnergy, c0.potentialEnergy,
                c1.potentialEnergy);
    std::printf("total-energy drift: %.3e\n",
                relativeDrift(c1.totalEnergy(), c0.totalEnergy(),
                              std::abs(c0.potentialEnergy)));
    std::printf("series written to evrard_series.csv\n");
    return 0;
}

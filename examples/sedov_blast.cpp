/// \file sedov_blast.cpp
/// Extension test beyond the paper's two cases: the Sedov-Taylor point
/// explosion (the validation case the follow-on SPH-EXA project adopted).
/// Runs the blast and compares the measured shock radius against the
/// self-similar solution R(t) = xi0 (E t^2 / rho0)^{1/5}.
///
///   ./sedov_blast [nSide] [steps]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/code_profiles.hpp"
#include "core/simulation.hpp"
#include "ic/sedov.hpp"
#include "io/ascii_io.hpp"

using namespace sphexa;

namespace {

/// Shock radius estimate: radius of peak radial momentum density.
double measureShockRadius(const ParticleSet<double>& ps)
{
    const int bins = 40;
    std::vector<double> mom(bins, 0.0);
    double rMax = 0.5;
    for (std::size_t i = 0; i < ps.size(); ++i)
    {
        double r = std::sqrt(ps.x[i] * ps.x[i] + ps.y[i] * ps.y[i] + ps.z[i] * ps.z[i]);
        if (r >= rMax || r <= 0) continue;
        double vr = (ps.x[i] * ps.vx[i] + ps.y[i] * ps.vy[i] + ps.z[i] * ps.vz[i]) / r;
        int b = std::min(bins - 1, int(r / rMax * bins));
        mom[b] += ps.m[i] * std::max(0.0, vr);
    }
    int peak = int(std::max_element(mom.begin(), mom.end()) - mom.begin());
    return (peak + 0.5) * rMax / bins;
}

} // namespace

int main(int argc, char** argv)
{
    std::size_t nSide = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30;
    int steps         = argc > 2 ? std::atoi(argv[2]) : 40;

    ParticleSet<double> ps;
    SedovConfig<double> ic;
    ic.nSide = nSide;
    auto setup = makeSedov(ps, ic);

    SimulationConfig<double> cfg = sphexaProfile<double>().config;
    cfg.selfGravity     = false;
    cfg.targetNeighbors = 60;
    cfg.timestep.cflCourant = 0.2; // strong shock: conservative CFL

    std::printf("Sedov blast | %zu particles | E=%.1f rho0=%.1f gamma=%.3f\n", ps.size(),
                ic.energy, ic.rho0, ic.gamma);

    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);
    sim.computeForces();
    auto c0 = sim.conservation();

    SeriesWriter series({"step", "t", "R_measured", "R_analytic", "Etot"});
    for (int s = 0; s < steps; ++s)
    {
        auto rep = sim.advance();
        double rm = measureShockRadius(sim.particles());
        double ra = sedovShockRadius(rep.time, ic.energy, ic.rho0, ic.gamma);
        auto c = sim.conservation();
        series.addRow({double(rep.step), rep.time, rm, ra, c.totalEnergy()});
        if (s % 10 == 9)
        {
            std::printf("step %3llu  t=%.5f  R_shock measured=%.3f analytic=%.3f\n",
                        (unsigned long long)rep.step, rep.time, rm, ra);
        }
    }
    series.writeFile("sedov_series.csv");

    auto c1 = sim.conservation();
    double rm = measureShockRadius(sim.particles());
    double ra = sedovShockRadius(sim.time(), ic.energy, ic.rho0, ic.gamma);
    std::printf("\nfinal shock radius: measured %.3f vs self-similar %.3f (%.0f%%)\n", rm,
                ra, 100.0 * rm / ra);
    std::printf("total-energy drift: %.3e\n",
                relativeDrift(c1.totalEnergy(), c0.totalEnergy(), c0.totalEnergy()));
    std::printf("series written to sedov_series.csv\n");
    return 0;
}

/// \file quickstart.cpp
/// Minimal end-to-end use of the library: build the paper's rotating square
/// patch at a small size, run a few steps with the SPH-EXA default
/// configuration, and print per-step diagnostics.
///
///   ./quickstart [stepCount]

#include <cstdio>
#include <cstdlib>

#include "core/code_profiles.hpp"
#include "core/simulation.hpp"
#include "core/version.hpp"
#include "ic/square_patch.hpp"
#include "io/report_writer.hpp"

using namespace sphexa;

int main(int argc, char** argv)
{
    int steps = argc > 1 ? std::atoi(argv[1]) : 10;

    std::printf("%s v%s\n", banner().data(), version().data());

    // 1. initial conditions: the rotating square patch (Sec. 5.1 of the
    //    paper), scaled down from the paper's 100x100x100
    ParticleSet<double> ps;
    SquarePatchConfig<double> ic;
    ic.nx = ic.ny = 24;
    ic.nz = 12;
    auto setup = makeSquarePatch(ps, ic);
    std::printf("square patch: %zu particles, spacing %.4f, c0 = %.1f\n", ps.size(),
                setup.spacing, setup.eos.referenceSoundSpeed());

    // 2. simulation configuration: the SPH-EXA mini-app defaults (Table 2)
    SimulationConfig<double> cfg = sphexaProfile<double>().config;
    cfg.selfGravity     = false; // pure CFD test
    cfg.targetNeighbors = 80;

    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);

    // 3. run, printing the conservation diagnostics each step through the
    //    shared per-step report writer
    sim.computeForces();
    auto c0 = sim.conservation();
    StepReportWriter<double> writer;
    writer.printHeader();
    for (int s = 0; s < steps; ++s)
    {
        auto rep = sim.advance();
        auto c   = sim.conservation();
        writer.printRow(rep, &c);
    }

    auto c1 = sim.conservation();
    std::printf("\nenergy drift:          %.3e (relative)\n",
                relativeDrift(c1.totalEnergy(), c0.totalEnergy(), c0.totalEnergy()));
    std::printf("angular momentum drift: %.3e (relative)\n",
                relativeDrift(c1.angularMomentum.z, c0.angularMomentum.z,
                              c0.angularMomentum.z));
    return 0;
}

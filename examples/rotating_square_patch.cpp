/// \file rotating_square_patch.cpp
/// The paper's first test case (Table 5) at configurable size, runnable
/// with any of the three parent-code configurations or the SPH-EXA
/// defaults. Writes a conservation time series and reports how well the
/// bulk keeps rotating rigidly (the physical success criterion of the
/// Colagrossi 2005 test under tensile-stability control).
///
///   ./rotating_square_patch [profile] [nxy] [nz] [steps]
///   profile in {sphexa, sphynx, changa, sphflow}; paper scale: 100 100 20

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/code_profiles.hpp"
#include "core/simulation.hpp"
#include "ic/square_patch.hpp"
#include "io/ascii_io.hpp"

using namespace sphexa;

int main(int argc, char** argv)
{
    std::string profileName = argc > 1 ? argv[1] : "sphexa";
    std::size_t nxy   = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 30;
    std::size_t nz    = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 10;
    int steps         = argc > 4 ? std::atoi(argv[4]) : 20; // paper: 20 steps

    CodeProfile<double> profile =
        profileName == "sphynx"    ? sphynxProfile<double>()
        : profileName == "changa"  ? changaProfile<double>()
        : profileName == "sphflow" ? sphflowProfile<double>()
                                   : sphexaProfile<double>();

    ParticleSet<double> ps;
    SquarePatchConfig<double> ic;
    ic.nx = ic.ny = nxy;
    ic.nz = nz;
    auto setup = makeSquarePatch(ps, ic);

    SimulationConfig<double> cfg = profile.config;
    cfg.selfGravity = false;

    std::printf("rotating square patch | profile=%s (%s) | %zu particles | %d steps\n",
                profile.name.c_str(), profile.version.c_str(), ps.size(), steps);
    std::printf("kernel=%s gradients=%s volume-elements=%s timestep=%s\n",
                std::string(kernelName(cfg.kernel)).c_str(),
                std::string(gradientModeName(cfg.gradients)).c_str(),
                std::string(volumeElementsName(cfg.volumeElements)).c_str(),
                std::string(timesteppingName(cfg.timestep.mode)).c_str());

    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);
    sim.computeForces();
    auto c0 = sim.conservation();

    SeriesWriter series({"step", "t", "dt", "Ekin", "Eint", "Etot", "Lz", "s_per_step"});
    double totalSeconds = 0;
    for (int s = 0; s < steps; ++s)
    {
        auto rep = sim.advance();
        auto c   = sim.conservation();
        totalSeconds += rep.totalSeconds();
        series.addRow({double(rep.step), rep.time, rep.dt, c.kineticEnergy,
                       c.internalEnergy, c.totalEnergy(), c.angularMomentum.z,
                       rep.totalSeconds()});
    }
    series.writeFile("square_patch_series.csv");

    // rigid-rotation quality of the bulk
    const auto& fin = sim.particles();
    double w = ic.omega;
    std::size_t ok = 0, total = 0;
    for (std::size_t i = 0; i < fin.size(); ++i)
    {
        double r = std::hypot(fin.x[i], fin.y[i]);
        if (r < 0.1 || r > 0.3) continue;
        double v = std::hypot(fin.vx[i], fin.vy[i]);
        if (std::abs(v - w * r) < 0.25 * w * r) ++ok;
        ++total;
    }

    auto c1 = sim.conservation();
    std::printf("\nbulk still rotating rigidly: %.1f%% of interior particles\n",
                100.0 * double(ok) / double(total ? total : 1));
    std::printf("total-energy drift:          %.3e\n",
                relativeDrift(c1.totalEnergy(), c0.totalEnergy(), c0.totalEnergy()));
    std::printf("avg wall time per step:      %.4f s\n", totalSeconds / steps);
    std::printf("series written to square_patch_series.csv\n");
    return 0;
}

/// \file bench_fig4_trace.cpp
/// Figure 4 reproduction: the Extrae-style execution timeline of one SPHYNX
/// time-step of the Evrard collapse on 192 cores (16 ranks x 12 threads on
/// Piz Daint).
///
/// The distributed driver runs one real step of the SPHYNX configuration
/// over 16 simulated ranks; the per-rank phase durations (A..J) are emitted
/// by the pipeline runner into an attached PhaseEventLog — nothing is
/// hand-recorded here — and expanded into a per-thread timeline under
/// SPHYNX v1.3.1's intra-node parallelism profile (serial tree build,
/// serial neighbor bookkeeping tails — the behaviours the paper's analysis
/// exposed). The figure's qualitative content to verify:
///   - phase A (tree build) shows threads 1..11 idle (black) on every rank,
///   - phases E..H (SPH kernels) are wide, parallel (blue) regions,
///   - phase I (gravity) is present (this is the Evrard test),
///   - the improved (SPH-EXA) profile removes the idle regions.
/// Also writes fig4_trace.csv with the raw intervals.

#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "domain/distributed.hpp"
#include "perf/pop_metrics.hpp"
#include "perf/tracer.hpp"

using namespace sphexa;
using namespace sphexa::bench;

int main()
{
    const int ranks = 16, threads = 12; // 192 cores on Piz Daint

    Box<double> box;
    auto ps = makeProbeIC<double>(TestCase::Evrard, box);

    auto profile = sphynxProfile<double>();
    SimulationConfig<double> cfg = profile.config;
    cfg.selfGravity       = true;
    cfg.gravity.G         = 1;
    cfg.gravity.theta     = 0.5;
    cfg.gravity.softening = 0.02;
    cfg.targetNeighbors   = 100;
    cfg.neighborTolerance = 20;

    std::printf("== Figure 4: Extrae-style visualization of SPHYNX v1.3.1, one Evrard "
                "step, %d ranks x %d threads ==\n",
                ranks, threads);
    std::printf("probe: %zu particles (SPHEXA_PROBE_SIDE to change)\n\n", ps.size());

    // Evrard closure: ideal gas with gamma = 5/3 (paper Sec. 5.1)
    Eos<double> eos{IdealGasEos<double>(5.0 / 3.0)};
    DistributedSimulation<double> sim(ps, box, eos, cfg, ranks);
    PhaseEventLog log;
    sim.attachPhaseLog(&log);
    sim.advance(); // warm-up step (h converges)
    log.clear();   // keep only the measured step's runner-emitted events
    auto rep = sim.advance();

    // phase timings come from the pipeline runner's event log; only the
    // communication volumes are read off the step report
    std::vector<double> commSeconds(ranks);
    NetworkModel net(pizDaint().network);
    for (int r = 0; r < ranks; ++r)
    {
        commSeconds[r] =
            net.p2pBatch(rep.ranks[r].traffic.messagesSent, rep.ranks[r].traffic.bytesSent);
    }

    auto legacy = expandTrace<double>(log, ranks, commSeconds, threads,
                                      sphynx131Parallelism());
    std::printf("legend: '#' computing | 'M' MPI collective | 'm' MPI p2p | 's' thread "
                "sync | 'f' fork/join | '.' idle\n");
    std::printf("phase letters (header row): A tree build, B..D neighbors+h, E..H SPH "
                "kernels, I self-gravity, J update\n\n");
    std::printf("%s\n", legacy.renderAscii(110, 24).c_str());

    auto mLegacy = computePopMetrics(legacy);
    std::printf("SPHYNX v1.3.1 profile:  load balance %.3f | comm efficiency %.3f | "
                "parallel efficiency %.3f\n",
                mLegacy.loadBalance, mLegacy.communicationEfficiency,
                mLegacy.parallelEfficiency);

    auto improved = expandTrace<double>(log, ranks, commSeconds, threads,
                                        sphexaParallelism());
    auto mNew = computePopMetrics(improved);
    std::printf("SPH-EXA improved profile: load balance %.3f | comm efficiency %.3f | "
                "parallel efficiency %.3f\n",
                mNew.loadBalance, mNew.communicationEfficiency, mNew.parallelEfficiency);
    std::printf("\n-> parallelizing phase A and removing serial tails raises parallel "
                "efficiency by %.0f%%\n",
                100.0 * (mNew.parallelEfficiency / mLegacy.parallelEfficiency - 1.0));

    std::ofstream csv("fig4_trace.csv");
    legacy.writeCsv(csv);
    std::printf("raw intervals written to fig4_trace.csv\n");
    return 0;
}

/// \file bench_neighbors.cpp
/// Neighbor-discovery ablation (google-benchmark): octree walk (serial and
/// parallel build, Morton and Hilbert ordering) against the uniform-grid
/// cell list, on uniform and strongly clustered particle distributions.
/// The clustered case is where the tree's adaptivity pays — the reason all
/// three parent codes use tree walks (Table 1).

#include <benchmark/benchmark.h>

#include "ic/lattice.hpp"
#include "math/rng.hpp"
#include "sph/particles.hpp"
#include "tree/cell_list.hpp"
#include "tree/neighbors.hpp"
#include "tree/octree.hpp"

using namespace sphexa;

namespace {

struct Cloud
{
    ParticleSetD ps;
    Box<double> box{{0, 0, 0}, {1, 1, 1}, true, true, true};
};

Cloud makeCloud(std::size_t n, bool clustered)
{
    Cloud c;
    c.ps.resize(n);
    Xoshiro256pp rng(42);
    for (std::size_t i = 0; i < n; ++i)
    {
        if (clustered && i % 2)
        {
            // half the particles in a small Gaussian blob
            c.ps.x[i] = std::clamp(0.5 + 0.02 * rng.normal(), 0.0, 0.999);
            c.ps.y[i] = std::clamp(0.5 + 0.02 * rng.normal(), 0.0, 0.999);
            c.ps.z[i] = std::clamp(0.5 + 0.02 * rng.normal(), 0.0, 0.999);
        }
        else
        {
            c.ps.x[i] = rng.uniform();
            c.ps.y[i] = rng.uniform();
            c.ps.z[i] = rng.uniform();
        }
        // h ~ local spacing: small in the blob, large outside
        c.ps.h[i] = clustered && i % 2 ? 0.01 : 0.05;
    }
    return c;
}

void BM_TreeBuild(benchmark::State& state)
{
    auto c = makeCloud(std::size_t(state.range(0)), false);
    Octree<double>::BuildParams bp;
    bp.parallelBuild = state.range(1) != 0;
    for (auto _ : state)
    {
        Octree<double> tree;
        tree.build(c.ps.x, c.ps.y, c.ps.z, c.box, bp);
        benchmark::DoNotOptimize(tree.nodeCount());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_TreeSearch(benchmark::State& state)
{
    auto c = makeCloud(std::size_t(state.range(0)), state.range(1) != 0);
    Octree<double> tree;
    tree.build(c.ps.x, c.ps.y, c.ps.z, c.box);
    NeighborList<double> nl(c.ps.size(), 512);
    for (auto _ : state)
    {
        findNeighborsGlobal(tree, c.ps.x, c.ps.y, c.ps.z, c.ps.h, nl);
        benchmark::DoNotOptimize(nl.totalNeighbors());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_CellListSearch(benchmark::State& state)
{
    auto c = makeCloud(std::size_t(state.range(0)), state.range(1) != 0);
    NeighborList<double> nl(c.ps.size(), 512);
    for (auto _ : state)
    {
        findNeighborsCellList<double>(c.ps.x, c.ps.y, c.ps.z, c.ps.h, c.box, nl);
        benchmark::DoNotOptimize(nl.totalNeighbors());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

} // namespace

BENCHMARK(BM_TreeBuild)
    ->Name("tree_build")
    ->Args({20000, 0})
    ->Args({20000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TreeSearch)
    ->Name("neighbor_search/tree")
    ->Args({20000, 0})
    ->Args({20000, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CellListSearch)
    ->Name("neighbor_search/cell_list")
    ->Args({20000, 0})
    ->Args({20000, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

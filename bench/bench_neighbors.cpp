/// \file bench_neighbors.cpp
/// Neighbor-search crossover sweep: per-particle tree walk vs the SFC-sorted
/// cluster search (tree/sfc_sort.hpp + tree/cluster_list.hpp) over a jittered
/// gas lattice at N = 1e4 .. 1e6, worker pools {1, 4}. Emits one JSON record
/// per (N, pool, mode) point with tree-build, sort and search timings — the
/// data behind BENCH_neighbors.json, the crossover trajectory tracked across
/// commits:
///
///     ./bench_neighbors > BENCH_neighbors.json
///
/// Every cluster point is verified against the tree walk (exact list
/// equality at the smallest size, total-neighbor equality everywhere), and
/// the steady-state no-allocation-churn property of the grow-only
/// NeighborList reset is asserted on every point.
///
/// Environment:
///   SPHEXA_NEIGHBORS_MAXN=NNN  cap the sweep (default 1000000; CI uses a
///                              small cap for a smoke run)
///   SPHEXA_NEIGHBORS_REPS=R    timing repetitions (default 3 small, 1 large)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <numbers>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_common.hpp"
#include "ic/lattice.hpp"
#include "parallel/parallel_for.hpp"
#include "perf/timer.hpp"
#include "tree/cluster_list.hpp"
#include "tree/neighbors.hpp"
#include "tree/sfc_sort.hpp"

using namespace sphexa;

namespace {

constexpr unsigned kNgmax       = 192;
constexpr unsigned kClusterSize = 32;

/// Jittered unit-box lattice sized for ~100 neighbors per particle (the
/// paper's working point), fully periodic like the Sedov box.
ParticleSetD makeCloud(std::size_t nSide, Box<double>& boxOut)
{
    ParticleSetD ps;
    Box<double> box{{0, 0, 0}, {1, 1, 1}, true, true, true};
    cubicLattice(ps, nSide, nSide, nSide, box);
    double dx = 1.0 / double(nSide);
    jitterPositions(ps, box, dx, 0.2, /*seed*/ 42 + nSide);
    // 2h = dx * (3 * 100 / 4pi)^(1/3): ~100 neighbors in the support sphere
    double h = 0.5 * dx * std::cbrt(3.0 * 100.0 / (4.0 * std::numbers::pi));
    for (std::size_t i = 0; i < ps.size(); ++i)
        ps.h[i] = h;
    boxOut = box;
    return ps;
}

struct Point
{
    std::size_t n{};
    std::size_t pool{};
    std::string mode;
    double treeSeconds{};
    double sortSeconds{};
    double searchSeconds{};
    std::size_t neighbors{};
    double speedupVsWalk{}; ///< cluster records only: walk/cluster search time
};

void setWorkers(std::size_t pool)
{
    WorkerPool::instance().resize(pool);
#ifdef _OPENMP
    omp_set_num_threads(int(pool));
#endif
}

/// Assert the steady-state reset reuses the high-water-mark allocation: a
/// second reset+fill cycle must not move or grow the entry storage.
void assertNoAllocationChurn(NeighborList<double>& nl, std::size_t n,
                             const std::function<void()>& fill)
{
    const auto* data     = nl.entryData();
    std::size_t capacity = nl.entryCapacity();
    nl.reset(n, kNgmax);
    fill();
    if (nl.entryData() != data || nl.entryCapacity() != capacity)
    {
        std::fprintf(stderr,
                     "FATAL: NeighborList reset reallocated in steady state "
                     "(capacity %zu -> %zu)\n",
                     capacity, nl.entryCapacity());
        std::exit(1);
    }
}

void printPoint(const Point& p, bool last)
{
    std::printf("    {\"n\": %zu, \"pool\": %zu, \"mode\": \"%s\", "
                "\"tree_seconds\": %.6f, \"sort_seconds\": %.6f, "
                "\"search_seconds\": %.6f, \"neighbors\": %zu",
                p.n, p.pool, p.mode.c_str(), p.treeSeconds, p.sortSeconds,
                p.searchSeconds, p.neighbors);
    if (p.mode == "cluster") std::printf(", \"search_speedup\": %.3f", p.speedupVsWalk);
    std::printf("}%s\n", last ? "" : ",");
}

} // namespace

int main()
{
    std::size_t maxN = bench::envSize("SPHEXA_NEIGHBORS_MAXN", 1000000);
    std::vector<std::size_t> sides;
    for (std::size_t side : {22, 31, 46, 67, 100}) // 1e4 .. 1e6 particles
    {
        if (side * side * side <= maxN) sides.push_back(side);
    }
    if (sides.empty()) sides.push_back(10);

    std::vector<Point> points;
    for (std::size_t side : sides)
    {
        Box<double> box;
        auto psBase   = makeCloud(side, box);
        std::size_t n = psBase.size();
        std::size_t reps =
            bench::envSize("SPHEXA_NEIGHBORS_REPS", n <= 200000 ? 3 : 1);

        for (std::size_t pool : {std::size_t(1), std::size_t(4)})
        {
            setWorkers(pool);

            // --- per-particle tree walk on the unsorted set -----------------
            Point walk;
            walk.n    = n;
            walk.pool = pool;
            walk.mode = "treewalk";
            ParticleSetD ps = psBase;
            Octree<double> tree;
            NeighborList<double> nl(n, kNgmax);
            Timer t;
            for (std::size_t r = 0; r < reps; ++r)
            {
                t.reset();
                tree.build(ps.x, ps.y, ps.z, box);
                double tb = t.lap();
                nl.reset(n, kNgmax);
                t.reset();
                findNeighborsGlobal(tree, ps.x, ps.y, ps.z, ps.h, nl);
                double ts = t.lap();
                if (r == 0 || tb < walk.treeSeconds) walk.treeSeconds = tb;
                if (r == 0 || ts < walk.searchSeconds) walk.searchSeconds = ts;
            }
            walk.neighbors = nl.totalNeighbors();
            assertNoAllocationChurn(nl, n, [&] {
                findNeighborsGlobal(tree, ps.x, ps.y, ps.z, ps.h, nl);
            });
            points.push_back(walk);

            // --- SFC sort + cluster search ---------------------------------
            Point clu;
            clu.n    = n;
            clu.pool = pool;
            clu.mode = "cluster";
            ParticleSetD psSorted = psBase;
            SfcSorter<double> sorter;
            t.reset();
            // Hilbert, not Morton: its locality keeps consecutive runs of 32
            // particles compact (no octant-boundary jumps), which measures
            // ~1.6x fewer candidate tests per cluster member
            sorter.apply(psSorted, box, SfcCurve::Hilbert);
            clu.sortSeconds = t.lap();

            ClusterWorkspace<double> ws;
            for (std::size_t r = 0; r < reps; ++r)
            {
                t.reset();
                tree.build(psSorted.x, psSorted.y, psSorted.z, box);
                double tb = t.lap();
                nl.reset(n, kNgmax);
                t.reset();
                findNeighborsClustered(tree, psSorted.x, psSorted.y, psSorted.z,
                                       psSorted.h, nl, ws, kClusterSize);
                double ts = t.lap();
                if (r == 0 || tb < clu.treeSeconds) clu.treeSeconds = tb;
                if (r == 0 || ts < clu.searchSeconds) clu.searchSeconds = ts;
            }
            clu.neighbors     = nl.totalNeighbors();
            clu.speedupVsWalk = walk.searchSeconds / clu.searchSeconds;
            assertNoAllocationChurn(nl, n, [&] {
                findNeighborsClustered(tree, psSorted.x, psSorted.y, psSorted.z,
                                       psSorted.h, nl, ws, kClusterSize);
            });

            // --- correctness gates -----------------------------------------
            // same physical pair count in both frames, always
            if (clu.neighbors != walk.neighbors)
            {
                std::fprintf(stderr,
                             "FATAL: neighbor totals differ at n=%zu: walk %zu "
                             "vs cluster %zu\n",
                             n, walk.neighbors, clu.neighbors);
                return 1;
            }
            // exact per-particle list equality in the sorted frame (cheap
            // enough at the smallest size only)
            if (side == sides.front())
            {
                NeighborList<double> ref(n, kNgmax);
                findNeighborsGlobal(tree, psSorted.x, psSorted.y, psSorted.z,
                                    psSorted.h, ref);
                for (std::size_t i = 0; i < n; ++i)
                {
                    auto a = ref.neighbors(i);
                    auto b = nl.neighbors(i);
                    if (a.size() != b.size() ||
                        !std::equal(a.begin(), a.end(), b.begin()))
                    {
                        std::fprintf(stderr,
                                     "FATAL: cluster list mismatch at particle "
                                     "%zu (n=%zu)\n",
                                     i, n);
                        return 1;
                    }
                }
            }
            points.push_back(clu);

            std::fprintf(stderr,
                         "n=%7zu pool=%zu walk %.4fs cluster %.4fs (sort %.4fs, "
                         "speedup %.2fx)\n",
                         n, pool, walk.searchSeconds, clu.searchSeconds,
                         clu.sortSeconds, clu.speedupVsWalk);
        }
    }

    std::printf("{\n  \"bench\": \"neighbors-crossover\",\n");
    std::printf("  \"ngmax\": %u,\n  \"cluster_size\": %u,\n", kNgmax, kClusterSize);
    std::printf("  \"max_n\": %zu,\n", maxN);
    std::printf("  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i)
        printPoint(points[i], i + 1 == points.size());
    std::printf("  ]\n}\n");
    return 0;
}

/// \file bench_validation.cpp
/// Validation-gallery trajectory driver: runs every golden scenario at probe
/// scale and emits one JSON record per scenario with its runtime and the
/// error norms the golden tests gate on (tests/test_golden.cpp). The output
/// seeds BENCH_validation.json, the per-scenario accuracy/runtime trajectory
/// tracked across commits:
///
///     OMP_NUM_THREADS=4 ./bench_validation > BENCH_validation.json
///
/// Scenario sizes follow SPHEXA_PROBE_SIDE (default 16 here: validation
/// cares about error norms, not scaling).

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "ic/dam_break.hpp"
#include "ic/evrard.hpp"
#include "ic/sedov.hpp"
#include "ic/square_patch.hpp"
#include "parallel/parallel_for.hpp"
#include "perf/timer.hpp"

using namespace sphexa;

namespace {

std::size_t validationSide() { return bench::envSize("SPHEXA_PROBE_SIDE", 16); }

struct ScenarioRecord
{
    std::string name;
    std::size_t particles{};
    std::uint64_t steps{};
    double simTime{};
    double seconds{};
    std::vector<std::pair<std::string, double>> errors;
};

void printRecord(const ScenarioRecord& r, bool last)
{
    std::printf("    {\"name\": \"%s\", \"particles\": %zu, \"steps\": %llu, "
                "\"sim_time\": %.6g, \"seconds\": %.4f, \"errors\": {",
                r.name.c_str(), r.particles, (unsigned long long)r.steps, r.simTime,
                r.seconds);
    for (std::size_t i = 0; i < r.errors.size(); ++i)
    {
        std::printf("\"%s\": %.6g%s", r.errors[i].first.c_str(), r.errors[i].second,
                    i + 1 < r.errors.size() ? ", " : "");
    }
    std::printf("}}%s\n", last ? "" : ",");
}

double shockShellRadius(const ParticleSetD& ps)
{
    std::vector<std::size_t> idx(ps.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::size_t k = std::max<std::size_t>(32, ps.size() / 50);
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [&](auto a, auto b) { return ps.rho[a] > ps.rho[b]; });
    double sum = 0;
    for (std::size_t j = 0; j < k; ++j)
    {
        auto i = idx[j];
        sum += std::sqrt(ps.x[i] * ps.x[i] + ps.y[i] * ps.y[i] + ps.z[i] * ps.z[i]);
    }
    return sum / double(k);
}

ScenarioRecord runSedov()
{
    ScenarioRecord rec;
    rec.name = "sedov";
    ParticleSetD ps;
    SedovConfig<double> ic;
    ic.nSide = validationSide();
    auto setup = makeSedov(ps, ic);
    rec.particles = ps.size();

    SimulationConfig<double> cfg;
    cfg.targetNeighbors    = 50;
    cfg.neighborTolerance  = 10;
    cfg.timestep.initialDt = 1e-6;
    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);

    Timer t;
    sim.computeForces();
    while (sim.time() < 0.02 && sim.step() < 500)
        sim.advance();
    rec.seconds = t.lap();
    rec.steps   = sim.step();
    rec.simTime = sim.time();

    double measured = shockShellRadius(sim.particles());
    double analytic = sedovShockRadius(sim.time(), ic.energy, ic.rho0);
    rec.errors.emplace_back("shock_radius_rel", std::abs(measured / analytic - 1.0));
    return rec;
}

ScenarioRecord runEvrard()
{
    ScenarioRecord rec;
    rec.name = "evrard";
    ParticleSetD ps;
    EvrardConfig<double> ic;
    ic.nSide = validationSide();
    auto setup = makeEvrard(ps, ic);
    rec.particles = ps.size();

    SimulationConfig<double> cfg;
    cfg.selfGravity       = true;
    cfg.gravity.G         = 1.0;
    cfg.gravity.theta     = 0.5;
    cfg.gravity.softening = 0.02;
    cfg.targetNeighbors   = 60;
    cfg.neighborTolerance = 10;
    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);

    Timer t;
    sim.computeForces();
    auto c0 = sim.conservation();
    sim.run(10);
    auto c1     = sim.conservation();
    rec.seconds = t.lap();
    rec.steps   = sim.step();
    rec.simTime = sim.time();

    double analyticU = evrardAnalyticPotentialEnergy<double>(1, 1, 1);
    rec.errors.emplace_back("potential_energy_rel",
                            std::abs(c0.potentialEnergy / analyticU - 1.0));
    rec.errors.emplace_back("energy_drift_rel",
                            std::abs(c1.totalEnergy() - c0.totalEnergy()) /
                                std::abs(c0.totalEnergy()));
    return rec;
}

ScenarioRecord runSquarePatch()
{
    ScenarioRecord rec;
    rec.name = "square_patch";
    ParticleSetD ps;
    SquarePatchConfig<double> ic;
    ic.nx = ic.ny = validationSide();
    ic.nz         = std::max<std::size_t>(2, validationSide() / 2);
    auto setup    = makeSquarePatch(ps, ic);
    rec.particles = ps.size();

    auto cfg              = squarePatchConfig(setup);
    cfg.targetNeighbors   = 60;
    cfg.neighborTolerance = 10;
    Simulation<double> sim(std::move(ps), setup.box, cfg);

    Timer t;
    sim.computeForces();
    auto c0 = sim.conservation();
    sim.run(10);
    auto c1     = sim.conservation();
    rec.seconds = t.lap();
    rec.steps   = sim.step();
    rec.simTime = sim.time();

    double scale = std::abs(c0.angularMomentum.z);
    rec.errors.emplace_back("angular_momentum_rel",
                            std::abs(c1.angularMomentum.z - c0.angularMomentum.z) /
                                scale);
    // weak-compressibility norm: the bulk (median) density must stay close
    // to rho0; the max is dominated by the free surface, where the kernel
    // support is deficient and the summation density legitimately drops
    std::vector<double> dev(sim.particles().rho.size());
    for (std::size_t i = 0; i < dev.size(); ++i)
        dev[i] = std::abs(sim.particles().rho[i] / ic.rho0 - 1.0);
    std::nth_element(dev.begin(), dev.begin() + dev.size() / 2, dev.end());
    rec.errors.emplace_back("density_deviation_median", dev[dev.size() / 2]);
    rec.errors.emplace_back("density_deviation_max",
                            *std::max_element(dev.begin(), dev.end()));
    return rec;
}

ScenarioRecord runDamBreak()
{
    ScenarioRecord rec;
    rec.name = "dam_break";
    ParticleSetD ps;
    DamBreakConfig<double> ic;
    ic.nx = ic.ny = validationSide();
    ic.nz         = 4;
    auto setup    = makeDamBreak(ps, ic);
    rec.particles = ps.size();

    auto cfg               = damBreakConfig(ic, setup);
    cfg.targetNeighbors    = 60;
    cfg.neighborTolerance  = 10;
    cfg.timestep.initialDt = 1e-4;
    Simulation<double> sim(std::move(ps), setup.box, cfg);

    Timer t;
    sim.computeForces();
    while (sim.time() < 0.15 && sim.step() < 1000)
        sim.advance();
    rec.seconds = t.lap();
    rec.steps   = sim.step();
    rec.simTime = sim.time();

    double front  = damBreakFront(sim.particles(), 2.0 * sim.particles().h[0]);
    double ritter = ritterFrontPosition(sim.time(), ic.columnWidth, ic.columnHeight,
                                        ic.g);
    rec.errors.emplace_back("front_vs_ritter_rel",
                            std::abs((front - ic.columnWidth) /
                                         (ritter - ic.columnWidth) -
                                     1.0));
    return rec;
}

} // namespace

int main()
{
    std::vector<ScenarioRecord> records{runSedov(), runEvrard(), runSquarePatch(),
                                        runDamBreak()};

    std::printf("{\n  \"bench\": \"validation\",\n  \"workers\": %zu,\n"
                "  \"probe_side\": %zu,\n  \"scenarios\": [\n",
                WorkerPool::instance().size(), validationSide());
    for (std::size_t i = 0; i < records.size(); ++i)
        printRecord(records[i], i + 1 == records.size());
    std::printf("  ]\n}\n");
    return 0;
}

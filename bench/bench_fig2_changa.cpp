/// \file bench_fig2_changa.cpp
/// Figure 2 reproduction: ChaNGa strong scalability on Piz Daint.
///   (b) rotating square patch, 12..1536 cores  (anchor 738.0 s at 12)
///   (c) Evrard collapse,       12..1536 cores  (anchor 30.38 s at 12)
/// ChaNGa's configuration (Table 1) drives the differences: individual
/// time-stepping with individual tree walks, standard volume elements,
/// 16-pole gravity — and a gravity-first tree code exercised by a pure-CFD
/// test (the square patch), which is why its absolute square-patch times
/// are ~19x SPHYNX's while its Evrard times are competitive.

#include "bench_common.hpp"

using namespace sphexa;
using namespace sphexa::bench;

int main()
{
    auto profile = changaProfile<double>();
    auto cm      = CostModel::calibrate();
    std::vector<int> cores{12, 24, 48, 96, 192, 384, 768, 1536};

    {
        auto daint = runScalingCurve(TestCase::SquarePatch, profile, pizDaint(), cores,
                                     738.0, cm);
        PaperRefs refs{{12, 738.0}, {48, 253.5}, {1536, 93.0}};
        printFigure("Figure 2(b): ChaNGa, rotating square patch (Piz Daint)", {daint},
                    refs);
        printShapeSummary(daint, targetParticles());
    }
    {
        auto daint =
            runScalingCurve(TestCase::Evrard, profile, pizDaint(), cores, 30.38, cm);
        PaperRefs refs{{12, 30.38}, {48, 10.29}, {1536, 5.74}};
        printFigure("Figure 2(c): ChaNGa, Evrard collapse (Piz Daint)", {daint}, refs);
        printShapeSummary(daint, targetParticles());
    }

    std::printf("\nNote the cross-code shape of the paper: ChaNGa >> SPHYNX on the\n"
                "square patch but competitive on Evrard (its gravity-oriented design).\n");
    return 0;
}

/// \file bench_gravity.cpp
/// Self-gravity ablation: cost AND accuracy of the Barnes-Hut solver across
/// multipole orders (2-pole .. 16-pole, Table 1's SPHYNX-vs-ChaNGa choice)
/// and opening angles. Prints a combined table: the trade-off that decides
/// between SPHYNX's 4-pole and ChaNGa's 16-pole configurations.

#include <cmath>
#include <cstdio>

#include "math/rng.hpp"
#include "perf/timer.hpp"
#include "sph/particles.hpp"
#include "tree/gravity.hpp"
#include "tree/octree.hpp"

using namespace sphexa;

namespace {

ParticleSetD plummerCluster(std::size_t n)
{
    ParticleSetD ps(n);
    Xoshiro256pp rng(7);
    for (std::size_t i = 0; i < n; ++i)
    {
        ps.x[i] = 0.5 + 0.08 * rng.normal();
        ps.y[i] = 0.5 + 0.08 * rng.normal();
        ps.z[i] = 0.5 + 0.08 * rng.normal();
        ps.m[i] = 1.0 / double(n);
    }
    return ps;
}

} // namespace

int main()
{
    const std::size_t n = 8000;
    auto ps = plummerCluster(n);

    // reference: direct sum
    auto ref = ps;
    GravityParams<double> pref;
    Timer t;
    GravitySolver<double>::directSum(ref, pref);
    double directSeconds = t.elapsed();

    std::printf("== Gravity ablation: multipole order x opening angle (N=%zu) ==\n\n", n);
    std::printf("direct sum reference: %.3f s\n\n", directSeconds);
    std::printf("%-22s %6s %12s %12s %14s %12s\n", "order", "theta", "seconds",
                "speedup", "rms_acc_err", "interactions");

    for (auto order : {MultipoleOrder::Monopole, MultipoleOrder::Quadrupole,
                       MultipoleOrder::Octupole, MultipoleOrder::Hexadecapole})
    {
        for (double theta : {0.8, 0.5, 0.3})
        {
            // the generic tensor contraction of the high orders is costly;
            // skip the tightest MAC there to keep the bench budget small
            if (order >= MultipoleOrder::Octupole && theta < 0.4) continue;
            GravityParams<double> params;
            params.order = order;
            params.theta = theta;

            auto work = ps;
            Box<double> box = computeBoundingBox<double>(work.x, work.y, work.z);
            Octree<double> tree;
            Octree<double>::BuildParams bp;
            bp.leafSize = 16;
            tree.build(work.x, work.y, work.z, box, bp);

            GravitySolver<double> solver;
            solver.prepare(tree, work, params);
            std::fill(work.ax.begin(), work.ax.end(), 0.0);
            std::fill(work.ay.begin(), work.ay.end(), 0.0);
            std::fill(work.az.begin(), work.az.end(), 0.0);

            Timer tt;
            GravityStats stats;
            solver.accumulate(work, &stats);
            double secs = tt.elapsed();

            double num = 0, den = 0;
            for (std::size_t i = 0; i < n; ++i)
            {
                double dx = work.ax[i] - ref.ax[i];
                double dy = work.ay[i] - ref.ay[i];
                double dz = work.az[i] - ref.az[i];
                num += dx * dx + dy * dy + dz * dz;
                den += ref.ax[i] * ref.ax[i] + ref.ay[i] * ref.ay[i] +
                       ref.az[i] * ref.az[i];
            }
            std::printf("%-22s %6.2f %12.4f %12.1fx %14.2e %12zu\n",
                        std::string(multipoleOrderName(order)).c_str(), theta, secs,
                        directSeconds / secs, std::sqrt(num / den),
                        stats.p2pInteractions + stats.m2pInteractions);
        }
    }

    std::printf("\nreadout: higher order buys accuracy at fixed theta; a higher order\n"
                "with wide theta can beat a low order with tight theta on both axes —\n"
                "the rationale for ChaNGa's hexadecapole choice.\n");
    return 0;
}

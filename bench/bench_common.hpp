#pragma once

/// \file bench_common.hpp
/// Shared infrastructure of the figure/table reproduction benches: probe
/// workload construction, the scaling-figure runner, and output formatting.
///
/// Probe sizes are laptop-friendly by default and configurable:
///   SPHEXA_PROBE_SIDE=NN   lattice side of the probe ICs (default 36)
///   SPHEXA_TARGET_N=NNN    modeled particle count (default 10^6, the paper)

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/code_profiles.hpp"
#include "ic/evrard.hpp"
#include "ic/square_patch.hpp"
#include "perf/cluster_sim.hpp"
#include "perf/machine.hpp"

namespace sphexa::bench {

inline std::size_t envSize(const char* name, std::size_t fallback)
{
    const char* v = std::getenv(name);
    if (!v) return fallback;
    auto parsed = std::strtoull(v, nullptr, 10);
    return parsed > 0 ? std::size_t(parsed) : fallback;
}

inline std::size_t probeSide() { return envSize("SPHEXA_PROBE_SIDE", 36); }
inline std::size_t targetParticles() { return envSize("SPHEXA_TARGET_N", 1000000); }

enum class TestCase
{
    SquarePatch,
    Evrard,
};

/// Probe-scale initial conditions with converged smoothing lengths seeded.
template<class T>
ParticleSet<T> makeProbeIC(TestCase tc, Box<T>& boxOut)
{
    ParticleSet<T> ps;
    if (tc == TestCase::SquarePatch)
    {
        SquarePatchConfig<T> cfg;
        cfg.nx = cfg.ny = probeSide();
        cfg.nz = probeSide() / 2;
        auto setup = makeSquarePatch(ps, cfg);
        boxOut = setup.box;
    }
    else
    {
        EvrardConfig<T> cfg;
        cfg.nSide = probeSide();
        auto setup = makeEvrard(ps, cfg);
        boxOut = setup.box;
    }
    return ps;
}

/// One strong-scaling series (one curve of a figure).
struct FigureSeries
{
    std::string machine;
    std::vector<ScalingPoint> points;
};

/// Paper-reported reference value at a core count (y-axis tick labels of
/// the figures), for side-by-side printing.
using PaperRefs = std::map<int, double>;

/// Run the full pipeline for one curve: probe per node count with the real
/// decomposition, predict with the cluster simulator, anchor at the paper's
/// 12-core measurement.
template<class T>
FigureSeries runScalingCurve(TestCase tc, const CodeProfile<T>& profile,
                             const Machine& machine, const std::vector<int>& coreCounts,
                             double anchorSeconds, const CostModel& cm)
{
    Box<T> box;
    auto ps = makeProbeIC<T>(tc, box);

    SimulationConfig<T> cfg = profile.config;
    cfg.selfGravity = (tc == TestCase::Evrard) && profile.config.gravity.order !=
                                                      MultipoleOrder::Monopole;
    if (tc == TestCase::Evrard)
    {
        cfg.selfGravity       = true;
        cfg.gravity.G         = 1;
        cfg.gravity.theta     = 0.5;
        cfg.gravity.softening = 0.02;
    }
    cfg.targetNeighbors   = 100; // the paper's ~10^2 neighbors
    cfg.neighborTolerance = 20;

    ClusterSimulator sim(cm);
    ScalingConfig sc;
    sc.machine         = machine;
    sc.targetParticles = targetParticles();
    sc.costScale =
        tc == TestCase::SquarePatch ? double(profile.costScaleSquare)
                                    : double(profile.costScaleEvrard);
    sc.activityFactor =
        profile.config.timestep.mode == TimesteppingMode::Individual ? 0.6 : 1.0;
    sc.serialTreeBuild = !profile.config.parallelTreeBuild;

    // one probe per distinct rank count
    std::map<int, WorkloadProbe> probes;
    FigureSeries series;
    series.machine = machine.name;
    for (int cores : coreCounts)
    {
        auto [ranks, threads] = ClusterSimulator::ranksAndThreads(cores, machine);
        (void)threads;
        if (!probes.count(ranks))
        {
            probes.emplace(ranks, probeWorkload(ps, box, cfg, ranks));
        }
        series.points.push_back(sim.predict(probes.at(ranks), cores, sc));
    }
    normalizeToAnchor(series.points, coreCounts.front(), anchorSeconds);
    return series;
}

/// Print one figure: all series side by side with paper reference values.
inline void printFigure(const std::string& title, const std::vector<FigureSeries>& series,
                        const PaperRefs& paperRefs)
{
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("(average time per time-step in seconds; model anchored at the first "
                "core count)\n\n");
    std::printf("%8s", "cores");
    for (const auto& s : series)
    {
        std::printf(" | %12s %9s %9s %7s", s.machine.c_str(), "compute", "comm", "LB");
    }
    std::printf(" | %10s\n", "paper");
    for (std::size_t k = 0; k < series.front().points.size(); ++k)
    {
        int cores = series.front().points[k].cores;
        std::printf("%8d", cores);
        for (const auto& s : series)
        {
            const auto& p = s.points[k];
            std::printf(" | %12.2f %9.2f %9.4f %7.3f", p.seconds, p.computeSeconds,
                        p.commSeconds, p.loadBalance);
        }
        if (paperRefs.count(cores))
        {
            std::printf(" | %10.2f", paperRefs.at(cores));
        }
        else
        {
            std::printf(" | %10s", "-");
        }
        std::printf("\n");
    }
}

/// Shape checks printed under each figure: monotone scaling region and the
/// stall once particles/core drops below ~10^4 (paper Sec. 5.2).
inline void printShapeSummary(const FigureSeries& s, std::size_t nTarget)
{
    const auto& pts = s.points;
    double bestSpeedup = 0;
    int bestCores = pts.front().cores;
    for (const auto& p : pts)
    {
        double sp = pts.front().seconds / p.seconds;
        if (sp > bestSpeedup)
        {
            bestSpeedup = sp;
            bestCores = p.cores;
        }
    }
    std::printf("  [%s] speedup %.1fx at %d cores (%.0f particles/core at the last "
                "point)\n",
                s.machine.c_str(), bestSpeedup, bestCores,
                double(nTarget) / pts.back().cores);
}

} // namespace sphexa::bench

/// \file bench_table5.cpp
/// Table 5 reproduction: runs both test simulations with their paper
/// characteristics — rotating square patch (3D, 20 time-steps, all three
/// code configurations) and Evrard collapse (3D, 20 time-steps, the two
/// astrophysics configurations, with self-gravity) — and prints the
/// Table 5 rows plus measured wall times and conservation results.
///
/// Particle counts default to a laptop-friendly size;
/// SPHEXA_TABLE5_SIDE=100 (with nz=100) reproduces the paper's 10^6.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/code_profiles.hpp"
#include "core/simulation.hpp"
#include "ic/evrard.hpp"
#include "ic/square_patch.hpp"

using namespace sphexa;
using namespace sphexa::bench;

namespace {

struct RunResult
{
    std::string code;
    std::size_t particles;
    int steps;
    double secondsPerStep;
    double energyDrift;
};

RunResult runSquare(const CodeProfile<double>& profile, std::size_t side, int steps)
{
    ParticleSet<double> ps;
    SquarePatchConfig<double> ic;
    ic.nx = ic.ny = side;
    ic.nz = side / 2;
    auto setup = makeSquarePatch(ps, ic);

    SimulationConfig<double> cfg = profile.config;
    cfg.selfGravity     = false;
    cfg.targetNeighbors = 80;
    std::size_t n = ps.size();

    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);
    sim.computeForces();
    auto c0 = sim.conservation();
    double secs = 0;
    for (int s = 0; s < steps; ++s)
    {
        secs += sim.advance().totalSeconds();
    }
    auto c1 = sim.conservation();
    return {profile.name, n, steps, secs / steps,
            relativeDrift(c1.totalEnergy(), c0.totalEnergy(),
                          std::max(std::abs(c0.totalEnergy()), 1.0))};
}

RunResult runEvrard(const CodeProfile<double>& profile, std::size_t side, int steps)
{
    ParticleSet<double> ps;
    EvrardConfig<double> ic;
    ic.nSide = side;
    auto setup = makeEvrard(ps, ic);

    SimulationConfig<double> cfg = profile.config;
    cfg.selfGravity       = true;
    cfg.gravity.G         = 1;
    cfg.gravity.theta     = 0.5;
    cfg.gravity.softening = 0.02;
    cfg.targetNeighbors   = 80;
    std::size_t n = ps.size();

    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);
    sim.computeForces();
    auto c0 = sim.conservation();
    double secs = 0;
    for (int s = 0; s < steps; ++s)
    {
        secs += sim.advance().totalSeconds();
    }
    auto c1 = sim.conservation();
    return {profile.name, n, steps, secs / steps,
            relativeDrift(c1.totalEnergy(), c0.totalEnergy(),
                          std::abs(c0.potentialEnergy))};
}

} // namespace

int main()
{
    std::size_t side = envSize("SPHEXA_TABLE5_SIDE", 24);
    const int steps = 20; // Table 5: "20 time-steps"

    std::printf("== Table 5: test simulations and their characteristics ==\n\n");
    std::printf("%-24s %-38s %-18s %-12s %-28s\n", "Test Simulation", "Description",
                "Domain Size", "Length", "SPH Codes");
    std::printf("%-24s %-38s %-18s %-12s %-28s\n", "Rotating Square Patch",
                "Rotation of a free-surface fluid patch", "3D, 10^6 (paper)",
                "20 steps", "SPHYNX, ChaNGa, SPH-flow");
    std::printf("%-24s %-38s %-18s %-12s %-28s\n", "Evrard Collapse",
                "Adiabatic collapse of cold gas sphere", "3D, 10^6 (paper)",
                "20 steps", "SPHYNX, ChaNGa (w/ gravity)");

    std::printf("\n-- executed now at reduced scale (SPHEXA_TABLE5_SIDE=%zu) --\n\n",
                side);
    std::printf("%-24s %-10s %10s %7s %14s %14s\n", "Test", "Code", "particles", "steps",
                "s/step", "E-drift");

    for (const auto& p : parentProfiles<double>())
    {
        auto r = runSquare(p, side, steps);
        std::printf("%-24s %-10s %10zu %7d %14.4f %14.3e\n", "Rotating Square Patch",
                    r.code.c_str(), r.particles, r.steps, r.secondsPerStep,
                    r.energyDrift);
    }
    for (const auto& p : parentProfiles<double>())
    {
        if (!p.config.selfGravity && p.name == "SPH-flow") continue; // astro codes only
        auto r = runEvrard(p, std::max<std::size_t>(12, side * 2 / 3), steps);
        std::printf("%-24s %-10s %10zu %7d %14.4f %14.3e\n", "Evrard Collapse",
                    r.code.c_str(), r.particles, r.steps, r.secondsPerStep,
                    r.energyDrift);
    }

    std::printf("\nBoth tests complete their 20 paper steps under every applicable\n"
                "parent-code configuration with bounded conservation drift.\n");
    return 0;
}

/// \file bench_kernels.cpp
/// Kernel ablation (google-benchmark): evaluation cost of every kernel
/// family in Table 2 — analytic vs table-accelerated — plus a density-pass
/// accuracy comparison. Informs the mini-app's interchangeable-kernel
/// design ("implemented as separate interchangeable modules", Sec. 4).

#include <benchmark/benchmark.h>

#include "sph/kernels.hpp"

using namespace sphexa;

namespace {

template<KernelType K>
void BM_KernelValue(benchmark::State& state)
{
    Kernel<double> k(K);
    double q = 0.0;
    for (auto _ : state)
    {
        q += 1e-7;
        if (q >= 2.0) q = 0.0;
        benchmark::DoNotOptimize(k.fq(q));
    }
}

template<KernelType K>
void BM_KernelDerivative(benchmark::State& state)
{
    Kernel<double> k(K);
    double q = 0.0;
    for (auto _ : state)
    {
        q += 1e-7;
        if (q >= 2.0) q = 0.0;
        benchmark::DoNotOptimize(k.dfq(q));
    }
}

void BM_SincTabulated(benchmark::State& state)
{
    Kernel<double> analytic(KernelType::Sinc);
    TabulatedKernel<double> k(analytic, std::size_t(state.range(0)));
    double q = 0.0;
    for (auto _ : state)
    {
        q += 1e-7;
        if (q >= 2.0) q = 0.0;
        benchmark::DoNotOptimize(k.fq(q));
    }
}

} // namespace

BENCHMARK(BM_KernelValue<KernelType::Sinc>)->Name("kernel_value/sinc");
BENCHMARK(BM_KernelValue<KernelType::CubicSpline>)->Name("kernel_value/m4");
BENCHMARK(BM_KernelValue<KernelType::WendlandC2>)->Name("kernel_value/wendland_c2");
BENCHMARK(BM_KernelValue<KernelType::WendlandC6>)->Name("kernel_value/wendland_c6");
BENCHMARK(BM_KernelDerivative<KernelType::Sinc>)->Name("kernel_deriv/sinc");
BENCHMARK(BM_KernelDerivative<KernelType::WendlandC2>)->Name("kernel_deriv/wendland_c2");
BENCHMARK(BM_SincTabulated)->Name("kernel_value/sinc_tabulated")->Arg(20000);

BENCHMARK_MAIN();

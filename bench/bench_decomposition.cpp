/// \file bench_decomposition.cpp
/// Domain-decomposition ablation: the three methods of Tables 3/4 —
/// "Straightforward" 1D slabs (SPHYNX), ORB (SPH-flow), SFC with Morton and
/// Hilbert curves (ChaNGa / mini-app) — compared on particle balance, halo
/// (ghost) fraction, and halo bytes, on both test-case geometries. The halo
/// fraction is the direct driver of communication volume and of the
/// strong-scaling stall (Sec. 5.2).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/config.hpp"
#include "perf/cluster_sim.hpp"

using namespace sphexa;
using namespace sphexa::bench;

namespace {

struct Method
{
    std::string name;
    DecompositionMethod method;
    SfcCurve curve;
};

void runCase(TestCase tc, const char* title)
{
    Box<double> box;
    auto ps = makeProbeIC<double>(tc, box);

    SimulationConfig<double> cfg;
    cfg.targetNeighbors   = 100;
    cfg.neighborTolerance = 20;

    std::vector<Method> methods{
        {"Slab1D (straightforward)", DecompositionMethod::Slab1D, SfcCurve::Morton},
        {"ORB", DecompositionMethod::OrthogonalRecursiveBisection, SfcCurve::Morton},
        {"SFC Morton", DecompositionMethod::SpaceFillingCurve, SfcCurve::Morton},
        {"SFC Hilbert", DecompositionMethod::SpaceFillingCurve, SfcCurve::Hilbert},
    };

    std::printf("\n-- %s (%zu particles) --\n", title, ps.size());
    std::printf("%-26s %6s %12s %14s %16s %14s\n", "method", "ranks", "imbalance",
                "ghost-frac", "halo KiB/rank", "msgs/rank");
    for (const auto& m : methods)
    {
        cfg.decomposition = m.method;
        cfg.sfcCurve      = m.curve;
        for (int ranks : {8, 32})
        {
            auto probe = probeWorkload(ps, box, cfg, ranks);
            double ghosts = 0, locals = 0, bytes = 0, msgs = 0;
            for (int r = 0; r < ranks; ++r)
            {
                ghosts += double(probe.treeParticles[r] - probe.localParticles[r]);
                locals += double(probe.localParticles[r]);
                bytes += double(probe.haloBytesSent[r]);
                msgs += double(probe.haloMessagesSent[r]);
            }
            std::printf("%-26s %6d %12.3f %14.3f %16.1f %14.0f\n", m.name.c_str(), ranks,
                        probe.interactionImbalance(), ghosts / locals,
                        bytes / 1024.0 / ranks, msgs / ranks);
        }
    }
}

} // namespace

int main()
{
    std::printf("== Decomposition ablation: balance and halo cost ==\n");
    runCase(TestCase::SquarePatch, "rotating square patch");
    runCase(TestCase::Evrard, "Evrard collapse (centrally condensed)");
    std::printf("\nreadout: slabs balance particle counts but pay the largest ghost\n"
                "fraction (faces span the whole domain); ORB and the SFC curves trade\n"
                "slightly rougher balance for much smaller halos — Hilbert < Morton in\n"
                "halo size thanks to better locality.\n");
    return 0;
}

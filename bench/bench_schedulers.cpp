/// \file bench_schedulers.cpp
/// Load-balancing ablation: the self-scheduling strategies of Table 4
/// ("DLB with self-scheduling") under three workload shapes — uniform,
/// linearly increasing, and SPH-like (per-particle cost proportional to the
/// real neighbor counts of an Evrard probe, whose central condensation is
/// exactly the imbalance the paper attributes to "multi-time-stepping" and
/// clustering). Reports achieved load balance and scheduling overhead.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "parallel/schedulers.hpp"
#include "tree/neighbors.hpp"
#include "tree/octree.hpp"

using namespace sphexa;
using namespace sphexa::bench;

namespace {

std::vector<double> evrardNeighborWeights()
{
    Box<double> box;
    auto ps = makeProbeIC<double>(TestCase::Evrard, box);
    Octree<double> tree;
    tree.build(ps.x, ps.y, ps.z, box);
    NeighborList<double> nl(ps.size(), 384);
    findNeighborsGlobal(tree, ps.x, ps.y, ps.z, ps.h, nl);
    std::vector<double> w(ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i)
        w[i] = 1.0 + double(nl.count(i));
    return w;
}

void runWorkload(const char* name, const std::vector<double>& weights)
{
    const std::size_t workers = 8;
    auto body = [&](std::size_t i) {
        volatile double sink = 0;
        auto reps = std::size_t(weights[i] * 20);
        for (std::size_t k = 0; k < reps; ++k)
            sink = sink + double(k);
    };

    std::printf("\n-- workload: %s (%zu iterations, %zu workers) --\n", name,
                weights.size(), workers);
    std::printf("%-8s %14s %12s %14s\n", "sched", "loadBalance", "chunks", "wall_ms");
    for (auto s : {SchedulingStrategy::Static, SchedulingStrategy::SelfScheduling,
                   SchedulingStrategy::Guided, SchedulingStrategy::Trapezoid,
                   SchedulingStrategy::Factoring,
                   SchedulingStrategy::AdaptiveWeightedFactoring})
    {
        auto rep = executeLoop(weights.size(), workers, s, body);
        std::printf("%-8s %14.3f %12zu %14.2f\n",
                    std::string(schedulingName(s)).c_str(), rep.loadBalance(),
                    rep.chunks, rep.wallSeconds * 1e3);
    }
}

} // namespace

int main()
{
    std::printf("== Scheduling ablation (Table 4: DLB with self-scheduling) ==\n");

    std::vector<double> uniform(20000, 1.0);
    runWorkload("uniform", uniform);

    std::vector<double> ramp(20000);
    for (std::size_t i = 0; i < ramp.size(); ++i)
        ramp[i] = 0.1 + 2.0 * double(i) / double(ramp.size());
    runWorkload("linear ramp", ramp);

    auto evrard = evrardNeighborWeights();
    runWorkload("SPH neighbor counts (Evrard probe)", evrard);

    std::printf("\nreadout: STATIC suffices for uniform work; the factoring family\n"
                "(FAC/AWF, refs [3,27] of the paper) holds balance on irregular\n"
                "workloads at a fraction of pure self-scheduling's overhead.\n");
    return 0;
}

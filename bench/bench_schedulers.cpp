/// \file bench_schedulers.cpp
/// Load-balancing ablation: the self-scheduling strategies of Table 4
/// ("DLB with self-scheduling") in two settings.
///
/// First the synthetic harness (executeLoop): uniform and linearly
/// increasing workloads show each strategy's balance/overhead character in
/// isolation. Then the in-situ ablation: a real Sedov run whose hot phases
/// (density, EOS+IAD, div/curl, momentum-energy) execute through the
/// persistent-pool ParallelFor layer under each strategy, with per-phase
/// load-balance efficiency read back from the StepReport's measured
/// per-worker busy times via the POP metrics — the scheduling ablation on
/// the actual solver instead of a synthetic loop.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "ic/sedov.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/schedulers.hpp"
#include "perf/pop_metrics.hpp"

using namespace sphexa;
using namespace sphexa::bench;

namespace {

const std::vector<SchedulingStrategy> kStrategies = {
    SchedulingStrategy::Static,          SchedulingStrategy::SelfScheduling,
    SchedulingStrategy::Guided,          SchedulingStrategy::Trapezoid,
    SchedulingStrategy::Factoring,       SchedulingStrategy::AdaptiveWeightedFactoring};

void runWorkload(const char* name, const std::vector<double>& weights)
{
    const std::size_t workers = 8;
    auto body = [&](std::size_t i) {
        volatile double sink = 0;
        auto reps = std::size_t(weights[i] * 20);
        for (std::size_t k = 0; k < reps; ++k)
            sink = sink + double(k);
    };

    std::printf("\n-- synthetic workload: %s (%zu iterations, %zu workers) --\n", name,
                weights.size(), workers);
    std::printf("%-8s %14s %12s %14s\n", "sched", "loadBalance", "chunks", "wall_ms");
    for (auto s : kStrategies)
    {
        auto rep = executeLoop(weights.size(), workers, s, body);
        std::printf("%-8s %14.3f %12zu %14.2f\n",
                    std::string(schedulingName(s)).c_str(), rep.loadBalance(),
                    rep.chunks, rep.wallSeconds * 1e3);
    }
}

/// In-situ ablation: run a Sedov blast with every hot phase scheduled under
/// strategy \p s and report the per-phase POP load balance measured by the
/// ParallelFor layer (StepReport::phaseLoad), averaged over \p nSteps.
void runSedovInSitu(SchedulingStrategy s, std::size_t workers, std::uint64_t nSteps)
{
    WorkerPool::instance().resize(workers);

    ParticleSetD ps;
    SedovConfig<double> sc;
    sc.nSide   = 20; // 8000 particles
    auto setup = makeSedov(ps, sc);

    SimulationConfig<double> cfg;
    cfg.targetNeighbors   = 60;
    cfg.neighborTolerance = 10;
    cfg.phaseSchedule.fillSphPhases(s);

    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);
    sim.computeForces();

    // accumulate the measured per-phase busy times across the run
    std::array<PhaseLoadStats, phaseCount> total{};
    sim.run(nSteps, [&](const StepReport<double>& rep) {
        for (int p = 0; p < phaseCount; ++p)
        {
            const auto& load = rep.phaseLoad[p];
            if (!load.workerBusySeconds.empty())
            {
                total[p].accumulate(load.workerBusySeconds, load.workerIterations,
                                    load.chunks, load.wallSeconds);
            }
        }
    });

    std::printf("%-8s", std::string(schedulingName(s)).c_str());
    for (Phase p : {Phase::E_Density, Phase::F_EosAndIad, Phase::G_DivCurl,
                    Phase::H_MomentumEnergy})
    {
        const auto& load = total[int(p)];
        if (load.workerBusySeconds.empty())
        {
            std::printf(" %11s", "-");
            continue;
        }
        auto m = computePopMetrics(load);
        std::printf(" %11.3f", m.loadBalance);
    }
    std::printf(" %10zu\n", total[int(Phase::H_MomentumEnergy)].chunks);
}

} // namespace

int main()
{
    std::printf("== Scheduling ablation (Table 4: DLB with self-scheduling) ==\n");

    std::vector<double> uniform(20000, 1.0);
    runWorkload("uniform", uniform);

    std::vector<double> ramp(20000);
    for (std::size_t i = 0; i < ramp.size(); ++i)
        ramp[i] = 0.1 + 2.0 * double(i) / double(ramp.size());
    runWorkload("linear ramp", ramp);

    const std::size_t workers  = 8;
    const std::uint64_t nSteps = 3;
    std::printf("\n-- in-situ: Sedov blast (8000 particles, %zu pool workers, "
                "%llu steps) --\n",
                workers, (unsigned long long)nSteps);
    std::printf("per-phase POP load balance from StepReport::phaseLoad\n");
    std::printf("%-8s %11s %11s %11s %11s %10s\n", "sched", "E:density", "F:eos+iad",
                "G:divcurl", "H:momentum", "H-chunks");
    for (auto s : kStrategies)
    {
        runSedovInSitu(s, workers, nSteps);
    }

    std::printf("\nreadout: STATIC suffices for uniform work; the factoring family\n"
                "(FAC/AWF, refs [3,27] of the paper) holds balance on the clustered\n"
                "post-blast neighborhoods at a fraction of pure self-scheduling's\n"
                "overhead — now measured on the real solver's phases, not a proxy.\n");
    return 0;
}

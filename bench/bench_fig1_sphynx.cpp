/// \file bench_fig1_sphynx.cpp
/// Figure 1 reproduction: SPHYNX strong scalability.
///   (b) rotating square patch, Piz Daint + MareNostrum, 12..384 cores
///   (c) Evrard collapse,       Piz Daint + MareNostrum, 12..384 cores
/// Average time per time-step; the model is anchored at the paper's
/// 12-core Piz Daint measurement of each curve (38.25 s square, 40.27 s
/// Evrard), everything else follows from the probe + machine model.

#include "bench_common.hpp"

using namespace sphexa;
using namespace sphexa::bench;

int main()
{
    auto profile = sphynxProfile<double>();
    auto cm      = CostModel::calibrate();
    std::vector<int> cores{12, 24, 48, 96, 192, 384};

    // Figure 1(b): square patch
    {
        auto daint = runScalingCurve(TestCase::SquarePatch, profile, pizDaint(), cores,
                                     38.25, cm);
        auto mn = runScalingCurve(TestCase::SquarePatch, profile, mareNostrum4(), cores,
                                  38.25 * 1.05, cm);
        PaperRefs refs{{12, 38.25}, {48, 11.06}, {384, 2.79}};
        printFigure("Figure 1(b): SPHYNX, rotating square patch", {daint, mn}, refs);
        printShapeSummary(daint, targetParticles());
    }

    // Figure 1(c): Evrard collapse
    {
        auto daint =
            runScalingCurve(TestCase::Evrard, profile, pizDaint(), cores, 40.27, cm);
        auto mn = runScalingCurve(TestCase::Evrard, profile, mareNostrum4(), cores,
                                  40.27 * 1.05, cm);
        PaperRefs refs{{12, 40.27}, {48, 12.55}, {384, 3.86}};
        printFigure("Figure 1(c): SPHYNX, Evrard collapse (with self-gravity)",
                    {daint, mn}, refs);
        printShapeSummary(daint, targetParticles());
    }

    std::printf("\npaper column: the y-axis tick values printed in Fig. 1 "
                "(38.25/11.06/2.79 s and 40.27/12.55/3.86 s).\n");
    return 0;
}

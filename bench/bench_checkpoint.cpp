/// \file bench_checkpoint.cpp
/// Checkpointing ablation (Table 4: "Optimal interval, Multilevel"):
///  1. write/restore cost of the two levels on real particle state;
///  2. Young/Daly interval validation: simulated makespan under exponential
///     failures across checkpoint intervals, showing the minimum at the
///     analytic optimum;
///  3. two-level plan for burst-buffer-style cost ratios.

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "ft/checkpoint.hpp"
#include "ft/daly.hpp"
#include "perf/timer.hpp"

using namespace sphexa;
using namespace sphexa::bench;

int main()
{
    // --- level costs on real state ---
    Box<double> box;
    auto ps = makeProbeIC<double>(TestCase::SquarePatch, box);
    auto dir = std::filesystem::temp_directory_path() / "sphexa_bench_ckpt";
    std::filesystem::remove_all(dir);
    Checkpointer<double> ck(dir);

    Timer t;
    ck.write(CheckpointLevel::Memory, ps, 0.0, 0);
    double memS = t.lap();
    ck.write(CheckpointLevel::Disk, ps, 0.0, 0);
    double diskS = t.lap();
    auto restored = ck.restore();
    double restS = t.lap();

    std::printf("== Checkpoint/restart costs (%zu particles, %.1f MiB state) ==\n",
                ps.size(), double(ck.memoryBytes()) / (1 << 20));
    std::printf("level 1 (memory) write: %8.2f ms\n", memS * 1e3);
    std::printf("level 2 (disk)   write: %8.2f ms\n", diskS * 1e3);
    std::printf("restore:                %8.2f ms (valid: %s)\n", restS * 1e3,
                restored ? "yes" : "NO");

    // --- interval validation ---
    double C = 15.0, R = 40.0, M = 1800.0, W = 30000.0;
    double tauY = youngInterval(C, M);
    double tauD = dalyInterval(C, M);
    std::printf("\n== Optimal interval validation (C=%.0fs R=%.0fs MTBF=%.0fs, "
                "W=%.0fs of work) ==\n",
                C, R, M, W);
    std::printf("Young interval: %.1f s | Daly interval: %.1f s\n\n", tauY, tauD);
    std::printf("%12s %16s %16s\n", "tau/tauYoung", "sim makespan", "model makespan");

    double best = 1e30, bestTau = 0;
    for (double f : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0})
    {
        double tau = f * tauY;
        double s = 0;
        for (std::uint64_t seed = 1; seed <= 25; ++seed)
        {
            s += simulateCheckpointing(W, tau, C, R, M, seed);
        }
        double wall = s / 25;
        double model = W * (1.0 + expectedWasteFraction(tau, C, R, M));
        std::printf("%12.3f %16.0f %16.0f\n", f, wall, model);
        if (wall < best)
        {
            best = wall;
            bestTau = tau;
        }
    }
    std::printf("\nsimulated optimum at tau = %.1f s (analytic Young %.1f, Daly %.1f): "
                "within the flat region around the model minimum\n",
                bestTau, tauY, tauD);

    // --- two-level plan ---
    auto plan = twoLevelOptimal(memS + 0.5, diskS + 20.0, 1.0 / 600, 1.0 / 86400);
    std::printf("\n== Two-level plan (L1 soft errors every 10 min, L2 node loss daily) "
                "==\n");
    std::printf("take %d level-1 checkpoints per level-2 checkpoint, L1 interval "
                "%.1f s\n",
                plan.n1, plan.tau1);
    return 0;
}

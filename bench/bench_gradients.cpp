/// \file bench_gradients.cpp
/// Gradient-formulation ablation (Table 2: "IAD, Kernel derivatives"):
/// accuracy of both estimators on a linear field as particle disorder
/// grows, and the per-interaction cost of each — quantifying what SPHYNX
/// buys (and pays) for the integral approach of Garcia-Senz et al. 2012.

#include <cstdio>

#include "domain/box.hpp"
#include "ic/lattice.hpp"
#include "perf/timer.hpp"
#include "sph/density.hpp"
#include "sph/iad.hpp"
#include "sph/momentum_energy.hpp"
#include "sph/smoothing_length.hpp"
#include "tree/neighbors.hpp"
#include "tree/octree.hpp"

using namespace sphexa;

int main()
{
    const std::size_t side = 20;
    Box<double> box{{0, 0, 0}, {1, 1, 1}, true, true, true};

    std::printf("== Gradient ablation: IAD vs kernel derivatives ==\n\n");
    std::printf("%-10s %16s %16s %14s %14s\n", "jitter", "err(KernelDeriv)", "err(IAD)",
                "t_prep_ms", "t_iad_ms");

    for (double jitter : {0.0, 0.1, 0.2, 0.4})
    {
        ParticleSetD ps;
        cubicLattice(ps, side, side, side, box);
        if (jitter > 0) jitterPositions(ps, box, 1.0 / side, jitter, 99);
        for (std::size_t i = 0; i < ps.size(); ++i)
        {
            ps.m[i] = 1.0 / double(ps.size());
            ps.h[i] = initialSmoothingLength(ps.size(), box, 100);
        }
        Octree<double> tree;
        tree.build(ps.x, ps.y, ps.z, box);
        NeighborList<double> nl(ps.size(), 384);
        SmoothingLengthParams<double> hp;
        updateSmoothingLengths(ps, tree, nl, hp);

        Kernel<double> kernel(KernelType::Sinc);
        computeVolumeElementWeights(ps, VolumeElements::Standard);
        Timer t;
        computeDensity(ps, nl, kernel, box);
        double tPrep = t.lap();
        computeIadCoefficients(ps, nl, kernel, box);
        double tIad = t.lap();

        std::vector<double> field(ps.size());
        for (std::size_t i = 0; i < ps.size(); ++i)
            field[i] = 2 * ps.x[i] + 3 * ps.y[i] - ps.z[i];
        Vec3<double> exact{2, 3, -1};

        double errIad = 0, errKd = 0;
        std::size_t tested = 0;
        for (std::size_t i = 0; i < ps.size(); ++i)
        {
            double margin = 2.5 * ps.h[i];
            bool interior = ps.x[i] > margin && ps.x[i] < 1 - margin && ps.y[i] > margin &&
                            ps.y[i] < 1 - margin && ps.z[i] > margin &&
                            ps.z[i] < 1 - margin;
            if (!interior) continue;
            errIad += norm(iadScalarGradient(ps, nl, kernel, box,
                                             std::span<const double>(field), i) -
                           exact);
            errKd += norm(kernelDerivativeScalarGradient(
                              ps, nl, kernel, box, std::span<const double>(field), i) -
                          exact);
            ++tested;
        }
        std::printf("%-10.2f %16.3e %16.3e %14.2f %14.2f\n", jitter,
                    errKd / double(tested), errIad / double(tested), tPrep * 1e3,
                    tIad * 1e3);
    }

    std::printf("\nreadout: IAD stays machine-accurate on linear fields at any\n"
                "disorder; the kernel-derivative error grows with jitter. IAD's price\n"
                "is one extra pipeline pass (tau assembly + 3x3 inversions).\n");
    return 0;
}

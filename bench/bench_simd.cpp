/// \file bench_simd.cpp
/// Backend sweep of the hot SPH sums (phases E-H: density, IAD, div/curl,
/// momentum-energy): Scalar reference loops vs the Simd lane kernels
/// (src/backend/) over a jittered gas lattice at N = 1e4 .. 1e6, in both
/// neighbor-list frames (per-particle tree walk on the seed layout, SFC
/// sort + cluster search). Emits one JSON record per (N, mode, backend)
/// point with per-phase timings — the data behind BENCH_simd.json:
///
///     ./bench_simd > BENCH_simd.json
///
/// Two gates make this a regression fence, not just a report:
///  - at the smallest size, the Simd results must be BITWISE invariant
///    across worker pools {1, 2, 4} and all six scheduling strategies
///    (the fixed-order lane reduction contract of docs/ARCHITECTURE.md);
///  - at the largest size, combined E-H under Simd must beat Scalar by
///    SPHEXA_SIMD_MIN_SPEEDUP (default 1.2x) in the shipping frame
///    (cluster); below the gate the bench exits non-zero.
///
/// Environment:
///   SPHEXA_SIMD_MAXN=NNN          cap the sweep (default 1000000; CI uses
///                                 a small cap for a smoke run)
///   SPHEXA_SIMD_REPS=R            timing repetitions (default 3 small, 1 large)
///   SPHEXA_SIMD_MIN_SPEEDUP=X.Y   speedup gate (default 1.2; 0 disables)

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "backend/kernel_backend.hpp"
#include "backend/lane_kernel.hpp"
#include "bench_common.hpp"
#include "ic/lattice.hpp"
#include "parallel/parallel_for.hpp"
#include "perf/timer.hpp"
#include "sph/density.hpp"
#include "sph/divcurl.hpp"
#include "sph/eos.hpp"
#include "sph/iad.hpp"
#include "sph/momentum_energy.hpp"
#include "tree/cluster_list.hpp"
#include "tree/neighbors.hpp"
#include "tree/octree.hpp"
#include "tree/sfc_sort.hpp"

using namespace sphexa;

namespace {

constexpr unsigned kNgmax       = 192;
constexpr unsigned kClusterSize = 32;

double envDouble(const char* name, double fallback)
{
    const char* v = std::getenv(name);
    if (!v) return fallback;
    char* end  = nullptr;
    double got = std::strtod(v, &end);
    return end != v ? got : fallback;
}

/// Jittered unit-box lattice sized for ~100 neighbors per particle (the
/// paper's working point), with the upstream fields of the force phases
/// filled: mass, energy, a smooth shear+rotation velocity field.
ParticleSetD makeCloud(std::size_t nSide, Box<double>& boxOut)
{
    ParticleSetD ps;
    Box<double> box{{0, 0, 0}, {1, 1, 1}, true, true, true};
    cubicLattice(ps, nSide, nSide, nSide, box);
    double dx = 1.0 / double(nSide);
    jitterPositions(ps, box, dx, 0.2, /*seed*/ 42 + nSide);
    double h = 0.5 * dx * std::cbrt(3.0 * 100.0 / (4.0 * std::numbers::pi));
    for (std::size_t i = 0; i < ps.size(); ++i)
    {
        ps.h[i]  = h;
        ps.m[i]  = 1.0 / double(ps.size());
        ps.u[i]  = 1.0;
        ps.vx[i] = 0.3 * ps.y[i] - 0.1 * ps.z[i];
        ps.vy[i] = -0.2 * ps.x[i] + 0.05 * std::sin(6.28 * ps.z[i]);
        ps.vz[i] = 0.15 * ps.x[i] + 0.1 * ps.y[i];
    }
    boxOut = box;
    return ps;
}

/// Scalar prerequisites so every timed phase starts from a physical state:
/// volume elements, density, EOS, IAD coefficients, balsara switches.
void fillUpstream(ParticleSetD& ps, const NeighborList<double>& nl,
                  const Kernel<double>& kernel, const Box<double>& box)
{
    computeVolumeElementWeights(ps, VolumeElements::Standard);
    computeDensity(ps, nl, kernel, box);
    Eos<double> eos{IdealGasEos<double>(5.0 / 3.0)};
    for (std::size_t i = 0; i < ps.size(); ++i)
    {
        auto res = eos(ps.rho[i], ps.u[i]);
        ps.p[i]  = res.pressure;
        ps.c[i]  = res.soundSpeed;
    }
    computeIadCoefficients(ps, nl, kernel, box);
    computeDivCurl(ps, nl, kernel, box, GradientMode::IAD);
}

struct Point
{
    std::size_t n{};
    std::size_t pool{};
    std::string mode;
    std::string backend;
    double densitySeconds{};
    double iadSeconds{};
    double divcurlSeconds{};
    double momentumSeconds{};
    double totalSeconds{};
    double speedup{}; ///< simd records only: scalar total / simd total
};

void setWorkers(std::size_t pool)
{
    WorkerPool::instance().resize(pool);
#ifdef _OPENMP
    omp_set_num_threads(int(pool));
#endif
}

/// Run the four force phases once under `be`, timing each; fold the lap
/// times into the min-of-reps accumulator `p`.
void runPhases(ParticleSetD& ps, const NeighborList<double>& nl,
               const Kernel<double>& kernel, const Box<double>& box,
               const ComputeBackend<double>& be, Point& p, bool first)
{
    Timer t;
    auto fold = [&](double& slot, double got) {
        if (first || got < slot) slot = got;
    };
    t.reset();
    computeDensity(ps, nl, kernel, box, {}, {}, be);
    fold(p.densitySeconds, t.lap());
    t.reset();
    computeIadCoefficients(ps, nl, kernel, box, {}, {}, be);
    fold(p.iadSeconds, t.lap());
    t.reset();
    computeDivCurl(ps, nl, kernel, box, GradientMode::IAD, {}, {}, be);
    fold(p.divcurlSeconds, t.lap());
    t.reset();
    computeMomentumEnergy(ps, nl, kernel, box, GradientMode::IAD, {}, {}, {}, be);
    fold(p.momentumSeconds, t.lap());
}

/// Bitwise gate at the smallest size: the Simd path must produce the exact
/// same bits for every pool size in {1, 2, 4} under every scheduling
/// strategy. Returns the number of mismatching (field, point) pairs.
std::size_t checkSimdInvariance(const ParticleSetD& psBase, const NeighborList<double>& nl,
                                const Kernel<double>& kernel, const LaneKernel<double>& lanes,
                                const Box<double>& box)
{
    constexpr std::array<SchedulingStrategy, 6> strategies{
        SchedulingStrategy::Static,    SchedulingStrategy::SelfScheduling,
        SchedulingStrategy::Guided,    SchedulingStrategy::Trapezoid,
        SchedulingStrategy::Factoring, SchedulingStrategy::AdaptiveWeightedFactoring};
    ComputeBackend<double> be{KernelBackend::Simd, &lanes};

    auto run = [&](std::size_t pool, SchedulingStrategy strat) {
        setWorkers(pool);
        LoopPolicy pol;
        pol.strategy = strat;
        std::vector<double> awf;
        if (strat == SchedulingStrategy::AdaptiveWeightedFactoring) pol.awfWeights = &awf;
        ParticleSetD ps = psBase;
        computeDensity(ps, nl, kernel, box, {}, pol, be);
        computeIadCoefficients(ps, nl, kernel, box, {}, pol, be);
        computeDivCurl(ps, nl, kernel, box, GradientMode::IAD, {}, pol, be);
        computeMomentumEnergy(ps, nl, kernel, box, GradientMode::IAD, {}, {}, pol, be);
        return ps;
    };

    auto ref               = run(1, SchedulingStrategy::Static);
    std::size_t mismatches = 0;
    auto compare           = [&](const std::vector<double>& a, const std::vector<double>& b,
                                 const char* what, std::size_t pool, int strat) {
        for (std::size_t i = 0; i < a.size(); ++i)
        {
            if (a[i] != b[i]) // bitwise, not tolerance
            {
                if (++mismatches <= 5)
                {
                    std::fprintf(stderr,
                                 "FATAL: simd %s[%zu] differs at pool=%zu strategy=%d: "
                                 "%.17g vs %.17g\n",
                                 what, i, pool, strat, a[i], b[i]);
                }
            }
        }
    };
    for (std::size_t pool : {std::size_t(1), std::size_t(2), std::size_t(4)})
    {
        for (SchedulingStrategy strat : strategies)
        {
            auto got = run(pool, strat);
            compare(ref.rho, got.rho, "rho", pool, int(strat));
            compare(ref.c11, got.c11, "c11", pool, int(strat));
            compare(ref.divv, got.divv, "divv", pool, int(strat));
            compare(ref.ax, got.ax, "ax", pool, int(strat));
            compare(ref.du, got.du, "du", pool, int(strat));
        }
    }
    return mismatches;
}

void printPoint(const Point& p, bool last)
{
    std::printf("    {\"n\": %zu, \"pool\": %zu, \"mode\": \"%s\", \"backend\": \"%s\", "
                "\"density_seconds\": %.6f, \"iad_seconds\": %.6f, "
                "\"divcurl_seconds\": %.6f, \"momentum_seconds\": %.6f, "
                "\"total_seconds\": %.6f",
                p.n, p.pool, p.mode.c_str(), p.backend.c_str(), p.densitySeconds,
                p.iadSeconds, p.divcurlSeconds, p.momentumSeconds, p.totalSeconds);
    if (p.backend == "simd") std::printf(", \"speedup\": %.3f", p.speedup);
    std::printf("}%s\n", last ? "" : ",");
}

} // namespace

int main()
{
    std::size_t maxN  = bench::envSize("SPHEXA_SIMD_MAXN", 1000000);
    double gate       = envDouble("SPHEXA_SIMD_MIN_SPEEDUP", 1.2);
    std::size_t pool  = 4;
    Kernel<double> kernel(KernelType::Sinc); // the paper profiles' default
    LaneKernel<double> lanes(kernel);

    std::vector<std::size_t> sides;
    for (std::size_t side : {22, 46, 100}) // 1e4, 1e5, 1e6 particles
    {
        if (side * side * side <= maxN) sides.push_back(side);
    }
    if (sides.empty()) sides.push_back(10);

    std::vector<Point> points;
    double gatedSpeedup = 0; // cluster-mode speedup at the largest size
    std::size_t invarianceMismatches = 0;
    bool invarianceChecked           = false;

    for (std::size_t side : sides)
    {
        Box<double> box;
        auto psBase   = makeCloud(side, box);
        std::size_t n = psBase.size();
        std::size_t reps = bench::envSize("SPHEXA_SIMD_REPS", n <= 200000 ? 3 : 1);

        for (const char* mode : {"treewalk", "cluster"})
        {
            ParticleSetD ps = psBase;
            if (std::string(mode) == "cluster")
            {
                SfcSorter<double> sorter;
                sorter.apply(ps, box, SfcCurve::Hilbert);
            }
            Octree<double> tree;
            tree.build(ps.x, ps.y, ps.z, box);
            NeighborList<double> nl(n, kNgmax);
            if (std::string(mode) == "cluster")
            {
                ClusterWorkspace<double> ws;
                findNeighborsClustered(tree, ps.x, ps.y, ps.z, ps.h, nl, ws, kClusterSize);
            }
            else
            {
                findNeighborsGlobal(tree, ps.x, ps.y, ps.z, ps.h, nl);
            }
            setWorkers(pool);
            fillUpstream(ps, nl, kernel, box);

            double scalarTotal = 0;
            for (const char* backendName : {"scalar", "simd"})
            {
                bool isSimd = std::string(backendName) == "simd";
                ComputeBackend<double> be{
                    isSimd ? KernelBackend::Simd : KernelBackend::Scalar, &lanes};
                Point p;
                p.n       = n;
                p.pool    = pool;
                p.mode    = mode;
                p.backend = backendName;
                for (std::size_t r = 0; r < reps; ++r)
                {
                    runPhases(ps, nl, kernel, box, be, p, r == 0);
                }
                p.totalSeconds =
                    p.densitySeconds + p.iadSeconds + p.divcurlSeconds + p.momentumSeconds;
                if (!isSimd) { scalarTotal = p.totalSeconds; }
                else
                {
                    p.speedup = scalarTotal / p.totalSeconds;
                    if (std::string(mode) == "cluster" && side == sides.back())
                    {
                        gatedSpeedup = p.speedup;
                    }
                }
                points.push_back(p);
                std::fprintf(stderr, "n=%7zu pool=%zu %-8s %-6s E-H %.4fs%s\n", n, pool,
                             mode, backendName, p.totalSeconds,
                             isSimd ? (" (speedup " + std::to_string(p.speedup) + "x)").c_str()
                                    : "");
            }

            // bitwise pool/strategy invariance of the Simd path, smallest
            // size, seed-layout frame (cheap: 18 full E-H evaluations)
            if (side == sides.front() && std::string(mode) == "treewalk")
            {
                invarianceMismatches = checkSimdInvariance(ps, nl, kernel, lanes, box);
                invarianceChecked    = true;
                setWorkers(pool);
            }
        }
    }

    std::printf("{\n  \"bench\": \"simd-backend\",\n");
    std::printf("  \"kernel\": \"%.*s\",\n", int(kernelName(KernelType::Sinc).size()),
                kernelName(KernelType::Sinc).data());
    std::printf("  \"ngmax\": %u,\n  \"cluster_size\": %u,\n", kNgmax, kClusterSize);
    std::printf("  \"max_n\": %zu,\n", maxN);
    std::printf("  \"pool\": %zu,\n", pool);
    std::printf("  \"min_speedup_gate\": %.2f,\n", gate);
    std::printf("  \"gated_speedup\": %.3f,\n", gatedSpeedup);
    std::printf("  \"simd_bitwise_invariant\": %s,\n",
                invarianceChecked && invarianceMismatches == 0 ? "true" : "false");
    std::printf("  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i)
        printPoint(points[i], i + 1 == points.size());
    std::printf("  ]\n}\n");

    if (invarianceMismatches != 0)
    {
        std::fprintf(stderr, "FATAL: %zu bitwise mismatches in the Simd "
                             "pool/strategy invariance gate\n",
                     invarianceMismatches);
        return 1;
    }
    if (gate > 0 && gatedSpeedup < gate)
    {
        std::fprintf(stderr,
                     "FATAL: combined E-H Simd speedup %.3fx below the %.2fx gate "
                     "(override with SPHEXA_SIMD_MIN_SPEEDUP)\n",
                     gatedSpeedup, gate);
        return 1;
    }
    return 0;
}

/// \file bench_pop_metrics.cpp
/// Reproduces the POP efficiency analysis quoted in Sec. 5.2: "While the
/// communication efficiency and computation scalability are close to ideal,
/// the measured global efficiency steadily decreases from 48 cores to 192
/// cores. Most of the efficiency loss comes from an increased load
/// imbalance."
///
/// For each core count, one real SPHYNX-configuration step of the Evrard
/// collapse runs over the matching number of simulated ranks; per-rank
/// useful/communication times give the POP metric hierarchy, with the
/// 48-core run as the computation-scalability reference.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "domain/distributed.hpp"
#include "perf/pop_metrics.hpp"
#include "perf/tracer.hpp"

using namespace sphexa;
using namespace sphexa::bench;

int main()
{
    Box<double> box;
    auto ps = makeProbeIC<double>(TestCase::Evrard, box);

    auto profile = sphynxProfile<double>();
    SimulationConfig<double> cfg = profile.config;
    cfg.selfGravity       = true;
    cfg.gravity.G         = 1;
    cfg.gravity.theta     = 0.5;
    cfg.gravity.softening = 0.02;
    cfg.targetNeighbors   = 100;
    cfg.neighborTolerance = 20;
    Eos<double> eos{IdealGasEos<double>(5.0 / 3.0)};

    const int threadsPerRank = 12; // Piz Daint node
    std::vector<int> coreCounts{48, 96, 192};

    std::printf("== POP efficiency analysis (SPHYNX config, Evrard, Piz Daint) ==\n");
    std::printf("probe: %zu particles; ranks = cores/12; reference = %d cores\n\n",
                ps.size(), coreCounts.front());
    std::printf("%8s %8s %14s %14s %14s %14s %14s\n", "cores", "ranks", "LoadBalance",
                "CommEff", "ParallelEff", "CompScal", "GlobalEff");

    PopMetrics reference{};
    bool haveRef = false;
    double lbFirst = 1.0, lbLast = 1.0, geFirst = 1.0, geLast = 1.0, ceLast = 1.0;
    NetworkModel net(pizDaint().network);

    for (int cores : coreCounts)
    {
        int ranks = cores / threadsPerRank;
        DistributedSimulation<double> sim(ps, box, eos, cfg, ranks);
        sim.advance(); // warm-up

        // average the per-rank phase times over several steps to tame
        // wall-clock noise at small probe sizes
        const int steps = 3;
        std::vector<std::array<double, phaseCount>> phases(ranks);
        std::vector<double> comm(ranks, 0.0);
        for (int s = 0; s < steps; ++s)
        {
            auto rep = sim.advance();
            for (int r = 0; r < ranks; ++r)
            {
                for (int p = 0; p < phaseCount; ++p)
                {
                    phases[r][p] += rep.ranks[r].phaseSeconds[p] / steps;
                }
                comm[r] += (net.p2pBatch(rep.ranks[r].traffic.messagesSent,
                                         rep.ranks[r].traffic.bytesSent) +
                            4 * net.allreduce(ranks, 8)) /
                           steps;
            }
        }
        auto trace = expandTrace<double>(phases, comm, threadsPerRank,
                                         sphynx131Parallelism());
        auto m = computePopMetrics(trace);
        if (!haveRef)
        {
            reference = m;
            haveRef   = true;
        }
        m = withScalability(m, reference);

        std::printf("%8d %8d %14.3f %14.3f %14.3f %14.3f %14.3f\n", cores, ranks,
                    m.loadBalance, m.communicationEfficiency, m.parallelEfficiency,
                    m.computationScalability, m.globalEfficiency);
        if (cores == coreCounts.front())
        {
            lbFirst = m.loadBalance;
            geFirst = m.globalEfficiency;
        }
        lbLast = m.loadBalance;
        geLast = m.globalEfficiency;
        ceLast = m.communicationEfficiency;
    }

    bool reproduced = lbLast < lbFirst && geLast < geFirst && ceLast > 0.5;
    std::printf("\npaper's finding reproduced: %s — communication efficiency stays "
                "high while load\nbalance (and with it global efficiency) decreases "
                "from %d to %d cores\n(LB %.2f -> %.2f, GE %.2f -> %.2f).\n",
                reproduced ? "YES" : "NO (check probe size)", coreCounts.front(),
                coreCounts.back(), lbFirst, lbLast, geFirst, geLast);
    return 0;
}

/// \file bench_sdc.cpp
/// Silent-data-corruption ablation (Table 4: "Silent data corruption
/// detectors"): detector recall as a function of the flipped bit position,
/// per-step scan overhead on real particle state, and false-positive
/// behaviour across clean steps of a real simulation.

#include <cstdio>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "ft/sdc.hpp"
#include "perf/timer.hpp"

using namespace sphexa;
using namespace sphexa::bench;

int main()
{
    Box<double> box;
    auto ps = makeProbeIC<double>(TestCase::SquarePatch, box);
    const std::vector<std::string> liveFields{"x", "y", "z", "vx", "vy", "rho",
                                              "h", "m", "p", "u"};

    // --- recall vs bit position ---
    std::printf("== SDC detector recall vs flipped bit (on %zu particles) ==\n\n",
                ps.size());
    std::printf("%-14s %10s %10s %10s %12s\n", "bit range", "range", "temporal",
                "combined", "injections");

    Xoshiro256pp rng(4242);
    struct BitRange
    {
        const char* name;
        int lo, hi;
    };
    for (auto br : {BitRange{"sign 63", 63, 63}, BitRange{"exp 56..62", 56, 62},
                    BitRange{"mant 40..51", 40, 51}, BitRange{"mant 0..20", 0, 20}})
    {
        int nR = 0, nT = 0, nC = 0;
        const int trials = 60;
        for (int t = 0; t < trials; ++t)
        {
            auto work = ps;
            TemporalDetector<double> temporal(liveFields, 0.5);
            temporal.snapshot(work);
            RangeDetector<double> range;

            SdcInjector<double> inj;
            inj.field = liveFields[rng.uniformInt(liveFields.size())];
            inj.index = rng.uniformInt(work.size());
            inj.bit   = br.lo + int(rng.uniformInt(std::uint64_t(br.hi - br.lo + 1)));
            inj.inject(work);

            bool r = !range.scan(work).empty();
            bool tm = !temporal.scan(work).empty();
            nR += r;
            nT += tm;
            nC += (r || tm);
        }
        std::printf("%-14s %9.0f%% %9.0f%% %9.0f%% %12d\n", br.name, 100.0 * nR / trials,
                    100.0 * nT / trials, 100.0 * nC / trials, trials);
    }

    // --- scan overhead ---
    {
        RangeDetector<double> range;
        TemporalDetector<double> temporal(liveFields, 0.5);
        temporal.snapshot(ps);
        Timer t;
        const int reps = 20;
        volatile std::size_t sink = 0;
        for (int i = 0; i < reps; ++i)
        {
            auto r1 = range.scan(ps);
            auto r2 = temporal.scan(ps);
            sink = sink + r1.size() + r2.size();
        }
        std::printf("\nscan overhead: %.2f ms per step (range+temporal, %zu "
                    "particles)\n",
                    t.elapsed() / reps * 1e3, ps.size());
    }

    // --- false positives across real clean steps ---
    {
        SimulationConfig<double> cfg = sphexaProfile<double>().config;
        cfg.selfGravity     = false;
        cfg.targetNeighbors = 60;
        ParticleSetD psSmall;
        SquarePatchConfig<double> small;
        small.nx = small.ny = 16;
        small.nz = 8;
        auto setup = makeSquarePatch(psSmall, small);
        Simulation<double> sim(psSmall, setup.box, Eos<double>(setup.eos), cfg);
        sim.computeForces();

        RangeDetector<double> range;
        ConservationDetector<double> cons(5e-2);
        cons.snapshot(sim.conservation());
        std::size_t falsePos = 0;
        const int steps = 10;
        for (int s = 0; s < steps; ++s)
        {
            sim.advance();
            falsePos += range.scan(sim.particles()).size();
            falsePos += cons.scan(sim.conservation()).size();
        }
        std::printf("false positives over %d clean simulation steps: %zu\n", steps,
                    falsePos);
    }

    std::printf("\nreadout: exponent/sign corruptions are caught at ~100%%; low\n"
                "mantissa bits are numerically negligible (below detector thresholds\n"
                "by design) — matching the paper's refs [6,44] on which errors "
                "matter.\n");
    return 0;
}

/// \file bench_fig3_sphflow.cpp
/// Figure 3 reproduction: SPH-flow strong scalability on the rotating
/// square patch (the industrial CFD code has no self-gravity, so only this
/// test applies), Piz Daint + MareNostrum, 12..768 cores, anchored at the
/// paper's 31.00 s / 12 cores. SPH-flow's ORB decomposition (Table 3) is
/// exercised by the probe.

#include "bench_common.hpp"

using namespace sphexa;
using namespace sphexa::bench;

int main()
{
    auto profile = sphflowProfile<double>();
    auto cm      = CostModel::calibrate();
    std::vector<int> cores{12, 24, 48, 96, 192, 384, 768};

    auto daint =
        runScalingCurve(TestCase::SquarePatch, profile, pizDaint(), cores, 31.00, cm);
    auto mn = runScalingCurve(TestCase::SquarePatch, profile, mareNostrum4(), cores,
                              31.00 * 1.05, cm);
    PaperRefs refs{{12, 31.00}, {48, 9.27}, {768, 2.80}};
    printFigure("Figure 3: SPH-flow, rotating square patch", {daint, mn}, refs);
    printShapeSummary(daint, targetParticles());

    std::printf("\nSPH-flow uses Orthogonal Recursive Bisection (Table 3); the probe\n"
                "ran the real ORB decomposition at every node count.\n");
    return 0;
}

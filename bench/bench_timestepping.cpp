/// \file bench_timestepping.cpp
/// Time-stepping ablation: Global vs Individual (2^k bins) vs Adaptive —
/// Table 2's three modes. On the Evrard collapse the per-particle stable
/// steps span a wide range (dense center vs diffuse edge), so individual
/// stepping skips most force evaluations; the paper flags the same feature
/// as a load-imbalance source (Sec. 4). Reports work saved and the
/// active-set statistics per mode.

#include <cstdio>

#include "bench_common.hpp"
#include "core/simulation.hpp"

using namespace sphexa;
using namespace sphexa::bench;

int main()
{
    Box<double> box;
    auto ic = makeProbeIC<double>(TestCase::Evrard, box);

    std::printf("== Time-stepping ablation (Evrard, %zu particles) ==\n\n", ic.size());
    std::printf("%-12s %8s %16s %16s %14s\n", "mode", "steps", "interactions",
                "active/step", "sim-time");

    for (auto mode : {TimesteppingMode::Global, TimesteppingMode::Adaptive,
                      TimesteppingMode::Individual})
    {
        SimulationConfig<double> cfg = sphynxProfile<double>().config;
        cfg.selfGravity       = true;
        cfg.gravity.G         = 1;
        cfg.gravity.theta     = 0.5;
        cfg.gravity.softening = 0.02;
        cfg.targetNeighbors   = 80;
        cfg.timestep.mode     = mode;
        cfg.neighborMode      = mode == TimesteppingMode::Individual
                                    ? NeighborMode::IndividualTreeWalk
                                    : NeighborMode::GlobalTreeWalk;

        Eos<double> eos{IdealGasEos<double>(5.0 / 3.0)};
        Simulation<double> sim(ic, box, eos, cfg);
        sim.computeForces();

        const int steps = 12;
        std::size_t interactions = 0, activeSum = 0;
        for (int s = 0; s < steps; ++s)
        {
            auto rep = sim.advance();
            // only active particles' interactions are recomputed
            interactions +=
                std::size_t(double(rep.neighborInteractions) *
                            double(rep.activeParticles) / double(ic.size()));
            activeSum += rep.activeParticles;
        }
        std::printf("%-12s %8d %16zu %16zu %14.5f\n",
                    std::string(timesteppingName(mode)).c_str(), steps, interactions,
                    activeSum / steps, sim.time());
    }

    std::printf("\nreadout: individual (2^k-bin) stepping cuts the recomputed\n"
                "interaction count by keeping most particles inactive per base step —\n"
                "the work saving that motivates ChaNGa's design, at the price of the\n"
                "load imbalance the paper highlights.\n");
    return 0;
}

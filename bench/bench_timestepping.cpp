/// \file bench_timestepping.cpp
/// Time-stepping ablation: Global vs Adaptive vs Individual (2^k bins) —
/// Table 2's three modes, run to a MATCHED end time on the Evrard collapse
/// (dense center vs diffuse edge: the widest per-particle dt range of our
/// scenarios). The Individual mode runs the binned-integration pipeline
/// (PipelineFactory::individual): only active bins are walked and kicked,
/// so its cost metric is the particle-update count, not the step count.
///
/// Emits one JSON document (BENCH_timestepping.json) and FAILS (exit 1)
/// when a gate breaks:
///   - Individual saves >= SPHEXA_TS_MIN_SAVE % particle-updates vs Global
///     at the matched end time (default 25, the acceptance bar);
///   - energy drift < 1e-3 for Global and Individual (measured at a full
///     bin synchronization, where the binned state is globally consistent);
///   - Individual state is bitwise identical across worker pools {1, 2, 4}.
///
///     ./bench_timestepping > BENCH_timestepping.json
///
/// Knobs: SPHEXA_PROBE_SIDE (lattice side, default 36),
///        SPHEXA_TS_STEPS (Global-mode step count, default 48),
///        SPHEXA_TS_MIN_SAVE (updates-saved gate in percent, default 25).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "perf/timer.hpp"

using namespace sphexa;
using namespace sphexa::bench;

namespace {

SimulationConfig<double> modeConfig(TimesteppingMode mode)
{
    SimulationConfig<double> cfg;
    cfg.selfGravity       = true;
    cfg.gravity.G         = 1;
    cfg.gravity.theta     = 0.5;
    cfg.gravity.softening = 0.02;
    cfg.targetNeighbors   = 80;
    cfg.neighborTolerance = 10;
    cfg.timestep.mode     = mode;
    // All modes share a slightly tighter Courant factor than the library
    // default: the drift gate integrates several times longer than the
    // 10-step Evrard golden gate, and secular leapfrog drift ~ dt^2 eats
    // the 1e-3 budget at 0.3. A common seed dt replaces the 1e-7 ramp so
    // Adaptive reaches the matched end time in a bounded step count.
    cfg.timestep.cflCourant = 0.25;
    cfg.timestep.initialDt  = 0.01;
    cfg.neighborMode      = mode == TimesteppingMode::Individual
                                ? NeighborMode::IndividualTreeWalk
                                : NeighborMode::GlobalTreeWalk;
    return cfg;
}

struct ModeResult
{
    std::string name;
    std::size_t steps   = 0;
    std::size_t updates = 0;
    double wallSeconds  = 0;
    double endTime      = 0;
    double energyDrift  = 0;
    int maxBin          = 0;
};

/// Run one mode to (at least) \p tEnd; tEnd <= 0 means "run exactly
/// \p stepBudget steps" (the Global reference defining the matched end
/// time). Individual mode continues to the next full synchronization so the
/// closing conservation snapshot is globally consistent.
ModeResult runMode(const ParticleSetD& ic, const Box<double>& box,
                   TimesteppingMode mode, std::size_t stepBudget, double tEnd)
{
    auto cfg = modeConfig(mode);
    Eos<double> eos{IdealGasEos<double>(5.0 / 3.0)};
    Simulation<double> sim(ic, box, eos, cfg);
    sim.computeForces();
    double e0 = sim.conservation().totalEnergy();

    ModeResult res;
    res.name = std::string(timesteppingName(mode));
    std::size_t maxSteps = tEnd > 0 ? stepBudget * 64 : stepBudget;
    Timer wall;
    while (res.steps < maxSteps)
    {
        if (tEnd > 0 && sim.time() >= tEnd && sim.timestepController().atFullSync())
        {
            break;
        }
        auto rep = sim.advance();
        res.updates += rep.activeParticles;
        ++res.steps;
    }
    res.wallSeconds = wall.lap();
    if (tEnd > 0 && sim.time() < tEnd)
    {
        std::fprintf(stderr, "bench_timestepping: %s stalled at t=%g before t=%g\n",
                     res.name.c_str(), sim.time(), tEnd);
        std::exit(1);
    }
    res.endTime = sim.time();
    double e1   = sim.conservation().totalEnergy();
    res.energyDrift = std::abs(e1 - e0) / std::abs(e0);
    res.maxBin      = sim.timestepController().maxUsedBin();
    return res;
}

/// Bitwise pool-size invariance of the binned pipeline: the acceptance
/// gate's {1, 2, 4} sweep over a short Individual-mode run.
bool bitwiseAcrossPools(const ParticleSetD& ic, const Box<double>& box,
                        std::size_t steps)
{
    auto runAt = [&](std::size_t pool) {
        std::size_t saved = WorkerPool::instance().size();
        WorkerPool::instance().resize(pool);
        auto cfg = modeConfig(TimesteppingMode::Individual);
        Eos<double> eos{IdealGasEos<double>(5.0 / 3.0)};
        Simulation<double> sim(ic, box, eos, cfg);
        sim.computeForces();
        sim.run(steps);
        WorkerPool::instance().resize(saved);
        return sim;
    };

    auto ref = runAt(1);
    for (std::size_t pool : {std::size_t{2}, std::size_t{4}})
    {
        auto sim      = runAt(pool);
        const auto& a = ref.particles();
        const auto& b = sim.particles();
        for (std::size_t i = 0; i < a.size(); ++i)
        {
            if (a.x[i] != b.x[i] || a.vx[i] != b.vx[i] || a.u[i] != b.u[i] ||
                a.dt[i] != b.dt[i] || a.bin[i] != b.bin[i])
            {
                std::fprintf(stderr,
                             "bench_timestepping: pool %zu diverges from pool 1 "
                             "at particle %zu\n",
                             pool, i);
                return false;
            }
        }
    }
    return true;
}

void printMode(const ModeResult& r, std::size_t n, const ModeResult* global,
               bool last)
{
    std::printf("    {\"mode\": \"%s\", \"steps\": %zu, \"particle_updates\": %zu, "
                "\"updates_per_step\": %.1f, \"wall_seconds\": %.3f, "
                "\"end_time\": %.6f, \"energy_drift\": %.3e, \"max_bin\": %d",
                r.name.c_str(), r.steps, r.updates, double(r.updates) / double(r.steps),
                r.wallSeconds, r.endTime, r.energyDrift, r.maxBin);
    if (global && global != &r)
    {
        std::printf(", \"updates_saved_vs_global\": %.3f, "
                    "\"wall_speedup_vs_global\": %.3f",
                    1.0 - double(r.updates) / double(global->updates),
                    global->wallSeconds / r.wallSeconds);
    }
    (void)n;
    std::printf("}%s\n", last ? "" : ",");
}

} // namespace

int main()
{
    Box<double> box;
    auto ic = makeProbeIC<double>(TestCase::Evrard, box);
    std::size_t n         = ic.size();
    std::size_t steps     = envSize("SPHEXA_TS_STEPS", 48);
    std::size_t minSavePc = envSize("SPHEXA_TS_MIN_SAVE", 25);

    // the Global reference defines the matched end time
    auto global     = runMode(ic, box, TimesteppingMode::Global, steps, 0.0);
    auto adaptive   = runMode(ic, box, TimesteppingMode::Adaptive, steps, global.endTime);
    auto individual = runMode(ic, box, TimesteppingMode::Individual, steps, global.endTime);
    bool bitwise    = bitwiseAcrossPools(ic, box, std::min<std::size_t>(steps, 12));

    double saved = 1.0 - double(individual.updates) / double(global.updates);

    std::printf("{\n  \"bench\": \"timestepping-modes\",\n");
    std::printf("  \"case\": \"evrard\",\n  \"n\": %zu,\n", n);
    std::printf("  \"global_steps\": %zu,\n", steps);
    std::printf("  \"matched_end_time\": %.6f,\n", global.endTime);
    std::printf("  \"modes\": [\n");
    printMode(global, n, &global, false);
    printMode(adaptive, n, &global, false);
    printMode(individual, n, &global, true);
    std::printf("  ],\n");
    std::printf("  \"bitwise_pools\": [1, 2, 4],\n");
    std::printf("  \"bitwise_identical\": %s\n}\n", bitwise ? "true" : "false");

    bool ok = true;
    if (saved < double(minSavePc) / 100.0)
    {
        std::fprintf(stderr,
                     "bench_timestepping: GATE FAIL updates saved %.1f%% < %zu%%\n",
                     100.0 * saved, minSavePc);
        ok = false;
    }
    for (const auto* r : {&global, &individual})
    {
        if (!(r->energyDrift < 1e-3))
        {
            std::fprintf(stderr,
                         "bench_timestepping: GATE FAIL %s energy drift %.3e >= 1e-3\n",
                         r->name.c_str(), r->energyDrift);
            ok = false;
        }
    }
    if (!bitwise)
    {
        std::fprintf(stderr, "bench_timestepping: GATE FAIL pool-size divergence\n");
        ok = false;
    }
    return ok ? 0 : 1;
}

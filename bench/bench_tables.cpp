/// \file bench_tables.cpp
/// Regenerates Tables 1-4 of the paper from the code itself: the parent
/// profiles (Tables 1 and 3) are introspected from core/code_profiles.hpp
/// — the same objects that configure the emulation runs — and the SPH-EXA
/// rows (Tables 2 and 4) from the mini-app's own configuration space.

#include <cstdio>

#include "core/code_profiles.hpp"
#include "core/version.hpp"

using namespace sphexa;

int main()
{
    std::printf("%s — Tables 1-4 reproduction\n", banner().data());
    auto profiles = parentProfiles<double>();
    auto mini     = sphexaProfile<double>();

    // --- Table 1 -------------------------------------------------------------
    std::printf("\nTable 1: Differences and similarities between SPH-flow, SPHYNX, and "
                "ChaNGa (scientific)\n");
    std::printf("%-10s %-8s %-22s %-20s %-12s %-18s %-10s %-20s\n", "Code", "Version",
                "Kernel", "Gradients", "Volume El.", "Mass", "Time-Step",
                "Self-Gravity");
    for (const auto& p : profiles)
    {
        std::printf("%-10s %-8s %-22s %-20s %-12s %-18s %-10s %-20s\n", p.name.c_str(),
                    p.version.c_str(), p.kernelDesc.c_str(), p.gradientsDesc.c_str(),
                    p.volumeElementsDesc.c_str(), p.massDesc.c_str(),
                    p.timeSteppingDesc.c_str(), p.gravityDesc.c_str());
    }

    // --- Table 2 -------------------------------------------------------------
    std::printf("\nTable 2: Scientific characteristics of the SPH-EXA mini-app\n");
    std::printf("%-10s %-26s %-24s %-22s %-30s %-12s %-20s\n", "Code", "Kernel",
                "Gradients", "Volume El.", "Time-Stepping", "Neighbors", "Self-Gravity");
    std::printf("%-10s %-26s %-24s %-22s %-30s %-12s %-20s\n", mini.name.c_str(),
                mini.kernelDesc.c_str(), mini.gradientsDesc.c_str(),
                mini.volumeElementsDesc.c_str(), mini.massDesc.c_str(),
                mini.neighborDesc.c_str(), mini.gravityDesc.c_str());

    // --- Table 3 -------------------------------------------------------------
    std::printf("\nTable 3: Computer-science aspects of the parent codes\n");
    std::printf("%-10s %-32s %-20s %-12s %-10s %-14s %-22s %8s\n", "Code",
                "Domain Decomposition", "Load Balancing", "Ckpt-Restart", "Precision",
                "Language", "Parallelization", "LOC");
    for (const auto& p : profiles)
    {
        std::printf("%-10s %-32s %-20s %-12s %-10s %-14s %-22s %8zu\n", p.name.c_str(),
                    p.domainDecompositionDesc.c_str(),
                    std::string(loadBalancingName(p.loadBalancing)).c_str(),
                    p.checkpointRestart ? "Yes" : "No", p.precisionDesc.c_str(),
                    p.language.c_str(), p.parallelization.c_str(), p.linesOfCode);
    }

    // --- Table 4 -------------------------------------------------------------
    std::printf("\nTable 4: Computer-science features of the SPH-EXA mini-app\n");
    std::printf("%-10s %-46s %-28s %-26s %-24s %-10s %-8s\n", "Code",
                "Domain Decomposition", "Load Balancing", "Checkpoint-Restart",
                "Error Detection", "Precision", "Lang");
    std::printf("%-10s %-46s %-28s %-26s %-24s %-10s %-8s\n", mini.name.c_str(),
                mini.domainDecompositionDesc.c_str(),
                std::string(loadBalancingName(mini.loadBalancing)).c_str(),
                "Optimal interval, Multilevel", "SDC detectors",
                mini.precisionDesc.c_str(), mini.language.c_str());
    std::printf("           Parallelization: %s\n", mini.parallelization.c_str());

    std::printf("\nAll rows are introspected from the CodeProfile objects that also\n"
                "configure the emulation runs (tests assert they match the paper).\n");
    return 0;
}

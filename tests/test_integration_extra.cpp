/// Cross-substrate integration tests:
///  - checkpoint/restart continuation: a restarted simulation continues
///    bit-identically to an uninterrupted one (the property production
///    checkpoint/restart must guarantee);
///  - distributed Evrard (with replicated-tree gravity) matches the
///    shared-memory driver and conserves energy;
///  - conservation property sweep across all kernel families and both
///    gradient modes on the square patch;
///  - Sedov blast end-to-end: energy conservation and outward shock motion;
///  - SDC detectors wired to a live simulation catch injected corruption.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/code_profiles.hpp"
#include "core/simulation.hpp"
#include "domain/distributed.hpp"
#include "ft/checkpoint.hpp"
#include "ft/sdc.hpp"
#include "ic/evrard.hpp"
#include "ic/sedov.hpp"
#include "ic/square_patch.hpp"

using namespace sphexa;

namespace {

struct PatchSetup
{
    ParticleSetD ps;
    Box<double> box;
    Eos<double> eos;
    SimulationConfig<double> cfg;
};

PatchSetup makePatch(std::size_t nxy = 14, std::size_t nz = 6)
{
    PatchSetup s;
    SquarePatchConfig<double> ic;
    ic.nx = ic.ny = nxy;
    ic.nz = nz;
    auto setup = makeSquarePatch(s.ps, ic);
    s.box = setup.box;
    s.eos = Eos<double>(setup.eos);
    s.cfg.targetNeighbors = 50;
    s.cfg.neighborTolerance = 10;
    return s;
}

} // namespace

// --- checkpoint/restart continuation -----------------------------------------

TEST(RestartContinuation, RestartedRunMatchesUninterrupted)
{
    auto s = makePatch();

    // reference: run 6 steps straight
    Simulation<double> ref(s.ps, s.box, s.eos, s.cfg);
    ref.computeForces();
    for (int i = 0; i < 6; ++i)
        ref.advance();

    // checkpointed: run 3 steps, checkpoint, restart into a NEW simulation,
    // run 3 more
    Simulation<double> first(s.ps, s.box, s.eos, s.cfg);
    first.computeForces();
    for (int i = 0; i < 3; ++i)
        first.advance();

    auto dir = std::filesystem::temp_directory_path() / "sphexa_restart_test";
    std::filesystem::remove_all(dir);
    Checkpointer<double> ck(dir);
    ck.write(CheckpointLevel::Disk, first.particles(), first.time(), first.step());
    double vsig = first.maxVsignal(); // checkpoint metadata

    auto restored = ck.restore();
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->step, 3u);

    Simulation<double> resumed(restored->particles, s.box, s.eos, s.cfg);
    resumed.restoreFromCheckpoint(restored->time, restored->step, 0.0, vsig);
    for (int i = 0; i < 3; ++i)
        resumed.advance();
    EXPECT_EQ(resumed.step(), 6u);
    EXPECT_DOUBLE_EQ(resumed.time(), ref.time());

    // the restored state is bit-identical, so the continuation matches the
    // uninterrupted run exactly (deterministic kernels, same thread-safe
    // accumulation order per particle)
    const auto& a = ref.particles();
    const auto& b = resumed.particles();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 7)
    {
        EXPECT_DOUBLE_EQ(a.x[i], b.x[i]) << i;
        EXPECT_DOUBLE_EQ(a.vx[i], b.vx[i]) << i;
        EXPECT_DOUBLE_EQ(a.u[i], b.u[i]) << i;
    }
}

// --- distributed Evrard with gravity -------------------------------------------

TEST(DistributedGravity, MatchesSharedMemoryDriver)
{
    ParticleSetD ps;
    EvrardConfig<double> ic;
    ic.nSide = 14;
    auto setup = makeEvrard(ps, ic);

    SimulationConfig<double> cfg;
    cfg.selfGravity       = true;
    cfg.gravity.G         = 1;
    cfg.gravity.theta     = 0.5;
    cfg.gravity.softening = 0.02;
    cfg.targetNeighbors   = 50;
    cfg.neighborTolerance = 10;
    cfg.symmetrizeNeighbors = false;
    // index-aligned comparison below: the distributed pipeline has no phase L,
    // so keep the shared-memory driver on the seed layout too
    cfg.searchMode = NeighborSearchMode::TreeWalk;
    cfg.sfcReorder = false;

    Simulation<double> shared(ps, setup.box, Eos<double>(setup.eos), cfg);
    DistributedSimulation<double> dist(ps, setup.box, Eos<double>(setup.eos), cfg, 4);

    shared.computeForces();
    for (int sStep = 0; sStep < 3; ++sStep)
    {
        shared.advance();
        dist.advance();
    }

    auto g = dist.gather();
    const auto& ref = shared.particles();
    ASSERT_EQ(g.size(), ref.size());
    double maxDv = 0;
    for (std::size_t i = 0; i < g.size(); ++i)
    {
        maxDv = std::max({maxDv, std::abs(g.vx[i] - ref.vx[i]),
                          std::abs(g.vy[i] - ref.vy[i]), std::abs(g.vz[i] - ref.vz[i])});
    }
    // gravity tree differs (replicated global tree vs per-rank local tree
    // in the shared driver they are the same tree here) — tolerance-based
    EXPECT_LT(maxDv, 1e-8);
}

TEST(DistributedGravity, EnergyConserved)
{
    ParticleSetD ps;
    EvrardConfig<double> ic;
    ic.nSide = 14;
    auto setup = makeEvrard(ps, ic);

    SimulationConfig<double> cfg;
    cfg.selfGravity       = true;
    cfg.gravity.G         = 1;
    cfg.gravity.theta     = 0.5;
    cfg.gravity.softening = 0.02;
    cfg.targetNeighbors   = 50;

    DistributedSimulation<double> dist(ps, setup.box, Eos<double>(setup.eos), cfg, 3);
    auto c0 = dist.conservation();
    for (int s = 0; s < 8; ++s)
        dist.advance();
    auto c1 = dist.conservation();
    EXPECT_NEAR(c1.totalEnergy(), c0.totalEnergy(),
                0.02 * std::abs(c0.potentialEnergy));
    EXPECT_GT(c1.kineticEnergy, 0.0); // collapsing
}

// --- conservation across kernels x gradients -------------------------------------

class KernelGradientSweep
    : public ::testing::TestWithParam<std::tuple<KernelType, GradientMode>>
{
};

TEST_P(KernelGradientSweep, SquarePatchConservesMomentumAndEnergy)
{
    auto [kernel, gradients] = GetParam();
    auto s = makePatch(12, 6);
    s.cfg.kernel    = kernel;
    s.cfg.gradients = gradients;

    Simulation<double> sim(s.ps, s.box, s.eos, s.cfg);
    sim.computeForces();
    auto c0 = sim.conservation();
    sim.run(5);
    auto c1 = sim.conservation();

    double scale = std::abs(c0.angularMomentum.z);
    EXPECT_LT(norm(c1.momentum - c0.momentum), 1e-6 * scale)
        << kernelName(kernel) << "/" << gradientModeName(gradients);
    EXPECT_NEAR(c1.totalEnergy(), c0.totalEnergy(), 0.05 * c0.totalEnergy());
    EXPECT_NEAR(c1.angularMomentum.z, c0.angularMomentum.z, 2e-3 * scale);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, KernelGradientSweep,
    ::testing::Combine(::testing::Values(KernelType::Sinc, KernelType::CubicSpline,
                                         KernelType::WendlandC2),
                       ::testing::Values(GradientMode::KernelDerivative,
                                         GradientMode::IAD)));

// --- Sedov blast end-to-end ---------------------------------------------------------

TEST(SedovIntegration, ShockExpandsAndEnergyConserved)
{
    ParticleSetD ps;
    SedovConfig<double> ic;
    ic.nSide = 16;
    auto setup = makeSedov(ps, ic);

    SimulationConfig<double> cfg = sphexaProfile<double>().config;
    cfg.selfGravity         = false;
    cfg.targetNeighbors     = 50;
    cfg.neighborTolerance   = 10;
    cfg.timestep.cflCourant = 0.2;

    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);
    sim.computeForces();
    auto c0 = sim.conservation();
    EXPECT_NEAR(c0.internalEnergy, 1.0, 0.02); // injected energy

    sim.run(15);
    auto c1 = sim.conservation();
    // energy converts from internal to kinetic but the total is conserved
    EXPECT_GT(c1.kineticEnergy, 1e-4);
    EXPECT_NEAR(c1.totalEnergy(), c0.totalEnergy(), 0.02 * c0.totalEnergy());

    // material moves outward near the blast
    const auto& fin = sim.particles();
    double outward = 0;
    for (std::size_t i = 0; i < fin.size(); ++i)
    {
        outward += fin.x[i] * fin.vx[i] + fin.y[i] * fin.vy[i] + fin.z[i] * fin.vz[i];
    }
    EXPECT_GT(outward, 0.0);
}

// --- SDC detection on a live simulation -----------------------------------------------

TEST(SdcLive, InjectedCorruptionCaughtMidRun)
{
    auto s = makePatch(12, 6);
    // the temporal detector diffs snapshots per index; the phase-L SFC
    // reorder permutes the set between steps, which would read as mass
    // corruption — pin the seed layout
    s.cfg.searchMode = NeighborSearchMode::TreeWalk;
    s.cfg.sfcReorder = false;
    Simulation<double> sim(s.ps, s.box, s.eos, s.cfg);
    sim.computeForces();
    sim.run(2);

    TemporalDetector<double> temporal({"x", "y", "z", "rho", "h"}, 0.5);
    temporal.snapshot(sim.particles());
    RangeDetector<double> range;

    // clean step: smooth evolution stays under the temporal threshold
    sim.advance();
    EXPECT_TRUE(range.scan(sim.particles()).empty());
    EXPECT_TRUE(temporal.scan(sim.particles()).empty());

    // corrupt a position exponent bit, as a DRAM flip would
    temporal.snapshot(sim.particles());
    SdcInjector<double> inj{"x", 77, 60};
    inj.inject(sim.particles());
    bool caught = !range.scan(sim.particles()).empty() ||
                  !temporal.scan(sim.particles()).empty();
    EXPECT_TRUE(caught);
}

// --- float instantiation of the full pipeline ------------------------------------------

TEST(FloatPipeline, RunsAndStaysFinite)
{
    // the library is templated on Real; the mini-app mandates 64-bit, but
    // the 32-bit instantiation must compile and run (GPU-readiness)
    ParticleSet<float> ps;
    SquarePatchConfig<float> ic;
    ic.nx = ic.ny = 10;
    ic.nz = 4;
    auto setup = makeSquarePatch(ps, ic);
    SimulationConfig<float> cfg;
    cfg.targetNeighbors = 40;
    cfg.neighborTolerance = 10;

    Simulation<float> sim(std::move(ps), setup.box, Eos<float>(setup.eos), cfg);
    sim.computeForces();
    auto rep = sim.advance();
    EXPECT_GT(rep.dt, 0.f);
    auto c = sim.conservation();
    EXPECT_TRUE(std::isfinite(c.kineticEnergy));
    EXPECT_TRUE(std::isfinite(c.totalEnergy()));
}

/// Individual (binned) multi-time-stepping: the 2^k activity schedule rule,
/// the controller's step-phase convention (kick-start vs force/kick-end
/// sets), per-particle signal-velocity binning, snapped per-particle steps,
/// and bitwise worker-pool invariance of the full binned pipeline on the
/// Evrard collapse.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "core/simulation.hpp"
#include "ic/evrard.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/timestep.hpp"

using namespace sphexa;

namespace {

/// A controller over six synthetic particles whose CFL candidates are
/// 0.3 * h (unit signal velocity, zero acceleration): h spreads by powers
/// of two, so after the hierarchy forms the bins are 0..maxBins monotone.
struct SyntheticBins
{
    TimestepController<double> ctl;
    ParticleSetD ps;

    explicit SyntheticBins(int maxBins = 3, std::size_t n = 6)
        : ctl(makeParams(maxBins))
        , ps(n)
    {
        for (std::size_t i = 0; i < n; ++i)
        {
            ps.h[i]    = 0.1 * double(1 << std::min<std::size_t>(i, 8));
            ps.c[i]    = 1e-6; // candidates driven by vsig, not sound speed
            ps.vsig[i] = 1.0;
        }
        // first advance: flat initial ramp; second: the real hierarchy
        ctl.advance(ps, 1.0);
        ctl.advance(ps, 1.0);
    }

    static TimestepParams<double> makeParams(int maxBins)
    {
        TimestepParams<double> par;
        par.mode    = TimesteppingMode::Individual;
        par.maxBins = maxBins;
        return par;
    }
};

std::set<std::size_t> asSet(const std::vector<std::size_t>& v)
{
    return {v.begin(), v.end()};
}

SimulationConfig<double> individualEvrardConfig()
{
    SimulationConfig<double> cfg;
    cfg.timestep.mode     = TimesteppingMode::Individual;
    cfg.neighborMode      = NeighborMode::IndividualTreeWalk;
    cfg.selfGravity       = true;
    cfg.gravity.G         = 1.0;
    cfg.gravity.theta     = 0.5;
    cfg.gravity.softening = 0.02;
    cfg.targetNeighbors   = 60;
    cfg.neighborTolerance = 10;
    return cfg;
}

Simulation<double> makeIndividualEvrard(std::size_t nSide)
{
    ParticleSetD ps;
    EvrardConfig<double> ic;
    ic.nSide   = nSide;
    auto setup = makeEvrard(ps, ic);
    return Simulation<double>(std::move(ps), setup.box, Eos<double>(setup.eos),
                              individualEvrardConfig());
}

} // namespace

// --- the schedule rule itself ----------------------------------------------

TEST(IndividualSchedule, BinActivityRuleExhaustive)
{
    // bins 0..3 over 16 phases: bin k is active exactly when the phase is a
    // multiple of 2^k
    for (int k = 0; k <= 3; ++k)
    {
        for (std::uint64_t phase = 0; phase < 16; ++phase)
        {
            bool expected = (phase % (std::uint64_t(1) << k)) == 0;
            EXPECT_EQ(TimestepController<double>::binActive(k, phase), expected)
                << "bin " << k << " phase " << phase;
        }
    }
    // phase 0 (a synchronization) activates every bin
    for (int k = 0; k <= 8; ++k)
    {
        EXPECT_TRUE(TimestepController<double>::binActive(k, 0));
    }
}

// --- the controller's step-phase convention ---------------------------------

TEST(IndividualSchedule, KickStartAndForceSetsFollowConvention)
{
    // Exhaustive small-N schedule: six particles in bins 0..3, followed over
    // 16 driver steps. advance() processes step s and increments the
    // counter; right after it, kickStartSet() must be the particles whose
    // interval STARTS at s and activeParticles() those whose interval ENDS
    // at s + 1 — evaluated against the pure binActive rule.
    SyntheticBins syn(/*maxBins*/ 3);
    auto& ctl = syn.ctl;
    auto& ps  = syn.ps;
    ASSERT_EQ(ctl.maxUsedBin(), 3);

    for (int step = 0; step < 16; ++step)
    {
        std::uint64_t s = ctl.stepCount(); // the step this advance processes
        ctl.advance(ps, 1.0);

        std::set<std::size_t> expectStart, expectEnd;
        for (std::size_t i = 0; i < ps.size(); ++i)
        {
            // constant candidates: bins are stable after the hierarchy forms
            if (TimestepController<double>::binActive(ps.bin[i], s - ctl.cycleStart()))
            {
                expectStart.insert(i);
            }
            if (TimestepController<double>::binActive(ps.bin[i],
                                                      s + 1 - ctl.cycleStart()))
            {
                expectEnd.insert(i);
            }
        }
        EXPECT_EQ(asSet(ctl.kickStartSet(ps)), expectStart) << "step " << s;
        EXPECT_EQ(asSet(ctl.activeParticles(ps)), expectEnd) << "step " << s;

        // a bin-k particle is in the force set with period 2^k: the bin-0
        // particle always, the bin-3 particle only at the hierarchy syncs
        EXPECT_TRUE(expectEnd.count(0));
        EXPECT_EQ(expectEnd.count(5) == 1, ctl.atFullSync()) << "step " << s;
    }
}

TEST(IndividualSchedule, FullSyncRebuildsHierarchyEveryCycle)
{
    SyntheticBins syn(/*maxBins*/ 2);
    auto& ctl = syn.ctl;
    auto& ps  = syn.ps;
    ASSERT_EQ(ctl.maxUsedBin(), 2);
    std::uint64_t cycleLen = 4; // 2^maxUsedBin

    std::uint64_t lastSync = ctl.cycleStart();
    for (int step = 0; step < 12; ++step)
    {
        std::uint64_t s = ctl.stepCount();
        ctl.advance(ps, 1.0);
        if ((s - lastSync) % cycleLen == 0 && s != lastSync)
        {
            EXPECT_EQ(ctl.cycleStart(), s) << "sync must re-anchor the cycle";
            lastSync = s;
        }
        else
        {
            EXPECT_EQ(ctl.cycleStart(), lastSync) << "mid-cycle must not re-anchor";
        }
        // snapped per-particle steps at every point of the cycle
        for (std::size_t i = 0; i < ps.size(); ++i)
        {
            EXPECT_DOUBLE_EQ(ps.dt[i], ctl.baseDt() * double(1 << ps.bin[i])) << i;
        }
    }
}

// --- per-particle signal velocity (satellite bugfix) -------------------------

TEST(IndividualSchedule, PerParticleVsignalDrivesBins)
{
    // Regression for the global-clamp bug: every particle used to be clamped
    // to the GLOBAL max signal velocity, collapsing dt_i toward uniform and
    // flattening the bin histogram. With identical h but a factor-8 spread
    // in per-particle vsig, the bins must spread even when the global
    // maxVsignal passed to advance() is the largest of them.
    TimestepParams<double> par;
    par.mode    = TimesteppingMode::Individual;
    par.maxBins = 4;
    TimestepController<double> ctl(par);
    ParticleSetD ps(4);
    for (std::size_t i = 0; i < 4; ++i)
    {
        ps.h[i]    = 0.1;
        ps.c[i]    = 1e-6;
        ps.vsig[i] = 8.0 / double(1 << i); // 8, 4, 2, 1
    }
    ctl.advance(ps, 8.0); // flat first step
    ctl.advance(ps, 8.0); // real hierarchy; 8.0 is the global max
    EXPECT_EQ(ps.bin[0], 0);
    EXPECT_EQ(ps.bin[1], 1);
    EXPECT_EQ(ps.bin[2], 2);
    EXPECT_EQ(ps.bin[3], 3);

    // Global mode must keep the clamp (bitwise-compat with the seed): same
    // fields, global mode -> every candidate uses maxVsignal
    TimestepParams<double> gpar;
    gpar.mode = TimesteppingMode::Global;
    for (std::size_t i = 0; i < 4; ++i)
    {
        EXPECT_DOUBLE_EQ(particleTimestep(ps, i, 8.0, gpar),
                         particleTimestep(ps, 0, 8.0, gpar));
    }
}

// --- restore ----------------------------------------------------------------

TEST(IndividualSchedule, RestoreRebuildsBaseDtAndSchedule)
{
    SyntheticBins syn(/*maxBins*/ 3);
    auto& ctl = syn.ctl;
    auto& ps  = syn.ps;
    ctl.advance(ps, 1.0); // move mid-cycle

    TimestepController<double> fresh(SyntheticBins::makeParams(3));
    fresh.restore(ctl.stepCount(), ctl.currentDt(), ctl.baseDt(), ctl.cycleStart());
    fresh.restoreBins(ps);

    EXPECT_DOUBLE_EQ(fresh.baseDt(), ctl.baseDt());
    EXPECT_EQ(fresh.cycleStart(), ctl.cycleStart());
    EXPECT_EQ(fresh.maxUsedBin(), ctl.maxUsedBin());
    EXPECT_EQ(fresh.atFullSync(), ctl.atFullSync());
    EXPECT_EQ(asSet(fresh.activeParticles(ps)), asSet(ctl.activeParticles(ps)));

    // the baseDt fallback (2-arg restore, the pre-fix call shape) must also
    // leave a usable base step: current == base in Individual mode
    TimestepController<double> fallback(SyntheticBins::makeParams(3));
    fallback.restore(ctl.stepCount(), ctl.currentDt());
    EXPECT_DOUBLE_EQ(fallback.baseDt(), ctl.baseDt());
}

// --- the binned pipeline end-to-end ------------------------------------------

TEST(IndividualPipeline, SelectsBinnedAssemblyAndSavesUpdates)
{
    auto sim = makeIndividualEvrard(12);
    EXPECT_TRUE(sim.pipeline().hasPhase(Phase::I_SelfGravity));
    sim.computeForces();

    std::size_t n = sim.particles().size();
    std::size_t updates = 0;
    int steps = 0;
    // run past the first full hierarchy (the first two steps are global-ish)
    for (; steps < 24; ++steps)
    {
        auto rep = sim.advance();
        updates += rep.activeParticles;
    }
    // the active-subset walk must save work vs. stepping everyone
    EXPECT_LT(updates, std::size_t(steps) * n);
    // snapped per-particle steps in the live pipeline
    const auto& ps  = sim.particles();
    const auto& ctl = sim.timestepController();
    for (std::size_t i = 0; i < n; ++i)
    {
        EXPECT_DOUBLE_EQ(ps.dt[i], ctl.baseDt() * double(1 << ps.bin[i])) << i;
    }
}

TEST(IndividualPipeline, SimdBackendDrivesActiveSubsetPhases)
{
    // The Simd lane kernels must feed from active-subset index spans like
    // the Scalar path (phases E-H gather ps[nbrs[...]] for the controller's
    // force set only). Gates: the binned run under KernelBackend::Simd is
    // bitwise worker-pool invariant, still saves particle updates, and
    // conserves energy to the binned-integration budget.
    auto runSimd = [&](std::size_t pool) {
        std::size_t saved = WorkerPool::instance().size();
        WorkerPool::instance().resize(pool);
        ParticleSetD ps;
        EvrardConfig<double> ic;
        ic.nSide   = 10;
        auto setup = makeEvrard(ps, ic);
        auto cfg   = individualEvrardConfig();
        cfg.kernelBackend       = KernelBackend::Simd;
        cfg.timestep.cflCourant = 0.25;
        Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);
        sim.computeForces();
        WorkerPool::instance().resize(saved);
        return sim;
    };

    auto ref = runSimd(1);
    auto c0  = ref.conservation();
    {
        std::size_t saved = WorkerPool::instance().size();
        WorkerPool::instance().resize(1);
        std::size_t n = ref.particles().size(), updates = 0;
        int steps = 0;
        do
        {
            auto rep = ref.advance();
            updates += rep.activeParticles;
            ++steps;
        } while ((steps < 24 || !ref.timestepController().atFullSync()) && steps < 200);
        WorkerPool::instance().resize(saved);
        ASSERT_TRUE(ref.timestepController().atFullSync());
        EXPECT_LT(updates, std::size_t(steps) * n) << "subset walk saved nothing";
        auto c1 = ref.conservation();
        // coarser probe than the golden gallery's nSide-14 run (which holds
        // the 1e-3 budget under both backends): resolution, not the backend,
        // sets the drift here — Scalar lands on the same 3.1e-3 to ten digits
        EXPECT_NEAR(c1.totalEnergy(), c0.totalEnergy(),
                    4e-3 * std::abs(c0.totalEnergy()));
    }

    for (std::size_t pool : {std::size_t{2}, std::size_t{4}})
    {
        auto sim = runSimd(pool);
        std::size_t saved = WorkerPool::instance().size();
        WorkerPool::instance().resize(pool);
        int steps = 0;
        do
        {
            sim.advance();
            ++steps;
        } while ((steps < 24 || !sim.timestepController().atFullSync()) && steps < 200);
        WorkerPool::instance().resize(saved);

        const auto& a = ref.particles();
        const auto& b = sim.particles();
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
        {
            ASSERT_EQ(a.x[i], b.x[i]) << "pool " << pool << " i " << i;
            ASSERT_EQ(a.vx[i], b.vx[i]) << "pool " << pool << " i " << i;
            ASSERT_EQ(a.u[i], b.u[i]) << "pool " << pool << " i " << i;
            ASSERT_EQ(a.rho[i], b.rho[i]) << "pool " << pool << " i " << i;
            ASSERT_EQ(a.dt[i], b.dt[i]) << "pool " << pool << " i " << i;
            ASSERT_EQ(a.bin[i], b.bin[i]) << "pool " << pool << " i " << i;
        }
    }
}

TEST(IndividualPipeline, BitwiseInvariantAcrossWorkerPools)
{
    // the binned pipeline must produce bit-identical state for any worker
    // pool size: all reductions are per-worker selections, all SPH loops
    // accumulate-to-self
    auto runPools = [&](std::size_t pool) {
        std::size_t saved = WorkerPool::instance().size();
        WorkerPool::instance().resize(pool);
        auto sim = makeIndividualEvrard(10);
        sim.computeForces();
        sim.run(10);
        WorkerPool::instance().resize(saved);
        return sim;
    };

    auto ref = runPools(1);
    for (std::size_t pool : {std::size_t{2}, std::size_t{4}})
    {
        auto sim = runPools(pool);
        const auto& a = ref.particles();
        const auto& b = sim.particles();
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
        {
            ASSERT_EQ(a.x[i], b.x[i]) << "pool " << pool << " i " << i;
            ASSERT_EQ(a.vx[i], b.vx[i]) << "pool " << pool << " i " << i;
            ASSERT_EQ(a.u[i], b.u[i]) << "pool " << pool << " i " << i;
            ASSERT_EQ(a.rho[i], b.rho[i]) << "pool " << pool << " i " << i;
            ASSERT_EQ(a.dt[i], b.dt[i]) << "pool " << pool << " i " << i;
            ASSERT_EQ(a.bin[i], b.bin[i]) << "pool " << pool << " i " << i;
        }
        EXPECT_EQ(ref.timestepController().cycleStart(),
                  sim.timestepController().cycleStart());
    }
}

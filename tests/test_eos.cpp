/// Equation-of-state tests: ideal gas, Tait (weakly compressible), and
/// isothermal closures, plus the type-erased dispatcher.

#include <gtest/gtest.h>

#include <cmath>

#include "sph/eos.hpp"
#include "sph/eos_wcsph.hpp"

using namespace sphexa;

TEST(IdealGas, PressureAndSoundSpeed)
{
    IdealGasEos<double> eos(5.0 / 3.0);
    auto r = eos(2.0, 3.0); // rho=2, u=3
    EXPECT_DOUBLE_EQ(r.pressure, (5.0 / 3.0 - 1.0) * 2.0 * 3.0); // 4
    EXPECT_DOUBLE_EQ(r.soundSpeed, std::sqrt(5.0 / 3.0 * 4.0 / 2.0));
}

TEST(IdealGas, ZeroEnergyZeroPressure)
{
    IdealGasEos<double> eos;
    auto r = eos(1.0, 0.0);
    EXPECT_DOUBLE_EQ(r.pressure, 0.0);
}

TEST(IdealGas, PressureLinearInEnergy)
{
    IdealGasEos<double> eos(1.4);
    auto a = eos(1.0, 1.0);
    auto b = eos(1.0, 2.0);
    EXPECT_DOUBLE_EQ(b.pressure, 2 * a.pressure);
}

TEST(Tait, ZeroPressureAtReferenceDensity)
{
    TaitEos<double> eos(1000.0, 50.0);
    auto r = eos(1000.0, 0.0);
    EXPECT_NEAR(r.pressure, 0.0, 1e-9);
    EXPECT_NEAR(r.soundSpeed, 50.0, 1e-9);
}

TEST(Tait, StiffResponse)
{
    // 1% compression with gamma=7: P ~ B * 7 * 0.01
    double rho0 = 1.0, c0 = 35.0;
    TaitEos<double> eos(rho0, c0);
    double B = rho0 * c0 * c0 / 7.0;
    auto r = eos(1.01 * rho0, 0.0);
    EXPECT_NEAR(r.pressure, B * (std::pow(1.01, 7.0) - 1.0), 1e-12);
    EXPECT_GT(r.pressure, B * 0.068); // > linearized estimate
}

TEST(Tait, NegativePressureUnderTension)
{
    // The square patch develops negative pressures (tensile region): Tait
    // must produce P < 0 for rho < rho0.
    TaitEos<double> eos(1.0, 35.0);
    auto r = eos(0.99, 0.0);
    EXPECT_LT(r.pressure, 0.0);
}

TEST(Tait, SoundSpeedIncreasesWithDensity)
{
    TaitEos<double> eos(1.0, 35.0);
    EXPECT_GT(eos(1.05, 0.0).soundSpeed, eos(1.0, 0.0).soundSpeed);
}

TEST(Tait, MatchesWcsphReferenceFormula)
{
    // cal_pressure_wcsph reference case: water column, rho0 = 1000,
    // c0^2 = 1500, gamma = 7, 10% compressed
    double rho0 = 1000.0, c2 = 1500.0, gamma = 7.0, rho = 1100.0;
    double B = wcsphStiffness(rho0, c2, gamma);
    EXPECT_NEAR(B, 1500.0 * 1000.0 / 7.0, 1e-9);

    double ref = B * (std::pow(rho / rho0, gamma) - 1.0);
    EXPECT_NEAR(calPressureWcsph(rho, rho0, c2, gamma), ref, 1e-9 * ref);

    TaitEos<double> eos(rho0, std::sqrt(c2), gamma);
    EXPECT_NEAR(eos(rho, 0.0).pressure, ref, 1e-9 * ref);
    EXPECT_NEAR(eos(rho, 0.0).soundSpeed, calSoundSpeedWcsph(rho, rho0, c2, gamma),
                1e-12);
}

TEST(Tait, MakeTaitEosAppliesParameterBlock)
{
    WcsphEosParams<double> p;
    p.rho0          = 2.0;
    p.c0            = 20.0;
    p.gamma         = 7.0;
    p.pressureFloor = 0.0;
    TaitEos<double> eos = makeTaitEos(p);
    EXPECT_DOUBLE_EQ(eos.referenceDensity(), 2.0);
    EXPECT_DOUBLE_EQ(eos.referenceSoundSpeed(), 20.0);
    // the floor clamps the tensile branch: rho < rho0 gives P = 0, not P < 0
    EXPECT_DOUBLE_EQ(eos(1.9, 0.0).pressure, 0.0);
    EXPECT_GT(eos(2.1, 0.0).pressure, 0.0);
    // defaults leave the floor off: tension passes through
    WcsphEosParams<double> open;
    open.rho0 = 2.0;
    open.c0   = 20.0;
    EXPECT_LT(makeTaitEos(open)(1.9, 0.0).pressure, 0.0);
}

TEST(Isothermal, PressureProportionalToDensity)
{
    IsothermalEos<double> eos(2.0);
    auto a = eos(1.0, 99.0); // u ignored
    auto b = eos(3.0, 0.0);
    EXPECT_DOUBLE_EQ(a.pressure, 4.0);
    EXPECT_DOUBLE_EQ(b.pressure, 12.0);
    EXPECT_DOUBLE_EQ(a.soundSpeed, 2.0);
    EXPECT_DOUBLE_EQ(b.soundSpeed, 2.0);
}

TEST(EosVariant, DispatchesCorrectly)
{
    Eos<double> ideal{IdealGasEos<double>(5.0 / 3.0)};
    Eos<double> tait{TaitEos<double>(1.0, 35.0)};
    Eos<double> iso{IsothermalEos<double>(1.5)};

    EXPECT_EQ(ideal.name(), "ideal-gas");
    EXPECT_EQ(tait.name(), "tait");
    EXPECT_EQ(iso.name(), "isothermal");
    EXPECT_TRUE(ideal.isIdealGas());
    EXPECT_FALSE(tait.isIdealGas());

    EXPECT_DOUBLE_EQ(ideal(2.0, 3.0).pressure, 4.0);
    EXPECT_NEAR(tait(1.0, 0.0).pressure, 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(iso(2.0, 0.0).pressure, 4.5);
}

TEST(EosVariant, DefaultIsIdealGas)
{
    Eos<double> eos;
    EXPECT_TRUE(eos.isIdealGas());
}

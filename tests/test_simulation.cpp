/// End-to-end integration tests of the Simulation driver on the paper's two
/// test cases (scaled down): the rotating square patch and the Evrard
/// collapse, plus time-step control, integrator behaviour and the
/// parent-code profiles.

#include <gtest/gtest.h>

#include <cmath>

#include "core/code_profiles.hpp"
#include "core/simulation.hpp"
#include "ic/evrard.hpp"
#include "ic/sedov.hpp"
#include "ic/square_patch.hpp"

using namespace sphexa;

namespace {

Simulation<double> makeSquarePatchSim(std::size_t nxy = 16, std::size_t nz = 8,
                                      SimulationConfig<double> cfg = {})
{
    ParticleSetD ps;
    SquarePatchConfig<double> pc;
    pc.nx = pc.ny = nxy;
    pc.nz = nz;
    auto setup = makeSquarePatch(ps, pc);
    cfg.targetNeighbors = 60;
    cfg.neighborTolerance = 10;
    return Simulation<double>(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);
}

Simulation<double> makeEvrardSim(std::size_t nSide = 16, SimulationConfig<double> cfg = {})
{
    ParticleSetD ps;
    EvrardConfig<double> ec;
    ec.nSide = nSide;
    auto setup = makeEvrard(ps, ec);
    cfg.selfGravity = true;
    cfg.gravity.G = 1.0;
    cfg.gravity.theta = 0.5;
    cfg.gravity.softening = 0.02;
    cfg.targetNeighbors = 60;
    cfg.neighborTolerance = 10;
    return Simulation<double>(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);
}

} // namespace

TEST(Simulation, RejectsEmptyParticleSet)
{
    ParticleSetD ps;
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    EXPECT_THROW(Simulation<double>(std::move(ps), box, {}, {}),
                 std::invalid_argument);
}

TEST(Simulation, SquarePatchConservation)
{
    auto sim = makeSquarePatchSim();
    auto c0 = [&] {
        sim.computeForces();
        return sim.conservation();
    }();

    sim.run(10);
    auto c1 = sim.conservation();

    // mass exactly conserved
    EXPECT_DOUBLE_EQ(c1.mass, c0.mass);
    // momentum conserved (starts at ~0 by symmetry): bounded drift relative
    // to the angular-momentum scale
    double scale = std::abs(c0.angularMomentum.z);
    EXPECT_LT(norm(c1.momentum), 1e-6 * scale);
    // angular momentum about z: conserved to integration accuracy
    EXPECT_NEAR(c1.angularMomentum.z, c0.angularMomentum.z, 2e-3 * scale);
}

TEST(Simulation, SquarePatchKeepsRotating)
{
    auto sim = makeSquarePatchSim();
    sim.computeForces();
    auto c0 = sim.conservation();
    sim.run(10);
    const auto& ps = sim.particles();
    auto c = sim.conservation();
    // total energy (kinetic + compression work tracked in u) conserved
    EXPECT_NEAR(c.totalEnergy(), c0.totalEnergy(), 0.05 * c0.totalEnergy());
    // the bulk (interior, away from the free surface) still rotates rigidly
    double w = 5.0;
    std::size_t ok = 0, total = 0;
    for (std::size_t i = 0; i < ps.size(); i += 13)
    {
        double r = std::hypot(ps.x[i], ps.y[i]);
        if (r < 0.1 || r > 0.3) continue;
        double v = std::hypot(ps.vx[i], ps.vy[i]);
        if (std::abs(v - w * r) < 0.35 * w * r) ++ok;
        ++total;
    }
    ASSERT_GT(total, 10u);
    EXPECT_GT(double(ok) / double(total), 0.8);
}

TEST(Simulation, SquarePatchStepReportPhases)
{
    auto sim = makeSquarePatchSim();
    auto rep = sim.advance();
    EXPECT_GT(rep.dt, 0.0);
    EXPECT_EQ(rep.step, 1u);
    EXPECT_GT(rep.neighborInteractions, 0u);
    // all compute phases took measurable (>= 0) time; tree build & density &
    // momentum strictly positive
    EXPECT_GT(rep.phaseSeconds[int(Phase::A_TreeBuild)], 0.0);
    EXPECT_GT(rep.phaseSeconds[int(Phase::E_Density)], 0.0);
    EXPECT_GT(rep.phaseSeconds[int(Phase::H_MomentumEnergy)], 0.0);
    // no gravity for the square patch
    EXPECT_EQ(rep.gravityStats.p2pInteractions, 0u);
}

TEST(Simulation, EvrardCollapseStarts)
{
    auto sim = makeEvrardSim();
    sim.computeForces();
    auto c0 = sim.conservation();
    // potential energy near the analytic -2/3 (SPH softening shifts it a bit)
    EXPECT_NEAR(c0.potentialEnergy, -2.0 / 3.0, 0.08);
    EXPECT_NEAR(c0.internalEnergy, 0.05, 1e-10);
    EXPECT_NEAR(c0.kineticEnergy, 0.0, 1e-20);

    sim.run(10);
    auto c1 = sim.conservation();
    // collapse: kinetic energy grows, potential decreases (more bound)
    EXPECT_GT(c1.kineticEnergy, 1e-6);
    EXPECT_LT(c1.potentialEnergy, c0.potentialEnergy);
    // total energy conserved within integration error
    EXPECT_NEAR(c1.totalEnergy(), c0.totalEnergy(), 0.01 * std::abs(c0.totalEnergy()));
    // momentum stays ~0 (spherical symmetry)
    EXPECT_LT(norm(c1.momentum), 1e-4);
}

TEST(Simulation, EvrardInfall)
{
    auto sim = makeEvrardSim();
    // mean radius decreases as the sphere collapses
    auto meanR = [&] {
        const auto& ps = sim.particles();
        double s = 0;
        for (std::size_t i = 0; i < ps.size(); ++i)
            s += std::sqrt(ps.x[i] * ps.x[i] + ps.y[i] * ps.y[i] + ps.z[i] * ps.z[i]);
        return s / double(ps.size());
    };
    double r0 = meanR();
    sim.run(15);
    EXPECT_LT(meanR(), r0);
}

TEST(Simulation, GravityPhasePresentOnlyWithSelfGravity)
{
    auto noGrav = makeSquarePatchSim();
    auto rep1 = noGrav.advance();
    EXPECT_EQ(rep1.gravityStats.m2pInteractions, 0u);

    auto withGrav = makeEvrardSim();
    auto rep2 = withGrav.advance();
    EXPECT_GT(rep2.gravityStats.m2pInteractions, 0u);
}

// --- time-stepping modes ---------------------------------------------------------

TEST(Timestepping, GlobalDtIsMinimum)
{
    SimulationConfig<double> cfg;
    cfg.timestep.mode = TimesteppingMode::Global;
    auto sim = makeSquarePatchSim(12, 6, cfg);
    auto rep = sim.advance();
    const auto& ps = sim.particles();
    for (std::size_t i = 0; i < ps.size(); ++i)
    {
        EXPECT_GE(ps.dt[i], rep.dt * 0.999);
    }
}

TEST(Timestepping, AdaptiveGrowthLimited)
{
    SimulationConfig<double> cfg;
    cfg.timestep.mode = TimesteppingMode::Adaptive;
    cfg.timestep.maxGrowth = 1.1;
    cfg.timestep.initialDt = 1e-9; // tiny start; growth must be bounded
    auto sim = makeSquarePatchSim(12, 6, cfg);
    double prev = 0;
    for (int s = 0; s < 5; ++s)
    {
        auto rep = sim.advance();
        if (prev > 0)
        {
            EXPECT_LE(rep.dt, prev * 1.1 * 1.0001) << "step " << s;
        }
        prev = rep.dt;
    }
}

TEST(Timestepping, IndividualBinsReduceActiveSet)
{
    SimulationConfig<double> cfg;
    cfg.timestep.mode = TimesteppingMode::Individual;
    cfg.neighborMode = NeighborMode::IndividualTreeWalk;
    auto sim = makeEvrardSim(14, cfg);
    // run a few steps; after binning, later steps should have fewer active
    // particles than the total (the Evrard profile has a wide dt range)
    sim.advance();
    std::size_t minActive = sim.particles().size();
    for (int s = 0; s < 6; ++s)
    {
        auto rep = sim.advance();
        minActive = std::min(minActive, rep.activeParticles);
    }
    EXPECT_LT(minActive, sim.particles().size());
}

TEST(Timestepping, BinsArePowersOfTwo)
{
    TimestepParams<double> par;
    par.mode = TimesteppingMode::Individual;
    par.maxBins = 4;
    TimestepController<double> ctl(par);
    ParticleSetD ps(6);
    // synthetic per-particle dt via c/h: set fields the controller reads
    for (std::size_t i = 0; i < 6; ++i)
    {
        ps.h[i] = 0.1 * double(1 << i); // dt ~ h
        ps.c[i] = 1.0;
    }
    // the first advance is the flat initial-dt ramp (every bin 0); the
    // second is a full synchronization that derives the real hierarchy
    ctl.advance(ps, 1.0);
    for (std::size_t i = 0; i < 6; ++i)
    {
        EXPECT_EQ(ps.bin[i], 0) << "first step must be flat";
    }
    ctl.advance(ps, 1.0);
    for (std::size_t i = 0; i < 6; ++i)
    {
        EXPECT_GE(ps.bin[i], 0);
        EXPECT_LE(ps.bin[i], 4);
        // snapped per-particle step: exactly baseDt * 2^bin
        EXPECT_DOUBLE_EQ(ps.dt[i], ctl.baseDt() * double(1 << ps.bin[i]));
    }
    // larger h -> larger dt -> larger or equal bin, and the factor-32 h
    // spread must actually populate distinct bins
    for (std::size_t i = 1; i < 6; ++i)
    {
        EXPECT_GE(ps.bin[i], ps.bin[i - 1]);
    }
    EXPECT_GT(ps.bin[5], ps.bin[0]);
    EXPECT_EQ(ctl.maxUsedBin(), ps.bin[5]);
}

// --- parent-code profiles ----------------------------------------------------------

TEST(CodeProfiles, MatchTable1)
{
    auto sphynx = sphynxProfile<double>();
    EXPECT_EQ(sphynx.config.kernel, KernelType::Sinc);
    EXPECT_EQ(sphynx.config.gradients, GradientMode::IAD);
    EXPECT_EQ(sphynx.config.volumeElements, VolumeElements::Generalized);
    EXPECT_EQ(sphynx.config.timestep.mode, TimesteppingMode::Global);
    EXPECT_EQ(sphynx.config.gravity.order, MultipoleOrder::Quadrupole);
    EXPECT_EQ(sphynx.linesOfCode, 25000u);

    auto changa = changaProfile<double>();
    EXPECT_EQ(changa.config.gradients, GradientMode::KernelDerivative);
    EXPECT_EQ(changa.config.timestep.mode, TimesteppingMode::Individual);
    EXPECT_EQ(changa.config.gravity.order, MultipoleOrder::Hexadecapole);
    EXPECT_EQ(changa.linesOfCode, 110000u);

    auto sphflow = sphflowProfile<double>();
    EXPECT_FALSE(sphflow.config.selfGravity);
    EXPECT_EQ(sphflow.config.timestep.mode, TimesteppingMode::Adaptive);
    EXPECT_EQ(sphflow.config.decomposition,
              DecompositionMethod::OrthogonalRecursiveBisection);
    EXPECT_EQ(sphflow.linesOfCode, 37000u);
}

TEST(CodeProfiles, AllProfilesRunTheSquarePatch)
{
    for (auto& profile : parentProfiles<double>())
    {
        SimulationConfig<double> cfg = profile.config;
        cfg.selfGravity = false; // square patch has no gravity
        auto sim = makeSquarePatchSim(10, 4, cfg);
        auto rep = sim.advance();
        EXPECT_GT(rep.dt, 0.0) << profile.name;
        auto c = sim.conservation();
        EXPECT_TRUE(std::isfinite(c.kineticEnergy)) << profile.name;
    }
}

TEST(CodeProfiles, SphexaProfileUnionFeatures)
{
    auto p = sphexaProfile<double>();
    EXPECT_EQ(p.kernelDesc, "Sinc, M4 spline, Wendland");
    EXPECT_EQ(p.gradientsDesc, "IAD, Kernel derivatives");
    EXPECT_TRUE(p.config.parallelTreeBuild);
    EXPECT_EQ(p.loadBalancing, LoadBalancingStrategy::DlbSelfScheduling);
}

// --- integrator ------------------------------------------------------------------

TEST(Integrator, ConstantAccelerationParabola)
{
    ParticleSetD ps(1);
    ps.x[0] = 0;
    ps.vx[0] = 1.0;
    ps.ax[0] = 2.0;
    Box<double> box{{-100, -100, -100}, {100, 100, 100}};

    double dtStep = 0.1;
    // leapfrog with constant a: exact for quadratic trajectories
    for (int s = 0; s < 10; ++s)
    {
        kickDrift(ps, dtStep, box);
        kickEnergy(ps, dtStep); // a stays 2.0 (no force recompute)
    }
    double t = 1.0;
    EXPECT_NEAR(ps.x[0], 1.0 * t + 0.5 * 2.0 * t * t, 1e-12);
    EXPECT_NEAR(ps.vx[0], 1.0 + 2.0 * t, 1e-12);
}

TEST(Integrator, PeriodicWrap)
{
    ParticleSetD ps(1);
    ps.x[0] = 0.95;
    ps.vx[0] = 1.0;
    Box<double> box{{0, 0, 0}, {1, 1, 1}, true, false, false};
    kickDrift(ps, 0.2, box);
    EXPECT_GE(ps.x[0], 0.0);
    EXPECT_LT(ps.x[0], 1.0);
    EXPECT_NEAR(ps.x[0], 0.15, 1e-12);
}

TEST(Integrator, EnergyFloor)
{
    ParticleSetD ps(1);
    ps.u[0] = 0.01;
    ps.du[0] = -10.0;
    ps.du_m1[0] = -10.0;
    kickEnergy(ps, 1.0);
    EXPECT_GT(ps.u[0], 0.0); // floored, not negative
}

/// SPH pipeline tests on controlled particle configurations:
///  - density summation recovers uniform density on a lattice (all kernels,
///    both volume-element formulations);
///  - IAD and kernel-derivative gradients are accurate for linear fields,
///    with IAD exact (its defining property);
///  - grad-h terms ~ 1 on uniform lattices;
///  - smoothing-length iteration reaches the target neighbor count;
///  - momentum/energy: pairwise symmetry gives exact conservation.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "domain/box.hpp"
#include "ic/lattice.hpp"
#include "math/rng.hpp"
#include "sph/density.hpp"
#include "sph/divcurl.hpp"
#include "sph/iad.hpp"
#include "sph/momentum_energy.hpp"
#include "sph/particles.hpp"
#include "sph/smoothing_length.hpp"
#include "tree/neighbors.hpp"
#include "tree/octree.hpp"

using namespace sphexa;

namespace {

struct LatticeFixture
{
    ParticleSetD ps;
    Box<double> box{{0, 0, 0}, {1, 1, 1}, true, true, true};
    Octree<double> tree;
    NeighborList<double> nl;

    explicit LatticeFixture(std::size_t side = 16, double jitter = 0.0,
                            unsigned targetNeighbors = 100)
        : nl(0, 384)
    {
        cubicLattice(ps, side, side, side, box);
        double dx = 1.0 / double(side);
        if (jitter > 0) jitterPositions(ps, box, dx, jitter, 1234);
        double rho0 = 1.0;
        for (std::size_t i = 0; i < ps.size(); ++i)
        {
            ps.m[i] = rho0 / double(ps.size());
            ps.h[i] = initialSmoothingLength(ps.size(), box, targetNeighbors);
        }
        tree.build(ps.x, ps.y, ps.z, box);
        nl.reset(ps.size(), 384);
        SmoothingLengthParams<double> hp;
        hp.targetNeighbors = targetNeighbors;
        hp.tolerance       = 5;
        updateSmoothingLengths(ps, tree, nl, hp);
    }
};

} // namespace

// --- density ---------------------------------------------------------------

class DensityKernelSweep : public ::testing::TestWithParam<KernelType>
{
};

TEST_P(DensityKernelSweep, UniformLatticeDensity)
{
    LatticeFixture f(16);
    Kernel<double> kernel(GetParam());
    computeVolumeElementWeights(f.ps, VolumeElements::Standard);
    computeDensity(f.ps, f.nl, kernel, f.box);

    // density must be 1 everywhere within ~1% (kernel bias on a lattice)
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        EXPECT_NEAR(f.ps.rho[i], 1.0, 0.02) << kernelName(GetParam()) << " i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, DensityKernelSweep,
                         ::testing::Values(KernelType::Sinc, KernelType::CubicSpline,
                                           KernelType::WendlandC2, KernelType::WendlandC6));

TEST(Density, GeneralizedVEMatchesStandardOnUniform)
{
    LatticeFixture f(12);
    Kernel<double> kernel(KernelType::Sinc);

    auto psStd = f.ps;
    computeVolumeElementWeights(psStd, VolumeElements::Standard);
    computeDensity(psStd, f.nl, kernel, f.box);

    auto psGen = f.ps;
    // seed rho with the standard result, then iterate generalized VE
    psGen.rho = psStd.rho;
    computeVolumeElementWeights(psGen, VolumeElements::Generalized, 0.9);
    computeDensity(psGen, f.nl, kernel, f.box);

    for (std::size_t i = 0; i < psStd.size(); ++i)
    {
        EXPECT_NEAR(psGen.rho[i], psStd.rho[i], 0.01 * psStd.rho[i]);
    }
}

TEST(Density, MassWeightedVolumesTileTheBox)
{
    LatticeFixture f(12);
    Kernel<double> kernel(KernelType::CubicSpline);
    computeVolumeElementWeights(f.ps, VolumeElements::Standard);
    computeDensity(f.ps, f.nl, kernel, f.box);
    double vtot = 0;
    for (std::size_t i = 0; i < f.ps.size(); ++i)
        vtot += f.ps.vol[i];
    EXPECT_NEAR(vtot, f.box.volume(), 0.02 * f.box.volume());
}

TEST(Density, GradHNearOneOnUniformLattice)
{
    LatticeFixture f(12);
    Kernel<double> kernel(KernelType::Sinc);
    computeVolumeElementWeights(f.ps, VolumeElements::Standard);
    computeDensity(f.ps, f.nl, kernel, f.box);
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        EXPECT_NEAR(f.ps.gradh[i], 1.0, 0.15);
    }
}

TEST(Density, VariableMassesRecoverUniformDensity)
{
    // two interleaved species with different masses arranged so total
    // density stays uniform: mass m and 2m at half the number density would
    // be complex; instead scale all masses randomly +-20% and verify the
    // density responds linearly (sum m_b W): doubling all masses doubles rho.
    LatticeFixture f(10);
    Kernel<double> kernel(KernelType::Sinc);
    computeVolumeElementWeights(f.ps, VolumeElements::Standard);
    computeDensity(f.ps, f.nl, kernel, f.box);
    auto rho1 = f.ps.rho;
    for (auto& m : f.ps.m)
        m *= 2;
    computeVolumeElementWeights(f.ps, VolumeElements::Standard);
    computeDensity(f.ps, f.nl, kernel, f.box);
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        EXPECT_NEAR(f.ps.rho[i], 2 * rho1[i], 1e-10);
    }
}

// --- smoothing length ---------------------------------------------------------

TEST(SmoothingLength, ReachesTargetCount)
{
    LatticeFixture f(14, 0.2, 80);
    std::size_t within = 0;
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        if (std::abs(f.ps.nc[i] - 80) <= 10) ++within;
    }
    // the overwhelming majority must be at the target
    EXPECT_GT(double(within) / double(f.ps.size()), 0.95);
}

TEST(SmoothingLength, UpdateHFixedPoint)
{
    // at count == target the update leaves h unchanged
    EXPECT_DOUBLE_EQ(updateH(0.1, 100, 100), 0.1);
    // too few neighbors -> h grows; too many -> shrinks
    EXPECT_GT(updateH(0.1, 50, 100), 0.1);
    EXPECT_LT(updateH(0.1, 200, 100), 0.1);
}

TEST(SmoothingLength, InitialGuessGivesRoughlyTarget)
{
    LatticeFixture f(16, 0.0, 100);
    // initialSmoothingLength was used as the seed; after convergence, h
    // should be within a factor ~1.5 of the seed
    double seed = initialSmoothingLength<double>(16 * 16 * 16, f.box, 100);
    for (std::size_t i = 0; i < f.ps.size(); i += 97)
    {
        EXPECT_GT(f.ps.h[i], seed / 1.5);
        EXPECT_LT(f.ps.h[i], seed * 1.5);
    }
}

// --- gradients ----------------------------------------------------------------

class GradientSweep : public ::testing::TestWithParam<double> // jitter
{
};

TEST_P(GradientSweep, IadExactForLinearField)
{
    LatticeFixture f(14, GetParam());
    Kernel<double> kernel(KernelType::Sinc);
    computeVolumeElementWeights(f.ps, VolumeElements::Standard);
    computeDensity(f.ps, f.nl, kernel, f.box);
    computeIadCoefficients(f.ps, f.nl, kernel, f.box);

    // linear field f = 2x + 3y - z; note the box is periodic but the field
    // is not -- only test interior particles away from the wrap.
    std::vector<double> field(f.ps.size());
    for (std::size_t i = 0; i < f.ps.size(); ++i)
        field[i] = 2 * f.ps.x[i] + 3 * f.ps.y[i] - f.ps.z[i];

    std::size_t tested = 0;
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        double margin = 2.5 * f.ps.h[i];
        bool interior = f.ps.x[i] > margin && f.ps.x[i] < 1 - margin &&
                        f.ps.y[i] > margin && f.ps.y[i] < 1 - margin &&
                        f.ps.z[i] > margin && f.ps.z[i] < 1 - margin;
        if (!interior) continue;
        auto g = iadScalarGradient(f.ps, f.nl, kernel, f.box,
                                   std::span<const double>(field), i);
        EXPECT_NEAR(g.x, 2.0, 0.02) << "i=" << i;
        EXPECT_NEAR(g.y, 3.0, 0.03) << "i=" << i;
        EXPECT_NEAR(g.z, -1.0, 0.02) << "i=" << i;
        ++tested;
        if (tested > 200) break;
    }
    EXPECT_GT(tested, 20u);
}

TEST_P(GradientSweep, IadBeatsKernelDerivativeOnDisorder)
{
    double jitter = GetParam();
    if (jitter == 0.0) GTEST_SKIP() << "comparison only meaningful with disorder";

    LatticeFixture f(14, jitter);
    Kernel<double> kernel(KernelType::Sinc);
    computeVolumeElementWeights(f.ps, VolumeElements::Standard);
    computeDensity(f.ps, f.nl, kernel, f.box);
    computeIadCoefficients(f.ps, f.nl, kernel, f.box);

    std::vector<double> field(f.ps.size());
    for (std::size_t i = 0; i < f.ps.size(); ++i)
        field[i] = 2 * f.ps.x[i] + 3 * f.ps.y[i] - f.ps.z[i];
    Vec3<double> exact{2, 3, -1};

    double errIad = 0, errKd = 0;
    std::size_t tested = 0;
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        double margin = 2.5 * f.ps.h[i];
        bool interior = f.ps.x[i] > margin && f.ps.x[i] < 1 - margin &&
                        f.ps.y[i] > margin && f.ps.y[i] < 1 - margin &&
                        f.ps.z[i] > margin && f.ps.z[i] < 1 - margin;
        if (!interior) continue;
        auto gi = iadScalarGradient(f.ps, f.nl, kernel, f.box,
                                    std::span<const double>(field), i);
        auto gk = kernelDerivativeScalarGradient(f.ps, f.nl, kernel, f.box,
                                                 std::span<const double>(field), i);
        errIad += norm(gi - exact);
        errKd += norm(gk - exact);
        ++tested;
    }
    ASSERT_GT(tested, 50u);
    // IAD is exact on linear fields regardless of disorder; the kernel
    // derivative estimate degrades with jitter (Garcia-Senz et al. 2012).
    EXPECT_LT(errIad, 0.5 * errKd);
}

INSTANTIATE_TEST_SUITE_P(Jitter, GradientSweep, ::testing::Values(0.0, 0.1, 0.3));

// --- div/curl -----------------------------------------------------------------

TEST(DivCurl, RigidRotationHasZeroDivergence)
{
    LatticeFixture f(14);
    Kernel<double> kernel(KernelType::Sinc);
    // rigid rotation about z through the box center
    double w = 5.0;
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        double xc = f.ps.x[i] - 0.5, yc = f.ps.y[i] - 0.5;
        f.ps.vx[i] = w * yc;
        f.ps.vy[i] = -w * xc;
        f.ps.vz[i] = 0;
        f.ps.c[i]  = 35.0;
    }
    computeVolumeElementWeights(f.ps, VolumeElements::Standard);
    computeDensity(f.ps, f.nl, kernel, f.box);
    computeIadCoefficients(f.ps, f.nl, kernel, f.box);
    computeDivCurl(f.ps, f.nl, kernel, f.box, GradientMode::IAD);

    // |curl| = 2w, div = 0 for interior particles; Balsara -> ~0
    std::size_t tested = 0;
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        double margin = 2.5 * f.ps.h[i];
        bool interior = f.ps.x[i] > margin && f.ps.x[i] < 1 - margin &&
                        f.ps.y[i] > margin && f.ps.y[i] < 1 - margin &&
                        f.ps.z[i] > margin && f.ps.z[i] < 1 - margin;
        if (!interior) continue;
        EXPECT_NEAR(f.ps.divv[i], 0.0, 0.3) << "i=" << i;
        EXPECT_NEAR(f.ps.curlv[i], 2 * w, 0.4) << "i=" << i;
        EXPECT_LT(f.ps.balsara[i], 0.1) << "i=" << i;
        ++tested;
        if (tested > 100) break;
    }
    EXPECT_GT(tested, 20u);
}

TEST(DivCurl, UniformExpansionHasZeroCurl)
{
    LatticeFixture f(14);
    Kernel<double> kernel(KernelType::Sinc);
    // Hubble flow v = H (r - center): div v = 3H, curl = 0
    double H = 2.0;
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        f.ps.vx[i] = H * (f.ps.x[i] - 0.5);
        f.ps.vy[i] = H * (f.ps.y[i] - 0.5);
        f.ps.vz[i] = H * (f.ps.z[i] - 0.5);
        f.ps.c[i]  = 35.0;
    }
    computeVolumeElementWeights(f.ps, VolumeElements::Standard);
    computeDensity(f.ps, f.nl, kernel, f.box);
    computeIadCoefficients(f.ps, f.nl, kernel, f.box);
    computeDivCurl(f.ps, f.nl, kernel, f.box, GradientMode::IAD);

    std::size_t tested = 0;
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        double margin = 2.5 * f.ps.h[i];
        bool interior = f.ps.x[i] > margin && f.ps.x[i] < 1 - margin &&
                        f.ps.y[i] > margin && f.ps.y[i] < 1 - margin &&
                        f.ps.z[i] > margin && f.ps.z[i] < 1 - margin;
        if (!interior) continue;
        EXPECT_NEAR(f.ps.divv[i], 3 * H, 0.3) << "i=" << i;
        EXPECT_NEAR(f.ps.curlv[i], 0.0, 0.3) << "i=" << i;
        EXPECT_GT(f.ps.balsara[i], 0.9) << "i=" << i;
        ++tested;
        if (tested > 100) break;
    }
    EXPECT_GT(tested, 20u);
}

// --- momentum & energy conservation -------------------------------------------

class ConservationSweep : public ::testing::TestWithParam<GradientMode>
{
};

TEST_P(ConservationSweep, PairwiseForcesConserveMomentum)
{
    LatticeFixture f(12, 0.25);
    Kernel<double> kernel(KernelType::Sinc);
    Xoshiro256pp rng(77);
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        f.ps.vx[i] = rng.normal() * 0.1;
        f.ps.vy[i] = rng.normal() * 0.1;
        f.ps.vz[i] = rng.normal() * 0.1;
        f.ps.u[i]  = 1.0;
    }
    computeVolumeElementWeights(f.ps, VolumeElements::Standard);
    computeDensity(f.ps, f.nl, kernel, f.box);
    // ideal gas EOS inline
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        f.ps.p[i] = (5.0 / 3.0 - 1.0) * f.ps.rho[i] * f.ps.u[i];
        f.ps.c[i] = std::sqrt(5.0 / 3.0 * f.ps.p[i] / f.ps.rho[i]);
    }
    if (GetParam() == GradientMode::IAD)
    {
        computeIadCoefficients(f.ps, f.nl, kernel, f.box);
    }
    computeDivCurl(f.ps, f.nl, kernel, f.box, GetParam());
    symmetrizeNeighborList(f.nl);
    computeMomentumEnergy(f.ps, f.nl, kernel, f.box, GetParam());

    // total force and total energy rate must vanish (pairwise antisymmetry)
    double fx = 0, fy = 0, fz = 0, de = 0, fscale = 0;
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        fx += f.ps.m[i] * f.ps.ax[i];
        fy += f.ps.m[i] * f.ps.ay[i];
        fz += f.ps.m[i] * f.ps.az[i];
        de += f.ps.m[i] * (f.ps.du[i] + f.ps.vx[i] * f.ps.ax[i] +
                           f.ps.vy[i] * f.ps.ay[i] + f.ps.vz[i] * f.ps.az[i]);
        fscale += f.ps.m[i] * std::abs(f.ps.ax[i]);
    }
    double tol = 1e-11 * std::max(1.0, fscale);
    EXPECT_NEAR(fx, 0.0, tol) << gradientModeName(GetParam());
    EXPECT_NEAR(fy, 0.0, tol);
    EXPECT_NEAR(fz, 0.0, tol);
    EXPECT_NEAR(de, 0.0, tol);
}

INSTANTIATE_TEST_SUITE_P(Gradients, ConservationSweep,
                         ::testing::Values(GradientMode::KernelDerivative,
                                           GradientMode::IAD));

TEST(MomentumEnergy, UniformPressureNoAcceleration)
{
    LatticeFixture f(12);
    Kernel<double> kernel(KernelType::Sinc);
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        f.ps.u[i] = 1.0;
    }
    computeVolumeElementWeights(f.ps, VolumeElements::Standard);
    computeDensity(f.ps, f.nl, kernel, f.box);
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        f.ps.p[i] = 1.0;
        f.ps.c[i] = 1.0;
    }
    computeDivCurl(f.ps, f.nl, kernel, f.box, GradientMode::KernelDerivative);
    computeMomentumEnergy(f.ps, f.nl, kernel, f.box, GradientMode::KernelDerivative);

    // uniform pressure on a symmetric lattice: accelerations ~ 0
    for (std::size_t i = 0; i < f.ps.size(); i += 53)
    {
        EXPECT_NEAR(f.ps.ax[i], 0.0, 1e-8);
        EXPECT_NEAR(f.ps.ay[i], 0.0, 1e-8);
        EXPECT_NEAR(f.ps.az[i], 0.0, 1e-8);
    }
}

TEST(MomentumEnergy, PressureGradientPushesOutward)
{
    // high pressure in the center: central particles accelerate away
    LatticeFixture f(12);
    Kernel<double> kernel(KernelType::Sinc);
    computeVolumeElementWeights(f.ps, VolumeElements::Standard);
    computeDensity(f.ps, f.nl, kernel, f.box);
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        double r2 = (f.ps.x[i] - 0.5) * (f.ps.x[i] - 0.5) +
                    (f.ps.y[i] - 0.5) * (f.ps.y[i] - 0.5) +
                    (f.ps.z[i] - 0.5) * (f.ps.z[i] - 0.5);
        f.ps.p[i] = std::exp(-r2 / 0.02);
        f.ps.c[i] = 1.0;
    }
    computeDivCurl(f.ps, f.nl, kernel, f.box, GradientMode::KernelDerivative);
    computeMomentumEnergy(f.ps, f.nl, kernel, f.box, GradientMode::KernelDerivative);

    std::size_t outward = 0, total = 0;
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        Vec3<double> r{f.ps.x[i] - 0.5, f.ps.y[i] - 0.5, f.ps.z[i] - 0.5};
        double rn = norm(r);
        if (rn < 0.1 || rn > 0.3) continue; // in the gradient region
        Vec3<double> a{f.ps.ax[i], f.ps.ay[i], f.ps.az[i]};
        if (dot(a, r) > 0) ++outward;
        ++total;
    }
    ASSERT_GT(total, 50u);
    EXPECT_GT(double(outward) / double(total), 0.95);
}

TEST(MomentumEnergy, ArtificialViscosityHeatsOnCompression)
{
    // head-on compression: AV converts kinetic energy to heat (du > 0)
    LatticeFixture f(12);
    Kernel<double> kernel(KernelType::Sinc);
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        // converging flow toward the x = 0.5 plane
        f.ps.vx[i] = f.ps.x[i] < 0.5 ? 1.0 : -1.0;
        f.ps.u[i]  = 0.01;
    }
    computeVolumeElementWeights(f.ps, VolumeElements::Standard);
    computeDensity(f.ps, f.nl, kernel, f.box);
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        f.ps.p[i] = (5.0 / 3.0 - 1.0) * f.ps.rho[i] * f.ps.u[i];
        f.ps.c[i] = std::sqrt(5.0 / 3.0 * f.ps.p[i] / f.ps.rho[i]);
    }
    computeDivCurl(f.ps, f.nl, kernel, f.box, GradientMode::KernelDerivative);
    computeMomentumEnergy(f.ps, f.nl, kernel, f.box, GradientMode::KernelDerivative);

    // particles at the collision plane must be heating
    double duMax = 0;
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        if (std::abs(f.ps.x[i] - 0.5) < 0.06) duMax = std::max(duMax, f.ps.du[i]);
    }
    EXPECT_GT(duMax, 0.0);
}

TEST(MomentumEnergy, ActiveSubsetOnlyTouchesActive)
{
    LatticeFixture f(10);
    Kernel<double> kernel(KernelType::Sinc);
    computeVolumeElementWeights(f.ps, VolumeElements::Standard);
    computeDensity(f.ps, f.nl, kernel, f.box);
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        f.ps.p[i] = 1.0 + f.ps.x[i];
        f.ps.c[i] = 1.0;
    }
    computeDivCurl(f.ps, f.nl, kernel, f.box, GradientMode::KernelDerivative);

    // compute on a subset; others keep their previous (zero) acceleration
    std::vector<std::size_t> active{0, 5, 10};
    computeMomentumEnergy(f.ps, f.nl, kernel, f.box, GradientMode::KernelDerivative, {},
                          active);
    std::size_t nonzero = 0;
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        bool isActive = i == 0 || i == 5 || i == 10;
        bool touched  = f.ps.ax[i] != 0.0 || f.ps.ay[i] != 0.0 || f.ps.az[i] != 0.0 ||
                       f.ps.du[i] != 0.0;
        if (!isActive)
        {
            EXPECT_FALSE(touched) << i;
        }
        if (touched) ++nonzero;
    }
    EXPECT_LE(nonzero, 3u);
}

TEST(NeighborSymmetrize, MakesListsSymmetric)
{
    LatticeFixture f(10, 0.3);
    // asymmetric h: double a few particles' radii and re-search
    for (std::size_t i = 0; i < 20; ++i)
        f.ps.h[i] *= 1.3;
    findNeighborsGlobal(f.tree, f.ps.x, f.ps.y, f.ps.z, f.ps.h, f.nl);
    symmetrizeNeighborList(f.nl);

    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        for (auto j : f.nl.neighbors(i))
        {
            auto njs = f.nl.neighbors(j);
            bool found = false;
            for (auto k : njs)
            {
                if (k == std::uint32_t(i)) found = true;
            }
            EXPECT_TRUE(found) << i << " -> " << j;
        }
    }
}

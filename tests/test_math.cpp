/// Unit tests for the math substrate: Vec3, SymMat3, RNG, quadrature,
/// lookup tables, statistics, and the square-patch pressure series.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "math/lookup_table.hpp"
#include "math/matrix3.hpp"
#include "math/quadrature.hpp"
#include "math/rng.hpp"
#include "math/series.hpp"
#include "math/statistics.hpp"
#include "math/vec.hpp"

using namespace sphexa;

TEST(Vec3, BasicArithmetic)
{
    Vec3d a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ(a + b, (Vec3d{5, 7, 9}));
    EXPECT_EQ(b - a, (Vec3d{3, 3, 3}));
    EXPECT_EQ(a * 2.0, (Vec3d{2, 4, 6}));
    EXPECT_EQ(2.0 * a, a * 2.0);
    EXPECT_EQ(-a, (Vec3d{-1, -2, -3}));
    EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(Vec3, CrossProductOrthogonality)
{
    Vec3d a{1, 2, 3}, b{-2, 1, 5};
    Vec3d c = cross(a, b);
    EXPECT_NEAR(dot(c, a), 0.0, 1e-14);
    EXPECT_NEAR(dot(c, b), 0.0, 1e-14);
}

TEST(Vec3, CrossProductRightHanded)
{
    Vec3d ex{1, 0, 0}, ey{0, 1, 0};
    EXPECT_EQ(cross(ex, ey), (Vec3d{0, 0, 1}));
}

TEST(Vec3, NormAndIndexing)
{
    Vec3d v{3, 4, 0};
    EXPECT_DOUBLE_EQ(norm(v), 5.0);
    EXPECT_DOUBLE_EQ(norm2(v), 25.0);
    EXPECT_DOUBLE_EQ(v[0], 3.0);
    EXPECT_DOUBLE_EQ(v[1], 4.0);
    EXPECT_DOUBLE_EQ(v[2], 0.0);
    v[2] = 7;
    EXPECT_DOUBLE_EQ(v.z, 7.0);
}

TEST(Vec3, MinMax)
{
    Vec3d a{1, 5, 3}, b{2, 4, 3};
    EXPECT_EQ(min(a, b), (Vec3d{1, 4, 3}));
    EXPECT_EQ(max(a, b), (Vec3d{2, 5, 3}));
}

TEST(SymMat3, IdentityInverse)
{
    auto I = SymMat3d::identity();
    auto Iinv = I.inverse();
    EXPECT_DOUBLE_EQ(Iinv.xx, 1.0);
    EXPECT_DOUBLE_EQ(Iinv.yy, 1.0);
    EXPECT_DOUBLE_EQ(Iinv.zz, 1.0);
    EXPECT_DOUBLE_EQ(Iinv.xy, 0.0);
}

TEST(SymMat3, InverseTimesMatrixIsIdentity)
{
    // A well-conditioned SPD matrix built from outer products.
    SymMat3d m;
    m.addOuter(Vec3d{1, 0.2, -0.1}, 2.0);
    m.addOuter(Vec3d{-0.3, 1.1, 0.4}, 1.5);
    m.addOuter(Vec3d{0.2, -0.5, 0.9}, 3.0);
    auto inv = m.inverse();

    // Verify M * M^-1 = I by applying both to basis vectors.
    Vec3d basis[3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
    for (int k = 0; k < 3; ++k)
    {
        Vec3d r = m * (inv * basis[k]);
        for (int c = 0; c < 3; ++c)
        {
            EXPECT_NEAR(r[c], basis[k][c], 1e-12) << "k=" << k << " c=" << c;
        }
    }
}

TEST(SymMat3, SingularFallsBackToIdentity)
{
    SymMat3d m; // zero matrix
    auto inv = m.inverse();
    EXPECT_DOUBLE_EQ(inv.xx, 1.0);
    EXPECT_DOUBLE_EQ(inv.yy, 1.0);
    EXPECT_DOUBLE_EQ(inv.zz, 1.0);

    // rank-1 matrix is singular too
    SymMat3d r1;
    r1.addOuter(Vec3d{1, 1, 1}, 1.0);
    auto inv1 = r1.inverse();
    EXPECT_DOUBLE_EQ(inv1.xx, 1.0);
}

TEST(SymMat3, DeterminantKnownValue)
{
    // diag(2, 3, 4) -> det 24
    SymMat3d m{2, 0, 0, 3, 0, 4};
    EXPECT_DOUBLE_EQ(m.determinant(), 24.0);
    EXPECT_DOUBLE_EQ(m.trace(), 9.0);
}

TEST(SymMat3, MatVecProduct)
{
    SymMat3d m{1, 2, 3, 4, 5, 6};
    // full matrix: [1 2 3; 2 4 5; 3 5 6]
    Vec3d v{1, 1, 1};
    Vec3d r = m * v;
    EXPECT_DOUBLE_EQ(r.x, 6.0);
    EXPECT_DOUBLE_EQ(r.y, 11.0);
    EXPECT_DOUBLE_EQ(r.z, 14.0);
}

TEST(Rng, Determinism)
{
    Xoshiro256pp a(42), b(42);
    for (int i = 0; i < 1000; ++i)
    {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Xoshiro256pp a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
    {
        if (a() == b()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange)
{
    Xoshiro256pp r(7);
    for (int i = 0; i < 10000; ++i)
    {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanConverges)
{
    Xoshiro256pp r(11);
    double s = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        s += r.uniform();
    EXPECT_NEAR(s / n, 0.5, 0.005);
}

TEST(Rng, NormalMoments)
{
    Xoshiro256pp r(13);
    double s = 0, s2 = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
    {
        double x = r.normal();
        s += x;
        s2 += x * x;
    }
    EXPECT_NEAR(s / n, 0.0, 0.02);
    EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, UniformIntBounds)
{
    Xoshiro256pp r(17);
    for (int i = 0; i < 10000; ++i)
    {
        EXPECT_LT(r.uniformInt(10), 10u);
    }
}

TEST(Quadrature, PolynomialExact)
{
    // Simpson is exact for cubics.
    auto f = [](double x) { return 3 * x * x * x - x + 2; };
    double v = integrate<double>(f, 0.0, 2.0);
    EXPECT_NEAR(v, 3 * 4.0 - 2.0 + 4.0, 1e-12); // 12 - 2 + 4 = 14
}

TEST(Quadrature, SineIntegral)
{
    double v = integrate<double>([](double x) { return std::sin(x); }, 0.0,
                                 std::numbers::pi, 1e-14);
    EXPECT_NEAR(v, 2.0, 1e-10);
}

TEST(Quadrature, CompositeSimpsonAgrees)
{
    auto f = [](double x) { return std::exp(-x * x); };
    double a = integrate<double>(f, 0.0, 3.0, 1e-13);
    double b = integrateSimpson<double>(f, 0.0, 3.0, 2000);
    EXPECT_NEAR(a, b, 1e-9);
}

TEST(LookupTable, ExactAtNodes)
{
    auto f = [](double x) { return x * x; };
    LookupTable<double> t(f, 0.0, 2.0, 101);
    for (int i = 0; i <= 100; ++i)
    {
        double x = 2.0 * i / 100;
        EXPECT_NEAR(t(x), f(x), 1e-12);
    }
}

TEST(LookupTable, InterpolationError)
{
    auto f = [](double x) { return std::sin(x); };
    LookupTable<double> t(f, 0.0, 3.0, 3001);
    for (double x = 0.0005; x < 3.0; x += 0.0173)
    {
        EXPECT_NEAR(t(x), f(x), 1e-6);
    }
}

TEST(LookupTable, ClampsOutsideDomain)
{
    LookupTable<double> t([](double x) { return x; }, 1.0, 2.0, 11);
    EXPECT_DOUBLE_EQ(t(0.0), 1.0);
    EXPECT_DOUBLE_EQ(t(5.0), 2.0);
}

TEST(Statistics, BasicAggregates)
{
    std::vector<double> v{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(sum<double>(v), 10.0);
    EXPECT_DOUBLE_EQ(mean<double>(v), 2.5);
    EXPECT_DOUBLE_EQ(maxValue<double>(v), 4.0);
    EXPECT_DOUBLE_EQ(minValue<double>(v), 1.0);
}

TEST(Statistics, LoadBalanceRatio)
{
    std::vector<double> balanced{2, 2, 2, 2};
    std::vector<double> skewed{1, 1, 1, 5};
    EXPECT_DOUBLE_EQ(loadBalanceRatio<double>(balanced), 1.0);
    EXPECT_DOUBLE_EQ(loadBalanceRatio<double>(skewed), 2.0 / 5.0);
}

TEST(Statistics, Percentile)
{
    std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    EXPECT_DOUBLE_EQ(percentile<double>(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile<double>(v, 100), 10.0);
    EXPECT_NEAR(percentile<double>(v, 50), 5.5, 1e-12);
}

TEST(Statistics, RunningStatsMatchesBatch)
{
    Xoshiro256pp r(3);
    RunningStats<double> rs;
    std::vector<double> v;
    for (int i = 0; i < 1000; ++i)
    {
        double x = r.uniform(-3, 7);
        rs.add(x);
        v.push_back(x);
    }
    EXPECT_NEAR(rs.mean(), mean<double>(v), 1e-10);
    EXPECT_NEAR(rs.stddev(), stddev<double>(v), 1e-8);
    EXPECT_DOUBLE_EQ(rs.min(), minValue<double>(v));
    EXPECT_DOUBLE_EQ(rs.max(), maxValue<double>(v));
}

// --- square patch pressure series -----------------------------------------

TEST(SquarePatchSeries, ZeroOnBoundary)
{
    SquarePatchPressure<double> p(1.0, 5.0, 1.0, 32);
    EXPECT_NEAR(p(0.0, 0.5), 0.0, 1e-10);
    EXPECT_NEAR(p(1.0, 0.5), 0.0, 1e-10);
    EXPECT_NEAR(p(0.5, 0.0), 0.0, 1e-10);
    EXPECT_NEAR(p(0.5, 1.0), 0.0, 1e-10);
}

TEST(SquarePatchSeries, SymmetryAboutCenter)
{
    SquarePatchPressure<double> p(1.0, 5.0, 1.0, 32);
    EXPECT_NEAR(p(0.3, 0.4), p(0.7, 0.4), 1e-10);
    EXPECT_NEAR(p(0.3, 0.4), p(0.3, 0.6), 1e-10);
    EXPECT_NEAR(p(0.2, 0.3), p(0.3, 0.2), 1e-10);
}

TEST(SquarePatchSeries, NegativeInInterior)
{
    // The rotating patch has negative pressure in the interior -- the very
    // feature that triggers tensile instability (Sec. 5.1 of the paper).
    SquarePatchPressure<double> p(1.0, 5.0, 1.0, 32);
    EXPECT_LT(p.centerValue(), 0.0);
    EXPECT_LT(p(0.25, 0.25), 0.0);
}

TEST(SquarePatchSeries, Convergence)
{
    SquarePatchPressure<double> p8(1.0, 5.0, 1.0, 8);
    SquarePatchPressure<double> p32(1.0, 5.0, 1.0, 32);
    SquarePatchPressure<double> p64(1.0, 5.0, 1.0, 64);
    double e8  = std::abs(p8.centerValue() - p64.centerValue());
    double e32 = std::abs(p32.centerValue() - p64.centerValue());
    EXPECT_LT(e32, e8);
    // tail decays ~1/terms^2
    EXPECT_LT(e32, 1e-4 * std::abs(p64.centerValue()));
}

TEST(SquarePatchSeries, ScalesWithOmegaSquared)
{
    SquarePatchPressure<double> p1(1.0, 1.0, 1.0, 32);
    SquarePatchPressure<double> p5(1.0, 5.0, 1.0, 32);
    EXPECT_NEAR(p5(0.4, 0.6) / p1(0.4, 0.6), 25.0, 1e-9);
}

TEST(SquarePatchSeries, SatisfiesPoissonEquation)
{
    // For steady rigid rotation  -grad(P)/rho = (v.grad)v = -w^2 r, so
    // laplacian(P) = +2 rho w^2 (with P < 0 inside and P = 0 on the free
    // surface). Verify with a central-difference Laplacian.
    double rho = 1.0, w = 5.0, L = 1.0;
    SquarePatchPressure<double> p(rho, w, L, 64);
    double hstep = 1e-3;
    double x = 0.37, y = 0.61;
    double lap = (p(x + hstep, y) + p(x - hstep, y) + p(x, y + hstep) + p(x, y - hstep) -
                  4 * p(x, y)) /
                 (hstep * hstep);
    EXPECT_NEAR(lap, 2 * rho * w * w, 0.05 * std::abs(2 * rho * w * w));
}

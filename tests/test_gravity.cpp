/// Gravity solver tests: multipole moments and field evaluation against
/// analytic results, Barnes-Hut accuracy versus direct summation as a
/// function of opening angle and expansion order, Newton's third law, and
/// potential-energy consistency.

#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.hpp"
#include "sph/particles.hpp"
#include "tree/gravity.hpp"
#include "tree/multipole.hpp"
#include "tree/octree.hpp"

using namespace sphexa;

namespace {

/// Random Plummer-like cluster in a unit box around the center.
ParticleSet<double> randomCluster(std::size_t n, std::uint64_t seed)
{
    ParticleSet<double> ps(n);
    Xoshiro256pp rng(seed);
    for (std::size_t i = 0; i < n; ++i)
    {
        ps.x[i] = 0.5 + 0.3 * rng.normal() * 0.2;
        ps.y[i] = 0.5 + 0.3 * rng.normal() * 0.2;
        ps.z[i] = 0.5 + 0.3 * rng.normal() * 0.2;
        ps.m[i] = 1.0 / double(n) * (0.5 + rng.uniform());
        ps.id[i] = i;
    }
    return ps;
}

/// RMS relative acceleration error of tree vs direct.
double rmsError(ParticleSet<double>& ps, const GravityParams<double>& params)
{
    std::size_t n = ps.size();
    ParticleSet<double> ref = ps;
    double refPot = GravitySolver<double>::directSum(ref, params);
    (void)refPot;

    Box<double> box = computeBoundingBox<double>(ps.x, ps.y, ps.z);
    Octree<double> tree;
    Octree<double>::BuildParams bp;
    bp.leafSize = 16;
    tree.build(ps.x, ps.y, ps.z, box, bp);

    GravitySolver<double> solver;
    solver.prepare(tree, ps, params);
    std::fill(ps.ax.begin(), ps.ax.end(), 0.0);
    std::fill(ps.ay.begin(), ps.ay.end(), 0.0);
    std::fill(ps.az.begin(), ps.az.end(), 0.0);
    solver.accumulate(ps);

    double num = 0, den = 0;
    for (std::size_t i = 0; i < n; ++i)
    {
        double dx = ps.ax[i] - ref.ax[i];
        double dy = ps.ay[i] - ref.ay[i];
        double dz = ps.az[i] - ref.az[i];
        num += dx * dx + dy * dy + dz * dz;
        den += ref.ax[i] * ref.ax[i] + ref.ay[i] * ref.ay[i] + ref.az[i] * ref.az[i];
    }
    return std::sqrt(num / den);
}

} // namespace

// --- multipole moments -------------------------------------------------------

TEST(Multipole, PointMassHasOnlyMonopole)
{
    std::vector<double> x{1.0}, y{2.0}, z{3.0}, m{5.0};
    std::vector<std::uint32_t> idx{0};
    auto mp = computeMultipole<double>(x, y, z, m, idx, MultipoleOrder::Hexadecapole);
    EXPECT_DOUBLE_EQ(mp.mass, 5.0);
    EXPECT_DOUBLE_EQ(mp.com.x, 1.0);
    for (double v : mp.q)
        EXPECT_DOUBLE_EQ(v, 0.0);
    for (double v : mp.o)
        EXPECT_DOUBLE_EQ(v, 0.0);
    for (double v : mp.hx)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Multipole, TwoBodyQuadrupoleKnownValue)
{
    // two unit masses at +-d on the x-axis: Q_xx = 2 m d^2, others 0.
    double d = 0.25;
    std::vector<double> x{-d, d}, y{0, 0}, z{0, 0}, m{1, 1};
    std::vector<std::uint32_t> idx{0, 1};
    auto mp = computeMultipole<double>(x, y, z, m, idx, MultipoleOrder::Quadrupole);
    EXPECT_DOUBLE_EQ(mp.mass, 2.0);
    EXPECT_NEAR(mp.com.x, 0.0, 1e-15);
    EXPECT_NEAR(mp.q2(0, 0), 2 * d * d, 1e-15);
    EXPECT_NEAR(mp.q2(1, 1), 0.0, 1e-15);
    EXPECT_NEAR(mp.q2(0, 1), 0.0, 1e-15);
}

TEST(Multipole, FieldMatchesDirectForDistantCluster)
{
    // multipole field of a small cluster evaluated far away converges to the
    // exact field as order increases.
    Xoshiro256pp rng(5);
    std::size_t n = 50;
    std::vector<double> x, y, z, m;
    std::vector<std::uint32_t> idx;
    for (std::size_t i = 0; i < n; ++i)
    {
        x.push_back(rng.uniform(-0.1, 0.1));
        y.push_back(rng.uniform(-0.1, 0.1));
        z.push_back(rng.uniform(-0.1, 0.1));
        m.push_back(rng.uniform(0.5, 1.5));
        idx.push_back(std::uint32_t(i));
    }

    Vec3<double> target{1.5, 0.3, -0.4};
    // exact
    Vec3<double> aExact{};
    double potExact = 0;
    for (std::size_t i = 0; i < n; ++i)
    {
        Vec3<double> dvec = target - Vec3<double>{x[i], y[i], z[i]};
        double r = norm(dvec);
        aExact -= m[i] / (r * r * r) * dvec;
        potExact -= m[i] / r;
    }

    double prevErr = 1e30;
    for (auto order : {MultipoleOrder::Monopole, MultipoleOrder::Quadrupole,
                       MultipoleOrder::Octupole, MultipoleOrder::Hexadecapole})
    {
        auto mp = computeMultipole<double>(x, y, z, m, idx, order);
        Vec3<double> acc{};
        double pot = 0;
        evaluateMultipole(mp, target - mp.com, order, acc, pot);
        double err = norm(acc - aExact) / norm(aExact);
        double potErr = std::abs(pot - potExact) / std::abs(potExact);
        EXPECT_LT(err, prevErr * 1.001) << multipoleOrderName(order);
        EXPECT_LT(potErr, 0.01);
        prevErr = err;
    }
    // hexadecapole should be very accurate at distance ~15x cluster size
    EXPECT_LT(prevErr, 1e-6);
}

TEST(Multipole, SymmetricIndexHelpers)
{
    using namespace sphexa::detail;
    // all rank-2 indices valid and symmetric
    std::set<int> s2;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
        {
            EXPECT_EQ(sym2Index(i, j), sym2Index(j, i));
            s2.insert(sym2Index(i, j));
        }
    EXPECT_EQ(s2.size(), 6u);

    std::set<int> s3;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            for (int k = 0; k < 3; ++k)
            {
                int v = sym3Index(i, j, k);
                EXPECT_EQ(v, sym3Index(k, j, i));
                EXPECT_EQ(v, sym3Index(j, i, k));
                s3.insert(v);
            }
    EXPECT_EQ(s3.size(), 10u);

    std::set<int> s4;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            for (int k = 0; k < 3; ++k)
                for (int l = 0; l < 3; ++l)
                {
                    int v = sym4Index(i, j, k, l);
                    EXPECT_EQ(v, sym4Index(l, k, j, i));
                    s4.insert(v);
                }
    EXPECT_EQ(s4.size(), 15u);
}

TEST(Multipole, DerivativeTensorsAreSymmetric)
{
    Vec3<double> s{0.7, -0.3, 0.5};
    double r2 = norm2(s);
    double inv9 = std::pow(r2, -4.5);
    double inv11 = std::pow(r2, -5.5);
    // D4 symmetric under index permutations
    EXPECT_NEAR(d4Tensor(s, r2, inv9, 0, 1, 2, 1), d4Tensor(s, r2, inv9, 1, 2, 1, 0), 1e-12);
    EXPECT_NEAR(d4Tensor(s, r2, inv9, 0, 0, 1, 2), d4Tensor(s, r2, inv9, 2, 1, 0, 0), 1e-12);
    // D5 symmetric
    EXPECT_NEAR(d5Tensor(s, r2, inv11, 0, 1, 2, 1, 0), d5Tensor(s, r2, inv11, 2, 1, 1, 0, 0),
                1e-12);
}

TEST(Multipole, D4IsGradientOfD3ViaFiniteDifference)
{
    // D4_ijkl = d/ds_i D3_jkl: check numerically using the octupole part of
    // evaluateMultipole indirectly — here directly on the tensor.
    Vec3<double> s{0.9, 0.2, -0.6};
    double eps = 1e-6;

    auto d3 = [](Vec3<double> sv, int j, int k, int l) {
        double r2 = norm2(sv);
        double r = std::sqrt(r2);
        double inv7 = 1.0 / (r2 * r2 * r2 * r);
        double t = 15 * sv[j] * sv[k] * sv[l];
        double dterm = 0;
        if (k == l) dterm += sv[j];
        if (j == l) dterm += sv[k];
        if (j == k) dterm += sv[l];
        return -(t - 3 * r2 * dterm) * inv7;
    };

    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            for (int k = 0; k < 3; ++k)
                for (int l = 0; l < 3; ++l)
                {
                    Vec3<double> sp = s, sm = s;
                    sp[i] += eps;
                    sm[i] -= eps;
                    double fd = (d3(sp, j, k, l) - d3(sm, j, k, l)) / (2 * eps);
                    double r2 = norm2(s);
                    double inv9 = std::pow(r2, -4.5);
                    EXPECT_NEAR(d4Tensor(s, r2, inv9, i, j, k, l), fd,
                                1e-4 * std::max(1.0, std::abs(fd)));
                }
}

TEST(Multipole, D5IsGradientOfD4ViaFiniteDifference)
{
    Vec3<double> s{0.8, -0.5, 0.4};
    double eps = 1e-6;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            for (int k = 0; k < 3; ++k)
            {
                // spot check a subset of (l, m)
                int l = (i + j) % 3, m = (j + k) % 3;
                Vec3<double> sp = s, sm = s;
                sp[i] += eps;
                sm[i] -= eps;
                auto d4at = [&](const Vec3<double>& sv) {
                    double r2 = norm2(sv);
                    return d4Tensor(sv, r2, std::pow(r2, -4.5), j, k, l, m);
                };
                double fd = (d4at(sp) - d4at(sm)) / (2 * eps);
                double r2 = norm2(s);
                EXPECT_NEAR(d5Tensor(s, r2, std::pow(r2, -5.5), i, j, k, l, m), fd,
                            1e-3 * std::max(1.0, std::abs(fd)));
            }
}

// --- Barnes-Hut solver --------------------------------------------------------

TEST(GravitySolver, ErrorDecreasesWithTheta)
{
    auto ps = randomCluster(2000, 42);
    double prev = 1e30;
    for (double theta : {0.9, 0.6, 0.3})
    {
        GravityParams<double> params;
        params.theta = theta;
        params.order = MultipoleOrder::Quadrupole;
        auto psCopy = ps;
        double err = rmsError(psCopy, params);
        EXPECT_LT(err, prev * 1.05) << "theta=" << theta;
        prev = err;
    }
    EXPECT_LT(prev, 2e-3); // theta=0.3 quadrupole
}

class GravityOrderSweep : public ::testing::TestWithParam<MultipoleOrder>
{
};

TEST_P(GravityOrderSweep, AccuracyBound)
{
    auto ps = randomCluster(1500, 43);
    GravityParams<double> params;
    params.theta = 0.6;
    params.order = GetParam();
    double err = rmsError(ps, params);
    double bound = 0;
    switch (GetParam())
    {
        case MultipoleOrder::Monopole: bound = 5e-2; break;
        case MultipoleOrder::Quadrupole: bound = 1e-2; break;
        case MultipoleOrder::Octupole: bound = 5e-3; break;
        case MultipoleOrder::Hexadecapole: bound = 2e-3; break;
    }
    EXPECT_LT(err, bound) << multipoleOrderName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Orders, GravityOrderSweep,
                         ::testing::Values(MultipoleOrder::Monopole,
                                           MultipoleOrder::Quadrupole,
                                           MultipoleOrder::Octupole,
                                           MultipoleOrder::Hexadecapole));

TEST(GravitySolver, HigherOrderIsMoreAccurate)
{
    auto ps = randomCluster(1500, 44);
    GravityParams<double> p;
    p.theta = 0.8;
    p.order = MultipoleOrder::Monopole;
    auto a = ps;
    double eMono = rmsError(a, p);
    p.order = MultipoleOrder::Quadrupole;
    auto b = ps;
    double eQuad = rmsError(b, p);
    p.order = MultipoleOrder::Hexadecapole;
    auto c = ps;
    double eHex = rmsError(c, p);
    EXPECT_LT(eQuad, eMono);
    EXPECT_LT(eHex, eQuad);
}

TEST(GravitySolver, MomentumConservedByDirectSum)
{
    auto ps = randomCluster(500, 45);
    GravityParams<double> params;
    GravitySolver<double>::directSum(ps, params);
    double fx = 0, fy = 0, fz = 0;
    for (std::size_t i = 0; i < ps.size(); ++i)
    {
        fx += ps.m[i] * ps.ax[i];
        fy += ps.m[i] * ps.ay[i];
        fz += ps.m[i] * ps.az[i];
    }
    EXPECT_NEAR(fx, 0.0, 1e-10);
    EXPECT_NEAR(fy, 0.0, 1e-10);
    EXPECT_NEAR(fz, 0.0, 1e-10);
}

TEST(GravitySolver, PotentialEnergyMatchesDirect)
{
    auto ps = randomCluster(1000, 46);
    GravityParams<double> params;
    params.theta = 0.4;
    params.order = MultipoleOrder::Quadrupole;

    auto ref = ps;
    double potDirect = GravitySolver<double>::directSum(ref, params);

    Box<double> box = computeBoundingBox<double>(ps.x, ps.y, ps.z);
    Octree<double> tree;
    tree.build(ps.x, ps.y, ps.z, box);
    GravitySolver<double> solver;
    solver.prepare(tree, ps, params);
    double potTree = solver.accumulate(ps);

    EXPECT_NEAR(potTree, potDirect, 2e-3 * std::abs(potDirect));
    EXPECT_LT(potDirect, 0.0);
}

TEST(GravitySolver, SofteningBoundsCloseForces)
{
    // two very close particles: softened force stays finite and below the
    // unsoftened point-mass force.
    ParticleSet<double> ps(2);
    ps.x = {0.0, 1e-8};
    ps.y = {0.0, 0.0};
    ps.z = {0.0, 0.0};
    ps.m = {1.0, 1.0};
    GravityParams<double> params;
    params.softening = 0.01;
    GravitySolver<double>::directSum(ps, params);
    double a = std::abs(ps.ax[0]);
    EXPECT_LT(a, 1.0 / (0.01 * 0.01)); // bounded by eps^-2
    EXPECT_GT(a, 0.0);
}

TEST(GravitySolver, TwoBodyAnalytic)
{
    ParticleSet<double> ps(2);
    ps.x = {0.0, 1.0};
    ps.y = {0.0, 0.0};
    ps.z = {0.0, 0.0};
    ps.m = {2.0, 3.0};
    GravityParams<double> params; // G = 1, no softening
    double pot = GravitySolver<double>::directSum(ps, params);
    EXPECT_NEAR(ps.ax[0], 3.0, 1e-14);    // toward +x, magnitude m2/r^2
    EXPECT_NEAR(ps.ax[1], -2.0, 1e-14);
    EXPECT_NEAR(pot, -6.0, 1e-14); // -m1 m2 / r
}

TEST(GravitySolver, StatsAreCounted)
{
    auto ps = randomCluster(2000, 47);
    GravityParams<double> params;
    params.theta = 0.6;
    Box<double> box = computeBoundingBox<double>(ps.x, ps.y, ps.z);
    Octree<double> tree;
    Octree<double>::BuildParams bp;
    bp.leafSize = 16; // a fine tree is required for Barnes-Hut to prune
    tree.build(ps.x, ps.y, ps.z, box, bp);
    GravitySolver<double> solver;
    solver.prepare(tree, ps, params);
    GravityStats stats;
    solver.accumulate(ps, &stats);
    EXPECT_GT(stats.p2pInteractions, 0u);
    EXPECT_GT(stats.m2pInteractions, 0u);
    // far fewer than N^2 direct interactions
    EXPECT_LT(stats.p2pInteractions + stats.m2pInteractions,
              ps.size() * ps.size() / 4);
}

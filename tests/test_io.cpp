/// I/O substrate tests: binary serialization round trips, CRC-64 behaviour,
/// CSV output and the series writer.

#include <gtest/gtest.h>

#include <sstream>

#include "io/ascii_io.hpp"
#include "io/serialize.hpp"
#include "math/rng.hpp"

using namespace sphexa;

namespace {

ParticleSetD randomParticles(std::size_t n, std::uint64_t seed)
{
    ParticleSetD ps(n);
    Xoshiro256pp rng(seed);
    for (auto* f : ps.realFields())
    {
        for (auto& v : *f)
            v = rng.uniform(-10, 10);
    }
    for (std::size_t i = 0; i < n; ++i)
    {
        ps.id[i]  = i * 7 + 1;
        ps.nc[i]  = int(i % 100);
        ps.bin[i] = int(i % 5);
    }
    return ps;
}

} // namespace

TEST(Serialize, RoundTripBitwise)
{
    auto ps = randomParticles(137, 5);
    auto buf = serialize(ps, 3.25, 42u);
    auto res = deserialize<double>(buf);

    EXPECT_DOUBLE_EQ(res.time, 3.25);
    EXPECT_EQ(res.step, 42u);
    ASSERT_EQ(res.particles.size(), ps.size());

    auto a = ps.realFields();
    auto b = res.particles.realFields();
    for (std::size_t f = 0; f < a.size(); ++f)
    {
        for (std::size_t i = 0; i < ps.size(); ++i)
        {
            ASSERT_EQ((*a[f])[i], (*b[f])[i]) << "field " << f << " particle " << i;
        }
    }
    EXPECT_EQ(res.particles.id, ps.id);
    EXPECT_EQ(res.particles.nc, ps.nc);
    EXPECT_EQ(res.particles.bin, ps.bin);
}

TEST(Serialize, EmptySetRoundTrip)
{
    ParticleSetD ps;
    auto buf = serialize(ps, 0.0, 0u);
    auto res = deserialize<double>(buf);
    EXPECT_EQ(res.particles.size(), 0u);
}

TEST(Serialize, RejectsBadMagic)
{
    auto ps = randomParticles(5, 7);
    auto buf = serialize(ps);
    buf[0] ^= std::byte{0xff};
    EXPECT_THROW(deserialize<double>(buf), std::runtime_error);
}

TEST(Serialize, RejectsTruncated)
{
    auto ps = randomParticles(50, 9);
    auto buf = serialize(ps);
    buf.resize(buf.size() / 2);
    EXPECT_THROW(deserialize<double>(buf), std::runtime_error);
}

TEST(Serialize, RejectsPrecisionMismatch)
{
    ParticleSet<float> ps(4);
    auto buf = serialize(ps);
    EXPECT_THROW(deserialize<double>(buf), std::runtime_error);
}

TEST(Crc64, KnownProperties)
{
    std::vector<std::byte> a(100, std::byte{0x41});
    std::vector<std::byte> b = a;
    EXPECT_EQ(Crc64::compute(a), Crc64::compute(b));
    b[50] ^= std::byte{0x01};
    EXPECT_NE(Crc64::compute(a), Crc64::compute(b));
    // single-bit flips anywhere change the CRC
    for (std::size_t pos : {0u, 13u, 99u})
    {
        auto c = a;
        c[pos] ^= std::byte{0x80};
        EXPECT_NE(Crc64::compute(a), Crc64::compute(c)) << pos;
    }
}

TEST(Crc64, EmptyInput)
{
    std::vector<std::byte> empty;
    EXPECT_EQ(Crc64::compute(empty), Crc64::compute(empty));
}

TEST(CsvWriter, HeaderAndRows)
{
    ParticleSetD ps(3);
    ps.x = {1, 2, 3};
    ps.rho = {0.5, 0.6, 0.7};
    ps.id = {10, 11, 12};
    std::ostringstream os;
    writeCsv(os, ps, {"x", "rho"});
    std::string out = os.str();
    EXPECT_NE(out.find("id,x,rho"), std::string::npos);
    EXPECT_NE(out.find("10,1,0.5"), std::string::npos);
    EXPECT_NE(out.find("12,3,0.7"), std::string::npos);
}

TEST(SeriesWriter, RowsAndFormatting)
{
    SeriesWriter w({"step", "energy"});
    w.addRow({1, 0.5});
    w.addRow({2, 0.25});
    EXPECT_EQ(w.rowCount(), 2u);
    auto s = w.str();
    EXPECT_NE(s.find("step,energy"), std::string::npos);
    EXPECT_NE(s.find("2,0.25"), std::string::npos);
}

TEST(SeriesWriter, RejectsWrongColumnCount)
{
    SeriesWriter w({"a", "b", "c"});
    EXPECT_THROW(w.addRow({1.0}), std::invalid_argument);
}

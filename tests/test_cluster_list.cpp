/// SFC reorder + cluster neighbor-search tests (tree/sfc_sort.hpp,
/// tree/cluster_list.hpp): permutation round trips, sorter invariants, and
/// the subsystem's central claim — the cluster search produces the exact
/// per-particle neighbor sequences of the per-particle tree walk, on random
/// clouds, periodic lattices and ghost-extended WCSPH sets, across cluster
/// and worker-pool sizes. Plus the satellite gates: grow-only NeighborList
/// resets and the per-step overflow surfaced in StepReport.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/simulation.hpp"
#include "ic/lattice.hpp"
#include "ic/sedov.hpp"
#include "math/rng.hpp"
#include "sph/boundaries.hpp"
#include "tree/cluster_list.hpp"
#include "tree/neighbors.hpp"
#include "tree/sfc_sort.hpp"

using namespace sphexa;

namespace {

struct PoolSizeGuard
{
    std::size_t saved;
    explicit PoolSizeGuard(std::size_t n) : saved(WorkerPool::instance().size())
    {
        WorkerPool::instance().resize(n);
    }
    ~PoolSizeGuard() { WorkerPool::instance().resize(saved); }
};

ParticleSetD randomCloudSet(std::size_t n, std::uint64_t seed, double hval = 0.05)
{
    ParticleSetD ps;
    ps.resize(n);
    Xoshiro256pp rng(seed);
    for (std::size_t i = 0; i < n; ++i)
    {
        ps.x[i]  = rng.uniform();
        ps.y[i]  = rng.uniform();
        ps.z[i]  = rng.uniform();
        ps.h[i]  = hval;
        ps.id[i] = i;
    }
    return ps;
}

/// Exact element-wise comparison: same counts, same indices, same order.
void expectListsIdentical(const NeighborList<double>& a, const NeighborList<double>& b)
{
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.overflowCount(), b.overflowCount());
    for (std::size_t i = 0; i < a.size(); ++i)
    {
        auto na = a.neighbors(i);
        auto nb = b.neighbors(i);
        ASSERT_EQ(na.size(), nb.size()) << "particle " << i;
        for (std::size_t k = 0; k < na.size(); ++k)
        {
            ASSERT_EQ(na[k], nb[k]) << "particle " << i << " entry " << k;
        }
    }
}

void runBothSearches(const ParticleSetD& ps, const Box<double>& box,
                     unsigned clusterSize, unsigned ngmax = 384)
{
    Octree<double> tree;
    tree.build(ps.x, ps.y, ps.z, box);

    NeighborList<double> nlWalk(ps.size(), ngmax);
    findNeighborsGlobal(tree, ps.x, ps.y, ps.z, ps.h, nlWalk);

    NeighborList<double> nlCluster(ps.size(), ngmax);
    ClusterWorkspace<double> ws;
    findNeighborsClustered(tree, ps.x, ps.y, ps.z, ps.h, nlCluster, ws, clusterSize);

    EXPECT_EQ(ws.clusters, (ps.size() + clusterSize - 1) / clusterSize);
    EXPECT_GT(ws.candidatesVisited, 0u);
    expectListsIdentical(nlWalk, nlCluster);
}

} // namespace

// --- permutation round trips ------------------------------------------------

TEST(SfcSort, InvertPermutationIsAnInverse)
{
    Xoshiro256pp rng(7);
    std::vector<std::size_t> perm(257);
    std::iota(perm.begin(), perm.end(), std::size_t(0));
    for (std::size_t k = perm.size(); k > 1; --k)
    {
        std::swap(perm[k - 1], perm[rng.uniformInt(k)]);
    }
    auto inv = invertPermutation(perm);
    for (std::size_t k = 0; k < perm.size(); ++k)
    {
        EXPECT_EQ(inv[perm[k]], k);
        EXPECT_EQ(perm[inv[k]], k);
    }
}

TEST(SfcSort, InvertPermutationRejectsOutOfRange)
{
    std::vector<std::size_t> bad{0, 5, 1};
    EXPECT_THROW(invertPermutation(bad), std::invalid_argument);
}

TEST(SfcSort, ReorderThenInverseReorderIsBitwiseIdentity)
{
    auto ps = randomCloudSet(611, 21);
    // make every field distinguishable, not just positions
    for (std::size_t i = 0; i < ps.size(); ++i)
    {
        ps.vx[i]  = 0.1 * double(i);
        ps.rho[i] = 1.0 + 1e-3 * double(i);
        ps.u[i]   = 2.0 - 1e-4 * double(i);
        ps.nc[i]  = int(i % 97);
        ps.bin[i] = int(i % 5);
    }
    ParticleSetD orig = ps;

    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    SfcSorter<double> sorter;
    ASSERT_TRUE(sorter.apply(ps, box, SfcCurve::Morton));

    ps.reorder(invertPermutation(sorter.perm()));
    auto origFields = orig.realFields();
    auto curFields  = ps.realFields();
    ASSERT_EQ(origFields.size(), curFields.size());
    for (std::size_t f = 0; f < origFields.size(); ++f)
    {
        for (std::size_t i = 0; i < orig.size(); ++i)
        {
            ASSERT_EQ((*origFields[f])[i], (*curFields[f])[i]) << "field " << f;
        }
    }
    EXPECT_EQ(orig.id, ps.id);
    EXPECT_EQ(orig.nc, ps.nc);
    EXPECT_EQ(orig.bin, ps.bin);
}

// --- sorter invariants --------------------------------------------------------

TEST(SfcSort, AppliedOrderIsSortedAndIdempotent)
{
    auto ps = randomCloudSet(1000, 33);
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    SfcSorter<double> sorter;
    ASSERT_TRUE(sorter.apply(ps, box, SfcCurve::Hilbert));

    // ids travel with the particles: slot k now holds original perm()[k]
    for (std::size_t k = 0; k < ps.size(); ++k)
    {
        EXPECT_EQ(ps.id[k], sorter.perm()[k]);
    }

    // a second pass finds the set already sorted (identity fast path) and
    // leaves its key buffer — now recomputed over the new order — sorted
    EXPECT_FALSE(sorter.apply(ps, box, SfcCurve::Hilbert));
    EXPECT_TRUE(std::is_sorted(sorter.keys().begin(), sorter.keys().end()));
    for (std::size_t k = 0; k < ps.size(); ++k)
    {
        EXPECT_EQ(sorter.perm()[k], k);
    }
}

// --- cluster search vs per-particle walk -------------------------------------

TEST(ClusterList, MatchesTreeWalkOnRandomCloud)
{
    auto ps = randomCloudSet(800, 3);
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    for (unsigned clusterSize : {1u, 7u, 32u, 801u})
    {
        runBothSearches(ps, box, clusterSize);
    }
}

TEST(ClusterList, MatchesTreeWalkOnSortedCloudAcrossPools)
{
    auto ps = randomCloudSet(1200, 5);
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    SfcSorter<double> sorter;
    sorter.apply(ps, box, SfcCurve::Morton);
    for (std::size_t pool : {1, 4})
    {
        PoolSizeGuard guard(pool);
        runBothSearches(ps, box, 32);
    }
}

TEST(ClusterList, MatchesTreeWalkOnPeriodicLattice)
{
    // fully periodic Sedov-style box: wrapped candidate distances exercise
    // the periodic branches of aabbDistanceSq
    ParticleSetD ps;
    Box<double> box{{-0.5, -0.5, -0.5}, {0.5, 0.5, 0.5}, true, true, true};
    cubicLattice(ps, 10, 10, 10, box);
    for (std::size_t i = 0; i < ps.size(); ++i)
        ps.h[i] = 0.11;
    runBothSearches(ps, box, 32);
}

TEST(ClusterList, MatchesTreeWalkWithMirrorGhosts)
{
    // WCSPH shape: ghosts appended at the tail (phase K runs after the
    // reorder, so this mixed real+ghost layout is exactly what phase B sees)
    ParticleSetD ps;
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    cubicLattice(ps, 8, 8, 8, box);
    for (std::size_t i = 0; i < ps.size(); ++i)
    {
        ps.h[i] = 0.08;
        ps.m[i] = 1.0;
    }
    BoundaryConfig<double> bc;
    bc.enabled   = true;
    bc.wallLo[2] = true;
    bc.wallHi[0] = true;
    std::size_t nGhosts = appendMirrorGhosts(ps, box, bc);
    ASSERT_GT(nGhosts, 0u);
    runBothSearches(ps, box, 32);
}

TEST(ClusterList, OverflowCountMatchesTreeWalk)
{
    auto ps = randomCloudSet(400, 11, /*hval*/ 0.2); // dense: lists overflow
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    Octree<double> tree;
    tree.build(ps.x, ps.y, ps.z, box);

    NeighborList<double> nlWalk(ps.size(), 16);
    findNeighborsGlobal(tree, ps.x, ps.y, ps.z, ps.h, nlWalk);
    ASSERT_GT(nlWalk.overflowCount(), 0u);

    NeighborList<double> nlCluster(ps.size(), 16);
    ClusterWorkspace<double> ws;
    findNeighborsClustered(tree, ps.x, ps.y, ps.z, ps.h, nlCluster, ws, 32);
    EXPECT_EQ(nlCluster.overflowCount(), nlWalk.overflowCount());
}

// --- grow-only NeighborList storage ------------------------------------------

TEST(NeighborListStorage, ResetReusesHighWaterMarkAllocation)
{
    NeighborList<double> nl(1000, 64);
    const auto* data      = nl.entryData();
    std::size_t capacity  = nl.entryCapacity();
    ASSERT_GE(capacity, 1000u * 64u);

    // shrink and re-grow within the high-water mark: no reallocation
    nl.reset(200, 64);
    nl.reset(1000, 64);
    EXPECT_EQ(nl.entryData(), data);
    EXPECT_EQ(nl.entryCapacity(), capacity);

    // counts and overflow are still fully reset
    EXPECT_EQ(nl.totalNeighbors(), 0u);
    EXPECT_EQ(nl.overflowCount(), 0u);

    // growing past the mark is the only path that may reallocate
    nl.reset(2000, 64);
    EXPECT_GE(nl.entryCapacity(), 2000u * 64u);
}

// --- overflow surfaced per step ----------------------------------------------

TEST(StepReportOverflow, TruncatedListsAreCountedInTheReport)
{
    // ngmax far below the converged neighbor count: every particle's list
    // truncates, and the driver must surface that in the step report
    // (plus a one-line stderr warning) instead of silently losing pairs
    ParticleSetD ps;
    SedovConfig<double> ic;
    ic.nSide   = 8;
    auto setup = makeSedov(ps, ic);

    SimulationConfig<double> cfg;
    cfg.targetNeighbors   = 50;
    cfg.neighborTolerance = 45; // wide band: h converges despite the cap
    cfg.ngmax             = 16;
    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);
    auto rep = sim.computeForces();
    EXPECT_GT(rep.neighborOverflow, 0u);

    // healthy capacity: the counter must go back to zero
    ParticleSetD ps2;
    auto setup2 = makeSedov(ps2, ic);
    cfg.ngmax   = 384;
    Simulation<double> sim2(std::move(ps2), setup2.box, Eos<double>(setup2.eos), cfg);
    EXPECT_EQ(sim2.computeForces().neighborOverflow, 0u);
}

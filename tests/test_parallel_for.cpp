/// Tests of the ParallelFor execution layer (parallel/parallel_for.hpp):
/// the persistent worker pool, iteration coverage under every strategy,
/// per-phase busy-time accounting, AWF weight persistence — and the
/// strongest guarantee the layer makes to the solver: particle state after
/// a real Sedov run is bitwise identical for every pool size and every
/// scheduling strategy, for both the hydro and hydro+gravity pipelines.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/simulation.hpp"
#include "ic/sedov.hpp"
#include "parallel/parallel_for.hpp"
#include "perf/pop_metrics.hpp"

using namespace sphexa;

namespace {

const std::vector<SchedulingStrategy> kAllStrategies = {
    SchedulingStrategy::Static,          SchedulingStrategy::SelfScheduling,
    SchedulingStrategy::Guided,          SchedulingStrategy::Trapezoid,
    SchedulingStrategy::Factoring,       SchedulingStrategy::AdaptiveWeightedFactoring};

/// RAII pool-size override: tests force {1, 2, 4} and restore the default.
struct PoolSizeGuard
{
    std::size_t saved;
    explicit PoolSizeGuard(std::size_t n) : saved(WorkerPool::instance().size())
    {
        WorkerPool::instance().resize(n);
    }
    ~PoolSizeGuard() { WorkerPool::instance().resize(saved); }
};

} // namespace

// --- worker pool -------------------------------------------------------------

TEST(WorkerPool, RunsEveryWorkerExactlyOnce)
{
    PoolSizeGuard guard(4);
    auto& pool = WorkerPool::instance();
    ASSERT_EQ(pool.size(), 4u);

    std::vector<std::atomic<int>> hits(4);
    pool.run([&](std::size_t w) { hits[w].fetch_add(1); });
    for (std::size_t w = 0; w < 4; ++w)
    {
        EXPECT_EQ(hits[w].load(), 1) << "worker " << w;
    }
}

TEST(WorkerPool, SurvivesRepeatedResizeAndReuse)
{
    auto& pool = WorkerPool::instance();
    std::size_t saved = pool.size();
    for (std::size_t n : {1u, 3u, 1u, 4u, 2u})
    {
        pool.resize(n);
        ASSERT_EQ(pool.size(), n);
        std::atomic<int> count{0};
        pool.run([&](std::size_t) { count.fetch_add(1); });
        EXPECT_EQ(count.load(), int(n));
    }
    pool.resize(saved);
}

TEST(WorkerPool, RejectsZeroSize)
{
    EXPECT_THROW(WorkerPool::instance().resize(0), std::invalid_argument);
    EXPECT_THROW(WorkerPool(0), std::invalid_argument);
}

// --- pool lifecycle ----------------------------------------------------------
//
// Standalone pools (not instance()) so construct/run/destroy cycles can be
// exercised under TSan without disturbing the process-wide pool. These are
// the tests that pin the startup/shutdown handshake: a worker that is slow
// to reach its condition wait must neither miss the stop flag nor re-run a
// stale job generation.

TEST(WorkerPoolLifecycle, ConstructDestroyWithoutRunningAJob)
{
    // destruction races startup: threads may still be on their way to the
    // first wait when stopThreads() flips the flag
    for (int cycle = 0; cycle < 50; ++cycle)
    {
        WorkerPool pool(4);
        EXPECT_EQ(pool.size(), 4u);
    }
}

TEST(WorkerPoolLifecycle, RepeatedConstructRunDestroyCycles)
{
    for (int cycle = 0; cycle < 25; ++cycle)
    {
        for (std::size_t n : {1u, 2u, 4u})
        {
            WorkerPool pool(n);
            std::atomic<int> count{0};
            pool.run([&](std::size_t) { count.fetch_add(1); });
            EXPECT_EQ(count.load(), int(n));
        }
    }
}

TEST(WorkerPoolLifecycle, BackToBackJobsReuseTheSameThreads)
{
    WorkerPool pool(3);
    std::vector<std::atomic<int>> hits(3);
    for (int job = 0; job < 100; ++job)
    {
        pool.run([&](std::size_t w) { hits[w].fetch_add(1); });
    }
    for (std::size_t w = 0; w < 3; ++w)
    {
        EXPECT_EQ(hits[w].load(), 100) << "worker " << w;
    }
}

TEST(WorkerPoolLifecycle, DefaultSizeFollowsOmpThreadBudget)
{
#ifdef _OPENMP
    int saved = omp_get_max_threads();
    omp_set_num_threads(3);
    EXPECT_EQ(WorkerPool::defaultSize(), 3u);

    // the documented idiom for following a runtime budget change
    PoolSizeGuard guard(1);
    WorkerPool::instance().resize(WorkerPool::defaultSize());
    EXPECT_EQ(WorkerPool::instance().size(), 3u);
    std::atomic<int> count{0};
    WorkerPool::instance().run([&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 3);

    omp_set_num_threads(saved);
#else
    // without OpenMP the budget comes from the environment
    EXPECT_GE(WorkerPool::defaultSize(), 1u);
#endif
}

// --- parallelFor coverage ----------------------------------------------------

TEST(ParallelFor, EveryIterationExactlyOnceUnderEveryStrategyAndPoolSize)
{
    const std::size_t n = 4097;
    for (std::size_t pool : {1u, 2u, 4u})
    {
        PoolSizeGuard guard(pool);
        for (auto s : kAllStrategies)
        {
            std::vector<std::atomic<int>> hits(n);
            LoopPolicy pol;
            pol.strategy = s;
            parallelFor(n, [&](std::size_t i, std::size_t) { hits[i].fetch_add(1); }, pol);
            for (std::size_t i = 0; i < n; ++i)
            {
                ASSERT_EQ(hits[i].load(), 1)
                    << schedulingName(s) << " pool=" << pool << " i=" << i;
            }
        }
    }
}

TEST(ParallelFor, WorkerIdsStayInRange)
{
    PoolSizeGuard guard(3);
    std::vector<std::atomic<int>> perWorker(3);
    parallelFor(1000, [&](std::size_t, std::size_t w) {
        ASSERT_LT(w, 3u);
        perWorker[w].fetch_add(1);
    });
    int total = 0;
    for (auto& c : perWorker)
        total += c.load();
    EXPECT_EQ(total, 1000);
}

TEST(ParallelFor, EmptyLoopIsANoop)
{
    PhaseLoadStats stats;
    LoopPolicy pol;
    pol.stats = &stats;
    parallelFor(0, [&](std::size_t, std::size_t) { FAIL() << "body ran"; }, pol);
    EXPECT_EQ(stats.invocations, 0u);
}

TEST(ParallelFor, EmptyLoopIsANoopUnderEveryStrategyAndPoolSize)
{
    for (std::size_t pool : {1u, 4u})
    {
        PoolSizeGuard guard(pool);
        for (auto s : kAllStrategies)
        {
            LoopPolicy pol;
            pol.strategy = s;
            parallelFor(0, [&](std::size_t, std::size_t) { FAIL() << "body ran"; }, pol);
        }
    }
}

// --- busy-time accounting ----------------------------------------------------

TEST(ParallelFor, StatsRecordIterationsAndBusyTimes)
{
    PoolSizeGuard guard(2);
    PhaseLoadStats stats;
    LoopPolicy pol;
    pol.strategy = SchedulingStrategy::Factoring;
    pol.stats    = &stats;

    const std::size_t n = 2000;
    std::vector<double> sink(n);
    parallelFor(n, [&](std::size_t i, std::size_t) { sink[i] = double(i) * 1e-3; }, pol);

    ASSERT_EQ(stats.workerIterations.size(), 2u);
    EXPECT_EQ(stats.workerIterations[0] + stats.workerIterations[1], n);
    EXPECT_GT(stats.chunks, 0u);
    EXPECT_EQ(stats.invocations, 1u);
    double lb = stats.loadBalance();
    EXPECT_GT(lb, 0.0);
    EXPECT_LE(lb, 1.0);

    // a second loop accumulates into the same phase slot
    parallelFor(n, [&](std::size_t i, std::size_t) { sink[i] += 1.0; }, pol);
    EXPECT_EQ(stats.invocations, 2u);
    EXPECT_EQ(stats.workerIterations[0] + stats.workerIterations[1], 2 * n);
}

TEST(ParallelFor, PopMetricsFromPhaseLoadStats)
{
    PhaseLoadStats stats;
    stats.workerBusySeconds = {1.0, 0.5};
    stats.wallSeconds       = 1.25;
    auto m = computePopMetrics(stats);
    EXPECT_NEAR(m.loadBalance, 0.75, 1e-12);          // avg(0.75)/max(1.0)
    EXPECT_NEAR(m.communicationEfficiency, 0.8, 1e-12); // max/runtime
    EXPECT_NEAR(m.parallelEfficiency, 0.6, 1e-12);

    PhaseLoadStats empty;
    EXPECT_THROW(computePopMetrics(empty), std::invalid_argument);
}

// --- AWF weight adaptation ---------------------------------------------------

TEST(AwfWeights, AdaptationConvergesTowardMeasuredRates)
{
    // worker 0 measures twice the rate of worker 1: the persisted weights
    // must converge to the normalized rates {4/3, 2/3} over repeated steps
    std::vector<double> weights{1.0, 1.0};
    std::vector<std::size_t> iters{2000, 1000};
    std::vector<double> busy{1.0, 1.0};

    for (int step = 0; step < 12; ++step)
    {
        adaptAwfWeights(weights, iters, busy);
    }
    EXPECT_NEAR(weights[0], 4.0 / 3.0, 1e-3);
    EXPECT_NEAR(weights[1], 2.0 / 3.0, 1e-3);
    // the LoopScheduler invariant: weights have mean 1
    EXPECT_NEAR(weights[0] + weights[1], 2.0, 1e-12);
}

TEST(AwfWeights, IdleWorkersKeepTheirWeight)
{
    std::vector<double> weights{1.2, 0.8, 1.0};
    std::vector<std::size_t> iters{1000, 1000, 0}; // worker 2 got no chunk
    std::vector<double> busy{0.5, 0.5, 0.0};
    adaptAwfWeights(weights, iters, busy, /*blend*/ 1.0);
    // measured workers move to their (equal) normalized rate, the idle one
    // is only rescaled by the mean-1 renormalization
    EXPECT_NEAR(weights[0], weights[1], 1e-12);
    double sum = weights[0] + weights[1] + weights[2];
    EXPECT_NEAR(sum, 3.0, 1e-12);
}

TEST(AwfWeights, StoreStartsEqualAndResetClears)
{
    PoolSizeGuard guard(2);
    AwfWeightStore store;
    // a fresh store (what a fresh StepContext sees) holds no adapted state
    EXPECT_TRUE(store.weightsFor(0).empty());

    LoopPolicy pol;
    pol.strategy   = SchedulingStrategy::AdaptiveWeightedFactoring;
    pol.awfWeights = &store.weightsFor(0);
    std::vector<double> sink(5000);
    parallelFor(5000, [&](std::size_t i, std::size_t) { sink[i] = double(i); }, pol);

    // the loop initialized the weights to equal and adapted them in place
    ASSERT_EQ(store.weightsFor(0).size(), 2u);
    double sum = store.weightsFor(0)[0] + store.weightsFor(0)[1];
    EXPECT_NEAR(sum, 2.0, 1e-9);

    store.reset();
    EXPECT_TRUE(store.weightsFor(0).empty());
}

TEST(AwfWeights, SimulationPersistsWeightsAcrossSteps)
{
    PoolSizeGuard guard(2);
    ParticleSetD ps;
    SedovConfig<double> sc;
    sc.nSide   = 8;
    auto setup = makeSedov(ps, sc);

    SimulationConfig<double> cfg;
    cfg.targetNeighbors   = 30;
    cfg.neighborTolerance = 10;
    cfg.phaseSchedule.fillSphPhases(SchedulingStrategy::AdaptiveWeightedFactoring);

    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);
    sim.computeForces();
    sim.run(2);

    // the driver-owned store now carries adapted weights for the AWF phases
    auto& w = sim.awfWeights().weightsFor(std::size_t(Phase::E_Density));
    ASSERT_EQ(w.size(), 2u);
    EXPECT_NEAR(w[0] + w[1], 2.0, 1e-9);
    EXPECT_GT(w[0], 0.0);
    EXPECT_GT(w[1], 0.0);
}

// --- the invariance harness --------------------------------------------------

namespace {

/// Run 5 Sedov steps under one (strategy, pool size) combination and return
/// the final particle state.
ParticleSetD runSedov(SchedulingStrategy strategy, std::size_t poolSize, bool gravity)
{
    PoolSizeGuard guard(poolSize);
#ifdef _OPENMP
    int savedOmp = omp_get_max_threads();
    omp_set_num_threads(int(poolSize)); // vary the OpenMP walks too
#endif

    ParticleSetD ps;
    SedovConfig<double> sc;
    sc.nSide   = 10;
    auto setup = makeSedov(ps, sc);

    SimulationConfig<double> cfg;
    cfg.targetNeighbors   = 40;
    cfg.neighborTolerance = 10;
    cfg.selfGravity       = gravity;
    if (gravity) cfg.gravity.softening = 1e-2;
    cfg.phaseSchedule.fill(strategy);

    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);
    sim.computeForces();
    sim.run(5);

#ifdef _OPENMP
    omp_set_num_threads(savedOmp);
#endif
    return sim.particles();
}

/// Assert bitwise equality of every floating-point field.
void expectBitwiseEqual(const ParticleSetD& ref, const ParticleSetD& got,
                        const std::string& what)
{
    ASSERT_EQ(ref.size(), got.size()) << what;
    auto refFields = ref.realFields();
    auto gotFields = got.realFields();
    const auto& names = ParticleSetD::realFieldNames();
    for (std::size_t f = 0; f < refFields.size(); ++f)
    {
        const auto& a = *refFields[f];
        const auto& b = *gotFields[f];
        for (std::size_t i = 0; i < a.size(); ++i)
        {
            ASSERT_EQ(a[i], b[i]) << what << ": field " << names[f] << "[" << i << "]";
        }
    }
}

void runInvarianceSuite(bool gravity)
{
    // reference: STATIC on a single worker — the fully serial execution
    ParticleSetD ref = runSedov(SchedulingStrategy::Static, 1, gravity);
    ASSERT_GT(ref.size(), 0u);

    for (auto s : kAllStrategies)
    {
        for (std::size_t pool : {1u, 2u, 4u})
        {
            if (s == SchedulingStrategy::Static && pool == 1) continue; // the reference
            ParticleSetD got = runSedov(s, pool, gravity);
            expectBitwiseEqual(ref, got,
                               std::string(schedulingName(s)) + "/pool=" +
                                   std::to_string(pool));
        }
    }
}

} // namespace

/// 5 Sedov steps are bitwise identical across pool sizes {1,2,4} and all
/// six scheduling strategies: every hot loop is accumulate-to-self and all
/// reductions are exact (min/max selection), so chunk boundaries — even the
/// timing-dependent ones of AWF — can never change physics.
TEST(ThreadStrategyInvariance, HydroPipelineIsBitwiseIdentical)
{
    runInvarianceSuite(/*gravity*/ false);
}

TEST(ThreadStrategyInvariance, HydroGravityPipelineIsBitwiseIdentical)
{
    runInvarianceSuite(/*gravity*/ true);
}

/// Backend-layer tests (src/backend/): the Simd lane kernels against the
/// Scalar reference loops.
///
/// The contract under test (docs/ARCHITECTURE.md "Backend layer"):
///  - Simd results match Scalar to relative tolerance per phase — tight
///    (~1e-12) for the closed-form kernels whose lanes replicate the exact
///    scalar FP expressions, looser for Sinc whose lanes read the lookup
///    table instead of calling pow/sin per pair;
///  - Simd results are themselves BITWISE invariant across worker-pool
///    sizes and all six scheduling strategies (fixed-order lane reduction);
///  - remainder tiles (count % laneWidth != 0) and empty neighbor lists
///    are exact edge cases, not approximations.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "backend/kernel_backend.hpp"
#include "backend/lane_kernel.hpp"
#include "backend/simd_tile.hpp"
#include "domain/box.hpp"
#include "ic/lattice.hpp"
#include "math/rng.hpp"
#include "sph/density.hpp"
#include "sph/divcurl.hpp"
#include "sph/eos.hpp"
#include "sph/iad.hpp"
#include "sph/momentum_energy.hpp"
#include "sph/particles.hpp"
#include "sph/smoothing_length.hpp"
#include "tree/neighbors.hpp"
#include "tree/octree.hpp"

using namespace sphexa;

namespace {

struct PoolSizeGuard
{
    std::size_t saved;
    explicit PoolSizeGuard(std::size_t n) : saved(WorkerPool::instance().size())
    {
        WorkerPool::instance().resize(n);
    }
    ~PoolSizeGuard() { WorkerPool::instance().resize(saved); }
};

constexpr std::array<KernelType, 6> kAllKernels{
    KernelType::Sinc,       KernelType::CubicSpline, KernelType::WendlandC2,
    KernelType::WendlandC4, KernelType::WendlandC6,  KernelType::DebrunSpiky};

constexpr std::array<SchedulingStrategy, 6> kAllStrategies{
    SchedulingStrategy::Static,    SchedulingStrategy::SelfScheduling,
    SchedulingStrategy::Guided,    SchedulingStrategy::Trapezoid,
    SchedulingStrategy::Factoring, SchedulingStrategy::AdaptiveWeightedFactoring};

/// Per-kernel parity tolerance: the closed-form lanes replicate the scalar
/// per-pair expressions bitwise, so only the neighbor-sum association
/// differs; the Sinc lanes read the LookupTable (~1e-8 per sample) instead
/// of calling pow/sin.
double parityTol(KernelType k) { return k == KernelType::Sinc ? 2e-6 : 1e-11; }

/// A jittered periodic lattice with a smooth shear + rotation velocity
/// field, all upstream fields (rho/vol/gradh, p/c, IAD coefficients,
/// balsara) filled by the Scalar reference path.
struct BackendFixture
{
    ParticleSetD ps;
    Box<double> box;
    Octree<double> tree;
    NeighborList<double> nl{0, 384};
    Kernel<double> kernel;

    explicit BackendFixture(KernelType type, std::size_t side = 10, double jitter = 0.2,
                            bool periodic = true)
        : box({0, 0, 0}, {1, 1, 1}, periodic, periodic, periodic), kernel(type)
    {
        cubicLattice(ps, side, side, side, box);
        double dx = 1.0 / double(side);
        if (jitter > 0) jitterPositions(ps, box, dx, jitter, 42);
        for (std::size_t i = 0; i < ps.size(); ++i)
        {
            ps.m[i] = 1.0 / double(ps.size());
            ps.h[i] = initialSmoothingLength(ps.size(), box, 60u);
            ps.u[i] = 1.0;
            // smooth, non-trivial velocity field: shear + rigid rotation
            ps.vx[i] = 0.3 * ps.y[i] - 0.1 * ps.z[i];
            ps.vy[i] = -0.2 * ps.x[i] + 0.05 * std::sin(6.28 * ps.z[i]);
            ps.vz[i] = 0.15 * ps.x[i] + 0.1 * ps.y[i];
        }
        tree.build(ps.x, ps.y, ps.z, box);
        nl.reset(ps.size(), 384);
        SmoothingLengthParams<double> hp;
        hp.targetNeighbors = 60;
        hp.tolerance       = 10;
        updateSmoothingLengths(ps, tree, nl, hp);
        symmetrizeNeighborList(nl);
        fillUpstream(ps);
    }

    /// Scalar prerequisites for the phase under test: density, EOS, IAD
    /// coefficients and the div/curl (balsara) pass.
    void fillUpstream(ParticleSetD& target) const
    {
        computeVolumeElementWeights(target, VolumeElements::Standard);
        computeDensity(target, nl, kernel, box);
        Eos<double> eos{IdealGasEos<double>(5.0 / 3.0)};
        for (std::size_t i = 0; i < target.size(); ++i)
        {
            auto res    = eos(target.rho[i], target.u[i]);
            target.p[i] = res.pressure;
            target.c[i] = res.soundSpeed;
        }
        computeIadCoefficients(target, nl, kernel, box);
        computeDivCurl(target, nl, kernel, box, GradientMode::IAD);
    }
};

ComputeBackend<double> simd() { return {KernelBackend::Simd, nullptr}; }

/// |a-b| <= tol * scale, with scale the max magnitude of the reference
/// field (mixed abs/rel: fields like ax hover near zero on near-uniform
/// sets, where a pure relative gate is meaningless).
void expectFieldNear(const std::vector<double>& ref, const std::vector<double>& got,
                     double tol, const char* what)
{
    ASSERT_EQ(ref.size(), got.size());
    double scale = 1e-30;
    for (double v : ref)
        scale = std::max(scale, std::abs(v));
    for (std::size_t i = 0; i < ref.size(); ++i)
    {
        EXPECT_NEAR(ref[i], got[i], tol * scale) << what << " i=" << i;
    }
}

void expectFieldBitwise(const std::vector<double>& ref, const std::vector<double>& got,
                        const char* what)
{
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
    {
        // exact representation match, not tolerance
        EXPECT_EQ(ref[i], got[i]) << what << " i=" << i;
    }
}

} // namespace

// --- LaneKernel vs Kernel, single-lane -------------------------------------

TEST(LaneKernel, MatchesKernelAcrossSupport)
{
    for (KernelType type : kAllKernels)
    {
        Kernel<double> kernel(type);
        LaneKernel<double> lanes(kernel);
        double tol = type == KernelType::Sinc ? 2e-7 : 0.0;
        for (int k = 0; k <= 2200; ++k)
        {
            double q = 2.2 * double(k) / 2200.0;
            double f, df;
            lanes.fdf(q, f, df);
            if (tol == 0.0)
            {
                // closed forms replicate fq/dfq bitwise
                EXPECT_EQ(f, kernel.fq(q)) << kernelName(type) << " q=" << q;
                EXPECT_EQ(df, kernel.dfq(q)) << kernelName(type) << " q=" << q;
            }
            else
            {
                EXPECT_NEAR(f, kernel.fq(q), tol) << "q=" << q;
                EXPECT_NEAR(df, kernel.dfq(q), tol * 10) << "q=" << q;
            }
        }
        // the self-contribution sample must be exact for every kernel: the
        // density self term uses q=0 and is gated bitwise elsewhere
        double f0, df0;
        lanes.fdf(0.0, f0, df0);
        EXPECT_EQ(f0, kernel.fq(0.0)) << kernelName(type);
    }
}

// --- per-phase Simd vs Scalar parity ---------------------------------------

class BackendParity : public ::testing::TestWithParam<KernelType>
{
};

TEST_P(BackendParity, DensityMatchesScalar)
{
    BackendFixture f(GetParam());
    auto scalar = f.ps;
    auto vec    = f.ps;
    computeDensity(scalar, f.nl, f.kernel, f.box);
    computeDensity(vec, f.nl, f.kernel, f.box, {}, {}, simd());
    double tol = parityTol(GetParam());
    expectFieldNear(scalar.rho, vec.rho, tol, "rho");
    expectFieldNear(scalar.vol, vec.vol, tol, "vol");
    expectFieldNear(scalar.gradh, vec.gradh, tol, "gradh");
}

TEST_P(BackendParity, IadCoefficientsMatchScalar)
{
    BackendFixture f(GetParam());
    auto scalar = f.ps;
    auto vec    = f.ps;
    computeIadCoefficients(scalar, f.nl, f.kernel, f.box);
    computeIadCoefficients(vec, f.nl, f.kernel, f.box, {}, {}, simd());
    double tol = parityTol(GetParam());
    expectFieldNear(scalar.c11, vec.c11, tol, "c11");
    expectFieldNear(scalar.c12, vec.c12, tol, "c12");
    expectFieldNear(scalar.c13, vec.c13, tol, "c13");
    expectFieldNear(scalar.c22, vec.c22, tol, "c22");
    expectFieldNear(scalar.c23, vec.c23, tol, "c23");
    expectFieldNear(scalar.c33, vec.c33, tol, "c33");
}

TEST_P(BackendParity, DivCurlMatchesScalarBothGradientModes)
{
    for (GradientMode mode : {GradientMode::IAD, GradientMode::KernelDerivative})
    {
        BackendFixture f(GetParam());
        auto scalar = f.ps;
        auto vec    = f.ps;
        computeDivCurl(scalar, f.nl, f.kernel, f.box, mode);
        computeDivCurl(vec, f.nl, f.kernel, f.box, mode, {}, {}, simd());
        double tol = parityTol(GetParam());
        expectFieldNear(scalar.divv, vec.divv, tol, "divv");
        expectFieldNear(scalar.curlv, vec.curlv, tol, "curlv");
        expectFieldNear(scalar.balsara, vec.balsara, 10 * tol, "balsara");
    }
}

TEST_P(BackendParity, MomentumEnergyMatchesScalarBothGradientModes)
{
    for (GradientMode mode : {GradientMode::IAD, GradientMode::KernelDerivative})
    {
        BackendFixture f(GetParam());
        auto scalar = f.ps;
        auto vec    = f.ps;
        auto sStats = computeMomentumEnergy(scalar, f.nl, f.kernel, f.box, mode);
        auto vStats = computeMomentumEnergy(vec, f.nl, f.kernel, f.box, mode, {}, {}, {},
                                            simd());
        double tol = parityTol(GetParam());
        expectFieldNear(scalar.ax, vec.ax, tol, "ax");
        expectFieldNear(scalar.ay, vec.ay, tol, "ay");
        expectFieldNear(scalar.az, vec.az, tol, "az");
        expectFieldNear(scalar.du, vec.du, tol, "du");
        expectFieldNear(scalar.vsig, vec.vsig, tol, "vsig");
        EXPECT_NEAR(sStats.maxVsignal, vStats.maxVsignal,
                    tol * std::abs(sStats.maxVsignal));
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, BackendParity, ::testing::ValuesIn(kAllKernels),
                         [](const auto& info) {
                             // display names like "M4 spline" are not valid
                             // gtest identifiers; keep alphanumerics only
                             std::string name(kernelName(info.param));
                             std::erase_if(name, [](unsigned char c) {
                                 return std::isalnum(c) == 0;
                             });
                             return name;
                         });

// --- parity on an open (non-periodic) box ----------------------------------

TEST(BackendParityOpenBox, AllPhasesMatchScalar)
{
    // exercises the infinite-half-width wrap path (selects never fire)
    BackendFixture f(KernelType::WendlandC2, 10, 0.2, /*periodic=*/false);
    auto scalar = f.ps;
    auto vec    = f.ps;
    computeDensity(scalar, f.nl, f.kernel, f.box);
    computeDensity(vec, f.nl, f.kernel, f.box, {}, {}, simd());
    computeIadCoefficients(scalar, f.nl, f.kernel, f.box);
    computeIadCoefficients(vec, f.nl, f.kernel, f.box, {}, {}, simd());
    computeDivCurl(scalar, f.nl, f.kernel, f.box, GradientMode::IAD);
    computeDivCurl(vec, f.nl, f.kernel, f.box, GradientMode::IAD, {}, {}, simd());
    computeMomentumEnergy(scalar, f.nl, f.kernel, f.box, GradientMode::IAD);
    computeMomentumEnergy(vec, f.nl, f.kernel, f.box, GradientMode::IAD, {}, {}, {},
                          simd());
    double tol = parityTol(KernelType::WendlandC2);
    expectFieldNear(scalar.rho, vec.rho, tol, "rho");
    expectFieldNear(scalar.c11, vec.c11, tol, "c11");
    expectFieldNear(scalar.divv, vec.divv, tol, "divv");
    expectFieldNear(scalar.ax, vec.ax, tol, "ax");
    expectFieldNear(scalar.du, vec.du, tol, "du");
}

// --- Simd bitwise invariance across pools and strategies -------------------

TEST(BackendInvariance, SimdBitwiseAcrossPoolsAndStrategies)
{
    BackendFixture f(KernelType::Sinc, 8);

    // reference: pool of 1, Static
    ParticleSetD ref;
    {
        PoolSizeGuard guard(1);
        ref = f.ps;
        computeDensity(ref, f.nl, f.kernel, f.box, {}, {}, simd());
        computeIadCoefficients(ref, f.nl, f.kernel, f.box, {}, {}, simd());
        computeDivCurl(ref, f.nl, f.kernel, f.box, GradientMode::IAD, {}, {}, simd());
        computeMomentumEnergy(ref, f.nl, f.kernel, f.box, GradientMode::IAD, {}, {}, {},
                              simd());
    }

    for (std::size_t pool : {1u, 2u, 4u})
    {
        PoolSizeGuard guard(pool);
        for (SchedulingStrategy strat : kAllStrategies)
        {
            LoopPolicy pol;
            pol.strategy = strat;
            std::vector<double> awf; // AWF needs a weight vector to adapt
            if (strat == SchedulingStrategy::AdaptiveWeightedFactoring)
                pol.awfWeights = &awf;

            auto ps = f.ps;
            computeDensity(ps, f.nl, f.kernel, f.box, {}, pol, simd());
            computeIadCoefficients(ps, f.nl, f.kernel, f.box, {}, pol, simd());
            computeDivCurl(ps, f.nl, f.kernel, f.box, GradientMode::IAD, {}, pol, simd());
            computeMomentumEnergy(ps, f.nl, f.kernel, f.box, GradientMode::IAD, {}, {},
                                  pol, simd());

            expectFieldBitwise(ref.rho, ps.rho, "rho");
            expectFieldBitwise(ref.gradh, ps.gradh, "gradh");
            expectFieldBitwise(ref.c11, ps.c11, "c11");
            expectFieldBitwise(ref.c33, ps.c33, "c33");
            expectFieldBitwise(ref.divv, ps.divv, "divv");
            expectFieldBitwise(ref.balsara, ps.balsara, "balsara");
            expectFieldBitwise(ref.ax, ps.ax, "ax");
            expectFieldBitwise(ref.du, ps.du, "du");
            expectFieldBitwise(ref.vsig, ps.vsig, "vsig");
        }
    }
}

// --- remainder tiles and empty neighborhoods -------------------------------

TEST(BackendEdgeCases, RemainderTilesAndEmptyLists)
{
    // particle i carries exactly i neighbors: spans empty (0), partial
    // tiles, exact multiples of the lane width (8, 16) and remainders
    const std::size_t n = 2 * backend::kLaneWidth + 4; // 20 with width 8
    BackendFixture f(KernelType::CubicSpline, 6, 0.15);
    ASSERT_GE(f.ps.size(), n);

    using Index = NeighborList<double>::Index;
    NeighborList<double> nl(f.ps.size(), 64);
    for (std::size_t i = 0; i < f.ps.size(); ++i)
    {
        std::vector<Index> nbs;
        std::size_t want = i < n ? i : (i % n);
        for (std::size_t j = 0; nbs.size() < want; ++j)
        {
            if (j == i) continue;
            nbs.push_back(Index(j));
        }
        nl.set(i, nbs);
    }

    auto scalar = f.ps;
    auto vec    = f.ps;
    computeDensity(scalar, nl, f.kernel, f.box);
    computeDensity(vec, nl, f.kernel, f.box, {}, {}, simd());
    computeIadCoefficients(scalar, nl, f.kernel, f.box);
    computeIadCoefficients(vec, nl, f.kernel, f.box, {}, {}, simd());
    computeDivCurl(scalar, nl, f.kernel, f.box, GradientMode::IAD);
    computeDivCurl(vec, nl, f.kernel, f.box, GradientMode::IAD, {}, {}, simd());
    computeMomentumEnergy(scalar, nl, f.kernel, f.box, GradientMode::IAD);
    computeMomentumEnergy(vec, nl, f.kernel, f.box, GradientMode::IAD, {}, {}, {},
                          simd());

    double tol = parityTol(KernelType::CubicSpline);
    expectFieldNear(scalar.rho, vec.rho, tol, "rho");
    expectFieldNear(scalar.gradh, vec.gradh, tol, "gradh");
    expectFieldNear(scalar.c11, vec.c11, tol, "c11");
    expectFieldNear(scalar.divv, vec.divv, tol, "divv");
    expectFieldNear(scalar.ax, vec.ax, tol, "ax");
    expectFieldNear(scalar.du, vec.du, tol, "du");

    // the empty row (particle 0) is exact: self-only density, zero motion
    EXPECT_EQ(scalar.rho[0], vec.rho[0]);
    EXPECT_EQ(vec.divv[0], 0.0);
    EXPECT_EQ(vec.ax[0], 0.0);
    EXPECT_EQ(vec.du[0], 0.0);
    EXPECT_EQ(vec.vsig[0], 0.0);
}

// --- dispatch plumbing ------------------------------------------------------

TEST(KernelBackendConfig, EnvSelection)
{
    ::unsetenv("SPHEXA_KERNEL_BACKEND");
    EXPECT_EQ(kernelBackendFromEnv(), KernelBackend::Scalar);
    EXPECT_EQ(kernelBackendFromEnv(KernelBackend::Simd), KernelBackend::Simd);
    ::setenv("SPHEXA_KERNEL_BACKEND", "simd", 1);
    EXPECT_EQ(kernelBackendFromEnv(), KernelBackend::Simd);
    ::setenv("SPHEXA_KERNEL_BACKEND", "scalar", 1);
    EXPECT_EQ(kernelBackendFromEnv(KernelBackend::Simd), KernelBackend::Scalar);
    ::unsetenv("SPHEXA_KERNEL_BACKEND");
}

TEST(KernelBackendConfig, TabulatedKernelFallsBackToScalar)
{
    // the Simd request must be a no-op (not a crash) for kernel types the
    // lane path does not cover: results equal the Scalar reference exactly
    BackendFixture f(KernelType::Sinc, 6);
    TabulatedKernel<double> tab(f.kernel);
    auto scalar = f.ps;
    auto vec    = f.ps;
    computeDensity(scalar, f.nl, tab, f.box);
    computeDensity(vec, f.nl, tab, f.box, {}, {}, simd());
    expectFieldBitwise(scalar.rho, vec.rho, "rho");
}

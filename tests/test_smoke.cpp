/// \file test_smoke.cpp
/// Build-system smoke checks: the library target links, version info is
/// populated, and the public headers of every subsystem are includable
/// together in one translation unit. The companion runtime check — the
/// quickstart example running to completion — is registered with CTest as
/// `examples.quickstart_runs` (see examples/CMakeLists.txt).

#include <gtest/gtest.h>

#include <cctype>

#include "core/config.hpp"
#include "core/simulation.hpp"
#include "core/version.hpp"
#include "domain/distributed.hpp"
#include "ft/checkpoint.hpp"
#include "ic/square_patch.hpp"
#include "io/serialize.hpp"
#include "math/vec.hpp"
#include "parallel/comm.hpp"
#include "perf/timer.hpp"
#include "sph/kernels.hpp"
#include "tree/octree.hpp"

namespace {

TEST(Smoke, VersionIsPopulated)
{
    EXPECT_FALSE(sphexa::version().empty());
    // Semantic version: at least major.minor with a leading digit.
    EXPECT_TRUE(sphexa::version().find('.') != std::string_view::npos);
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(sphexa::version().front())));
}

TEST(Smoke, BannerIsPopulated)
{
    EXPECT_FALSE(sphexa::banner().empty());
    EXPECT_NE(sphexa::banner().find("SPH"), std::string_view::npos);
}

} // namespace

/// Golden-value validation gallery (ctest label `golden`): every scenario
/// checked against an analytic or published reference, under BOTH phase
/// pipelines (the compressible hydro assembly and the WCSPH assembly with
/// its ghost/body-force brackets) and at worker-pool sizes {1, 4}.
///
/// References:
///  - Sedov-Taylor: R(t) = xi0 (E t^2 / rho0)^{1/5}  (ic/sedov.hpp)
///  - Evrard collapse: U = -2/3 G M^2 / R and total-energy conservation
///  - Square patch: Colagrossi double-sine pressure series (math/series.hpp)
///  - Dam break: Ritter dry-bed surge x(t) = x0 + 2 sqrt(gH) t
///  - Tait/Cole EOS: P = B[(rho/rho0)^gamma - 1], B = c0^2 rho0 / gamma
///
/// The two pipeline legs are physically equivalent for the wall-free,
/// force-free scenarios (the WCSPH assembly's extra phases are no-ops
/// there) — PipelineEquivalence pins that down bitwise. The dam break
/// needs walls to be well-posed, so both its legs run the WCSPH assembly;
/// the compressible/WCSPH contrast is exercised by the other scenarios.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include "backend/kernel_backend.hpp"
#include "core/simulation.hpp"
#include "ic/dam_break.hpp"
#include "ic/evrard.hpp"
#include "ic/sedov.hpp"
#include "ic/square_patch.hpp"
#include "math/series.hpp"
#include "parallel/parallel_for.hpp"
#include "sph/eos_wcsph.hpp"

using namespace sphexa;

namespace {

enum class Leg
{
    Compressible, ///< PipelineFactory::hydro()/hydroGravity() phase list
    Wcsph         ///< PipelineFactory::wcsph(): ghost + body-force brackets
};

const char* legName(Leg leg)
{
    return leg == Leg::Compressible ? "Compressible" : "Wcsph";
}

/// Gallery axis: (worker-pool size, pipeline assembly).
class GoldenGallery : public ::testing::TestWithParam<std::tuple<std::size_t, Leg>>
{
protected:
    void SetUp() override
    {
        saved_ = WorkerPool::instance().size();
        WorkerPool::instance().resize(pool());
    }
    void TearDown() override { WorkerPool::instance().resize(saved_); }

    std::size_t pool() const { return std::get<0>(GetParam()); }
    Leg leg() const { return std::get<1>(GetParam()); }

    /// Route a scenario config through the requested pipeline assembly.
    /// The scenario's EOS is passed explicitly, so switching the mode only
    /// switches the phase list — never the physics closure. The compute
    /// backend comes from SPHEXA_KERNEL_BACKEND (backend/kernel_backend.hpp)
    /// so the CI matrix re-runs this whole gallery under the Simd lanes.
    template<class T>
    SimulationConfig<T> withLeg(SimulationConfig<T> cfg) const
    {
        cfg.hydroMode = leg() == Leg::Wcsph ? HydroMode::WeaklyCompressible
                                            : HydroMode::Compressible;
        cfg.kernelBackend = kernelBackendFromEnv(cfg.kernelBackend);
        return cfg;
    }

private:
    std::size_t saved_{0};
};

/// Shock-shell radius estimate: mean radius of the densest 2% of particles.
double shockShellRadius(const ParticleSetD& ps)
{
    std::size_t n = ps.size();
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::size_t k = std::max<std::size_t>(32, n / 50);
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [&](auto a, auto b) { return ps.rho[a] > ps.rho[b]; });
    double sum = 0;
    for (std::size_t j = 0; j < k; ++j)
    {
        std::size_t i = idx[j];
        sum += std::sqrt(ps.x[i] * ps.x[i] + ps.y[i] * ps.y[i] + ps.z[i] * ps.z[i]);
    }
    return sum / double(k);
}

void advanceTo(Simulation<double>& sim, double tTarget, int maxSteps)
{
    int steps = 0;
    while (sim.time() < tTarget && steps++ < maxSteps)
        sim.advance();
    ASSERT_LT(steps, maxSteps) << "did not reach t=" << tTarget;
}

} // namespace

// --- scenario 1: Sedov-Taylor blast ----------------------------------------

TEST_P(GoldenGallery, SedovShockRadiusMatchesSimilaritySolution)
{
    ParticleSetD ps;
    SedovConfig<double> ic;
    ic.nSide = 20;
    auto setup = makeSedov(ps, ic);

    SimulationConfig<double> cfg;
    cfg.targetNeighbors    = 50;
    cfg.neighborTolerance  = 10;
    cfg.timestep.initialDt = 1e-6; // skip the 1e-7 ramp; CFL takes over
    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos),
                           withLeg(cfg));
    sim.computeForces();

    // R(t) = xi0 (E t^2 / rho0)^{1/5}; at this resolution the measured
    // shell tracks the similarity solution within ~10% (calibrated), so a
    // +-25% band is a real physics gate, not a smoke test.
    double prev = 0;
    for (double tProbe : {0.01, 0.02})
    {
        advanceTo(sim, tProbe, 500);
        double measured = shockShellRadius(sim.particles());
        double analytic = sedovShockRadius(sim.time(), ic.energy, ic.rho0);
        EXPECT_NEAR(measured, analytic, 0.25 * analytic)
            << legName(leg()) << " pool=" << pool() << " t=" << sim.time();
        EXPECT_GT(measured, prev); // the shock front must expand
        prev = measured;
    }
}

// --- scenario 2: Evrard collapse -------------------------------------------

TEST_P(GoldenGallery, EvrardEnergyCurvesMatchAnalyticPotential)
{
    ParticleSetD ps;
    EvrardConfig<double> ic;
    ic.nSide = 16;
    auto setup = makeEvrard(ps, ic);

    SimulationConfig<double> cfg;
    cfg.selfGravity       = true;
    cfg.gravity.G         = 1.0;
    cfg.gravity.theta     = 0.5;
    cfg.gravity.softening = 0.02;
    cfg.targetNeighbors   = 60;
    cfg.neighborTolerance = 10;
    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos),
                           withLeg(cfg));
    sim.computeForces();

    // initial potential energy vs the analytic -2/3 G M^2 / R of the 1/r
    // sphere (measured: within ~2% at this resolution)
    auto c0 = sim.conservation();
    double analyticU = evrardAnalyticPotentialEnergy<double>(1, 1, 1);
    EXPECT_NEAR(c0.potentialEnergy, analyticU, 0.10 * std::abs(analyticU));
    EXPECT_NEAR(c0.kineticEnergy, 0.0, 1e-12); // static start

    sim.run(10);

    // the cloud collapses: kinetic energy rises, potential deepens, and the
    // total is conserved (measured drift ~4e-5 over this window)
    auto c1 = sim.conservation();
    EXPECT_GT(c1.kineticEnergy, 1e-3);
    EXPECT_LT(c1.potentialEnergy, c0.potentialEnergy);
    EXPECT_NEAR(c1.totalEnergy(), c0.totalEnergy(),
                1e-3 * std::abs(c0.totalEnergy()));
}

// --- scenario 2b: Evrard collapse under binned time-stepping -----------------

TEST_P(GoldenGallery, EvrardIndividualTimesteppingConservesEnergy)
{
    // The Individual (2^k-binned) mode on the dynamic-range scenario it
    // exists for. The Compressible leg runs the binned pipeline proper
    // (active-subset forces + per-particle kicks); the WCSPH leg exercises
    // the documented fallback — Individual bins with a ghost-bracket
    // assembly degenerate to global stepping at the base dt. Both must
    // conserve energy; the pool axis {1, 4} of the gallery doubles as a
    // pool-invariance run of the binned code path.
    ParticleSetD ps;
    EvrardConfig<double> ic;
    ic.nSide = 14;
    auto setup = makeEvrard(ps, ic);

    SimulationConfig<double> cfg;
    cfg.timestep.mode     = TimesteppingMode::Individual;
    cfg.neighborMode      = NeighborMode::IndividualTreeWalk;
    cfg.selfGravity       = true;
    cfg.gravity.G         = 1.0;
    cfg.gravity.theta     = 0.5;
    cfg.gravity.softening = 0.02;
    cfg.targetNeighbors   = 60;
    cfg.neighborTolerance = 10;
    // tighter Courant factor than the 10-step Evrard gate above: this run
    // integrates 24+ steps (and past that, to a full bin synchronization),
    // so secular leapfrog drift needs the extra margin to stay inside the
    // same 1e-3 budget
    cfg.timestep.cflCourant = 0.25;
    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos),
                           withLeg(cfg));
    sim.computeForces();
    auto c0 = sim.conservation();

    // run to a full synchronization so the conservation snapshot (which
    // needs the full-set potential) is well-defined in the binned mode
    std::size_t n = sim.particles().size(), updates = 0;
    int steps = 0;
    do
    {
        auto rep = sim.advance();
        updates += rep.activeParticles;
        ++steps;
    } while ((steps < 24 || !sim.timestepController().atFullSync()) && steps < 200);
    ASSERT_TRUE(sim.timestepController().atFullSync());

    auto c1 = sim.conservation();
    EXPECT_NEAR(c1.totalEnergy(), c0.totalEnergy(),
                1e-3 * std::abs(c0.totalEnergy()))
        << legName(leg()) << " pool=" << pool();
    if (leg() == Leg::Compressible)
    {
        // the binned pipeline must actually save particle-updates
        EXPECT_LT(updates, std::size_t(steps) * n)
            << "active-subset walk did no better than stepping everyone";
    }
}

// --- scenario 3: rotating square patch -------------------------------------

TEST_P(GoldenGallery, SquarePatchPressureFieldMatchesGoldenSeries)
{
    // golden values of the Colagrossi series P0(x, y) for rho0 = 1,
    // omega = 5, L = 1, 32 terms — locked from the reference evaluation
    SquarePatchPressure<double> series(1.0, 5.0, 1.0, 32);
    EXPECT_NEAR(series.centerValue(), -3.683543155157608, 1e-12);
    EXPECT_NEAR(series(0.25, 0.25), -2.264273380500300, 1e-12);
    EXPECT_NEAR(series(0.75, 0.25), -2.264273380500300, 1e-12); // symmetry
    EXPECT_NEAR(series(0.50, 0.25), -2.866715801585090, 1e-12);

    // the IC generator must plant exactly this field
    ParticleSetD ps;
    SquarePatchConfig<double> ic;
    ic.nx = ic.ny = 16;
    ic.nz         = 8;
    auto setup    = makeSquarePatch(ps, ic);
    for (std::size_t i = 0; i < ps.size(); i += 13)
    {
        EXPECT_DOUBLE_EQ(ps.p[i], series(ps.x[i] + 0.5, ps.y[i] + 0.5)) << i;
    }

    // evolved under the Tait closure on the requested pipeline leg, the
    // rigid rotation conserves mass, momentum and angular momentum
    auto cfg              = withLeg(squarePatchConfig(setup));
    cfg.targetNeighbors   = 60;
    cfg.neighborTolerance = 10;
    Simulation<double> sim(std::move(ps), setup.box, cfg);
    sim.computeForces();
    auto c0 = sim.conservation();
    sim.run(10);
    auto c1 = sim.conservation();

    double scale = std::abs(c0.angularMomentum.z);
    EXPECT_DOUBLE_EQ(c1.mass, c0.mass);
    EXPECT_LT(norm(c1.momentum - c0.momentum), 1e-10 * scale);
    EXPECT_NEAR(c1.angularMomentum.z, c0.angularMomentum.z, 1e-4 * scale);
}

// --- scenario 4: pipeline & pool equivalence --------------------------------

TEST_P(GoldenGallery, PipelinesBitwiseEquivalentOnWallFreeScenario)
{
    // With no walls and no body force, the WCSPH assembly's extra phases
    // are exact no-ops: both assemblies must produce bit-identical state.
    // Combined with the pool axis of this gallery, a green run of this test
    // at pools {1, 4} also proves pool-size invariance of both assemblies.
    auto runPatch = [&](HydroMode mode) {
        ParticleSetD ps;
        SquarePatchConfig<double> ic;
        ic.nx = ic.ny = 12;
        ic.nz         = 4;
        auto setup    = makeSquarePatch(ps, ic);
        auto cfg      = squarePatchConfig(setup);
        cfg.hydroMode         = mode;
        cfg.targetNeighbors   = 60;
        cfg.neighborTolerance = 10;
        cfg.kernelBackend     = kernelBackendFromEnv(cfg.kernelBackend);
        // explicit EOS: the mode must switch ONLY the phase list, never the
        // closure (the 3-arg ctor would derive an ideal gas in Compressible)
        Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);
        sim.computeForces();
        sim.run(5);
        return sim;
    };

    auto a = runPatch(HydroMode::Compressible);
    auto b = runPatch(HydroMode::WeaklyCompressible);
    const auto& pa = a.particles();
    const auto& pb = b.particles();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
    {
        ASSERT_EQ(pa.x[i], pb.x[i]) << i;
        ASSERT_EQ(pa.y[i], pb.y[i]) << i;
        ASSERT_EQ(pa.vx[i], pb.vx[i]) << i;
        ASSERT_EQ(pa.rho[i], pb.rho[i]) << i;
        ASSERT_EQ(pa.p[i], pb.p[i]) << i;
    }
}

// --- scenario 4b: neighbor-search mode equivalence ---------------------------

TEST_P(GoldenGallery, ClusterSearchModePhysicsBitwiseMatchesTreeWalk)
{
    // The cluster search (tree/cluster_list.hpp) must not change physics at
    // all: after un-permuting the SFC reorder it implies, every field is
    // bit-identical to the per-particle tree walk. The compressible leg runs
    // Sedov CROSS-frame (the TreeWalk reference stays in lattice order, the
    // cluster run is SFC-sorted every step); the WCSPH leg runs the dam
    // break — walls, ghosts, body force — same-frame (both runs reorder, so
    // the comparison isolates the search mode under the ghost bracket).
    auto runScenario = [&](bool cluster) {
        if (leg() == Leg::Compressible)
        {
            ParticleSetD ps;
            SedovConfig<double> ic;
            ic.nSide   = 12;
            auto setup = makeSedov(ps, ic);
            SimulationConfig<double> cfg;
            cfg.targetNeighbors    = 50;
            cfg.neighborTolerance  = 10;
            cfg.timestep.initialDt = 1e-6;
            cfg.sfcReorder = false; // cross-frame: only the cluster run sorts
            cfg.searchMode = cluster ? NeighborSearchMode::ClusterList
                                     : NeighborSearchMode::TreeWalk;
            cfg.kernelBackend = kernelBackendFromEnv(cfg.kernelBackend);
            Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos),
                                   cfg);
            sim.computeForces();
            sim.run(4);
            return sim;
        }
        ParticleSetD ps;
        DamBreakConfig<double> ic;
        ic.nx = ic.ny = 12;
        ic.nz         = 4;
        auto setup    = makeDamBreak(ps, ic);
        auto cfg      = damBreakConfig(ic, setup);
        cfg.targetNeighbors    = 60;
        cfg.neighborTolerance  = 10;
        cfg.timestep.initialDt = 1e-4;
        cfg.sfcReorder         = true; // same frame for both search modes
        cfg.searchMode = cluster ? NeighborSearchMode::ClusterList
                                 : NeighborSearchMode::TreeWalk;
        cfg.kernelBackend = kernelBackendFromEnv(cfg.kernelBackend);
        Simulation<double> sim(std::move(ps), setup.box, cfg);
        sim.computeForces();
        sim.run(4);
        return sim;
    };

    auto a = runScenario(false);
    auto b = runScenario(true);
    const auto& pa = a.particles();
    const auto& pb = b.particles();
    ASSERT_EQ(pa.size(), pb.size());

    // join on particle id: the cluster run's storage order is SFC-permuted
    std::vector<std::size_t> slotOfId(pb.size());
    for (std::size_t k = 0; k < pb.size(); ++k)
        slotOfId[pb.id[k]] = k;
    for (std::size_t i = 0; i < pa.size(); ++i)
    {
        std::size_t j = slotOfId[pa.id[i]];
        ASSERT_EQ(pa.x[i], pb.x[j]) << "id " << pa.id[i];
        ASSERT_EQ(pa.y[i], pb.y[j]) << "id " << pa.id[i];
        ASSERT_EQ(pa.z[i], pb.z[j]) << "id " << pa.id[i];
        ASSERT_EQ(pa.vx[i], pb.vx[j]) << "id " << pa.id[i];
        ASSERT_EQ(pa.vy[i], pb.vy[j]) << "id " << pa.id[i];
        ASSERT_EQ(pa.vz[i], pb.vz[j]) << "id " << pa.id[i];
        ASSERT_EQ(pa.rho[i], pb.rho[j]) << "id " << pa.id[i];
        ASSERT_EQ(pa.u[i], pb.u[j]) << "id " << pa.id[i];
        ASSERT_EQ(pa.p[i], pb.p[j]) << "id " << pa.id[i];
        ASSERT_EQ(pa.du[i], pb.du[j]) << "id " << pa.id[i];
        ASSERT_EQ(pa.h[i], pb.h[j]) << "id " << pa.id[i];
    }

    // diagnostics sum in storage order, so they may differ by FP
    // re-association only — never by physics
    auto ca = a.conservation();
    auto cb = b.conservation();
    EXPECT_NEAR(cb.kineticEnergy, ca.kineticEnergy,
                1e-12 * std::max(1.0, std::abs(ca.kineticEnergy)));
    EXPECT_NEAR(cb.internalEnergy, ca.internalEnergy,
                1e-12 * std::max(1.0, std::abs(ca.internalEnergy)));
    EXPECT_EQ(cb.mass, ca.mass);
}

// --- scenario 5: dam break --------------------------------------------------

TEST_P(GoldenGallery, DamBreakFrontWithinRitterBand)
{
    // Walls make the problem well-posed, so both legs run the WCSPH
    // assembly here (see the header comment); the pool axis still applies.
    ParticleSetD ps;
    DamBreakConfig<double> ic;
    ic.nx = ic.ny = 16;
    ic.nz         = 4;
    auto setup    = makeDamBreak(ps, ic);
    auto cfg      = damBreakConfig(ic, setup);
    cfg.targetNeighbors    = 60;
    cfg.neighborTolerance  = 10;
    cfg.timestep.initialDt = 1e-4;
    cfg.kernelBackend      = kernelBackendFromEnv(cfg.kernelBackend);
    Simulation<double> sim(std::move(ps), setup.box, cfg);
    std::size_t nReal = sim.particles().size();
    sim.computeForces();
    // ghosts are a per-step bracket: never visible between steps
    EXPECT_EQ(sim.particles().size(), nReal);

    advanceTo(sim, 0.15, 1000);

    // Ritter dry-bed solution: x(t) = W + 2 sqrt(gH) t. The SPH front
    // (leading bed particle, which carries its own radius ~h) brackets it:
    // measured displacement fraction ~1.2-1.3x at this resolution.
    double bedBand = 2.0 * sim.particles().h[0];
    double front   = damBreakFront(sim.particles(), bedBand);
    double ritter  = ritterFrontPosition(sim.time(), ic.columnWidth,
                                         ic.columnHeight, ic.g);
    double frac = (front - ic.columnWidth) / (ritter - ic.columnWidth);
    EXPECT_GT(frac, 0.6) << "surge stalled: front=" << front;
    EXPECT_LT(frac, 1.6) << "surge unphysically fast: front=" << front;

    // the walls must contain the flow: no particle through the x faces or
    // the floor (the top is open; splash above the column is physical)
    const auto& p = sim.particles();
    double slack  = 0.5 * setup.spacing;
    for (std::size_t i = 0; i < p.size(); ++i)
    {
        ASSERT_GT(p.x[i], -slack) << i;
        ASSERT_LT(p.x[i], ic.tankLength + slack) << i;
        ASSERT_GT(p.y[i], -slack) << i;
    }
    EXPECT_EQ(p.size(), nReal); // no ghost leakage into the real set
}

// --- scenario 6: Tait/Cole EOS reference formulas ---------------------------

TEST_P(GoldenGallery, TaitEosMatchesPublishedReferenceFormula)
{
    // the water-column reference case: rho0 = 1000, c0^2 = 1500, gamma = 7
    double rho0 = 1000.0, c2 = 1500.0, gamma = 7.0;
    double B = wcsphStiffness(rho0, c2, gamma);
    EXPECT_NEAR(B, c2 * rho0 / gamma, 1e-12);

    // 10% compression through the reference formula and the TaitEos object
    double rho = 1100.0;
    double ref = B * (std::pow(rho / rho0, gamma) - 1.0);
    EXPECT_NEAR(calPressureWcsph(rho, rho0, c2, gamma), ref, 1e-9 * ref);

    WcsphEosParams<double> params;
    params.rho0  = rho0;
    params.c0    = std::sqrt(c2);
    params.gamma = gamma;
    TaitEos<double> eos = makeTaitEos(params);
    EXPECT_NEAR(eos(rho, 0.0).pressure, ref, 1e-9 * ref);
    // c^2 = c0^2 (rho/rho0)^{gamma-1}
    EXPECT_NEAR(eos(rho, 0.0).soundSpeed, calSoundSpeedWcsph(rho, rho0, c2, gamma),
                1e-12);
    // zero pressure at the reference density, tension below it
    EXPECT_NEAR(eos(rho0, 0.0).pressure, 0.0, 1e-9);
    EXPECT_LT(eos(0.95 * rho0, 0.0).pressure, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Gallery, GoldenGallery,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{4}),
                       ::testing::Values(Leg::Compressible, Leg::Wcsph)),
    [](const auto& info) {
        return std::string("Pool") + std::to_string(std::get<0>(info.param)) +
               legName(std::get<1>(info.param));
    });

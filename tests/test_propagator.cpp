/// Tests of the phase-pipeline ("Propagator") layer: factory-assembled
/// phase ordering against the Fig. 4 A..J sequence, declarative gravity
/// selection, runner-emitted timing accounting, custom pipelines, and the
/// strongest equivalence guarantee the shared phase units give us — the
/// single-rank and 1-rank-distributed drivers producing bitwise-identical
/// particle state.

#include <gtest/gtest.h>

#include <cmath>

#include "core/code_profiles.hpp"
#include "core/propagator.hpp"
#include "core/simulation.hpp"
#include "domain/distributed.hpp"
#include "ic/square_patch.hpp"

using namespace sphexa;

namespace {

struct PatchSetup
{
    ParticleSetD ps;
    SquarePatchSetup<double> setup;
};

PatchSetup makePatch(std::size_t nxy = 12, std::size_t nz = 6)
{
    ParticleSetD ps;
    SquarePatchConfig<double> pc;
    pc.nx = pc.ny = nxy;
    pc.nz = nz;
    auto setup = makeSquarePatch(ps, pc);
    return {std::move(ps), setup};
}

SimulationConfig<double> patchConfig()
{
    SimulationConfig<double> cfg;
    cfg.targetNeighbors   = 50;
    cfg.neighborTolerance = 10;
    return cfg;
}

} // namespace

// --- pipeline assembly -------------------------------------------------------------

TEST(PipelineFactory, PhaseOrderMatchesFig4Sequence)
{
    SimulationConfig<double> cfg;
    cfg.selfGravity = true;
    auto phases = PipelineFactory<double>::singleRank(cfg).phases();

    // the full hydro+gravity force pipeline is the L sfc-sort op (self-gated,
    // a no-op unless cfg.sfcReorder / ClusterList mode asks for it) followed
    // by exactly A..I in Fig. 4 order (phase J brackets the pipeline in the
    // driver's kick-drift-kick)
    ASSERT_EQ(phases.size(), 10u);
    EXPECT_EQ(phases.front(), Phase::L_SfcSort);
    for (std::size_t k = 1; k < phases.size(); ++k)
    {
        EXPECT_EQ(int(phases[k]), int(k - 1)) << "phase " << phaseName(phases[k]);
    }
}

TEST(PipelineFactory, GravityPhaseSkippedWithoutSelfGravity)
{
    SimulationConfig<double> cfg;
    cfg.selfGravity = false;
    auto pipeline = PipelineFactory<double>::singleRank(cfg);
    EXPECT_FALSE(pipeline.hasPhase(Phase::I_SelfGravity));
    EXPECT_EQ(pipeline.phases().size(), 9u); // L + A..H

    cfg.selfGravity = true;
    EXPECT_TRUE(PipelineFactory<double>::singleRank(cfg).hasPhase(Phase::I_SelfGravity));
}

TEST(PipelineFactory, DistributedSegmentsCoverAtoHWithHaloSyncs)
{
    SimulationConfig<double> cfg;
    auto pipeline = PipelineFactory<double>::distributed(cfg);
    auto phases   = pipeline.phases();

    ASSERT_EQ(phases.size(), 8u); // A..H; gravity is reduction glue
    for (std::size_t k = 0; k < phases.size(); ++k)
    {
        EXPECT_EQ(int(phases[k]), int(k));
    }
    // cross-rank data dependencies are declared at the segment boundaries
    const auto& segs = pipeline.segments();
    ASSERT_GE(segs.size(), 2u);
    EXPECT_FALSE(segs.front().haloFieldsAfter.empty());
    EXPECT_TRUE(segs.back().haloFieldsAfter.empty());
}

TEST(PipelineFactory, ProfilesSelectPipelineDeclaratively)
{
    // parent-code presets select their pipeline from their config alone
    for (const auto& profile : parentProfiles<double>())
    {
        auto pipeline = pipelineFor(profile);
        EXPECT_EQ(pipeline.hasPhase(Phase::I_SelfGravity), profile.config.selfGravity)
            << profile.name;
    }
    // an Evrard-style run (gravity on) upgrades to the A..I pipeline
    auto evrard = sphexaProfile<double>();
    evrard.config.selfGravity = true;
    EXPECT_TRUE(pipelineFor(evrard).hasPhase(Phase::I_SelfGravity));
}

// --- runner accounting -------------------------------------------------------------

TEST(Propagator, RunnerEmitsPhaseEventsThatSumToReport)
{
    auto patch = makePatch();
    Simulation<double> sim(std::move(patch.ps), patch.setup.box,
                           Eos<double>(patch.setup.eos), patchConfig());
    PhaseEventLog log;
    sim.attachPhaseLog(&log);

    sim.computeForces();
    log.clear();
    auto rep = sim.advance();

    // one event per executed phase (A..H from the force pass, plus J) —
    // and the runner's events carry exactly the seconds of the report
    ASSERT_FALSE(log.events().empty());
    EXPECT_NEAR(log.totalSeconds(), rep.totalSeconds(), 1e-12);

    auto byRank = log.phaseSecondsByRank(1);
    ASSERT_EQ(byRank.size(), 1u);
    for (int p = 0; p < phaseCount; ++p)
    {
        EXPECT_NEAR(byRank[0][p], rep.phaseSeconds[p], 1e-12) << phaseName(Phase(p));
    }
    // per-phase seconds sum to the report total by construction of the runner
    double sum = 0;
    for (double s : rep.phaseSeconds)
        sum += s;
    EXPECT_DOUBLE_EQ(sum, rep.totalSeconds());
}

TEST(Propagator, FirstAdvanceLogsOnlyTheReportedForcePass)
{
    auto patch = makePatch();
    Simulation<double> sim(std::move(patch.ps), patch.setup.box,
                           Eos<double>(patch.setup.eos), patchConfig());
    PhaseEventLog log;
    sim.attachPhaseLog(&log);

    // no prior computeForces(): advance() seeds forces internally; that
    // discarded pass must not leak into the log
    auto rep = sim.advance();
    EXPECT_NEAR(log.totalSeconds(), rep.totalSeconds(), 1e-12);
    auto byRank = log.phaseSecondsByRank(1);
    for (int p = 0; p < phaseCount; ++p)
    {
        EXPECT_NEAR(byRank[0][p], rep.phaseSeconds[p], 1e-12) << phaseName(Phase(p));
    }
    // events join with the report they describe by step id
    for (const auto& e : log.events())
    {
        EXPECT_EQ(e.step, rep.step) << phaseName(e.phase);
    }
}

TEST(Propagator, CustomPipelineRunsSelectedPhasesOnly)
{
    auto patch = makePatch();
    Simulation<double> sim(std::move(patch.ps), patch.setup.box,
                           Eos<double>(patch.setup.eos), patchConfig());

    // a bespoke density-only pipeline: tree, neighbors, h, symmetrize, density
    sim.setPipeline(PipelineFactory<double>::custom(
        {phase_ops::treeBuild<double>(), phase_ops::neighborSearch<double>(),
         phase_ops::smoothingLength<double>(), phase_ops::neighborSymmetrize<double>(),
         phase_ops::density<double>()}));

    auto rep = sim.computeForces();
    EXPECT_GT(rep.phaseSeconds[int(Phase::E_Density)], 0.0);
    EXPECT_EQ(rep.phaseSeconds[int(Phase::H_MomentumEnergy)], 0.0);
    EXPECT_GT(rep.neighborInteractions, 0u);
    for (double rho : sim.particles().rho)
    {
        EXPECT_TRUE(std::isfinite(rho));
        EXPECT_GT(rho, 0.0);
    }
}

TEST(Propagator, ComputeForcesReportsTimeAndDt)
{
    auto patch = makePatch();
    Simulation<double> sim(std::move(patch.ps), patch.setup.box,
                           Eos<double>(patch.setup.eos), patchConfig());

    // standalone force evaluation before any step: time 0, dt 0 (no step yet)
    auto rep0 = sim.computeForces();
    EXPECT_EQ(rep0.time, 0.0);
    EXPECT_EQ(rep0.dt, 0.0);

    auto stepRep = sim.advance();
    // a standalone recomputation now reports the current simulated time and
    // the last step size actually used (satellite: benches calling
    // computeForces directly get consistent rows)
    auto rep1 = sim.computeForces();
    EXPECT_DOUBLE_EQ(rep1.time, stepRep.time);
    EXPECT_DOUBLE_EQ(rep1.dt, stepRep.dt);
    EXPECT_GT(rep1.dt, 0.0);
}

// --- driver equivalence through the shared phase units -----------------------------

TEST(Propagator, SingleRankAndOneRankDistributedAreBitwiseIdentical)
{
    auto patch = makePatch();
    SimulationConfig<double> cfg = patchConfig();
    cfg.symmetrizeNeighbors = false; // the distributed driver can't (halo pairs)
    // pin the per-particle walk over the unreordered frame: the distributed
    // pipeline has no phase L, so the drivers only share a summation order
    // when the shared-memory one keeps the seed layout too
    cfg.searchMode = NeighborSearchMode::TreeWalk;
    cfg.sfcReorder = false;

    Simulation<double> shared(patch.ps, patch.setup.box, Eos<double>(patch.setup.eos),
                              cfg);
    DistributedSimulation<double> dist(patch.ps, patch.setup.box,
                                       Eos<double>(patch.setup.eos), cfg, 1);

    shared.computeForces();
    for (int s = 0; s < 5; ++s)
    {
        shared.advance();
        dist.advance();
    }

    auto g = dist.gather();
    const auto& ref = shared.particles();
    ASSERT_EQ(g.size(), ref.size());

    // both drivers executed phases A..H through the same PhaseOp units, so
    // with one rank (no summation-order changes from halos) the particle
    // state must be bitwise identical, not merely close
    auto expectBitwise = [&](const std::vector<double>& a, const std::vector<double>& b,
                             const char* field) {
        for (std::size_t i = 0; i < a.size(); ++i)
        {
            ASSERT_EQ(a[i], b[i]) << field << "[" << i << "]";
        }
    };
    ASSERT_EQ(g.id, ref.id);
    expectBitwise(g.x, ref.x, "x");
    expectBitwise(g.y, ref.y, "y");
    expectBitwise(g.z, ref.z, "z");
    expectBitwise(g.vx, ref.vx, "vx");
    expectBitwise(g.vy, ref.vy, "vy");
    expectBitwise(g.vz, ref.vz, "vz");
    expectBitwise(g.h, ref.h, "h");
    expectBitwise(g.rho, ref.rho, "rho");
    expectBitwise(g.u, ref.u, "u");
    expectBitwise(g.p, ref.p, "p");
    expectBitwise(g.c, ref.c, "c");
}

TEST(Propagator, DistributedPhaseLogCoversAllRanks)
{
    auto patch = makePatch();
    SimulationConfig<double> cfg = patchConfig();

    DistributedSimulation<double> dist(patch.ps, patch.setup.box,
                                       Eos<double>(patch.setup.eos), cfg, 3);
    PhaseEventLog log;
    dist.attachPhaseLog(&log);
    auto rep = dist.advance();

    auto byRank = log.phaseSecondsByRank(3);
    for (int r = 0; r < 3; ++r)
    {
        for (int p = 0; p < phaseCount; ++p)
        {
            EXPECT_NEAR(byRank[r][p], rep.ranks[r].phaseSeconds[p], 1e-12)
                << "rank " << r << " " << phaseName(Phase(p));
        }
    }
}

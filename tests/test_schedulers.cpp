/// Loop self-scheduling tests: chunk sequences against the published rules,
/// full-coverage invariants under concurrency, AWF weight adaptation, and
/// load-balance improvement on skewed workloads.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "math/rng.hpp"
#include "parallel/schedulers.hpp"

using namespace sphexa;

// --- chunk sequences --------------------------------------------------------

TEST(ChunkSequence, StaticSplitsEvenly)
{
    auto c = chunkSequence(100, 4, SchedulingStrategy::Static);
    ASSERT_EQ(c.size(), 4u);
    EXPECT_EQ(c[0], 25u);
    EXPECT_EQ(std::accumulate(c.begin(), c.end(), 0u), 100u);
}

TEST(ChunkSequence, StaticUnevenRemainder)
{
    auto c = chunkSequence(10, 4, SchedulingStrategy::Static);
    // 3,3,2,2
    EXPECT_EQ(std::accumulate(c.begin(), c.end(), 0u), 10u);
    EXPECT_EQ(c[0], 3u);
    EXPECT_EQ(c[3], 2u);
}

TEST(ChunkSequence, SelfSchedulingAllOnes)
{
    auto c = chunkSequence(7, 3, SchedulingStrategy::SelfScheduling);
    EXPECT_EQ(c.size(), 7u);
    for (auto v : c)
        EXPECT_EQ(v, 1u);
}

TEST(ChunkSequence, GuidedDecreasesGeometrically)
{
    // GSS with n=100, p=4: 25, 18, 14, 10, 8, ... (remaining/p)
    auto c = chunkSequence(100, 4, SchedulingStrategy::Guided);
    EXPECT_EQ(c[0], 25u);
    EXPECT_EQ(c[1], 18u); // (100-25)/4 = 18.75 -> 18
    for (std::size_t i = 1; i < c.size(); ++i)
    {
        EXPECT_LE(c[i], c[i - 1]);
    }
    EXPECT_EQ(std::accumulate(c.begin(), c.end(), 0u), 100u);
}

TEST(ChunkSequence, FactoringBatchesOfP)
{
    // FAC with n=100, p=4: batch chunk = ceil(100/8) = 13, handed 4 times
    // (52), then ceil(48/8) = 6 four times (24), then ceil(24/8)=3 ...
    auto c = chunkSequence(100, 4, SchedulingStrategy::Factoring);
    EXPECT_EQ(c[0], 13u);
    EXPECT_EQ(c[1], 13u);
    EXPECT_EQ(c[2], 13u);
    EXPECT_EQ(c[3], 13u);
    EXPECT_EQ(c[4], 6u);
    EXPECT_EQ(std::accumulate(c.begin(), c.end(), 0u), 100u);
}

TEST(ChunkSequence, TrapezoidLinearDecrease)
{
    auto c = chunkSequence(128, 4, SchedulingStrategy::Trapezoid);
    // first chunk = n/(2p) = 16, decreasing toward 1
    EXPECT_EQ(c[0], 16u);
    for (std::size_t i = 1; i < c.size(); ++i)
    {
        EXPECT_LE(c[i], c[i - 1]);
    }
    EXPECT_EQ(std::accumulate(c.begin(), c.end(), 0u), 128u);
}

class SequenceCoverage
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, SchedulingStrategy>>
{
};

TEST_P(SequenceCoverage, SumsToN)
{
    auto [n, p, s] = GetParam();
    auto c = chunkSequence(n, p, s);
    EXPECT_EQ(std::accumulate(c.begin(), c.end(), std::size_t(0)), n);
    for (auto v : c)
        EXPECT_GE(v, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, SequenceCoverage,
    ::testing::Combine(::testing::Values(1, 13, 100, 1024),
                       ::testing::Values(1, 3, 8),
                       ::testing::Values(SchedulingStrategy::Static,
                                         SchedulingStrategy::SelfScheduling,
                                         SchedulingStrategy::Guided,
                                         SchedulingStrategy::Trapezoid,
                                         SchedulingStrategy::Factoring,
                                         SchedulingStrategy::AdaptiveWeightedFactoring)));

// --- randomized chunkSequence properties -----------------------------------
//
// For 200 seeded-random (N, P) pairs and every strategy: the chunks
// partition the iteration space exactly (sum to N, all strictly positive),
// and the decreasing-chunk strategies (GSS, TSS, FAC) hand out
// non-increasing sizes — the property their published rules guarantee.

TEST(ChunkSequenceProperty, RandomizedPairsPartitionExactly)
{
    Xoshiro256pp rng(20180918); // CLUSTER'18 vintage seed
    for (int trial = 0; trial < 200; ++trial)
    {
        std::size_t n = 1 + rng() % 50000;
        std::size_t p = 1 + rng() % 64;
        for (auto s : {SchedulingStrategy::Static, SchedulingStrategy::SelfScheduling,
                       SchedulingStrategy::Guided, SchedulingStrategy::Trapezoid,
                       SchedulingStrategy::Factoring,
                       SchedulingStrategy::AdaptiveWeightedFactoring})
        {
            auto c = chunkSequence(n, p, s);
            std::size_t sum = 0;
            for (auto v : c)
            {
                ASSERT_GE(v, 1u) << schedulingName(s) << " n=" << n << " p=" << p;
                sum += v;
            }
            ASSERT_EQ(sum, n) << schedulingName(s) << " n=" << n << " p=" << p;
        }
    }
}

TEST(ChunkSequenceProperty, DecreasingStrategiesAreNonIncreasing)
{
    Xoshiro256pp rng(42424242);
    for (int trial = 0; trial < 200; ++trial)
    {
        std::size_t n = 1 + rng() % 50000;
        std::size_t p = 1 + rng() % 64;
        for (auto s : {SchedulingStrategy::Guided, SchedulingStrategy::Trapezoid,
                       SchedulingStrategy::Factoring})
        {
            auto c = chunkSequence(n, p, s);
            for (std::size_t i = 1; i < c.size(); ++i)
            {
                ASSERT_LE(c[i], c[i - 1]) << schedulingName(s) << " n=" << n
                                          << " p=" << p << " chunk " << i;
            }
        }
    }
}

// --- LoopScheduler ------------------------------------------------------------

class LoopSchedulerSweep : public ::testing::TestWithParam<SchedulingStrategy>
{
};

TEST_P(LoopSchedulerSweep, EveryIterationExactlyOnce)
{
    const std::size_t n = 5000, workers = 8;
    LoopScheduler sched(n, workers, GetParam());
    std::vector<std::atomic<int>> hits(n);

    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < workers; ++w)
    {
        threads.emplace_back([&, w] {
            while (true)
            {
                auto [b, e] = sched.next(w);
                if (b == e) break;
                for (std::size_t i = b; i < e; ++i)
                    hits[i].fetch_add(1);
            }
        });
    }
    for (auto& t : threads)
        t.join();

    for (std::size_t i = 0; i < n; ++i)
    {
        ASSERT_EQ(hits[i].load(), 1) << "iteration " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, LoopSchedulerSweep,
                         ::testing::Values(SchedulingStrategy::Static,
                                           SchedulingStrategy::SelfScheduling,
                                           SchedulingStrategy::Guided,
                                           SchedulingStrategy::Trapezoid,
                                           SchedulingStrategy::Factoring,
                                           SchedulingStrategy::AdaptiveWeightedFactoring));

TEST(LoopScheduler, RejectsZeroWorkers)
{
    EXPECT_THROW(LoopScheduler(10, 0, SchedulingStrategy::Static), std::invalid_argument);
}

TEST(LoopScheduler, AwfWeightsNormalized)
{
    LoopScheduler sched(100, 4, SchedulingStrategy::AdaptiveWeightedFactoring,
                        {2.0, 2.0, 1.0, 1.0});
    auto w = sched.weights();
    double sum = std::accumulate(w.begin(), w.end(), 0.0);
    EXPECT_NEAR(sum, 4.0, 1e-12); // mean 1
    EXPECT_GT(w[0], w[2]);
}

TEST(LoopScheduler, AwfAdaptsToRates)
{
    LoopScheduler sched(100, 2, SchedulingStrategy::AdaptiveWeightedFactoring);
    std::vector<double> rates{3.0, 1.0}; // worker 0 is 3x faster
    sched.adaptWeights(rates);
    EXPECT_NEAR(sched.weights()[0], 1.5, 1e-12);
    EXPECT_NEAR(sched.weights()[1], 0.5, 1e-12);
    // faster worker now receives larger chunks
    auto [b0, e0] = sched.next(0);
    auto [b1, e1] = sched.next(1);
    EXPECT_GT(e0 - b0, e1 - b1);
}

TEST(LoopScheduler, SelfSchedulingMaximizesChunkCount)
{
    LoopScheduler ss(50, 4, SchedulingStrategy::SelfScheduling);
    LoopScheduler gss(50, 4, SchedulingStrategy::Guided);
    auto drain = [](LoopScheduler& s) {
        std::size_t chunks = 0;
        while (true)
        {
            auto [b, e] = s.next(0);
            if (b == e) break;
            ++chunks;
        }
        return chunks;
    };
    EXPECT_EQ(drain(ss), 50u);
    EXPECT_LT(drain(gss), 50u);
}

// --- measured execution ----------------------------------------------------------

TEST(ExecuteLoop, SkewedWorkloadDynamicBeatsStatic)
{
    // the last N/8 iterations are 50x as expensive as the rest: STATIC
    // hands the whole hot region to the last worker, while the decreasing
    // chunks of GSS/FAC cover the hot tail in small pieces (the canonical
    // configuration for these schedulers — expensive iterations at the end;
    // with the hot region at the *front* their large first chunk swallows
    // it and they do no better than static).
    const std::size_t n = 1024;
    auto body = [&](std::size_t i) {
        volatile double sink = 0;
        std::size_t work = (i >= n - n / 8) ? 50000 : 1000;
        for (std::size_t k = 0; k < work; ++k)
            sink = sink + double(k) * 1e-9;
    };

    auto stat = executeLoop(n, 4, SchedulingStrategy::Static, body);
    auto fac  = executeLoop(n, 4, SchedulingStrategy::Factoring, body);
    auto gss  = executeLoop(n, 4, SchedulingStrategy::Guided, body);

    EXPECT_LT(stat.loadBalance(), 0.7); // static is badly imbalanced here
    EXPECT_GT(fac.loadBalance(), stat.loadBalance() + 0.1);
    EXPECT_GT(gss.loadBalance(), stat.loadBalance() + 0.1);
}

TEST(ExecuteLoop, ChunkCountsMatchStrategyCharacter)
{
    const std::size_t n = 1000;
    auto body = [](std::size_t) {};
    auto ss  = executeLoop(n, 4, SchedulingStrategy::SelfScheduling, body);
    auto fac = executeLoop(n, 4, SchedulingStrategy::Factoring, body);
    EXPECT_EQ(ss.chunks, n);      // one scheduling event per iteration
    EXPECT_LT(fac.chunks, n / 4); // far fewer scheduling events
}

/// Kernel library tests: 3D normalization, compact support, smoothness,
/// derivative consistency, grad-h identity, and tabulated evaluation, swept
/// over all kernel families with parameterized tests.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "math/quadrature.hpp"
#include "sph/kernels.hpp"

using namespace sphexa;

class KernelSweep : public ::testing::TestWithParam<KernelType>
{
protected:
    Kernel<double> k{GetParam()};
};

TEST_P(KernelSweep, NormalizedIn3D)
{
    // 4 pi int_0^2 W(q) q^2 dq = 1 for h = 1 (independent quadrature).
    auto integrand = [&](double q) { return k.fq(q) * q * q; };
    double integral = 4 * std::numbers::pi * integrate<double>(integrand, 0.0, 2.0, 1e-13);
    EXPECT_NEAR(integral, 1.0, 1e-8) << kernelName(GetParam());
}

TEST_P(KernelSweep, CompactSupport)
{
    EXPECT_DOUBLE_EQ(k.fq(2.0), 0.0);
    EXPECT_DOUBLE_EQ(k.fq(2.5), 0.0);
    EXPECT_DOUBLE_EQ(k.dfq(2.0), 0.0);
    EXPECT_DOUBLE_EQ(k.value(3.0, 1.0), 0.0);
    EXPECT_GT(k.fq(0.0), 0.0);
    EXPECT_GT(k.fq(1.0), 0.0);
}

TEST_P(KernelSweep, MonotonicallyDecreasing)
{
    double prev = k.fq(0.0);
    for (double q = 0.05; q <= 2.0; q += 0.05)
    {
        double cur = k.fq(q);
        EXPECT_LE(cur, prev + 1e-14) << "q=" << q;
        prev = cur;
    }
}

TEST_P(KernelSweep, DerivativeMatchesFiniteDifference)
{
    const double dq = 1e-6;
    for (double q : {0.1, 0.35, 0.73, 1.0, 1.2, 1.7, 1.95})
    {
        double fd = (k.fq(q + dq) - k.fq(q - dq)) / (2 * dq);
        EXPECT_NEAR(k.dfq(q), fd, 1e-5 * std::max(1.0, std::abs(fd))) << "q=" << q;
    }
}

TEST_P(KernelSweep, DerivativeNonPositive)
{
    for (double q = 0.0; q <= 2.0; q += 0.01)
    {
        EXPECT_LE(k.dfq(q), 1e-14) << "q=" << q;
    }
}

TEST_P(KernelSweep, ValueScalesAsHMinus3)
{
    // W(0, h) = sigma f(0) / h^3
    double w1 = k.value(0.0, 1.0);
    double w2 = k.value(0.0, 2.0);
    EXPECT_NEAR(w1 / w2, 8.0, 1e-12);
}

TEST_P(KernelSweep, SelfSimilarity)
{
    // W(r, h) = W(r/h, 1)/h^3 for several (r, h)
    for (double h : {0.5, 1.0, 3.0})
    {
        for (double q : {0.2, 0.9, 1.5})
        {
            EXPECT_NEAR(k.value(q * h, h), k.value(q, 1.0) / (h * h * h), 1e-12);
        }
    }
}

TEST_P(KernelSweep, GradHIdentity)
{
    // dW/dh = -(3 W + q dW/dq)/h at h=1: check against finite difference in h.
    const double dh = 1e-6;
    Kernel<double> kh{GetParam()};
    for (double r : {0.3, 0.8, 1.4})
    {
        double fd = (kh.value(r, 1.0 + dh) - kh.value(r, 1.0 - dh)) / (2 * dh);
        EXPECT_NEAR(kh.dh(r, 1.0), fd, 1e-5 * std::max(1.0, std::abs(fd))) << "r=" << r;
    }
}

TEST_P(KernelSweep, TabulatedAgreesWithAnalytic)
{
    TabulatedKernel<double> tk(k, 20000);
    for (double q = 0.001; q < 2.0; q += 0.0137)
    {
        EXPECT_NEAR(tk.fq(q), k.fq(q), 1e-6 * std::max(1.0, k.fq(0.0)));
        EXPECT_NEAR(tk.dfq(q), k.dfq(q), 1e-5 * std::max(1.0, std::abs(k.dfq(1.0))));
    }
    EXPECT_DOUBLE_EQ(tk.fq(2.5), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSweep,
                         ::testing::Values(KernelType::Sinc, KernelType::CubicSpline,
                                           KernelType::WendlandC2, KernelType::WendlandC4,
                                           KernelType::WendlandC6),
                         [](const auto& info) {
                             switch (info.param)
                             {
                                 case KernelType::Sinc: return "Sinc";
                                 case KernelType::CubicSpline: return "M4";
                                 case KernelType::WendlandC2: return "WendlandC2";
                                 case KernelType::WendlandC4: return "WendlandC4";
                                 case KernelType::WendlandC6: return "WendlandC6";
                             }
                             return "unknown";
                         });

// --- sinc-family specifics --------------------------------------------------

TEST(SincKernel, NormalizationVariesWithExponent)
{
    // Higher n concentrates the kernel: larger central value.
    Kernel<double> k3(KernelType::Sinc, 3.0);
    Kernel<double> k5(KernelType::Sinc, 5.0);
    Kernel<double> k8(KernelType::Sinc, 8.0);
    EXPECT_LT(k3.fq(0.0), k5.fq(0.0));
    EXPECT_LT(k5.fq(0.0), k8.fq(0.0));
}

TEST(SincKernel, EachExponentNormalized)
{
    for (double n : {3.0, 4.0, 5.0, 6.5, 9.0, 12.0})
    {
        Kernel<double> k(KernelType::Sinc, n);
        auto integrand = [&](double q) { return k.fq(q) * q * q; };
        double integral =
            4 * std::numbers::pi * integrate<double>(integrand, 0.0, 2.0, 1e-13);
        EXPECT_NEAR(integral, 1.0, 1e-8) << "n=" << n;
    }
}

TEST(SincKernel, RejectsInvalidExponent)
{
    EXPECT_THROW((Kernel<double>(KernelType::Sinc, 1.0)), std::invalid_argument);
}

TEST(SincKernel, ApproachesCubicSplineShapeAtN3)
{
    // The n=3 sinc is known to resemble (not equal) the M4 spline: both
    // normalized, same support; their central values are within ~15%.
    Kernel<double> sinc3(KernelType::Sinc, 3.0);
    Kernel<double> m4(KernelType::CubicSpline);
    EXPECT_NEAR(sinc3.fq(0.0), m4.fq(0.0), 0.15 * m4.fq(0.0));
}

// --- closed-form normalizations --------------------------------------------

TEST(KernelNormalization, ClosedFormsMatchLiterature)
{
    constexpr double pi = std::numbers::pi;
    EXPECT_NEAR(Kernel<double>(KernelType::CubicSpline).normalization(), 1.0 / pi, 1e-15);
    EXPECT_NEAR(Kernel<double>(KernelType::WendlandC2).normalization(), 21.0 / (16 * pi),
                1e-15);
    EXPECT_NEAR(Kernel<double>(KernelType::WendlandC4).normalization(), 495.0 / (256 * pi),
                1e-15);
    EXPECT_NEAR(Kernel<double>(KernelType::WendlandC6).normalization(), 1365.0 / (512 * pi),
                1e-15);
}

TEST(KernelNormalization, FloatInstantiation)
{
    // 32-bit instantiation exists and is normalized (the library is generic
    // even though the mini-app mandates 64-bit).
    Kernel<float> k(KernelType::WendlandC2);
    auto integrand = [&](float q) { return k.fq(q) * q * q; };
    float integral =
        4 * std::numbers::pi_v<float> * integrateSimpson<float>(integrand, 0.f, 2.f, 2000);
    EXPECT_NEAR(integral, 1.0f, 1e-4f);
}

TEST(KernelNames, AllDistinct)
{
    EXPECT_EQ(kernelName(KernelType::Sinc), "Sinc");
    EXPECT_EQ(kernelName(KernelType::CubicSpline), "M4 spline");
    EXPECT_EQ(kernelName(KernelType::WendlandC2), "Wendland C2");
}

/// Kernel library tests: 3D normalization, compact support, smoothness,
/// derivative consistency, grad-h identity, and tabulated evaluation, swept
/// over all kernel families with parameterized tests.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "math/quadrature.hpp"
#include "sph/kernels.hpp"

using namespace sphexa;

class KernelSweep : public ::testing::TestWithParam<KernelType>
{
protected:
    Kernel<double> k{GetParam()};
};

TEST_P(KernelSweep, NormalizedIn3D)
{
    // 4 pi int_0^2 W(q) q^2 dq = 1 for h = 1 (independent quadrature).
    auto integrand = [&](double q) { return k.fq(q) * q * q; };
    double integral = 4 * std::numbers::pi * integrate<double>(integrand, 0.0, 2.0, 1e-13);
    EXPECT_NEAR(integral, 1.0, 1e-8) << kernelName(GetParam());
}

TEST_P(KernelSweep, CompactSupport)
{
    EXPECT_DOUBLE_EQ(k.fq(2.0), 0.0);
    EXPECT_DOUBLE_EQ(k.fq(2.5), 0.0);
    EXPECT_DOUBLE_EQ(k.dfq(2.0), 0.0);
    EXPECT_DOUBLE_EQ(k.value(3.0, 1.0), 0.0);
    EXPECT_GT(k.fq(0.0), 0.0);
    EXPECT_GT(k.fq(1.0), 0.0);
}

TEST_P(KernelSweep, MonotonicallyDecreasing)
{
    double prev = k.fq(0.0);
    for (double q = 0.05; q <= 2.0; q += 0.05)
    {
        double cur = k.fq(q);
        EXPECT_LE(cur, prev + 1e-14) << "q=" << q;
        prev = cur;
    }
}

TEST_P(KernelSweep, DerivativeMatchesFiniteDifference)
{
    const double dq = 1e-6;
    for (double q : {0.1, 0.35, 0.73, 1.0, 1.2, 1.7, 1.95})
    {
        double fd = (k.fq(q + dq) - k.fq(q - dq)) / (2 * dq);
        EXPECT_NEAR(k.dfq(q), fd, 1e-5 * std::max(1.0, std::abs(fd))) << "q=" << q;
    }
}

TEST_P(KernelSweep, DerivativeNonPositive)
{
    for (double q = 0.0; q <= 2.0; q += 0.01)
    {
        EXPECT_LE(k.dfq(q), 1e-14) << "q=" << q;
    }
}

TEST_P(KernelSweep, ValueScalesAsHMinus3)
{
    // W(0, h) = sigma f(0) / h^3
    double w1 = k.value(0.0, 1.0);
    double w2 = k.value(0.0, 2.0);
    EXPECT_NEAR(w1 / w2, 8.0, 1e-12);
}

TEST_P(KernelSweep, SelfSimilarity)
{
    // W(r, h) = W(r/h, 1)/h^3 for several (r, h)
    for (double h : {0.5, 1.0, 3.0})
    {
        for (double q : {0.2, 0.9, 1.5})
        {
            EXPECT_NEAR(k.value(q * h, h), k.value(q, 1.0) / (h * h * h), 1e-12);
        }
    }
}

TEST_P(KernelSweep, GradHIdentity)
{
    // dW/dh = -(3 W + q dW/dq)/h at h=1: check against finite difference in h.
    const double dh = 1e-6;
    Kernel<double> kh{GetParam()};
    for (double r : {0.3, 0.8, 1.4})
    {
        double fd = (kh.value(r, 1.0 + dh) - kh.value(r, 1.0 - dh)) / (2 * dh);
        EXPECT_NEAR(kh.dh(r, 1.0), fd, 1e-5 * std::max(1.0, std::abs(fd))) << "r=" << r;
    }
}

TEST_P(KernelSweep, TabulatedAgreesWithAnalytic)
{
    TabulatedKernel<double> tk(k, 20000);
    for (double q = 0.001; q < 2.0; q += 0.0137)
    {
        EXPECT_NEAR(tk.fq(q), k.fq(q), 1e-6 * std::max(1.0, k.fq(0.0)));
        EXPECT_NEAR(tk.dfq(q), k.dfq(q), 1e-5 * std::max(1.0, std::abs(k.dfq(1.0))));
    }
    EXPECT_DOUBLE_EQ(tk.fq(2.5), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSweep,
                         ::testing::Values(KernelType::Sinc, KernelType::CubicSpline,
                                           KernelType::WendlandC2, KernelType::WendlandC4,
                                           KernelType::WendlandC6, KernelType::DebrunSpiky),
                         [](const auto& info) {
                             switch (info.param)
                             {
                                 case KernelType::Sinc: return "Sinc";
                                 case KernelType::CubicSpline: return "M4";
                                 case KernelType::WendlandC2: return "WendlandC2";
                                 case KernelType::WendlandC4: return "WendlandC4";
                                 case KernelType::WendlandC6: return "WendlandC6";
                                 case KernelType::DebrunSpiky: return "DebrunSpiky";
                             }
                             return "unknown";
                         });

// --- sinc-family specifics --------------------------------------------------

TEST(SincKernel, NormalizationVariesWithExponent)
{
    // Higher n concentrates the kernel: larger central value.
    Kernel<double> k3(KernelType::Sinc, 3.0);
    Kernel<double> k5(KernelType::Sinc, 5.0);
    Kernel<double> k8(KernelType::Sinc, 8.0);
    EXPECT_LT(k3.fq(0.0), k5.fq(0.0));
    EXPECT_LT(k5.fq(0.0), k8.fq(0.0));
}

TEST(SincKernel, EachExponentNormalized)
{
    for (double n : {3.0, 4.0, 5.0, 6.5, 9.0, 12.0})
    {
        Kernel<double> k(KernelType::Sinc, n);
        auto integrand = [&](double q) { return k.fq(q) * q * q; };
        double integral =
            4 * std::numbers::pi * integrate<double>(integrand, 0.0, 2.0, 1e-13);
        EXPECT_NEAR(integral, 1.0, 1e-8) << "n=" << n;
    }
}

TEST(SincKernel, RejectsInvalidExponent)
{
    EXPECT_THROW((Kernel<double>(KernelType::Sinc, 1.0)), std::invalid_argument);
}

TEST(SincKernel, ApproachesCubicSplineShapeAtN3)
{
    // The n=3 sinc is known to resemble (not equal) the M4 spline: both
    // normalized, same support; their central values are within ~15%.
    Kernel<double> sinc3(KernelType::Sinc, 3.0);
    Kernel<double> m4(KernelType::CubicSpline);
    EXPECT_NEAR(sinc3.fq(0.0), m4.fq(0.0), 0.15 * m4.fq(0.0));
}

// --- Debrun spiky specifics -------------------------------------------------

TEST(DebrunSpiky, GradientNonzeroAtOrigin)
{
    // the defining property of the pressure kernel: f'(0) = -12, not 0, so
    // close particle pairs always feel a repulsive pressure gradient
    Kernel<double> spiky(KernelType::DebrunSpiky);
    EXPECT_NEAR(spiky.dfq(0.0), -12.0 * debrunSpikySigma<double>(), 1e-14);
    // contrast: the bell-shaped M4 has a flat top
    EXPECT_DOUBLE_EQ(Kernel<double>(KernelType::CubicSpline).dfq(0.0), 0.0);
}

TEST(DebrunSpiky, ClosedFormNormalization)
{
    // sigma = 15/(64 pi): int_0^2 (2-q)^3 q^2 dq = 16/15
    EXPECT_NEAR(Kernel<double>(KernelType::DebrunSpiky).normalization(),
                15.0 / (64 * std::numbers::pi), 1e-15);
    EXPECT_NEAR(debrunSpikySigma<double>(), 0.074603879574326, 1e-14);
}

TEST(DebrunSpiky, FreeFunctionsAgreeWithKernelObject)
{
    Kernel<double> spiky(KernelType::DebrunSpiky);
    for (double h : {0.5, 1.0, 2.0})
    {
        for (double r : {0.0, 0.3, 0.9, 1.4 * h, 2.5 * h})
        {
            EXPECT_NEAR(debrunSpikyKernel(r, h), spiky.value(r, h), 1e-14)
                << "r=" << r << " h=" << h;
        }
    }
    // out-of-support and negative arguments are hard zeros
    EXPECT_DOUBLE_EQ(debrunSpikyKernel(2.1, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(debrunSpikyKernel(-0.1, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(debrunSpikyDwdr(2.1, 1.0), 0.0);
}

TEST(DebrunSpiky, MatchesPublishedCoefficientForm)
{
    // the classic spiky form W(r) = 15/(pi H^6) (H - r)^3 with support
    // radius H equals this library's sigma/h^3 (2 - q)^3 at h = H/2; the
    // 3D coefficient for H = 0.789 is a published golden value
    double H     = 0.789;
    double coeff = 19.791529914316335; // 15 / (pi * 0.789^6)
    for (double r : {0.1, 0.3, 0.6})
    {
        EXPECT_NEAR(debrunSpikyKernel(r, H / 2), coeff * std::pow(H - r, 3.0),
                    1e-12 * coeff) << "r=" << r;
    }
}

TEST(DebrunSpiky, GradientMatchesFiniteDifference)
{
    double h = 0.7;
    Vec3<double> d{0.3, 0.2, -0.1};
    auto grad = debrunSpikyGradient(d, h);
    const double eps = 1e-6;
    double* comp[3] = {&d.x, &d.y, &d.z};
    double g[3]     = {grad.x, grad.y, grad.z};
    for (int ax = 0; ax < 3; ++ax)
    {
        double saved = *comp[ax];
        *comp[ax]    = saved + eps;
        double wp    = debrunSpikyKernel(norm(d), h);
        *comp[ax]    = saved - eps;
        double wm    = debrunSpikyKernel(norm(d), h);
        *comp[ax]    = saved;
        EXPECT_NEAR(g[ax], (wp - wm) / (2 * eps), 1e-5) << "axis " << ax;
    }
    // the gradient points from neighbor to particle (repulsive direction)
    EXPECT_LT(dot(grad, d), 0.0);
    // coincident pair: no direction, zero gradient
    auto g0 = debrunSpikyGradient(Vec3<double>{0, 0, 0}, h);
    EXPECT_DOUBLE_EQ(g0.x, 0.0);
    EXPECT_DOUBLE_EQ(g0.y, 0.0);
    EXPECT_DOUBLE_EQ(g0.z, 0.0);
}

TEST(DebrunSpiky, LaplacianMatchesFiniteDifferenceAndGoldenValue)
{
    // radial Laplacian in 3D: W'' + (2/r) W'
    double h = 1.0;
    const double eps = 1e-5;
    for (double r : {0.4, 0.8, 1.3, 1.8})
    {
        double wp  = debrunSpikyKernel(r + eps, h);
        double w0  = debrunSpikyKernel(r, h);
        double wm  = debrunSpikyKernel(r - eps, h);
        double fd  = (wp - 2 * w0 + wm) / (eps * eps) + (wp - wm) / (eps * r);
        EXPECT_NEAR(debrunSpikyLaplacian(r, h), fd, 1e-4 * std::abs(fd)) << "r=" << r;
    }
    // golden value: 12 sigma (2-q)(q-1)/q at q = 1/2 is -18 sigma
    EXPECT_NEAR(debrunSpikyLaplacian(0.5, 1.0), -1.342869832337867, 1e-12);
    EXPECT_DOUBLE_EQ(debrunSpikyLaplacian(2.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(debrunSpikyLaplacian(0.0, 1.0), 0.0); // singular point guarded
}

// --- closed-form normalizations --------------------------------------------

TEST(KernelNormalization, ClosedFormsMatchLiterature)
{
    constexpr double pi = std::numbers::pi;
    EXPECT_NEAR(Kernel<double>(KernelType::CubicSpline).normalization(), 1.0 / pi, 1e-15);
    EXPECT_NEAR(Kernel<double>(KernelType::WendlandC2).normalization(), 21.0 / (16 * pi),
                1e-15);
    EXPECT_NEAR(Kernel<double>(KernelType::WendlandC4).normalization(), 495.0 / (256 * pi),
                1e-15);
    EXPECT_NEAR(Kernel<double>(KernelType::WendlandC6).normalization(), 1365.0 / (512 * pi),
                1e-15);
}

TEST(KernelNormalization, FloatInstantiation)
{
    // 32-bit instantiation exists and is normalized (the library is generic
    // even though the mini-app mandates 64-bit).
    Kernel<float> k(KernelType::WendlandC2);
    auto integrand = [&](float q) { return k.fq(q) * q * q; };
    float integral =
        4 * std::numbers::pi_v<float> * integrateSimpson<float>(integrand, 0.f, 2.f, 2000);
    EXPECT_NEAR(integral, 1.0f, 1e-4f);
}

TEST(KernelNames, AllDistinct)
{
    EXPECT_EQ(kernelName(KernelType::Sinc), "Sinc");
    EXPECT_EQ(kernelName(KernelType::CubicSpline), "M4 spline");
    EXPECT_EQ(kernelName(KernelType::WendlandC2), "Wendland C2");
}

/// Initial-condition generator tests: lattice geometry, square-patch
/// velocity/pressure fields (paper Sec. 5.1), Evrard 1/r density profile
/// (paper eq. 2), and the Sedov energy injection.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>
#include <vector>

#include "core/simulation.hpp"
#include "ic/dam_break.hpp"
#include "ic/evrard.hpp"
#include "ic/lattice.hpp"
#include "ic/sedov.hpp"
#include "ic/square_patch.hpp"

using namespace sphexa;

// --- lattice -----------------------------------------------------------------

TEST(Lattice, CountAndBounds)
{
    ParticleSetD ps;
    Box<double> box{{-1, 0, 2}, {1, 3, 4}};
    auto n = cubicLattice(ps, 4, 5, 6, box);
    EXPECT_EQ(n, 120u);
    EXPECT_EQ(ps.size(), 120u);
    for (std::size_t i = 0; i < n; ++i)
    {
        EXPECT_TRUE(box.contains({ps.x[i], ps.y[i], ps.z[i]})) << i;
    }
}

TEST(Lattice, UniformSpacing)
{
    ParticleSetD ps;
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    cubicLattice(ps, 10, 10, 10, box);
    // first two points along x differ by exactly 1/10
    EXPECT_NEAR(ps.x[1] - ps.x[0], 0.1, 1e-14);
    // cell-centered: first point at 0.05
    EXPECT_NEAR(ps.x[0], 0.05, 1e-14);
}

TEST(Lattice, IdsAreSequential)
{
    ParticleSetD ps;
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    cubicLattice(ps, 3, 3, 3, box);
    for (std::size_t i = 0; i < ps.size(); ++i)
    {
        EXPECT_EQ(ps.id[i], i);
    }
}

TEST(Lattice, JitterStaysInBoxAndIsDeterministic)
{
    ParticleSetD a, b;
    Box<double> box{{0, 0, 0}, {1, 1, 1}, true, true, false};
    cubicLattice(a, 8, 8, 8, box);
    cubicLattice(b, 8, 8, 8, box);
    jitterPositions(a, box, 1.0 / 8, 0.3, 42);
    jitterPositions(b, box, 1.0 / 8, 0.3, 42);
    for (std::size_t i = 0; i < a.size(); ++i)
    {
        EXPECT_TRUE(box.contains({a.x[i], a.y[i], a.z[i]}) ||
                    (a.z[i] >= box.lo.z && a.z[i] < box.hi.z));
        EXPECT_DOUBLE_EQ(a.x[i], b.x[i]); // determinism
    }
}

// --- square patch --------------------------------------------------------------

TEST(SquarePatch, PaperConfiguration)
{
    // scaled-down version of the paper's [100 x 100] x 100 layout
    ParticleSetD ps;
    SquarePatchConfig<double> cfg;
    cfg.nx = 20;
    cfg.ny = 20;
    cfg.nz = 10;
    auto setup = makeSquarePatch(ps, cfg);

    EXPECT_EQ(ps.size(), 4000u);
    EXPECT_TRUE(setup.box.pbc[2]);  // periodic in Z (paper Sec. 5.1)
    EXPECT_FALSE(setup.box.pbc[0]);
    EXPECT_FALSE(setup.box.pbc[1]);
    // total mass = rho0 * volume
    double mtot = 0;
    for (auto m : ps.m)
        mtot += m;
    EXPECT_NEAR(mtot, 1.0 * 1.0 * 1.0 * (10.0 / 20.0), 1e-12);
}

TEST(SquarePatch, RigidRotationField)
{
    ParticleSetD ps;
    SquarePatchConfig<double> cfg;
    cfg.nx = cfg.ny = 16;
    cfg.nz = 4;
    makeSquarePatch(ps, cfg);

    // paper eq. 1: vx = w y, vy = -w x
    for (std::size_t i = 0; i < ps.size(); i += 7)
    {
        EXPECT_DOUBLE_EQ(ps.vx[i], 5.0 * ps.y[i]);
        EXPECT_DOUBLE_EQ(ps.vy[i], -5.0 * ps.x[i]);
        EXPECT_DOUBLE_EQ(ps.vz[i], 0.0);
    }
    // the field is a rigid rotation: |v| = w r
    for (std::size_t i = 0; i < ps.size(); i += 11)
    {
        double r = std::hypot(ps.x[i], ps.y[i]);
        double v = std::hypot(ps.vx[i], ps.vy[i]);
        EXPECT_NEAR(v, 5.0 * r, 1e-12);
    }
}

TEST(SquarePatch, InitialPressureNegativeInside)
{
    ParticleSetD ps;
    SquarePatchConfig<double> cfg;
    cfg.nx = cfg.ny = 16;
    cfg.nz = 4;
    makeSquarePatch(ps, cfg);

    // center particle has the most negative pressure; boundary near zero
    double pMin = 1e30, pMax = -1e30;
    for (std::size_t i = 0; i < ps.size(); ++i)
    {
        pMin = std::min(pMin, ps.p[i]);
        pMax = std::max(pMax, ps.p[i]);
    }
    EXPECT_LT(pMin, 0.0);
    EXPECT_LT(pMax, 0.05 * std::abs(pMin)); // nothing strongly positive
}

TEST(SquarePatch, IndependentOfZ)
{
    // "The initial conditions are the same for all layers" (paper Sec. 5.1)
    ParticleSetD ps;
    SquarePatchConfig<double> cfg;
    cfg.nx = cfg.ny = 8;
    cfg.nz = 4;
    makeSquarePatch(ps, cfg);
    std::size_t perLayer = 64;
    for (std::size_t i = 0; i < perLayer; ++i)
    {
        for (std::size_t layer = 1; layer < 4; ++layer)
        {
            std::size_t j = layer * perLayer + i;
            EXPECT_DOUBLE_EQ(ps.x[i], ps.x[j]);
            EXPECT_DOUBLE_EQ(ps.y[i], ps.y[j]);
            EXPECT_DOUBLE_EQ(ps.vx[i], ps.vx[j]);
            EXPECT_DOUBLE_EQ(ps.p[i], ps.p[j]);
        }
    }
}

TEST(SquarePatch, WeaklyCompressibleSoundSpeed)
{
    ParticleSetD ps;
    SquarePatchConfig<double> cfg;
    cfg.nx = cfg.ny = 8;
    cfg.nz = 2;
    auto setup = makeSquarePatch(ps, cfg);
    double vmax = 5.0 * std::numbers::sqrt2 / 2.0;
    EXPECT_NEAR(setup.eos.referenceSoundSpeed(), 10 * vmax, 1e-12);
}

// --- Evrard --------------------------------------------------------------------

TEST(Evrard, DensityProfileIsOneOverR)
{
    ParticleSetD ps;
    EvrardConfig<double> cfg;
    cfg.nSide = 30;
    auto setup = makeEvrard(ps, cfg);
    ASSERT_GT(setup.nParticles, 10000u);

    // radial mass profile: M(<r) = M r^2 / R^2 for rho ~ 1/r
    for (double r : {0.3, 0.5, 0.7, 0.9})
    {
        double enclosed = 0;
        for (std::size_t i = 0; i < ps.size(); ++i)
        {
            double ri = std::sqrt(ps.x[i] * ps.x[i] + ps.y[i] * ps.y[i] +
                                  ps.z[i] * ps.z[i]);
            if (ri < r) enclosed += ps.m[i];
        }
        EXPECT_NEAR(enclosed, r * r, 0.05) << "r=" << r;
    }
}

TEST(Evrard, TotalMassAndStaticStart)
{
    ParticleSetD ps;
    EvrardConfig<double> cfg;
    cfg.nSide = 20;
    makeEvrard(ps, cfg);
    double mtot = 0;
    for (std::size_t i = 0; i < ps.size(); ++i)
    {
        mtot += ps.m[i];
        EXPECT_DOUBLE_EQ(ps.vx[i], 0.0);
        EXPECT_DOUBLE_EQ(ps.vy[i], 0.0);
        EXPECT_DOUBLE_EQ(ps.vz[i], 0.0);
        EXPECT_DOUBLE_EQ(ps.u[i], 0.05); // paper: u0 = 0.05
    }
    EXPECT_NEAR(mtot, 1.0, 1e-12);
}

TEST(Evrard, AllInsideUnitSphere)
{
    ParticleSetD ps;
    EvrardConfig<double> cfg;
    cfg.nSide = 20;
    makeEvrard(ps, cfg);
    for (std::size_t i = 0; i < ps.size(); ++i)
    {
        double r = std::sqrt(ps.x[i] * ps.x[i] + ps.y[i] * ps.y[i] + ps.z[i] * ps.z[i]);
        EXPECT_LT(r, 1.0 + 1e-12);
    }
}

TEST(Evrard, GravitationalEnergyDominates)
{
    // the paper: "the gravitational energy is much larger than the internal
    // energy and the system collapses naturally":
    // |U| = 2/3 G M^2/R = 0.667 vs Eint = M u0 = 0.05.
    double U = evrardAnalyticPotentialEnergy<double>(1, 1, 1);
    EXPECT_NEAR(U, -2.0 / 3.0, 1e-12);
    EXPECT_GT(std::abs(U), 10 * 0.05);
}

// --- Sedov ----------------------------------------------------------------------

TEST(Sedov, EnergyInjectionConservesTotal)
{
    ParticleSetD ps;
    SedovConfig<double> cfg;
    cfg.nSide = 20;
    makeSedov(ps, cfg);
    double etot = 0;
    for (std::size_t i = 0; i < ps.size(); ++i)
        etot += ps.m[i] * ps.u[i];
    // background energy is negligible; injected energy ~ cfg.energy
    EXPECT_NEAR(etot, 1.0, 0.01);
}

TEST(Sedov, EnergyConcentratedAtCenter)
{
    ParticleSetD ps;
    SedovConfig<double> cfg;
    cfg.nSide = 20;
    makeSedov(ps, cfg);
    double uCenterMax = 0, uEdgeMax = 0;
    for (std::size_t i = 0; i < ps.size(); ++i)
    {
        double r = std::sqrt(ps.x[i] * ps.x[i] + ps.y[i] * ps.y[i] + ps.z[i] * ps.z[i]);
        if (r < 0.1) uCenterMax = std::max(uCenterMax, ps.u[i]);
        if (r > 0.3) uEdgeMax = std::max(uEdgeMax, ps.u[i]);
    }
    EXPECT_GT(uCenterMax, 1e3 * uEdgeMax);
}

TEST(Sedov, ShockRadiusScaling)
{
    // R(t) ~ t^{2/5}
    double r1 = sedovShockRadius<double>(0.01, 1.0, 1.0);
    double r2 = sedovShockRadius<double>(0.02, 1.0, 1.0);
    EXPECT_NEAR(r2 / r1, std::pow(2.0, 0.4), 1e-12);
}

TEST(Sedov, IntegratedRunTracksSimilaritySolution)
{
    // End-to-end regression: evolve the blast and compare the measured
    // shock shell (mean radius of the densest 2% of particles) against the
    // analytic R(t). Coarser than the golden gallery's gate (small N), so
    // the band is wider; the growth between probes must still be monotone.
    ParticleSetD ps;
    SedovConfig<double> cfg;
    cfg.nSide = 16;
    auto setup = makeSedov(ps, cfg);

    SimulationConfig<double> sc;
    sc.targetNeighbors    = 50;
    sc.neighborTolerance  = 10;
    sc.timestep.initialDt = 1e-6;
    Simulation<double> sim(std::move(ps), setup.box, Eos<double>(setup.eos), sc);
    sim.computeForces();

    auto shellRadius = [](const ParticleSetD& p) {
        std::vector<std::size_t> idx(p.size());
        std::iota(idx.begin(), idx.end(), std::size_t{0});
        std::size_t k = std::max<std::size_t>(32, p.size() / 50);
        std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                          [&](auto a, auto b) { return p.rho[a] > p.rho[b]; });
        double sum = 0;
        for (std::size_t j = 0; j < k; ++j)
        {
            auto i = idx[j];
            sum += std::sqrt(p.x[i] * p.x[i] + p.y[i] * p.y[i] + p.z[i] * p.z[i]);
        }
        return sum / double(k);
    };

    double prev = 0;
    for (double tProbe : {0.01, 0.02})
    {
        int guard = 0;
        while (sim.time() < tProbe && guard++ < 500)
            sim.advance();
        double measured = shellRadius(sim.particles());
        double analytic = sedovShockRadius(sim.time(), cfg.energy, cfg.rho0);
        EXPECT_NEAR(measured, analytic, 0.35 * analytic) << "t=" << sim.time();
        EXPECT_GT(measured, prev);
        prev = measured;
    }
}

// --- dam break ------------------------------------------------------------------

TEST(DamBreak, HydrostaticColumnMatchesInverseTait)
{
    ParticleSetD ps;
    DamBreakConfig<double> cfg;
    cfg.nx = cfg.ny = 12;
    cfg.nz = 4;
    auto setup = makeDamBreak(ps, cfg);

    EXPECT_TRUE(setup.box.pbc[2]); // quasi-2D: periodic in z only
    EXPECT_FALSE(setup.box.pbc[0]);
    EXPECT_NEAR(setup.surgeSpeed, 2.0 * std::sqrt(cfg.g * cfg.columnHeight), 1e-12);

    double mtot = 0;
    for (std::size_t i = 0; i < ps.size(); ++i)
    {
        mtot += ps.m[i];
        // hydrostatic pressure, and the EOS must reproduce it exactly from
        // the planted density (the inverse-Tait construction)
        EXPECT_NEAR(ps.p[i], cfg.rho0 * cfg.g * (cfg.columnHeight - ps.y[i]), 1e-12);
        EXPECT_NEAR(setup.eos(ps.rho[i], 0.0).pressure, ps.p[i], 1e-9) << i;
        EXPECT_LE(ps.x[i], cfg.columnWidth); // column, not the whole tank
    }
    EXPECT_NEAR(mtot, cfg.rho0 * cfg.columnWidth * cfg.columnHeight * cfg.depth, 1e-12);
}

TEST(DamBreak, ConfigSelectsWcsphPipelineWallsAndGravity)
{
    ParticleSetD ps;
    DamBreakConfig<double> cfg;
    auto setup = makeDamBreak(ps, cfg);
    auto sc    = damBreakConfig(cfg, setup);

    EXPECT_EQ(sc.hydroMode, HydroMode::WeaklyCompressible);
    EXPECT_TRUE(sc.boundaries.enabled);
    EXPECT_TRUE(sc.boundaries.wallLo[0]);  // dam-side wall
    EXPECT_TRUE(sc.boundaries.wallLo[1]);  // floor
    EXPECT_TRUE(sc.boundaries.wallHi[0]);  // far wall
    EXPECT_FALSE(sc.boundaries.wallHi[1]); // open top
    EXPECT_FALSE(sc.boundaries.wallLo[2]); // periodic z: no wall
    EXPECT_DOUBLE_EQ(sc.constantAccel.y, -cfg.g);
    EXPECT_DOUBLE_EQ(sc.wcsphEos.c0, setup.eos.referenceSoundSpeed());
    EXPECT_DOUBLE_EQ(sc.wcsphEos.pressureFloor, 0.0); // free surface: no tension
}

TEST(DamBreak, RitterFrontIsLinearInTime)
{
    double x1 = ritterFrontPosition(0.1, 0.5, 1.0, 1.0);
    double x2 = ritterFrontPosition(0.2, 0.5, 1.0, 1.0);
    EXPECT_NEAR(x1, 0.5 + 2.0 * 0.1, 1e-12);
    EXPECT_NEAR(x2 - x1, x1 - 0.5, 1e-12); // constant front speed
}

/// Fault-tolerance substrate tests: multilevel checkpoint/restart with
/// corruption fallbacks, optimal-interval formulas validated against a
/// discrete-event failure simulation, SDC detector recall and false-positive
/// behaviour, and selective replication.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/simulation.hpp"
#include "ft/checkpoint.hpp"
#include "ft/daly.hpp"
#include "ft/replication.hpp"
#include "ft/sdc.hpp"
#include "ic/evrard.hpp"
#include "io/serialize.hpp"
#include "math/rng.hpp"

using namespace sphexa;

namespace {

ParticleSetD makeState(std::size_t n, std::uint64_t seed)
{
    ParticleSetD ps(n);
    Xoshiro256pp rng(seed);
    for (std::size_t i = 0; i < n; ++i)
    {
        ps.x[i] = rng.uniform();
        ps.y[i] = rng.uniform();
        ps.z[i] = rng.uniform();
        ps.rho[i] = 1.0 + 0.1 * rng.normal();
        ps.h[i] = 0.05;
        ps.m[i] = 1e-3;
        ps.u[i] = 0.5;
        ps.id[i] = i;
    }
    return ps;
}

std::filesystem::path tmpDir(const std::string& name)
{
    auto p = std::filesystem::temp_directory_path() / ("sphexa_test_" + name);
    std::filesystem::remove_all(p);
    return p;
}

} // namespace

// --- checkpoint/restart ---------------------------------------------------------

TEST(Checkpoint, MemoryRoundTrip)
{
    auto ps = makeState(200, 1);
    Checkpointer<double> ck(tmpDir("mem"));
    ck.write(CheckpointLevel::Memory, ps, 1.5, 10);
    auto res = ck.restore();
    ASSERT_TRUE(res.has_value());
    EXPECT_DOUBLE_EQ(res->time, 1.5);
    EXPECT_EQ(res->step, 10u);
    EXPECT_EQ(res->particles.size(), 200u);
    EXPECT_DOUBLE_EQ(res->particles.x[13], ps.x[13]);
}

TEST(Checkpoint, DiskRoundTrip)
{
    auto ps = makeState(150, 2);
    Checkpointer<double> ck(tmpDir("disk"));
    ck.write(CheckpointLevel::Disk, ps, 2.5, 20);
    auto res = ck.restore();
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->step, 20u);
    for (std::size_t i = 0; i < 150; i += 17)
    {
        EXPECT_DOUBLE_EQ(res->particles.rho[i], ps.rho[i]);
    }
}

TEST(Checkpoint, NoCheckpointReturnsNullopt)
{
    Checkpointer<double> ck(tmpDir("none"));
    EXPECT_FALSE(ck.restore().has_value());
}

TEST(Checkpoint, PrefersFasterLevel)
{
    auto psOld = makeState(50, 3);
    auto psNew = makeState(50, 4);
    Checkpointer<double> ck(tmpDir("prefer"));
    ck.write(CheckpointLevel::Disk, psOld, 1.0, 1);
    ck.write(CheckpointLevel::Memory, psNew, 2.0, 2);
    auto res = ck.restore();
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->step, 2u); // memory level wins
}

TEST(Checkpoint, FallsBackOnCorruptMemory)
{
    auto ps = makeState(80, 5);
    Checkpointer<double> ck(tmpDir("fallback"));
    ck.write(CheckpointLevel::Disk, ps, 1.0, 7);
    ck.write(CheckpointLevel::Memory, ps, 2.0, 8);
    ck.corruptMemoryLevel(1234);
    auto res = ck.restore();
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->step, 7u); // fell back to the disk copy
    EXPECT_GE(ck.stats().fallbacks, 1u);
}

TEST(Checkpoint, SurvivesMemoryLevelLoss)
{
    auto ps = makeState(80, 6);
    Checkpointer<double> ck(tmpDir("nodeloss"));
    ck.write(CheckpointLevel::Disk, ps, 1.0, 3);
    ck.write(CheckpointLevel::Memory, ps, 2.0, 4);
    ck.dropMemoryLevel(); // "node failure"
    auto res = ck.restore();
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->step, 3u);
}

TEST(Checkpoint, StatsAccumulate)
{
    auto ps = makeState(40, 7);
    Checkpointer<double> ck(tmpDir("stats"));
    ck.write(CheckpointLevel::Memory, ps, 0.0, 0);
    ck.write(CheckpointLevel::Disk, ps, 0.0, 0);
    EXPECT_EQ(ck.stats().memoryWrites, 1u);
    EXPECT_EQ(ck.stats().diskWrites, 1u);
    EXPECT_GT(ck.stats().bytesWritten, 40u * 30u * 8u); // ~fields * particles
}

// --- individual-mode restart ------------------------------------------------------

namespace {

Simulation<double> makeBinnedEvrard()
{
    ParticleSetD ps;
    EvrardConfig<double> ic;
    ic.nSide   = 10;
    auto setup = makeEvrard(ps, ic);
    SimulationConfig<double> cfg;
    cfg.timestep.mode     = TimesteppingMode::Individual;
    cfg.neighborMode      = NeighborMode::IndividualTreeWalk;
    cfg.selfGravity       = true;
    cfg.gravity.G         = 1.0;
    cfg.gravity.theta     = 0.5;
    cfg.gravity.softening = 0.02;
    cfg.targetNeighbors   = 60;
    cfg.neighborTolerance = 10;
    return Simulation<double>(std::move(ps), setup.box, Eos<double>(setup.eos), cfg);
}

} // namespace

TEST(Checkpoint, IndividualRestartRestoresBaseDt)
{
    // Regression: restore() used to drop baseDt_, leaving it 0 after an
    // Individual-mode restart — every bin-relative quantity (snapped dt,
    // sync detection) was stale or divided by zero until the next advance.
    auto sim = makeBinnedEvrard();
    sim.computeForces();
    for (int i = 0; i < 5; ++i)
        sim.advance();
    const auto& ctl = sim.timestepController();
    ASSERT_GT(ctl.baseDt(), 0.0);

    auto resumed = makeBinnedEvrard();
    resumed.particles() = sim.particles();
    resumed.restoreFromCheckpoint(sim.time(), sim.step(), ctl.currentDt(),
                                  sim.maxVsignal(), ctl.baseDt(), ctl.cycleStart());
    const auto& rctl = resumed.timestepController();
    EXPECT_DOUBLE_EQ(rctl.baseDt(), ctl.baseDt());
    EXPECT_EQ(rctl.cycleStart(), ctl.cycleStart());
    EXPECT_EQ(rctl.maxUsedBin(), ctl.maxUsedBin());
    EXPECT_EQ(rctl.atFullSync(), ctl.atFullSync());
}

TEST(Checkpoint, IndividualMidCycleRoundTripContinuesBitwise)
{
    // Serialize/checkpoint round-trip of ps.dt and ps.bin MID bin-cycle:
    // write at a step where bins differ, restore, and require the identical
    // activity schedule plus a bitwise-identical continuation.
    auto ref = makeBinnedEvrard();
    ref.computeForces();
    auto live = makeBinnedEvrard();
    live.computeForces();

    // step both to a mid-cycle point with a real hierarchy
    int head = 5;
    for (int i = 0; i < head; ++i)
    {
        ref.advance();
        live.advance();
    }
    const auto& ps0 = live.particles();
    int minBin = ps0.bin[0], maxBin = ps0.bin[0];
    for (int b : ps0.bin)
    {
        minBin = std::min(minBin, b);
        maxBin = std::max(maxBin, b);
    }
    ASSERT_LT(minBin, maxBin) << "test premise: bins must differ at write time";

    // round-trip the full state through the binary serializer
    auto buf      = serialize(ps0, live.time(), live.step());
    auto restored = deserialize<double>(buf);
    for (std::size_t i = 0; i < ps0.size(); ++i)
    {
        ASSERT_EQ(restored.particles.bin[i], ps0.bin[i]) << i;
        ASSERT_EQ(restored.particles.dt[i], ps0.dt[i]) << i;
        ASSERT_EQ(restored.particles.vsig[i], ps0.vsig[i]) << i;
    }

    const auto& lctl = live.timestepController();
    auto resumed     = makeBinnedEvrard();
    resumed.particles() = std::move(restored.particles);
    resumed.restoreFromCheckpoint(restored.time, restored.step, lctl.currentDt(),
                                  live.maxVsignal(), lctl.baseDt(),
                                  lctl.cycleStart());

    // identical activity schedule and bitwise continuation across (at least)
    // one full hierarchy cycle
    int tail = 1 << std::max(2, lctl.maxUsedBin());
    for (int i = 0; i < tail; ++i)
    {
        auto repRef = ref.advance();
        auto repRes = resumed.advance();
        ASSERT_EQ(repRes.activeParticles, repRef.activeParticles) << "step " << i;
        ASSERT_EQ(repRes.dt, repRef.dt) << "step " << i;
    }
    const auto& a = ref.particles();
    const auto& b = resumed.particles();
    for (std::size_t i = 0; i < a.size(); ++i)
    {
        ASSERT_EQ(a.x[i], b.x[i]) << i;
        ASSERT_EQ(a.vx[i], b.vx[i]) << i;
        ASSERT_EQ(a.u[i], b.u[i]) << i;
        ASSERT_EQ(a.dt[i], b.dt[i]) << i;
        ASSERT_EQ(a.bin[i], b.bin[i]) << i;
    }
    EXPECT_EQ(resumed.timestepController().cycleStart(), ref.timestepController().cycleStart());
}

// --- optimal interval ------------------------------------------------------------

TEST(Daly, YoungFormula)
{
    EXPECT_NEAR(youngInterval(10.0, 2000.0), std::sqrt(2 * 10.0 * 2000.0), 1e-12);
    EXPECT_THROW(youngInterval(0.0, 100.0), std::invalid_argument);
}

TEST(Daly, DalyReducesToYoungForSmallC)
{
    double C = 1.0, M = 1e6;
    EXPECT_NEAR(dalyInterval(C, M), youngInterval(C, M), 0.01 * youngInterval(C, M));
}

TEST(Daly, DalyBelowYoungForLargeC)
{
    // with non-negligible C the refined optimum is shifted by ~ -C
    double C = 100.0, M = 5000.0;
    EXPECT_LT(dalyInterval(C, M), youngInterval(C, M));
    EXPECT_GT(dalyInterval(C, M), 0.0);
}

TEST(Daly, WasteMinimizedNearYoung)
{
    double C = 10.0, M = 3600.0, R = 30.0;
    double tauOpt = youngInterval(C, M);
    double wOpt = expectedWasteFraction(tauOpt, C, R, M);
    EXPECT_LT(wOpt, expectedWasteFraction(tauOpt / 4, C, R, M));
    EXPECT_LT(wOpt, expectedWasteFraction(tauOpt * 4, C, R, M));
}

TEST(Daly, SimulationValidatesOptimum)
{
    // simulated makespan at the Young interval beats too-frequent and
    // too-rare checkpointing (averaged over seeds)
    double C = 20.0, M = 1000.0, R = 50.0, W = 20000.0;
    double tauOpt = youngInterval(C, M);

    auto avgWall = [&](double tau) {
        double s = 0;
        for (std::uint64_t seed = 1; seed <= 20; ++seed)
        {
            s += simulateCheckpointing(W, tau, C, R, M, seed);
        }
        return s / 20;
    };

    double atOpt   = avgWall(tauOpt);
    double tooOft  = avgWall(tauOpt / 8);
    double tooRare = avgWall(tauOpt * 8);
    EXPECT_LT(atOpt, tooOft);
    EXPECT_LT(atOpt, tooRare);
}

TEST(Daly, SimulationMatchesWasteModel)
{
    double C = 10.0, M = 2000.0, R = 20.0, W = 50000.0;
    double tau = youngInterval(C, M);
    double s = 0;
    std::size_t fails = 0, f;
    for (std::uint64_t seed = 1; seed <= 30; ++seed)
    {
        s += simulateCheckpointing(W, tau, C, R, M, seed, &f);
        fails += f;
    }
    double wall = s / 30;
    double predicted = W * (1.0 + expectedWasteFraction(tau, C, R, M));
    EXPECT_NEAR(wall, predicted, 0.1 * predicted);
    EXPECT_GT(fails, 0u);
}

TEST(Daly, TwoLevelOptimalShape)
{
    // expensive L2, cheap L1, frequent soft errors vs rare node losses:
    // many L1 checkpoints per L2
    auto plan = twoLevelOptimal(1.0, 100.0, 1.0 / 600, 1.0 / 86400);
    EXPECT_GT(plan.n1, 10);
    EXPECT_GT(plan.tau1, 0.0);
    // costs equal and rates equal: one L1 per L2
    auto flat = twoLevelOptimal(10.0, 10.0, 1e-3, 1e-3);
    EXPECT_EQ(flat.n1, 1);
}

// --- SDC detection -----------------------------------------------------------------

TEST(Sdc, RangeDetectorFindsNonFinite)
{
    auto ps = makeState(100, 11);
    RangeDetector<double> det;
    EXPECT_TRUE(det.scan(ps).empty()); // clean state

    ps.rho[42] = std::numeric_limits<double>::quiet_NaN();
    auto report = det.scan(ps);
    ASSERT_FALSE(report.empty());
    EXPECT_EQ(report[0].field, "rho");
    EXPECT_EQ(report[0].particle, 42u);
}

TEST(Sdc, RangeDetectorFindsNegativeDensity)
{
    auto ps = makeState(100, 12);
    ps.rho[7] = -1.0;
    RangeDetector<double> det;
    auto report = det.scan(ps);
    ASSERT_FALSE(report.empty());
    EXPECT_EQ(report[0].reason, "non-positive");
}

TEST(Sdc, TemporalDetectorCatchesJump)
{
    auto ps = makeState(100, 13);
    TemporalDetector<double> det({"x", "rho"}, 0.5);
    det.snapshot(ps);
    EXPECT_TRUE(det.scan(ps).empty()); // unchanged

    ps.x[5] *= 100.0; // corruption-sized jump
    auto report = det.scan(ps);
    ASSERT_FALSE(report.empty());
    EXPECT_EQ(report[0].field, "x");
    EXPECT_EQ(report[0].particle, 5u);
}

TEST(Sdc, TemporalDetectorIgnoresSmoothEvolution)
{
    auto ps = makeState(100, 14);
    TemporalDetector<double> det({"x"}, 0.5);
    det.snapshot(ps);
    for (auto& x : ps.x)
        x *= 1.01; // CFL-sized motion
    EXPECT_TRUE(det.scan(ps).empty());
}

TEST(Sdc, ChecksumDetectorCatchesConstantFieldCorruption)
{
    auto ps = makeState(100, 15);
    ChecksumDetector<double> det({"m"});
    det.snapshot(ps);
    EXPECT_TRUE(det.scan(ps).empty());
    ps.m[50] += 1e-9;
    auto report = det.scan(ps);
    ASSERT_FALSE(report.empty());
    EXPECT_EQ(report[0].field, "m");
}

TEST(Sdc, ConservationDetectorCatchesEnergyDrift)
{
    auto ps = makeState(100, 16);
    ConservationDetector<double> det(1e-6);
    det.snapshot(computeConservation(ps));
    EXPECT_TRUE(det.scan(computeConservation(ps)).empty());
    ps.u[0] *= 50.0;
    auto report = det.scan(computeConservation(ps));
    ASSERT_FALSE(report.empty());
}

TEST(Sdc, InjectorFlipsExactlyOneBit)
{
    auto ps = makeState(100, 17);
    auto before = ps.x[30];
    SdcInjector<double> inj{"x", 30, 52};
    inj.inject(ps);
    EXPECT_NE(ps.x[30], before);
    inj.inject(ps); // flipping again restores
    EXPECT_EQ(ps.x[30], before);
}

TEST(Sdc, HighBitFlipsAreDetectedByRangeOrTemporal)
{
    // inject exponent-bit flips into live (non-zero) fields: the combination
    // of range + temporal detectors must catch the overwhelming majority.
    // (Flips on all-zero fields produce denormal-scale values — physically
    // benign and correctly below the detection threshold.)
    const std::vector<std::string> liveFields{"x", "y", "z", "rho", "h", "m", "u"};
    Xoshiro256pp rng(99);
    int detected = 0, trials = 50;
    for (int t = 0; t < trials; ++t)
    {
        auto ps = makeState(200, 1000 + t);
        TemporalDetector<double> temporal(liveFields, 0.5);
        temporal.snapshot(ps);
        RangeDetector<double> range;

        SdcInjector<double> inj;
        inj.field = liveFields[rng.uniformInt(liveFields.size())];
        inj.index = rng.uniformInt(ps.size());
        inj.bit   = 55 + int(rng.uniformInt(8)); // exponent bits
        inj.inject(ps);

        if (!range.scan(ps).empty() || !temporal.scan(ps).empty()) ++detected;
    }
    EXPECT_GE(detected, trials * 9 / 10);
}

TEST(Sdc, CleanRunHasNoFalsePositives)
{
    auto ps = makeState(500, 18);
    RangeDetector<double> range;
    ChecksumDetector<double> crc({"m", "h"});
    crc.snapshot(ps);
    ConservationDetector<double> cons(1e-3);
    cons.snapshot(computeConservation(ps));

    EXPECT_TRUE(range.scan(ps).empty());
    EXPECT_TRUE(crc.scan(ps).empty());
    EXPECT_TRUE(cons.scan(computeConservation(ps)).empty());
}

// --- replication ------------------------------------------------------------------

TEST(Replication, DeterministicComputeAgrees)
{
    ReplicationStats stats;
    int calls = 0;
    bool ok = replicatedCompute<double>(
        [&] { ++calls; return 42.0; },
        [](double a, double b) { return a == b; }, &stats);
    EXPECT_TRUE(ok);
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(stats.mismatches, 0u);
}

TEST(Replication, DetectsInjectedTransient)
{
    double state = 1.0;
    ReplicationStats stats;
    bool ok = replicatedCompute<double>(
        [&] { return state * 2.0; },
        [](double a, double b) { return a == b; }, &stats,
        [&] { state = 1.5; }); // transient fault between executions
    EXPECT_FALSE(ok);
    EXPECT_EQ(stats.mismatches, 1u);
}

/// ParticleSet container tests: field enumeration, gather/erase/append,
/// reorder, and the invariants the checkpoint and migration substrates
/// depend on.

#include <gtest/gtest.h>

#include <numeric>

#include "math/rng.hpp"
#include "sph/particles.hpp"

using namespace sphexa;

namespace {

ParticleSetD makeSequential(std::size_t n)
{
    ParticleSetD ps(n);
    for (std::size_t i = 0; i < n; ++i)
    {
        ps.x[i] = double(i);
        ps.y[i] = double(i) * 10;
        ps.z[i] = double(i) * 100;
        ps.m[i] = 1.0 + double(i);
        ps.id[i] = i;
        ps.nc[i] = int(i);
        ps.bin[i] = int(i % 4);
    }
    return ps;
}

} // namespace

TEST(ParticleSet, ResizeSetsAllFields)
{
    ParticleSetD ps(10);
    EXPECT_EQ(ps.size(), 10u);
    for (auto* f : ps.realFields())
    {
        EXPECT_EQ(f->size(), 10u);
    }
    EXPECT_EQ(ps.id.size(), 10u);
    EXPECT_EQ(ps.nc.size(), 10u);
    EXPECT_EQ(ps.bin.size(), 10u);
}

TEST(ParticleSet, FieldNamesAlignWithFields)
{
    ParticleSetD ps(1);
    EXPECT_EQ(ps.realFields().size(), ParticleSetD::realFieldNames().size());
}

TEST(ParticleSet, FieldByNameRoundTrip)
{
    ParticleSetD ps(3);
    ps.field("rho")[1] = 42.0;
    EXPECT_DOUBLE_EQ(ps.rho[1], 42.0);
    ps.h[2] = 0.7;
    EXPECT_DOUBLE_EQ(ps.field("h")[2], 0.7);
    EXPECT_THROW(ps.field("nonexistent"), std::out_of_range);
}

TEST(ParticleSet, AppendFromCopiesEverything)
{
    auto src = makeSequential(5);
    src.rho[3] = 9.5;
    ParticleSetD dst;
    dst.appendFrom(src, 3);
    ASSERT_EQ(dst.size(), 1u);
    EXPECT_DOUBLE_EQ(dst.x[0], 3.0);
    EXPECT_DOUBLE_EQ(dst.rho[0], 9.5);
    EXPECT_EQ(dst.id[0], 3u);
    EXPECT_EQ(dst.bin[0], 3);
}

TEST(ParticleSet, GatherSelectsIndices)
{
    auto ps = makeSequential(10);
    std::vector<std::size_t> idx{1, 4, 7};
    auto sub = ps.gather(idx);
    ASSERT_EQ(sub.size(), 3u);
    EXPECT_DOUBLE_EQ(sub.x[0], 1.0);
    EXPECT_DOUBLE_EQ(sub.x[1], 4.0);
    EXPECT_DOUBLE_EQ(sub.x[2], 7.0);
    EXPECT_EQ(sub.id[2], 7u);
}

TEST(ParticleSet, EraseSortedRemoves)
{
    auto ps = makeSequential(6);
    std::vector<std::size_t> dead{0, 3, 5};
    ps.eraseSorted(dead);
    ASSERT_EQ(ps.size(), 3u);
    EXPECT_DOUBLE_EQ(ps.x[0], 1.0);
    EXPECT_DOUBLE_EQ(ps.x[1], 2.0);
    EXPECT_DOUBLE_EQ(ps.x[2], 4.0);
    EXPECT_EQ(ps.id[2], 4u);
}

TEST(ParticleSet, EraseNothing)
{
    auto ps = makeSequential(4);
    ps.eraseSorted({});
    EXPECT_EQ(ps.size(), 4u);
}

TEST(ParticleSet, AppendConcatenates)
{
    auto a = makeSequential(3);
    auto b = makeSequential(2);
    a.append(b);
    ASSERT_EQ(a.size(), 5u);
    EXPECT_DOUBLE_EQ(a.x[3], 0.0);
    EXPECT_DOUBLE_EQ(a.x[4], 1.0);
}

TEST(ParticleSet, GatherThenEraseIsPartition)
{
    auto ps = makeSequential(8);
    std::vector<std::size_t> idx{2, 5};
    auto moved = ps.gather(idx);
    ps.eraseSorted(idx);
    EXPECT_EQ(ps.size() + moved.size(), 8u);
    // total mass preserved
    double total = std::accumulate(ps.m.begin(), ps.m.end(), 0.0) +
                   std::accumulate(moved.m.begin(), moved.m.end(), 0.0);
    double expected = 0;
    for (std::size_t i = 0; i < 8; ++i)
        expected += 1.0 + double(i);
    EXPECT_DOUBLE_EQ(total, expected);
}

TEST(ParticleSet, ReorderAppliesPermutation)
{
    auto ps = makeSequential(4);
    std::vector<std::size_t> order{3, 1, 0, 2};
    ps.reorder(order);
    EXPECT_DOUBLE_EQ(ps.x[0], 3.0);
    EXPECT_DOUBLE_EQ(ps.x[1], 1.0);
    EXPECT_DOUBLE_EQ(ps.x[2], 0.0);
    EXPECT_DOUBLE_EQ(ps.x[3], 2.0);
    EXPECT_EQ(ps.id[0], 3u);
    EXPECT_EQ(ps.bin[0], 3);
}

TEST(ParticleSet, ReorderRejectsBadPermutationSize)
{
    auto ps = makeSequential(4);
    std::vector<std::size_t> tooShort{0, 1};
    EXPECT_THROW(ps.reorder(tooShort), std::invalid_argument);
}

TEST(ParticleSet, FloatInstantiation)
{
    ParticleSet<float> ps(5);
    ps.x[0] = 1.5f;
    EXPECT_EQ(ps.realFields().size(), ParticleSet<float>::realFieldNames().size());
}

/// NeighborList container tests, centered on the flat-row accessor
/// (NeighborList::row) the backend kernels consume: one lookup returning
/// both the entry pointer and the count, aliasing the same storage as
/// neighbors(i), iterable, and stable across steady-state resets.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "tree/neighbors.hpp"

using namespace sphexa;

namespace {

using Index = NeighborList<double>::Index;

/// Fill particle i with neighbors i+1 .. i+k (mod n), a recognizable ramp.
void fillRamp(NeighborList<double>& nl, std::size_t n, std::size_t k)
{
    std::vector<Index> buf;
    for (std::size_t i = 0; i < n; ++i)
    {
        buf.clear();
        for (std::size_t j = 1; j <= k; ++j)
            buf.push_back(Index((i + j) % n));
        nl.set(i, buf);
    }
}

} // namespace

TEST(NeighborListRow, MatchesNeighborsSpanExactly)
{
    const std::size_t n = 17;
    NeighborList<double> nl(n, 32);
    fillRamp(nl, n, 7);

    for (std::size_t i = 0; i < n; ++i)
    {
        auto row  = nl.row(i);
        auto span = nl.neighbors(i);
        ASSERT_EQ(row.count, span.size());
        ASSERT_EQ(row.size(), span.size());
        // same storage, not a copy: the pointer aliases the flat list
        EXPECT_EQ(row.data, span.data());
        for (std::size_t k = 0; k < span.size(); ++k)
            EXPECT_EQ(row.data[k], span[k]);
    }
}

TEST(NeighborListRow, IsIterableAndSpanConvertible)
{
    NeighborList<double> nl(4, 8);
    std::vector<Index> nbs{3, 1, 2};
    nl.set(0, nbs);

    auto row = nl.row(0);
    EXPECT_FALSE(row.empty());
    std::vector<Index> seen(row.begin(), row.end());
    EXPECT_EQ(seen, nbs);

    std::span<const Index> s = row.span();
    ASSERT_EQ(s.size(), nbs.size());
    EXPECT_TRUE(std::equal(s.begin(), s.end(), nbs.begin()));
}

TEST(NeighborListRow, EmptyRowHasZeroCount)
{
    NeighborList<double> nl(3, 8);
    // counts are zeroed by reset; no set() calls
    for (std::size_t i = 0; i < 3; ++i)
    {
        auto row = nl.row(i);
        EXPECT_EQ(row.count, 0u);
        EXPECT_TRUE(row.empty());
        EXPECT_EQ(row.begin(), row.end());
    }
}

TEST(NeighborListRow, RowsAreNgmaxStrided)
{
    const unsigned ngmax = 16;
    NeighborList<double> nl(5, ngmax);
    fillRamp(nl, 5, 3);
    for (std::size_t i = 1; i < 5; ++i)
    {
        EXPECT_EQ(nl.row(i).data, nl.row(0).data + i * ngmax);
    }
}

TEST(NeighborListRow, CountsCapAtNgmaxAndFlagOverflow)
{
    const unsigned ngmax = 4;
    NeighborList<double> nl(2, ngmax);
    std::vector<Index> many(10);
    std::iota(many.begin(), many.end(), Index(0));
    nl.set(0, many);

    auto row = nl.row(0);
    EXPECT_EQ(row.count, std::size_t(ngmax));
    EXPECT_EQ(nl.overflowCount(), 1u);
    for (unsigned k = 0; k < ngmax; ++k)
        EXPECT_EQ(row.data[k], many[k]);
}

TEST(NeighborListRow, StableAcrossSteadyStateReset)
{
    NeighborList<double> nl(8, 16);
    fillRamp(nl, 8, 5);
    const Index* before = nl.row(3).data;

    // same-shape reset reuses the high-water-mark allocation
    nl.reset(8, 16);
    EXPECT_EQ(nl.row(3).data, before);
    EXPECT_EQ(nl.row(3).count, 0u); // counts rezeroed

    fillRamp(nl, 8, 5);
    EXPECT_EQ(nl.row(3).count, 5u);
}

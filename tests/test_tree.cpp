/// Octree and SFC-key tests: round trips, ordering invariants, tree
/// structural invariants, and neighbor-search equivalence against brute
/// force — including periodic boxes — as property tests over random clouds.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "math/rng.hpp"
#include "tree/cell_list.hpp"
#include "tree/hilbert.hpp"
#include "tree/morton.hpp"
#include "tree/neighbors.hpp"
#include "tree/octree.hpp"

using namespace sphexa;

// --- Morton keys ------------------------------------------------------------

TEST(Morton, EncodeDecodeRoundTrip)
{
    Xoshiro256pp rng(1);
    for (int t = 0; t < 1000; ++t)
    {
        std::uint64_t x = rng.uniformInt(sfcCellsPerDim);
        std::uint64_t y = rng.uniformInt(sfcCellsPerDim);
        std::uint64_t z = rng.uniformInt(sfcCellsPerDim);
        std::uint64_t dx, dy, dz;
        mortonDecode(mortonEncode(x, y, z), dx, dy, dz);
        EXPECT_EQ(dx, x);
        EXPECT_EQ(dy, y);
        EXPECT_EQ(dz, z);
    }
}

TEST(Morton, KnownValues)
{
    EXPECT_EQ(mortonEncode(0, 0, 0), 0u);
    EXPECT_EQ(mortonEncode(0, 0, 1), 1u);
    EXPECT_EQ(mortonEncode(0, 1, 0), 2u);
    EXPECT_EQ(mortonEncode(1, 0, 0), 4u);
    EXPECT_EQ(mortonEncode(1, 1, 1), 7u);
}

TEST(Morton, OctantOrderIsDepthFirst)
{
    // the top-level octant of a key is its top 3 bits
    std::uint64_t big = sfcCellsPerDim / 2; // first cell of upper half
    std::uint64_t key = mortonEncode(big, 0, 0);
    EXPECT_EQ(key >> 60, 4u); // x-bit at the top octant
}

TEST(Morton, Monotonicity)
{
    // along each axis, increasing coordinate increases the key (other
    // coordinates zero).
    std::uint64_t prev = 0;
    for (std::uint64_t c = 1; c < 64; ++c)
    {
        std::uint64_t k = mortonEncode(c, 0, 0);
        EXPECT_GT(k, prev);
        prev = k;
    }
}

// --- Hilbert keys -----------------------------------------------------------

TEST(Hilbert, EncodeDecodeRoundTrip)
{
    Xoshiro256pp rng(2);
    for (int t = 0; t < 1000; ++t)
    {
        std::uint64_t x = rng.uniformInt(sfcCellsPerDim);
        std::uint64_t y = rng.uniformInt(sfcCellsPerDim);
        std::uint64_t z = rng.uniformInt(sfcCellsPerDim);
        std::uint64_t dx, dy, dz;
        hilbertDecode(hilbertEncode(x, y, z), dx, dy, dz);
        EXPECT_EQ(dx, x);
        EXPECT_EQ(dy, y);
        EXPECT_EQ(dz, z);
    }
}

TEST(Hilbert, IsABijectionOnCoarseGrid)
{
    // On a 8x8x8 sub-grid (scaled to full resolution), keys must be unique.
    std::set<std::uint64_t> keys;
    std::uint64_t step = sfcCellsPerDim / 8;
    for (std::uint64_t x = 0; x < 8; ++x)
        for (std::uint64_t y = 0; y < 8; ++y)
            for (std::uint64_t z = 0; z < 8; ++z)
            {
                keys.insert(hilbertEncode(x * step, y * step, z * step));
            }
    EXPECT_EQ(keys.size(), 512u);
}

TEST(Hilbert, AdjacencyProperty)
{
    // Defining property of the Hilbert curve: consecutive cells along the
    // curve are face neighbors (unit step in exactly one axis). Verify on
    // the full resolution curve restricted to the first 4096 steps of a
    // coarse traversal: we decode consecutive keys at the deepest level.
    std::uint64_t px = 0, py = 0, pz = 0;
    hilbertDecode(0, px, py, pz);
    for (std::uint64_t k = 1; k < 4096; ++k)
    {
        std::uint64_t x, y, z;
        hilbertDecode(k, x, y, z);
        std::uint64_t manhattan = (x > px ? x - px : px - x) + (y > py ? y - py : py - y) +
                                  (z > pz ? z - pz : pz - z);
        ASSERT_EQ(manhattan, 1u) << "at key " << k;
        px = x; py = y; pz = z;
    }
}

TEST(Hilbert, BetterLocalityThanMorton)
{
    // Sum of |key(i) - key(j)| over face-neighbor cell pairs in a coarse
    // grid: Hilbert should not be worse than Morton (locality measure).
    const std::uint64_t n = 16;
    std::uint64_t scale = sfcCellsPerDim / n;
    auto span = [&](auto encode) {
        long double total = 0;
        for (std::uint64_t x = 0; x + 1 < n; ++x)
            for (std::uint64_t y = 0; y < n; ++y)
                for (std::uint64_t z = 0; z < n; ++z)
                {
                    auto a = encode(x * scale, y * scale, z * scale);
                    auto b = encode((x + 1) * scale, y * scale, z * scale);
                    total += a > b ? (long double)(a - b) : (long double)(b - a);
                }
        return total;
    };
    long double mortonSpan  = span([](auto a, auto b, auto c) { return mortonEncode(a, b, c); });
    long double hilbertSpan = span([](auto a, auto b, auto c) { return hilbertEncode(a, b, c); });
    EXPECT_LT(hilbertSpan, mortonSpan);
}

// --- Octree invariants ------------------------------------------------------

namespace {

struct Cloud
{
    std::vector<double> x, y, z, h;
};

Cloud randomCloud(std::size_t n, std::uint64_t seed, double hval = 0.05)
{
    Cloud c;
    Xoshiro256pp rng(seed);
    for (std::size_t i = 0; i < n; ++i)
    {
        c.x.push_back(rng.uniform());
        c.y.push_back(rng.uniform());
        c.z.push_back(rng.uniform());
        c.h.push_back(hval);
    }
    return c;
}

} // namespace

class OctreeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(OctreeSweep, OrderIsAPermutation)
{
    auto c = randomCloud(GetParam(), 10 + GetParam());
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    Octree<double> tree;
    tree.build(c.x, c.y, c.z, box);

    std::vector<char> seen(GetParam(), 0);
    for (auto i : tree.order())
    {
        ASSERT_LT(i, GetParam());
        ASSERT_FALSE(seen[i]);
        seen[i] = 1;
    }
}

TEST_P(OctreeSweep, SortedKeysAreSorted)
{
    auto c = randomCloud(GetParam(), 20 + GetParam());
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    Octree<double> tree;
    tree.build(c.x, c.y, c.z, box);
    EXPECT_TRUE(std::is_sorted(tree.sortedKeys().begin(), tree.sortedKeys().end()));
}

TEST_P(OctreeSweep, NodesPartitionParticles)
{
    auto c = randomCloud(GetParam(), 30 + GetParam());
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    Octree<double> tree;
    tree.build(c.x, c.y, c.z, box);

    // root covers everything
    EXPECT_EQ(tree.node(0).first, 0u);
    EXPECT_EQ(tree.node(0).count, GetParam());

    // children of every internal node exactly tile the parent's range
    for (std::size_t nIdx = 0; nIdx < tree.nodeCount(); ++nIdx)
    {
        const auto& nd = tree.node(std::uint32_t(nIdx));
        if (nd.nChildren == 0) continue;
        std::uint32_t covered = 0;
        std::uint32_t expectNext = nd.first;
        for (int ch = 0; ch < nd.nChildren; ++ch)
        {
            const auto& cd = tree.node(nd.child + ch);
            EXPECT_EQ(cd.first, expectNext);
            covered += cd.count;
            expectNext = cd.first + cd.count;
        }
        EXPECT_EQ(covered, nd.count);
    }
}

TEST_P(OctreeSweep, AabbsContainTheirParticles)
{
    auto c = randomCloud(GetParam(), 40 + GetParam());
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    Octree<double> tree;
    tree.build(c.x, c.y, c.z, box);

    for (std::size_t nIdx = 0; nIdx < tree.nodeCount(); ++nIdx)
    {
        const auto& nd = tree.node(std::uint32_t(nIdx));
        for (std::uint32_t k = nd.first; k < nd.first + nd.count; ++k)
        {
            auto i = tree.order()[k];
            EXPECT_GE(c.x[i], nd.lo.x - 1e-12);
            EXPECT_LE(c.x[i], nd.hi.x + 1e-12);
            EXPECT_GE(c.y[i], nd.lo.y - 1e-12);
            EXPECT_LE(c.y[i], nd.hi.y + 1e-12);
            EXPECT_GE(c.z[i], nd.lo.z - 1e-12);
            EXPECT_LE(c.z[i], nd.hi.z + 1e-12);
        }
    }
}

TEST_P(OctreeSweep, LeafSizeRespected)
{
    auto c = randomCloud(GetParam(), 50 + GetParam());
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    Octree<double>::BuildParams params;
    params.leafSize = 16;
    Octree<double> tree;
    tree.build(c.x, c.y, c.z, box, params);

    for (std::size_t nIdx = 0; nIdx < tree.nodeCount(); ++nIdx)
    {
        const auto& nd = tree.node(std::uint32_t(nIdx));
        if (nd.nChildren == 0)
        {
            // leaves can only exceed leafSize at max depth (duplicates)
            if (nd.depth < Octree<double>::maxDepth)
            {
                EXPECT_LE(nd.count, params.leafSize);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, OctreeSweep, ::testing::Values(1, 2, 17, 100, 1000, 5000));

TEST(Octree, HandlesDuplicatePositions)
{
    std::vector<double> x(100, 0.5), y(100, 0.5), z(100, 0.5);
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    Octree<double> tree;
    Octree<double>::BuildParams params;
    params.leafSize = 8;
    tree.build(x, y, z, box, params);
    EXPECT_EQ(tree.node(0).count, 100u);
    // all duplicates end in one (max-depth) leaf; no infinite recursion
    EXPECT_GT(tree.nodeCount(), 0u);
}

TEST(Octree, EmptyAndSingle)
{
    std::vector<double> x, y, z;
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    Octree<double> tree;
    tree.build(x, y, z, box);
    EXPECT_EQ(tree.nodeCount(), 1u);

    x = {0.3};
    y = {0.4};
    z = {0.5};
    tree.build(x, y, z, box);
    EXPECT_EQ(tree.node(0).count, 1u);
}

TEST(Octree, ParallelBuildEquivalent)
{
    auto c = randomCloud(20000, 99);
    Box<double> box{{0, 0, 0}, {1, 1, 1}};

    Octree<double> seq, par;
    Octree<double>::BuildParams ps;
    ps.parallelBuild = false;
    seq.build(c.x, c.y, c.z, box, ps);
    ps.parallelBuild = true;
    par.build(c.x, c.y, c.z, box, ps);

    EXPECT_EQ(seq.nodeCount(), par.nodeCount());
    EXPECT_EQ(seq.order(), par.order());
    // neighbor searches must agree
    NeighborList<double> nlSeq(c.x.size(), 64), nlPar(c.x.size(), 64);
    findNeighborsGlobal(seq, c.x, c.y, c.z, c.h, nlSeq);
    findNeighborsGlobal(par, c.x, c.y, c.z, c.h, nlPar);
    for (std::size_t i = 0; i < c.x.size(); ++i)
    {
        ASSERT_EQ(nlSeq.count(i), nlPar.count(i)) << i;
    }
}

// --- neighbor search equivalence (property test) ----------------------------

class NeighborEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool, SfcCurve>>
{
};

TEST_P(NeighborEquivalence, TreeMatchesBruteForce)
{
    auto [n, periodic, curve] = GetParam();
    auto c = randomCloud(n, 7 * n + (periodic ? 1 : 0), 0.08);
    Box<double> box{{0, 0, 0}, {1, 1, 1}, periodic, periodic, periodic};

    Octree<double>::BuildParams params;
    params.curve = curve;
    Octree<double> tree;
    tree.build(c.x, c.y, c.z, box, params);

    NeighborList<double> nlTree(n, 512), nlBrute(n, 512);
    findNeighborsGlobal(tree, c.x, c.y, c.z, c.h, nlTree);
    findNeighborsBruteForce<double>(c.x, c.y, c.z, c.h, box, nlBrute);

    for (std::size_t i = 0; i < n; ++i)
    {
        auto a = nlTree.neighbors(i);
        auto b = nlBrute.neighbors(i);
        std::set<std::uint32_t> sa(a.begin(), a.end());
        std::set<std::uint32_t> sb(b.begin(), b.end());
        ASSERT_EQ(sa, sb) << "particle " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Clouds, NeighborEquivalence,
    ::testing::Combine(::testing::Values(64, 500, 2000),
                       ::testing::Bool(),
                       ::testing::Values(SfcCurve::Morton, SfcCurve::Hilbert)));

TEST(NeighborSearch, CellListMatchesTree)
{
    auto c = randomCloud(3000, 17, 0.06);
    Box<double> box{{0, 0, 0}, {1, 1, 1}, false, false, true}; // z-periodic
    Octree<double> tree;
    tree.build(c.x, c.y, c.z, box);

    NeighborList<double> nlTree(c.x.size(), 512), nlCell(c.x.size(), 512);
    findNeighborsGlobal(tree, c.x, c.y, c.z, c.h, nlTree);
    findNeighborsCellList<double>(c.x, c.y, c.z, c.h, box, nlCell);

    for (std::size_t i = 0; i < c.x.size(); ++i)
    {
        auto a = nlTree.neighbors(i);
        auto b = nlCell.neighbors(i);
        std::set<std::uint32_t> sa(a.begin(), a.end());
        std::set<std::uint32_t> sb(b.begin(), b.end());
        ASSERT_EQ(sa, sb) << "particle " << i;
    }
}

TEST(NeighborSearch, IndividualWalkUpdatesOnlyActive)
{
    auto c = randomCloud(500, 23, 0.1);
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    Octree<double> tree;
    tree.build(c.x, c.y, c.z, box);

    NeighborList<double> nl(c.x.size(), 256);
    findNeighborsGlobal(tree, c.x, c.y, c.z, c.h, nl);
    auto before = nl.count(0);

    // enlarge h of particle 0 only, re-search an active subset without it
    c.h[0] *= 2;
    std::vector<std::size_t> active{1, 2, 3};
    findNeighborsIndividual(tree, c.x, c.y, c.z, c.h, active, nl);
    EXPECT_EQ(nl.count(0), before); // untouched

    active = {0};
    findNeighborsIndividual(tree, c.x, c.y, c.z, c.h, active, nl);
    EXPECT_GT(nl.count(0), before); // larger radius found more
}

TEST(NeighborList, OverflowDetected)
{
    // 100 coincident-ish particles with huge h and tiny ngmax
    auto c = randomCloud(100, 31, 2.0);
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    Octree<double> tree;
    tree.build(c.x, c.y, c.z, box);
    NeighborList<double> nl(c.x.size(), 8);
    findNeighborsGlobal(tree, c.x, c.y, c.z, c.h, nl);
    EXPECT_GT(nl.overflowCount(), 0u);
    for (std::size_t i = 0; i < c.x.size(); ++i)
    {
        EXPECT_LE(nl.count(i), 8u);
    }
}

TEST(NeighborList, OverflowCountExactUnderConcurrentWriters)
{
    // regression: overflow_ is bumped through `#pragma omp atomic` in
    // set(); with many threads writing oversized lists concurrently the
    // count must still be exact (a plain ++ would drop increments)
    const std::size_t n = 20000;
    const unsigned ngmax = 4;
    NeighborList<double> nl(n, ngmax);

    using Index = NeighborList<double>::Index;
    std::vector<Index> oversized(ngmax + 3); // every set() overflows
    for (std::size_t k = 0; k < oversized.size(); ++k)
        oversized[k] = Index(k);

#pragma omp parallel for schedule(dynamic, 64)
    for (std::size_t i = 0; i < n; ++i)
    {
        nl.set(i, oversized);
    }

    EXPECT_EQ(nl.overflowCount(), n);
    for (std::size_t i = 0; i < n; ++i)
    {
        ASSERT_EQ(nl.count(i), ngmax); // truncated, never past capacity
    }

    // reset() clears the overflow counter along with the lists
    nl.reset(n, ngmax);
    EXPECT_EQ(nl.overflowCount(), 0u);
    EXPECT_EQ(nl.totalNeighbors(), 0u);
}

TEST(NeighborList, TotalNeighborsConsistent)
{
    auto c = randomCloud(400, 37, 0.1);
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    Octree<double> tree;
    tree.build(c.x, c.y, c.z, box);
    NeighborList<double> nl(c.x.size(), 256);
    findNeighborsGlobal(tree, c.x, c.y, c.z, c.h, nl);

    std::size_t total = 0;
    for (std::size_t i = 0; i < c.x.size(); ++i)
        total += nl.count(i);
    EXPECT_EQ(nl.totalNeighbors(), total);
    // neighbor relation is symmetric for uniform h
    EXPECT_EQ(total % 2, 0u);
}

/// Domain decomposition tests: ORB and SFC partition invariants, halo
/// completeness, and the crucial equivalence property — a domain-decomposed
/// run produces the same physics as the shared-memory driver.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/simulation.hpp"
#include "domain/distributed.hpp"
#include "domain/orb.hpp"
#include "domain/sfc_partition.hpp"
#include "ic/evrard.hpp"
#include "ic/square_patch.hpp"
#include "math/rng.hpp"

using namespace sphexa;

namespace {

struct Cloud
{
    std::vector<double> x, y, z, w;
};

Cloud randomCloud(std::size_t n, std::uint64_t seed, bool skewed = false)
{
    Cloud c;
    Xoshiro256pp rng(seed);
    for (std::size_t i = 0; i < n; ++i)
    {
        if (skewed)
        {
            // clustered distribution (half the points in one corner octant)
            if (i % 2)
            {
                c.x.push_back(rng.uniform(0.0, 0.25));
                c.y.push_back(rng.uniform(0.0, 0.25));
                c.z.push_back(rng.uniform(0.0, 0.25));
            }
            else
            {
                c.x.push_back(rng.uniform());
                c.y.push_back(rng.uniform());
                c.z.push_back(rng.uniform());
            }
        }
        else
        {
            c.x.push_back(rng.uniform());
            c.y.push_back(rng.uniform());
            c.z.push_back(rng.uniform());
        }
        c.w.push_back(1.0);
    }
    return c;
}

} // namespace

// --- ORB ------------------------------------------------------------------------

class OrbSweep : public ::testing::TestWithParam<int> // rank count
{
};

TEST_P(OrbSweep, BalancedPartition)
{
    int P = GetParam();
    auto c = randomCloud(8000, 11);
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    auto part = orbDecompose<double>(c.x, c.y, c.z, c.w, P, box);

    ASSERT_EQ(int(part.rankBoxes.size()), P);
    ASSERT_EQ(part.assignment.size(), c.x.size());

    // each rank's weight within 15% of the mean
    double mean = 8000.0 / P;
    for (int r = 0; r < P; ++r)
    {
        EXPECT_NEAR(part.rankWeights[r], mean, 0.15 * mean) << "rank " << r;
    }
}

TEST_P(OrbSweep, ParticlesInsideTheirBoxes)
{
    int P = GetParam();
    auto c = randomCloud(4000, 13);
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    auto part = orbDecompose<double>(c.x, c.y, c.z, c.w, P, box);
    for (std::size_t i = 0; i < c.x.size(); ++i)
    {
        const auto& b = part.rankBoxes[part.assignment[i]];
        EXPECT_GE(c.x[i], b.lo.x - 1e-12);
        EXPECT_LE(c.x[i], b.hi.x + 1e-12);
        EXPECT_GE(c.y[i], b.lo.y - 1e-12);
        EXPECT_LE(c.y[i], b.hi.y + 1e-12);
        EXPECT_GE(c.z[i], b.lo.z - 1e-12);
        EXPECT_LE(c.z[i], b.hi.z + 1e-12);
    }
}

TEST_P(OrbSweep, BoxesTileTheDomain)
{
    int P = GetParam();
    auto c = randomCloud(4000, 17);
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    auto part = orbDecompose<double>(c.x, c.y, c.z, c.w, P, box);
    double vol = 0;
    for (const auto& b : part.rankBoxes)
        vol += b.volume();
    EXPECT_NEAR(vol, box.volume(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ranks, OrbSweep, ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(Orb, SkewedDistributionStillBalanced)
{
    auto c = randomCloud(8000, 19, true);
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    auto part = orbDecompose<double>(c.x, c.y, c.z, c.w, 8, box);
    double mean = 1000;
    for (int r = 0; r < 8; ++r)
    {
        EXPECT_NEAR(part.rankWeights[r], mean, 0.2 * mean);
    }
}

TEST(Orb, RespectsWeights)
{
    // heavy particles on the left half: the split adapts
    std::size_t n = 1000;
    Cloud c = randomCloud(n, 23);
    for (std::size_t i = 0; i < n; ++i)
    {
        c.w[i] = c.x[i] < 0.5 ? 10.0 : 1.0;
    }
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    auto part = orbDecompose<double>(c.x, c.y, c.z, c.w, 2, box);
    double w0 = part.rankWeights[0], w1 = part.rankWeights[1];
    double total = w0 + w1;
    EXPECT_NEAR(w0 / total, 0.5, 0.05);
    // the cut plane must sit inside the heavy half (x < 0.5)
    EXPECT_LT(part.rankBoxes[0].hi.x, 0.5);
}

// --- SFC partition ----------------------------------------------------------------

class SfcSweep : public ::testing::TestWithParam<std::tuple<int, SfcCurve>>
{
};

TEST_P(SfcSweep, BalancedAndContiguous)
{
    auto [P, curve] = GetParam();
    auto c = randomCloud(8000, 29);
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    auto part = sfcPartition<double>(c.x, c.y, c.z, c.w, P, box, curve);

    double mean = 8000.0 / P;
    for (int r = 0; r < P; ++r)
    {
        EXPECT_NEAR(part.rankWeights[r], mean, 0.15 * mean) << "rank " << r;
    }

    // contiguity along the curve: sort particles by key; rank must be
    // non-decreasing
    std::vector<std::uint64_t> keys(c.x.size());
    for (std::size_t i = 0; i < c.x.size(); ++i)
    {
        keys[i] = sfcKey(curve, Vec3<double>{c.x[i], c.y[i], c.z[i]}, box);
    }
    std::vector<std::size_t> order(c.x.size());
    std::iota(order.begin(), order.end(), std::size_t(0));
    std::sort(order.begin(), order.end(),
              [&](auto a, auto b) { return keys[a] < keys[b]; });
    int prev = 0;
    for (auto i : order)
    {
        EXPECT_GE(part.assignment[i], prev);
        prev = part.assignment[i];
    }
}

INSTANTIATE_TEST_SUITE_P(RanksAndCurves, SfcSweep,
                         ::testing::Combine(::testing::Values(1, 2, 5, 8, 16),
                                            ::testing::Values(SfcCurve::Morton,
                                                              SfcCurve::Hilbert)));

// --- halo exchange -----------------------------------------------------------------

TEST(Halo, GhostsCoverAllRemoteNeighbors)
{
    // set up a small uniform cloud split over 4 ranks, then verify: for
    // every local particle, all its true neighbors (from a global brute
    // force) are present locally (as locals or ghosts).
    std::size_t n = 3000;
    auto c = randomCloud(n, 31);
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    double h = 0.05;

    ParticleSetD global(n);
    for (std::size_t i = 0; i < n; ++i)
    {
        global.x[i] = c.x[i];
        global.y[i] = c.y[i];
        global.z[i] = c.z[i];
        global.h[i] = h;
        global.id[i] = i;
    }

    int P = 4;
    auto part = sfcPartition<double>(c.x, c.y, c.z, c.w, P, box);
    std::vector<ParticleSetD> locals(P);
    for (std::size_t i = 0; i < n; ++i)
    {
        locals[part.assignment[i]].appendFrom(global, i);
    }

    simmpi::Communicator comm(P);
    std::vector<HaloMap> maps(P);
    exchangeHalos(comm, locals, maps, box, 2 * h);

    // global brute-force neighbor map by id
    for (int r = 0; r < P; ++r)
    {
        std::set<std::uint64_t> present(locals[r].id.begin(), locals[r].id.end());
        std::size_t nLoc = locals[r].size() - maps[r].ghostCount();
        for (std::size_t i = 0; i < nLoc; ++i)
        {
            Vec3<double> pi{locals[r].x[i], locals[r].y[i], locals[r].z[i]};
            for (std::size_t j = 0; j < n; ++j)
            {
                Vec3<double> d = box.delta(pi, {global.x[j], global.y[j], global.z[j]});
                if (norm2(d) < 4 * h * h)
                {
                    ASSERT_TRUE(present.count(j))
                        << "rank " << r << " missing neighbor " << j;
                }
            }
        }
    }
}

TEST(Halo, RefreshUpdatesGhostValues)
{
    std::size_t n = 500;
    auto c = randomCloud(n, 37);
    Box<double> box{{0, 0, 0}, {1, 1, 1}};
    ParticleSetD global(n);
    for (std::size_t i = 0; i < n; ++i)
    {
        global.x[i] = c.x[i];
        global.y[i] = c.y[i];
        global.z[i] = c.z[i];
        global.h[i] = 0.08;
        global.id[i] = i;
        global.rho[i] = 0; // stale
    }
    int P = 3;
    auto part = sfcPartition<double>(c.x, c.y, c.z, c.w, P, box);
    std::vector<ParticleSetD> locals(P);
    for (std::size_t i = 0; i < n; ++i)
        locals[part.assignment[i]].appendFrom(global, i);
    std::vector<std::size_t> nLocal(P);
    for (int r = 0; r < P; ++r)
        nLocal[r] = locals[r].size();

    simmpi::Communicator comm(P);
    std::vector<HaloMap> maps(P);
    exchangeHalos(comm, locals, maps, box, 0.16);

    // owners compute rho = id + 1 for their locals
    for (int r = 0; r < P; ++r)
    {
        for (std::size_t i = 0; i < nLocal[r]; ++i)
            locals[r].rho[i] = double(locals[r].id[i]) + 1.0;
    }
    refreshHaloFields<double>(comm, locals, maps, {"rho"}, nLocal);

    // every ghost now carries its owner's value
    for (int r = 0; r < P; ++r)
    {
        for (std::size_t g = 0; g < maps[r].ghostCount(); ++g)
        {
            std::size_t idx = nLocal[r] + g;
            EXPECT_DOUBLE_EQ(locals[r].rho[idx], double(locals[r].id[idx]) + 1.0);
        }
    }
}

// --- distributed vs shared-memory equivalence ---------------------------------------

class DistributedEquivalence
    : public ::testing::TestWithParam<std::tuple<int, DecompositionMethod>>
{
};

TEST_P(DistributedEquivalence, MatchesSharedMemoryDriver)
{
    auto [P, method] = GetParam();

    ParticleSetD ps;
    SquarePatchConfig<double> pc;
    pc.nx = pc.ny = 12;
    pc.nz = 6;
    auto setup = makeSquarePatch(ps, pc);

    SimulationConfig<double> cfg;
    cfg.targetNeighbors = 50;
    cfg.neighborTolerance = 10;
    cfg.decomposition = method;
    cfg.symmetrizeNeighbors = false; // the distributed driver can't (halo pairs)
    // index-aligned comparison below: the distributed pipeline has no phase L,
    // so keep the shared-memory driver on the seed layout too
    cfg.searchMode = NeighborSearchMode::TreeWalk;
    cfg.sfcReorder = false;

    Simulation<double> shared(ps, setup.box, Eos<double>(setup.eos), cfg);
    DistributedSimulation<double> dist(ps, setup.box, Eos<double>(setup.eos), cfg, P);

    shared.computeForces();
    for (int s = 0; s < 3; ++s)
    {
        shared.advance();
        dist.advance();
    }

    auto g = dist.gather();
    const auto& ref = shared.particles();
    ASSERT_EQ(g.size(), ref.size());
    double maxDx = 0, maxDv = 0;
    for (std::size_t i = 0; i < g.size(); ++i)
    {
        ASSERT_EQ(g.id[i], ref.id[i]);
        maxDx = std::max(maxDx, std::abs(g.x[i] - ref.x[i]) + std::abs(g.y[i] - ref.y[i]) +
                                    std::abs(g.z[i] - ref.z[i]));
        maxDv = std::max(maxDv, std::abs(g.vx[i] - ref.vx[i]) +
                                    std::abs(g.vy[i] - ref.vy[i]) +
                                    std::abs(g.vz[i] - ref.vz[i]));
    }
    // same algorithm, different summation order: tight but not bitwise
    EXPECT_LT(maxDx, 1e-9);
    EXPECT_LT(maxDv, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndMethods, DistributedEquivalence,
    ::testing::Combine(::testing::Values(2, 4),
                       ::testing::Values(DecompositionMethod::SpaceFillingCurve,
                                         DecompositionMethod::OrthogonalRecursiveBisection,
                                         DecompositionMethod::Slab1D)));

TEST(Distributed, ConservationHolds)
{
    ParticleSetD ps;
    SquarePatchConfig<double> pc;
    pc.nx = pc.ny = 12;
    pc.nz = 6;
    auto setup = makeSquarePatch(ps, pc);
    SimulationConfig<double> cfg;
    cfg.targetNeighbors = 50;
    cfg.neighborTolerance = 10;

    DistributedSimulation<double> dist(ps, setup.box, Eos<double>(setup.eos), cfg, 4);
    auto c0 = dist.conservation();
    for (int s = 0; s < 5; ++s)
        dist.advance();
    auto c1 = dist.conservation();

    EXPECT_NEAR(c1.mass, c0.mass, 1e-12);
    double scale = std::abs(c0.angularMomentum.z);
    EXPECT_LT(norm(c1.momentum - c0.momentum), 1e-4 * scale);
}

TEST(Distributed, ImbalanceBounded)
{
    ParticleSetD ps;
    SquarePatchConfig<double> pc;
    pc.nx = pc.ny = 12;
    pc.nz = 6;
    auto setup = makeSquarePatch(ps, pc);
    SimulationConfig<double> cfg;
    cfg.targetNeighbors = 50;

    DistributedSimulation<double> dist(ps, setup.box, Eos<double>(setup.eos), cfg, 4);
    EXPECT_LT(dist.particleImbalance(), 1.25);
}

TEST(Distributed, TrafficIsRecorded)
{
    ParticleSetD ps;
    SquarePatchConfig<double> pc;
    pc.nx = pc.ny = 10;
    pc.nz = 4;
    auto setup = makeSquarePatch(ps, pc);
    SimulationConfig<double> cfg;
    cfg.targetNeighbors = 40;

    DistributedSimulation<double> dist(ps, setup.box, Eos<double>(setup.eos), cfg, 3);
    auto rep = dist.advance();
    for (const auto& r : rep.ranks)
    {
        EXPECT_GT(r.traffic.bytesSent, 0u);
        EXPECT_GT(r.traffic.messagesSent, 0u);
    }
    // ghosts exist at interior boundaries
    std::size_t ghosts = 0;
    for (const auto& r : rep.ranks)
        ghosts += r.ghostParticles;
    EXPECT_GT(ghosts, 0u);
}

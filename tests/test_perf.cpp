/// Performance substrate tests: network model values, machine threading
/// model, tracer bookkeeping and rendering, POP metrics on analytic cases,
/// cost-model calibration sanity, and workload-probe invariants (including
/// the halo-fraction growth that drives the paper's scaling stall).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ic/square_patch.hpp"
#include "perf/cluster_sim.hpp"
#include "perf/cost_model.hpp"
#include "perf/machine.hpp"
#include "perf/netmodel.hpp"
#include "perf/pop_metrics.hpp"
#include "perf/tracer.hpp"

using namespace sphexa;

// --- machine / network models -------------------------------------------------

TEST(Machine, PaperCoreCounts)
{
    // the figures' x-axis: "Piz Daint=12c/cn, MareNostrum=48c/cn"
    EXPECT_EQ(pizDaint().coresPerNode, 12);
    EXPECT_EQ(mareNostrum4().coresPerNode, 48);
}

TEST(Machine, ThreadSpeedupMonotone)
{
    auto m = pizDaint();
    double prev = 0;
    for (int t : {1, 2, 4, 8, 12})
    {
        double s = m.threadSpeedup(t);
        EXPECT_GT(s, prev);
        EXPECT_LE(s, double(t) + 1e-12); // never super-linear
        prev = s;
    }
}

TEST(NetModel, HockneyPointToPoint)
{
    NetworkModel net(NetworkParams{1e-6, 1e10, "test"});
    EXPECT_NEAR(net.pointToPoint(0), 1e-6, 1e-12);
    EXPECT_NEAR(net.pointToPoint(1000000), 1e-6 + 1e-4, 1e-10);
}

TEST(NetModel, CollectivesScaleLogarithmically)
{
    NetworkModel net(NetworkParams{1e-6, 1e10, "test"});
    double t2  = net.allreduce(2, 8);
    double t16 = net.allreduce(16, 8);
    double t1024 = net.allreduce(1024, 8);
    EXPECT_LT(t2, t16);
    EXPECT_LT(t16, t1024);
    // latency-dominated small allreduce: ratio ~ log ratio
    EXPECT_NEAR(t1024 / t16, 10.0 / 4.0, 0.5);
    EXPECT_DOUBLE_EQ(net.allreduce(1, 8), 0.0);
}

TEST(NetModel, BatchSerializesMessages)
{
    NetworkModel net(NetworkParams{1e-6, 1e9, "test"});
    EXPECT_NEAR(net.p2pBatch(10, 1000), 10e-6 + 1e-6, 1e-9);
}

// --- tracer ---------------------------------------------------------------------

TEST(Tracer, RecordsAndAggregates)
{
    Tracer tr(2, 2);
    tr.record(0, 0, ActivityState::Computing, Phase::E_Density, 0.0, 1.0);
    tr.record(0, 1, ActivityState::Idle, Phase::E_Density, 0.0, 1.0);
    tr.record(0, 0, ActivityState::MpiCollective, Phase::J_TimestepUpdate, 1.0, 1.5);
    EXPECT_DOUBLE_EQ(tr.endTime(), 1.5);
    EXPECT_DOUBLE_EQ(tr.usefulSeconds(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(tr.usefulSeconds(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(tr.commSeconds(0, 0), 0.5);

    auto breakdown = tr.phaseStateBreakdown();
    EXPECT_DOUBLE_EQ((breakdown[{Phase::E_Density, ActivityState::Computing}]), 1.0);
}

TEST(Tracer, ZeroLengthIntervalsIgnored)
{
    Tracer tr(1, 1);
    tr.record(0, 0, ActivityState::Computing, Phase::A_TreeBuild, 1.0, 1.0);
    EXPECT_TRUE(tr.intervals().empty());
}

TEST(Tracer, AsciiRenderingShowsStates)
{
    Tracer tr(1, 2);
    tr.record(0, 0, ActivityState::Computing, Phase::A_TreeBuild, 0.0, 1.0);
    tr.record(0, 1, ActivityState::Idle, Phase::A_TreeBuild, 0.0, 1.0);
    auto s = tr.renderAscii(40);
    EXPECT_NE(s.find('#'), std::string::npos); // computing glyph
    EXPECT_NE(s.find("r00.t00"), std::string::npos);
    EXPECT_NE(s.find("r00.t01"), std::string::npos);
    EXPECT_NE(s.find('A'), std::string::npos); // phase header letter
}

TEST(Tracer, CsvExport)
{
    Tracer tr(1, 1);
    tr.record(0, 0, ActivityState::Computing, Phase::E_Density, 0.0, 2.0);
    std::ostringstream os;
    tr.writeCsv(os);
    EXPECT_NE(os.str().find("Computing"), std::string::npos);
    EXPECT_NE(os.str().find("E:density"), std::string::npos);
}

TEST(Tracer, ExpandSerialTreeBuildShowsIdleThreads)
{
    // one rank, 4 threads; phase A fully serial: threads 1-3 idle during A
    std::vector<std::array<double, phaseCount>> phases(1);
    phases[0][int(Phase::A_TreeBuild)] = 1.0;
    phases[0][int(Phase::E_Density)]   = 1.0;
    auto par = sphynx131Parallelism();
    auto tr = expandTrace<double>(phases, {0.01}, 4, par);

    // thread 0 works through A; thread 1 does ~nothing during A
    double u0 = tr.usefulSeconds(0, 0);
    double u1 = tr.usefulSeconds(0, 1);
    EXPECT_GT(u0, u1 + 0.8); // ~the serial second of phase A
}

TEST(Tracer, ExpandParallelProfileIsBalanced)
{
    std::vector<std::array<double, phaseCount>> phases(1);
    phases[0][int(Phase::E_Density)] = 1.0;
    auto tr = expandTrace<double>(phases, {0.0}, 4, sphexaParallelism());
    auto m = computePopMetrics(tr);
    EXPECT_GT(m.loadBalance, 0.9);
}

// --- POP metrics -------------------------------------------------------------------

TEST(Pop, PerfectlyBalancedRun)
{
    std::vector<double> useful{1.0, 1.0, 1.0, 1.0};
    auto m = computePopMetrics(useful, 1.0);
    EXPECT_DOUBLE_EQ(m.loadBalance, 1.0);
    EXPECT_DOUBLE_EQ(m.communicationEfficiency, 1.0);
    EXPECT_DOUBLE_EQ(m.parallelEfficiency, 1.0);
}

TEST(Pop, ImbalancedRun)
{
    // one straggler: LB = avg/max = (0.5*3+1)/4 / 1 = 0.625
    std::vector<double> useful{0.5, 0.5, 0.5, 1.0};
    auto m = computePopMetrics(useful, 1.0);
    EXPECT_DOUBLE_EQ(m.loadBalance, 0.625);
    EXPECT_DOUBLE_EQ(m.communicationEfficiency, 1.0);
    EXPECT_DOUBLE_EQ(m.parallelEfficiency, 0.625);
}

TEST(Pop, CommunicationBoundRun)
{
    // everyone busy half the time, the rest in MPI: CE = 0.5
    std::vector<double> useful{0.5, 0.5};
    auto m = computePopMetrics(useful, 1.0);
    EXPECT_DOUBLE_EQ(m.communicationEfficiency, 0.5);
    EXPECT_DOUBLE_EQ(m.loadBalance, 1.0);
}

TEST(Pop, ScalabilityAgainstReference)
{
    std::vector<double> ref{1.0, 1.0};
    auto mRef = computePopMetrics(ref, 1.0);
    // at 4 cores the same total useful work (perfect scalability)
    std::vector<double> wide{0.5, 0.5, 0.5, 0.5};
    auto m4 = withScalability(computePopMetrics(wide, 0.5), mRef);
    EXPECT_NEAR(m4.computationScalability, 1.0, 1e-12);
    // replicated work (total useful doubled): CS = 0.5
    std::vector<double> bloated{1.0, 1.0, 1.0, 1.0};
    auto mB = withScalability(computePopMetrics(bloated, 1.0), mRef);
    EXPECT_NEAR(mB.computationScalability, 0.5, 1e-12);
}

TEST(Pop, RejectsEmptyInput)
{
    std::vector<double> empty;
    EXPECT_THROW(computePopMetrics(empty, 1.0), std::invalid_argument);
}

// --- cost model ----------------------------------------------------------------------

TEST(CostModel, CalibrationProducesSaneNumbers)
{
    auto cm = CostModel::calibrate(12, 40);
    EXPECT_GT(cm.secondsPerSphInteraction, 1e-12);
    EXPECT_LT(cm.secondsPerSphInteraction, 1e-3);
    EXPECT_GT(cm.secondsPerNeighborSearch, 1e-12);
    EXPECT_LT(cm.secondsPerNeighborSearch, 1e-3);
    EXPECT_GT(cm.secondsPerTreeParticle, 1e-12);
    EXPECT_LT(cm.secondsPerTreeParticle, 1e-3);
    EXPECT_GT(cm.secondsPerGravityInteraction, 1e-12);
    EXPECT_LT(cm.secondsPerGravityInteraction, 1e-3);
}

// --- workload probe -----------------------------------------------------------------

namespace {

ParticleSetD smallPatch(Box<double>& boxOut)
{
    ParticleSetD ps;
    SquarePatchConfig<double> pc;
    pc.nx = pc.ny = 16;
    pc.nz = 8;
    auto setup = makeSquarePatch(ps, pc);
    boxOut = setup.box;
    return ps;
}

} // namespace

TEST(Probe, CountsArePlausible)
{
    Box<double> box;
    auto ps = smallPatch(box);
    SimulationConfig<double> cfg;
    cfg.targetNeighbors = 50;
    cfg.neighborTolerance = 10;

    auto probe = probeWorkload(ps, box, cfg, 4);
    EXPECT_EQ(probe.ranks, 4);
    EXPECT_EQ(probe.totalParticles, ps.size());

    std::size_t locals = 0, inter = 0;
    for (int r = 0; r < 4; ++r)
    {
        locals += probe.localParticles[r];
        inter += probe.sphInteractions[r];
        EXPECT_GT(probe.haloBytesSent[r], 0u);
        EXPECT_GE(probe.treeParticles[r], probe.localParticles[r]);
    }
    EXPECT_EQ(locals, ps.size());
    // ~50 neighbors per particle
    EXPECT_NEAR(double(inter) / double(ps.size()), 50.0, 20.0);
}

TEST(Probe, HaloFractionGrowsWithRanks)
{
    // the mechanism behind the paper's strong-scaling stall: ghosts per
    // local particle grow as subdomains shrink
    Box<double> box;
    auto ps = smallPatch(box);
    SimulationConfig<double> cfg;
    cfg.targetNeighbors = 50;
    cfg.neighborTolerance = 10;

    auto ghostFraction = [&](int R) {
        auto probe = probeWorkload(ps, box, cfg, R);
        double ghosts = 0, locals = 0;
        for (int r = 0; r < R; ++r)
        {
            ghosts += double(probe.treeParticles[r] - probe.localParticles[r]);
            locals += double(probe.localParticles[r]);
        }
        return ghosts / locals;
    };
    double f2 = ghostFraction(2);
    double f8 = ghostFraction(8);
    EXPECT_GT(f8, f2);
}

TEST(Probe, GravityCountsOnlyWithSelfGravity)
{
    Box<double> box;
    auto ps = smallPatch(box);
    SimulationConfig<double> cfg;
    cfg.targetNeighbors = 50;
    auto probeNoG = probeWorkload(ps, box, cfg, 2);
    for (auto g : probeNoG.gravityInteractions)
        EXPECT_EQ(g, 0u);

    cfg.selfGravity = true;
    auto probeG = probeWorkload(ps, box, cfg, 2);
    for (auto g : probeG.gravityInteractions)
        EXPECT_GT(g, 0u);
}

// --- cluster simulator -----------------------------------------------------------------

TEST(ClusterSim, RanksAndThreadsMapping)
{
    auto daint = pizDaint();
    EXPECT_EQ(ClusterSimulator::ranksAndThreads(12, daint), std::make_pair(1, 12));
    EXPECT_EQ(ClusterSimulator::ranksAndThreads(384, daint), std::make_pair(32, 12));
    auto mn = mareNostrum4();
    EXPECT_EQ(ClusterSimulator::ranksAndThreads(12, mn), std::make_pair(1, 12));
    EXPECT_EQ(ClusterSimulator::ranksAndThreads(384, mn), std::make_pair(8, 48));
}

TEST(ClusterSim, StrongScalingShape)
{
    Box<double> box;
    auto ps = smallPatch(box);
    SimulationConfig<double> cfg;
    cfg.targetNeighbors = 50;
    cfg.neighborTolerance = 10;

    CostModel cm; // defaults are fine for shape testing
    ClusterSimulator sim(cm);
    ScalingConfig sc;
    sc.machine = pizDaint();
    sc.targetParticles = 1000000;

    std::vector<ScalingPoint> pts;
    for (int cores : {12, 48, 192})
    {
        auto [ranks, threads] = ClusterSimulator::ranksAndThreads(cores, sc.machine);
        (void)threads;
        auto probe = probeWorkload(ps, box, cfg, ranks);
        pts.push_back(sim.predict(probe, cores, sc));
    }
    // strong scaling: more cores, less time per step
    EXPECT_LT(pts[1].seconds, pts[0].seconds);
    EXPECT_LT(pts[2].seconds, pts[1].seconds);
    // but efficiency decays: speedup(192/12) < 16
    double speedup = pts[0].seconds / pts[2].seconds;
    EXPECT_LT(speedup, 16.0);
    EXPECT_GT(speedup, 2.0);
}

TEST(ClusterSim, AnchorNormalization)
{
    std::vector<ScalingPoint> pts{{12, 2.0, 1.5, 0.5, 1.0}, {24, 1.0, 0.8, 0.2, 1.0}};
    normalizeToAnchor(pts, 12, 38.25);
    EXPECT_NEAR(pts[0].seconds, 38.25, 1e-9);
    EXPECT_NEAR(pts[1].seconds, 38.25 / 2, 1e-9);
}

TEST(ClusterSim, SerialTreeBuildHurtsAtHighThreadCounts)
{
    Box<double> box;
    auto ps = smallPatch(box);
    SimulationConfig<double> cfg;
    cfg.targetNeighbors = 50;
    auto probe = probeWorkload(ps, box, cfg, 1);

    CostModel cm;
    cm.secondsPerTreeParticle = 1e-6; // make the tree phase visible
    ClusterSimulator sim(cm);
    ScalingConfig serial, parallel;
    serial.serialTreeBuild = true;
    parallel.serialTreeBuild = false;

    auto pSerial   = sim.predict(probe, 12, serial);
    auto pParallel = sim.predict(probe, 12, parallel);
    EXPECT_GT(pSerial.seconds, pParallel.seconds);
}

/// simmpi communicator tests: point-to-point ordering and typing,
/// collectives against reference results, traffic accounting, and
/// error handling.

#include <gtest/gtest.h>

#include "parallel/comm.hpp"

using namespace sphexa;
using simmpi::Communicator;

TEST(Comm, RejectsBadSize)
{
    EXPECT_THROW(Communicator(0), std::invalid_argument);
    EXPECT_THROW(Communicator(-3), std::invalid_argument);
}

TEST(Comm, PointToPointRoundTrip)
{
    Communicator comm(2);
    std::vector<double> payload{1.5, 2.5, 3.5};
    comm.sendVector<double>(0, 1, "data", payload);
    comm.exchange();
    auto got = comm.receiveVector<double>(1, 0, "data");
    EXPECT_EQ(got, payload);
}

TEST(Comm, MessagesInvisibleBeforeExchange)
{
    Communicator comm(2);
    comm.sendVector<int>(0, 1, "t", std::vector<int>{1});
    EXPECT_FALSE(comm.hasMessage(1, 0, "t"));
    comm.exchange();
    EXPECT_TRUE(comm.hasMessage(1, 0, "t"));
}

TEST(Comm, FifoOrderPerChannel)
{
    Communicator comm(2);
    comm.sendVector<int>(0, 1, "t", std::vector<int>{1});
    comm.sendVector<int>(0, 1, "t", std::vector<int>{2});
    comm.exchange();
    EXPECT_EQ(comm.receiveVector<int>(1, 0, "t")[0], 1);
    EXPECT_EQ(comm.receiveVector<int>(1, 0, "t")[0], 2);
}

TEST(Comm, TagsAreIndependentChannels)
{
    Communicator comm(2);
    comm.sendVector<int>(0, 1, "a", std::vector<int>{7});
    comm.sendVector<int>(0, 1, "b", std::vector<int>{8});
    comm.exchange();
    EXPECT_EQ(comm.receiveVector<int>(1, 0, "b")[0], 8);
    EXPECT_EQ(comm.receiveVector<int>(1, 0, "a")[0], 7);
}

TEST(Comm, ReceiveWithoutMessageThrows)
{
    Communicator comm(2);
    EXPECT_THROW(comm.receive(1, 0, "never"), std::runtime_error);
}

TEST(Comm, BadRankThrows)
{
    Communicator comm(2);
    EXPECT_THROW(comm.send(0, 5, "t", {}), std::out_of_range);
    EXPECT_THROW(comm.send(-1, 1, "t", {}), std::out_of_range);
}

TEST(Comm, EmptyMessageAllowed)
{
    Communicator comm(2);
    comm.sendVector<double>(0, 1, "empty", std::vector<double>{});
    comm.exchange();
    EXPECT_TRUE(comm.receiveVector<double>(1, 0, "empty").empty());
}

TEST(Comm, AllreduceSumMinMax)
{
    Communicator comm(4);
    std::vector<double> contrib{1.0, -2.0, 3.5, 0.5};
    EXPECT_DOUBLE_EQ(comm.allreduceSum<double>(contrib), 3.0);
    EXPECT_DOUBLE_EQ(comm.allreduceMin<double>(contrib), -2.0);
    EXPECT_DOUBLE_EQ(comm.allreduceMax<double>(contrib), 3.5);
}

TEST(Comm, Allgatherv)
{
    Communicator comm(3);
    std::vector<std::vector<int>> contrib{{1, 2}, {}, {3}};
    auto all = comm.allgatherv(contrib);
    EXPECT_EQ(all, (std::vector<int>{1, 2, 3}));
}

TEST(Comm, TrafficCountsBytesAndMessages)
{
    Communicator comm(2);
    std::vector<double> payload(10, 1.0); // 80 bytes
    comm.sendVector<double>(0, 1, "t", payload);
    EXPECT_EQ(comm.traffic(0).messagesSent, 1u);
    EXPECT_EQ(comm.traffic(0).bytesSent, 80u);
    EXPECT_EQ(comm.traffic(1).messagesSent, 0u);
}

TEST(Comm, CollectiveTrafficLogarithmic)
{
    Communicator comm(8);
    std::vector<double> contrib(8, 1.0);
    comm.allreduceSum<double>(contrib);
    // 8 ranks -> 3 rounds of recursive doubling per rank
    EXPECT_EQ(comm.traffic(0).messagesSent, 3u);
    EXPECT_EQ(comm.traffic(0).collectives, 1u);
}

TEST(Comm, ResetTraffic)
{
    Communicator comm(2);
    comm.sendVector<int>(0, 1, "t", std::vector<int>{1});
    comm.resetTraffic();
    EXPECT_EQ(comm.traffic(0).messagesSent, 0u);
    EXPECT_EQ(comm.traffic(0).bytesSent, 0u);
}

TEST(Comm, QuiescenceDetection)
{
    Communicator comm(2);
    EXPECT_TRUE(comm.quiescent());
    comm.sendVector<int>(0, 1, "t", std::vector<int>{1});
    EXPECT_FALSE(comm.quiescent()); // pending
    comm.exchange();
    EXPECT_FALSE(comm.quiescent()); // delivered but unconsumed
    comm.receiveVector<int>(1, 0, "t");
    EXPECT_TRUE(comm.quiescent());
}

TEST(Comm, SelfMessagingWorks)
{
    // rank sending to itself is legal (simplifies all-pairs loops)
    Communicator comm(2);
    comm.sendVector<int>(0, 0, "self", std::vector<int>{9});
    comm.exchange();
    EXPECT_EQ(comm.receiveVector<int>(0, 0, "self")[0], 9);
}
